// Thread-caching pool allocator: routing, reuse, cross-thread frees, and
// backend-switch safety.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "alloc/object.hpp"
#include "alloc/pool.hpp"
#include "util/barrier.hpp"

namespace hohtm::alloc {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void TearDown() override { use_pool(false); }
};

TEST_F(PoolTest, MallocBackendRoundTrip) {
  use_pool(false);
  void* p = allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 100);
  deallocate(p);
}

TEST_F(PoolTest, PoolBackendRoundTrip) {
  use_pool(true);
  void* p = allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 100);
  deallocate(p);
}

TEST_F(PoolTest, PoolReusesFreedBlocks) {
  use_pool(true);
  void* first = allocate(64);
  deallocate(first);
  void* second = allocate(64);
  EXPECT_EQ(first, second) << "LIFO free list should hand back the block";
  deallocate(second);
}

TEST_F(PoolTest, DistinctLiveBlocks) {
  use_pool(true);
  std::set<void*> seen;
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) {
    void* p = allocate(48);
    EXPECT_TRUE(seen.insert(p).second) << "live blocks must not alias";
    blocks.push_back(p);
  }
  for (void* p : blocks) deallocate(p);
}

TEST_F(PoolTest, LargeAllocationsFallBackToMalloc) {
  use_pool(true);
  void* p = allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 1 << 20);
  deallocate(p);
}

TEST_F(PoolTest, SwitchMidstreamFreesCorrectly) {
  // Blocks must be freed by the backend that made them even if the
  // global switch has changed since.
  use_pool(false);
  void* from_malloc = allocate(64);
  use_pool(true);
  void* from_pool = allocate(64);
  use_pool(false);
  deallocate(from_pool);    // header says pool
  deallocate(from_malloc);  // header says malloc
}

TEST_F(PoolTest, CrossThreadFreeReturnsToOwner) {
  use_pool(true);
  void* p = allocate(64);
  std::thread other([&] { deallocate(p); });
  other.join();
  // The block sits in this thread's remote stack; the next local miss
  // reclaims it.
  const auto before = pool_stats();
  std::vector<void*> drained;
  void* q = nullptr;
  for (int i = 0; i < 20000 && q != p; ++i) {
    q = allocate(64);
    drained.push_back(q);
  }
  EXPECT_EQ(q, p) << "remote-freed block should come back to the owner";
  const auto after = pool_stats();
  EXPECT_GT(after.remote_reclaims, before.remote_reclaims);
  for (void* d : drained) deallocate(d);
}

TEST_F(PoolTest, ParallelChurnNoCorruption) {
  use_pool(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      std::vector<std::pair<unsigned char*, unsigned char>> mine;
      for (int i = 0; i < kIters; ++i) {
        auto* p = static_cast<unsigned char*>(allocate(40));
        const auto stamp = static_cast<unsigned char>((t * 31 + i) & 0xFF);
        std::memset(p, stamp, 40);
        mine.emplace_back(p, stamp);
        if (mine.size() > 16) {
          auto [q, s] = mine.front();
          mine.erase(mine.begin());
          for (int b = 0; b < 40; ++b)
            ASSERT_EQ(q[b], s) << "block content trampled";
          deallocate(q);
        }
      }
      for (auto [q, s] : mine) deallocate(q);
    });
  }
  for (auto& th : threads) th.join();
}

TEST_F(PoolTest, TypedCreateDestroy) {
  use_pool(true);
  struct Widget {
    int a;
    double b;
    Widget(int x, double y) : a(x), b(y) {}
  };
  Widget* w = create<Widget>(3, 2.5);
  EXPECT_EQ(w->a, 3);
  EXPECT_EQ(w->b, 2.5);
  destroy(w);
}

TEST_F(PoolTest, BackendNameReflectsSwitch) {
  use_pool(false);
  EXPECT_STREQ(backend_name(), "malloc");
  use_pool(true);
  EXPECT_STREQ(backend_name(), "pool");
}

}  // namespace
}  // namespace hohtm::alloc
