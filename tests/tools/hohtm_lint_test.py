#!/usr/bin/env python3
"""Tests for tools/hohtm_lint.py against the fixture corpus.

Each fixture in tests/tools/fixtures/ carries a `.fixture` suffix so the
real-tree lint never sees it, and encodes its intended repo-relative path
with `__` separators (src__tm__x.hpp.fixture -> src/tm/x.hpp).  The tests
materialize the corpus into a temp repo root and assert the exact finding
set: every planted violation is reported at its line, every clean file is
silent, and allow-pragmas suppress precisely the rule they name.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINT = REPO / "tools" / "hohtm_lint.py"
FIXTURES = HERE / "fixtures"


def run_lint(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, str(LINT), *argv],
        capture_output=True, text=True, cwd=cwd)


def materialize(root: pathlib.Path) -> None:
    for fixture in FIXTURES.glob("*.fixture"):
        rel = pathlib.Path(*fixture.name[: -len(".fixture")].split("__"))
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fixture, dest)


# The complete expected output on the fixture corpus: (path, line, rule).
# Clean fixtures appear in no row — any extra finding fails the exact-set
# comparison, so false positives are caught as hard as false negatives.
EXPECTED = {
    ("src/ds/tx_raw_alloc_bad.cpp", 8, "tx-raw-alloc"),
    ("src/ds/tx_raw_alloc_bad.cpp", 9, "tx-raw-alloc"),
    ("src/ds/tx_raw_alloc_bad.cpp", 10, "tx-raw-alloc"),
    ("src/ds/tx_raw_alloc_bad.cpp", 11, "tx-raw-alloc"),
    ("src/tm/atomic_order_bad.hpp", 5, "atomic-order"),
    ("src/tm/atomic_order_bad.hpp", 6, "atomic-order"),
    ("src/tm/atomic_order_bad.hpp", 7, "atomic-order"),
    # The widened scope (src/kv/ here; also src/ds/, src/reclaim/,
    # src/sched/): implicit orders outside the TM core now fire too, and
    # the allow-pragma still silences a deliberate one (line 12).
    ("src/kv/atomic_order_widened_bad.hpp", 8, "atomic-order"),
    ("src/kv/atomic_order_widened_bad.hpp", 9, "atomic-order"),
    ("tests/util/sleep_bad.cpp", 6, "no-sleep-sync"),
    ("tests/util/sleep_bad.cpp", 8, "no-sleep-sync"),
    ("src/util/spin_bad.hpp", 5, "spin-park"),
    ("src/tm/gated_bad.hpp", 4, "gated-hooks"),
    ("src/tm/gated_bad.hpp", 7, "gated-hooks"),
    ("src/util/pragma_bad.hpp", 1, "pragma-once"),
    ("src/util/using_bad.hpp", 4, "no-using-namespace"),
    ("src/core/padded_bad.hpp", 6, "padded-shared-array"),
    ("src/util/metric_slots_bad.hpp", 10, "padded-metric-slots"),
    # allow_pragma.cpp: three violations suppressed by pragmas; the last
    # yield's pragma names a different rule, so it still fires.
    ("src/ds/allow_pragma.cpp", 17, "no-sleep-sync"),
}


class FixtureCorpus(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.TemporaryDirectory(prefix="hohtm_lint_test_")
        cls.root = pathlib.Path(cls.tmp.name)
        materialize(cls.root)

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def lint_json(self, *paths):
        proc = run_lint("--json", "--root", str(self.root), *paths)
        self.assertIn(proc.returncode, (0, 1), proc.stderr)
        return proc, json.loads(proc.stdout)

    def test_exact_finding_set(self):
        proc, findings = self.lint_json()
        got = {(f["path"], f["line"], f["rule"]) for f in findings}
        self.assertEqual(got, EXPECTED)
        self.assertEqual(proc.returncode, 1)

    def test_json_shape(self):
        _, findings = self.lint_json()
        for f in findings:
            self.assertEqual(sorted(f), ["line", "message", "path", "rule"])
            self.assertIsInstance(f["line"], int)
            self.assertTrue(f["message"])

    def test_clean_subtree_exits_zero(self):
        # The clean fixtures alone must produce no findings and exit 0.
        clean = [p for p in ("src/util/wait_good.hpp",
                             "src/util/spin_good.hpp",
                             "src/util/pragma_good.hpp",
                             "src/util/atomic_unordered_ok.hpp",
                             "src/tm/atomic_order_good.hpp",
                             "src/core/padded_good.hpp",
                             "src/util/metric_slots_good.hpp",
                             "src/ds/tx_alloc_good.cpp",
                             "src/util/trace.hpp",
                             "tests/util/using_ok.cpp")]
        proc, findings = self.lint_json(*clean)
        self.assertEqual(findings, [])
        self.assertEqual(proc.returncode, 0)

    def test_allow_pragma_suppresses_named_rule_only(self):
        _, findings = self.lint_json("src/ds/allow_pragma.cpp")
        self.assertEqual(
            [(f["line"], f["rule"]) for f in findings],
            [(17, "no-sleep-sync")])

    def test_gate_exempt_file_is_silent(self):
        # Identical token in the hook header itself: exempt.
        _, findings = self.lint_json("src/util/trace.hpp")
        self.assertEqual(findings, [])

    def test_human_output_format(self):
        proc = run_lint("--root", str(self.root), "src/util/spin_bad.hpp")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("src/util/spin_bad.hpp:5: [spin-park]", proc.stdout)
        self.assertIn("1 finding(s)", proc.stderr)


class Cli(unittest.TestCase):
    def test_list_rules_names_every_rule(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("tx-raw-alloc", "atomic-order", "no-sleep-sync",
                     "spin-park", "gated-hooks", "pragma-once",
                     "no-using-namespace", "padded-shared-array",
                     "padded-metric-slots"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_lint("--root", str(REPO), "no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean(self):
        # The merge gate: the repo's own sources must lint clean.
        proc = run_lint("--root", str(REPO))
        self.assertEqual(proc.returncode, 0,
                         f"hohtm-lint findings in the real tree:\n"
                         f"{proc.stdout}{proc.stderr}")


if __name__ == "__main__":
    unittest.main()
