#!/usr/bin/env python3
"""Tests for tools/hohtm_analyze.py against the fixture corpus.

Mirrors tests/tools/hohtm_lint_test.py: fixtures live in
tests/tools/fixtures_analyze/ with a `.fixture` suffix (so the real-tree
walks never see them) and encode their repo-relative path with `__`
separators.  The tests materialize the corpus into a temp root and
assert the exact finding set — every seeded violation at its line,
every clean fixture silent, pragmas suppressing precisely the rule they
name — plus the precise-reclamation merge gates: the real tree analyzes
clean, and deleting a single revoke call from a real src/ds or src/kv
unlink path makes the analyzer fail.
"""

import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]
ANALYZE = REPO / "tools" / "hohtm_analyze.py"
FIXTURES = HERE / "fixtures_analyze"


def run_analyze(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, str(ANALYZE), *argv],
        capture_output=True, text=True, cwd=cwd)


def materialize(root: pathlib.Path) -> None:
    for fixture in FIXTURES.glob("*.fixture"):
        rel = pathlib.Path(*fixture.name[: -len(".fixture")].split("__"))
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fixture, dest)


# The complete expected output on the fixture corpus: (path, line, rule).
# Clean fixtures appear in no row — any extra finding fails the exact-set
# comparison, so false positives are caught as hard as false negatives.
EXPECTED = {
    ("src/ds/alloc_escape_bad.hpp", 9, "alloc-escape"),
    ("src/ds/boundary_double_reserve_bad.hpp", 12, "boundary-pairing"),
    ("src/ds/boundary_resume_after_release_bad.hpp", 10,
     "boundary-pairing"),
    ("src/ds/unlink_branch_bad.hpp", 13, "unlink-without-revoke"),
    ("src/ds/unlink_no_revoke_bad.hpp", 10, "unlink-without-revoke"),
    # The first dealloc carries a pragma naming the *wrong* rule, so it
    # still fires; the second names unlink-without-revoke and is silent.
    ("src/ds/unlink_pragma_mixed.hpp", 10, "unlink-without-revoke"),
    ("src/kv/atomic_protocol_bad.hpp", 8, "atomic-protocol"),
    ("src/sched/gated_reach_bad.hpp", 8, "gated-hook-reachability"),
}

CLEAN_FIXTURES = (
    "src/ds/alloc_escape_good.hpp",
    "src/ds/alloc_escape_loop_good.hpp",
    "src/ds/alloc_escape_throw_good.hpp",
    "src/ds/unlink_revoke_good.hpp",
    "src/ds/boundary_park_good.hpp",
    "src/util/gated_reach_good.hpp",
)


class FixtureCorpus(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.TemporaryDirectory(prefix="hohtm_analyze_test_")
        cls.root = pathlib.Path(cls.tmp.name)
        materialize(cls.root)

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def analyze_json(self, *paths):
        proc = run_analyze("--json", "--root", str(self.root), *paths)
        self.assertIn(proc.returncode, (0, 1), proc.stderr)
        return proc, json.loads(proc.stdout)

    def test_exact_finding_set(self):
        proc, findings = self.analyze_json()
        got = {(f["path"], f["line"], f["rule"]) for f in findings}
        self.assertEqual(got, EXPECTED)
        self.assertEqual(proc.returncode, 1)

    def test_json_shape(self):
        _, findings = self.analyze_json()
        for f in findings:
            self.assertEqual(sorted(f), ["line", "message", "path", "rule"])
            self.assertIsInstance(f["line"], int)
            self.assertTrue(f["message"])

    def test_clean_fixtures_exit_zero(self):
        proc, findings = self.analyze_json(*CLEAN_FIXTURES)
        self.assertEqual(findings, [])
        self.assertEqual(proc.returncode, 0)

    def test_wrong_rule_pragma_does_not_suppress(self):
        _, findings = self.analyze_json("src/ds/unlink_pragma_mixed.hpp")
        self.assertEqual(
            [(f["line"], f["rule"]) for f in findings],
            [(10, "unlink-without-revoke")])

    def test_atomic_protocol_is_cross_file(self):
        # The relaxed load alone (without the release-side file in the
        # analysis set) is not flagged: the rule pairs sites across files.
        _, findings = self.analyze_json("src/kv/atomic_protocol_bad.hpp")
        self.assertEqual(findings, [])
        _, findings = self.analyze_json(
            "src/kv/atomic_protocol_bad.hpp",
            "src/tm/atomic_protocol_release.hpp")
        self.assertEqual(
            [(f["line"], f["rule"]) for f in findings],
            [(8, "atomic-protocol")])

    def test_human_output_format(self):
        proc = run_analyze("--root", str(self.root),
                           "src/ds/unlink_no_revoke_bad.hpp")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("src/ds/unlink_no_revoke_bad.hpp:10: "
                      "[unlink-without-revoke]", proc.stdout)
        self.assertIn("1 finding(s)", proc.stderr)


class RevokeRemovalGate(unittest.TestCase):
    """Deleting any single revoke from a real unlink path must fail the
    analyzer — the acceptance check that the discipline is actually
    load-bearing, spot-checked at one src/ds and one src/kv site."""

    SITES = ("src/ds/sll_hoh.hpp", "src/kv/store.hpp")

    def mutate_and_analyze(self, rel):
        src = (REPO / rel).read_text()
        lines = src.split("\n")
        victims = [i for i, ln in enumerate(lines) if ".revoke(" in ln]
        self.assertTrue(victims, f"no revoke call found in {rel}")
        # Remove only the first revoke: a single missing call must fail.
        del lines[victims[0]]
        with tempfile.TemporaryDirectory() as tmp:
            dest = pathlib.Path(tmp) / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text("\n".join(lines))
            proc = run_analyze("--json", "--root", tmp, rel)
            return proc, json.loads(proc.stdout)

    def test_removing_single_revoke_fails(self):
        for rel in self.SITES:
            with self.subTest(site=rel):
                proc, findings = self.mutate_and_analyze(rel)
                self.assertEqual(proc.returncode, 1)
                self.assertTrue(
                    any(f["rule"] == "unlink-without-revoke"
                        for f in findings),
                    f"expected unlink-without-revoke after deleting a "
                    f"revoke from {rel}, got: {findings}")

    def test_unmutated_sites_are_clean(self):
        for rel in self.SITES:
            with self.subTest(site=rel):
                proc = run_analyze("--json", "--root", str(REPO), rel)
                self.assertEqual(proc.returncode, 0, proc.stdout)


class Cli(unittest.TestCase):
    def test_list_rules_names_every_rule(self):
        proc = run_analyze("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("alloc-escape", "unlink-without-revoke",
                     "boundary-pairing", "atomic-protocol",
                     "gated-hook-reachability"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_analyze("--root", str(REPO), "no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean(self):
        # The merge gate: the repo's own sources must analyze clean.
        proc = run_analyze("--root", str(REPO))
        self.assertEqual(proc.returncode, 0,
                         f"hohtm-analyze findings in the real tree:\n"
                         f"{proc.stdout}{proc.stderr}")


if __name__ == "__main__":
    unittest.main()
