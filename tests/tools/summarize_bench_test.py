#!/usr/bin/env python3
"""ctest-registered checks for tools/summarize_bench.py and
tools/trace_report.py: every CSV layout the benches have ever emitted
must keep loading (legacy 6-column, telemetry 15-column, observability
20-column, kv 24-column, their fusion-era 17/22/26-column successors,
the scan-era 31-column kv layout, and the serving-era 25/32/36-column
layouts), malformed rows must be skipped rather than crash the report,
and timeline rows must route to trace_report.py only."""

import io
import os
import subprocess
import sys
import tempfile
import unittest
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

import summarize_bench  # noqa: E402
import trace_report  # noqa: E402

LEGACY_ROW = "fig2,intset,rr-fa,4,12.3456,1.20"
TELEMETRY_ROW = ("fig2,intset,rr-fa,8,10.5000,0.90,"
                 "1000,50,10,20,5,3,7,4,1")
OBSERVABILITY_ROW = (TELEMETRY_ROW.replace(",8,", ",16,") +
                     ",2048,8192,16384,30000,512")
KV_ROW = ("kv,ycsb-b,RR-V,16,10.5000,0.90,"
          "1000,50,10,20,5,3,7,4,1,"
          "2048,8192,16384,30000,512,"
          "3800,200,96,3")
# Fusion-era layouts (PR 6): fusion_fallbacks joins the cause block and
# fused_windows follows res_lost (17/22/26 columns).
FUSION_TELEMETRY_ROW = ("fig2,intset,rr-fa,8,10.5000,0.90,"
                        "1000,50,10,20,5,3,7,4,2,1,64")
FUSION_OBSERVABILITY_ROW = (FUSION_TELEMETRY_ROW.replace(",8,", ",16,") +
                            ",2048,8192,16384,30000,512")
FUSION_KV_ROW = ("kv,ycsb-c,RR-V+fuse,16,10.5000,0.90,"
                 "1000,50,10,20,5,3,7,4,2,1,64,"
                 "2048,8192,16384,30000,512,"
                 "3800,200,96,3")
# Attribution-era layouts (PR 7): res_lost_attr,aborts_attr appended after
# live_peak. These rows always travel with their `# columns:` header —
# that is what disambiguates the new 24-column base layout from the
# headerless pre-fusion kv 24-column layout above.
ATTR_HEADER = ("# columns: figure,panel,series,threads,mops,cv_pct,"
               "commits,aborts,validation,lock,user,serial_esc,"
               "revocations,hoh_retries,fusion_fallbacks,res_lost,"
               "fused_windows,commit_p50_ns,commit_p95_ns,commit_p99_ns,"
               "commit_max_ns,live_peak,res_lost_attr,aborts_attr")
ATTR_ROW = (FUSION_OBSERVABILITY_ROW + ",9,6")
ATTR_KV_HEADER = (ATTR_HEADER +
                  ",kv_hits,kv_misses,kv_migrations,kv_resizes")
ATTR_KV_ROW = ("kv,ycsb-c,RR-V+fuse,16,10.5000,0.90,"
               "1000,50,10,20,5,3,7,4,2,1,64,"
               "2048,8192,16384,30000,512,9,6,"
               "3800,200,96,3")
# Scan-era kv layout (PR 8): the attribution pair plus the four kv
# columns and the range-scan triple — 31 columns. Unlike the 24-column
# collision above, 31 is disjoint from every earlier width, so these
# rows decode even when the header got stripped.
SCAN_KV_HEADER = (ATTR_HEADER +
                  ",kv_hits,kv_misses,kv_migrations,kv_resizes"
                  ",kv_scans,kv_scan_windows,kv_scan_resumes")
SCAN_KV_ROW = ("kv,ycsb-e,RR-V,16,10.5000,0.90,"
               "1000,50,10,20,5,3,7,4,2,1,64,"
               "2048,8192,16384,30000,512,9,6,"
               "3800,200,96,3,480,1320,2")
# Serving-era layouts (PR 10): quiescence_waits joins the base tail
# after aborts_attr (25 columns), the kv layout grows to 32, and the
# loopback bench appends net_batches,net_fused_ops,net_bytes_in,
# net_bytes_out after the scan triple (36). All three widths are
# disjoint from every earlier layout, so the rows decode even when the
# header got stripped.
QWAITS_HEADER = ATTR_HEADER + ",quiescence_waits"
QWAITS_ROW = ATTR_ROW + ",210"
NET_KV_HEADER = (QWAITS_HEADER +
                 ",kv_hits,kv_misses,kv_migrations,kv_resizes"
                 ",kv_scans,kv_scan_windows,kv_scan_resumes")
NET_KV_ROW = ("kv,ycsb-a,RR-V,16,10.5000,0.90,"
              "1000,50,10,20,5,3,7,4,2,1,64,"
              "2048,8192,16384,30000,512,9,6,210,"
              "3800,200,96,3,0,0,0")
NET_HEADER = (NET_KV_HEADER +
              ",net_batches,net_fused_ops,net_bytes_in,net_bytes_out")
NET_ROW = NET_KV_ROW + ",250,3985,292988,187515"


def write(rows):
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".txt", delete=False)
    handle.write("\n".join(rows) + "\n")
    handle.close()
    return handle.name


class LoadTest(unittest.TestCase):
    def load(self, rows):
        path = write(rows)
        try:
            return summarize_bench.load(path)
        finally:
            os.unlink(path)

    def test_legacy_six_columns(self):
        rows = self.load(["# a comment", LEGACY_ROW])
        self.assertEqual(len(rows), 1)
        figure, panel, series, threads, mops, counters = rows[0]
        self.assertEqual((figure, panel, series, threads),
                         ("fig2", "intset", "rr-fa", 4))
        self.assertAlmostEqual(mops, 12.3456)
        self.assertIsNone(counters)

    def test_telemetry_fifteen_columns(self):
        rows = self.load([TELEMETRY_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["commits"], 1000)
        self.assertEqual(counters["aborts"], 50)
        self.assertEqual(counters["res_lost"], 1)
        self.assertNotIn("live_peak", counters)

    def test_observability_twenty_columns(self):
        rows = self.load([OBSERVABILITY_ROW])
        counters = rows[0][-1]
        self.assertEqual(counters["commit_p50_ns"], 2048)
        self.assertEqual(counters["commit_max_ns"], 30000)
        self.assertEqual(counters["live_peak"], 512)

    def test_kv_twenty_four_columns(self):
        rows = self.load([KV_ROW])
        counters = rows[0][-1]
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["kv_misses"], 200)
        self.assertEqual(counters["kv_migrations"], 96)
        self.assertEqual(counters["kv_resizes"], 3)
        self.assertEqual(counters["live_peak"], 512)  # earlier tail intact

    def test_fusion_seventeen_columns(self):
        rows = self.load([FUSION_TELEMETRY_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["fusion_fallbacks"], 2)
        self.assertEqual(counters["res_lost"], 1)
        self.assertEqual(counters["fused_windows"], 64)
        self.assertNotIn("live_peak", counters)

    def test_fusion_twenty_two_columns(self):
        rows = self.load([FUSION_OBSERVABILITY_ROW])
        counters = rows[0][-1]
        self.assertEqual(counters["fused_windows"], 64)
        self.assertEqual(counters["commit_p50_ns"], 2048)
        self.assertEqual(counters["live_peak"], 512)
        self.assertNotIn("kv_hits", counters)

    def test_fusion_twenty_six_columns(self):
        rows = self.load([FUSION_KV_ROW])
        counters = rows[0][-1]
        self.assertEqual(counters["fusion_fallbacks"], 2)
        self.assertEqual(counters["fused_windows"], 64)
        self.assertEqual(counters["live_peak"], 512)
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["kv_resizes"], 3)

    def test_malformed_kv_tail_keeps_observability(self):
        bad = KV_ROW.rsplit(",", 1)[0] + ",oops"
        rows = self.load([bad])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertNotIn("kv_hits", counters)
        self.assertEqual(counters["live_peak"], 512)

    def test_mixed_layouts_coexist(self):
        rows = self.load([LEGACY_ROW, TELEMETRY_ROW, OBSERVABILITY_ROW,
                          KV_ROW, FUSION_TELEMETRY_ROW,
                          FUSION_OBSERVABILITY_ROW, FUSION_KV_ROW])
        self.assertEqual(len(rows), 7)

    def test_malformed_rows_are_skipped(self):
        rows = self.load([
            "not,a,row",
            "fig2,intset,rr-fa,four,12.3,1.2",     # non-integer threads
            "fig2,intset,rr-fa,4,fast,1.2",        # non-float mops
            "",
            "===== banner =====",
            LEGACY_ROW,
        ])
        self.assertEqual(len(rows), 1)

    def test_malformed_telemetry_keeps_throughput(self):
        bad = TELEMETRY_ROW.rsplit(",", 1)[0] + ",oops"
        rows = self.load([bad])
        self.assertEqual(len(rows), 1)
        self.assertIsNone(rows[0][-1])  # counters dropped, row kept

    def test_header_driven_attribution_columns(self):
        rows = self.load([ATTR_HEADER, ATTR_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["res_lost_attr"], 9)
        self.assertEqual(counters["aborts_attr"], 6)
        self.assertEqual(counters["live_peak"], 512)
        self.assertEqual(counters["fused_windows"], 64)

    def test_header_driven_kv_attribution_columns(self):
        rows = self.load([ATTR_KV_HEADER, ATTR_KV_ROW])
        counters = rows[0][-1]
        self.assertEqual(counters["res_lost_attr"], 9)
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["kv_resizes"], 3)

    def test_headerless_24_keeps_legacy_kv_interpretation(self):
        # Without a header, a 24-column row is the pre-fusion kv layout;
        # the same width WITH the attribution header decodes by name.
        rows = self.load([KV_ROW])
        self.assertIn("kv_hits", rows[0][-1])
        rows = self.load([ATTR_HEADER, ATTR_ROW])
        self.assertNotIn("kv_hits", rows[0][-1])
        self.assertIn("res_lost_attr", rows[0][-1])

    def test_later_header_with_same_width_wins(self):
        other = ATTR_HEADER.replace("res_lost_attr", "renamed_attr")
        rows = self.load([other, ATTR_HEADER, ATTR_ROW])
        self.assertIn("res_lost_attr", rows[0][-1])

    def test_header_applies_only_to_matching_width(self):
        # A 24-name header must not disturb 26-column fusion-kv rows.
        rows = self.load([ATTR_HEADER, FUSION_KV_ROW])
        self.assertEqual(rows[0][-1]["kv_hits"], 3800)

    def test_header_driven_scan_columns(self):
        rows = self.load([SCAN_KV_HEADER, SCAN_KV_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["kv_scans"], 480)
        self.assertEqual(counters["kv_scan_windows"], 1320)
        self.assertEqual(counters["kv_scan_resumes"], 2)
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["res_lost_attr"], 9)
        self.assertEqual(counters["live_peak"], 512)

    def test_headerless_31_decodes_scan_columns(self):
        # The width-31 fallback: header stripped (e.g. grep'd capture),
        # every block still lands by position.
        rows = self.load([SCAN_KV_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["kv_scans"], 480)
        self.assertEqual(counters["kv_scan_windows"], 1320)
        self.assertEqual(counters["kv_scan_resumes"], 2)
        self.assertEqual(counters["kv_resizes"], 3)
        self.assertEqual(counters["aborts_attr"], 6)
        self.assertEqual(counters["fused_windows"], 64)

    def test_header_driven_serving_columns(self):
        rows = self.load([NET_HEADER, NET_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["quiescence_waits"], 210)
        self.assertEqual(counters["net_batches"], 250)
        self.assertEqual(counters["net_fused_ops"], 3985)
        self.assertEqual(counters["net_bytes_in"], 292988)
        self.assertEqual(counters["net_bytes_out"], 187515)
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["live_peak"], 512)

    def test_headerless_25_decodes_quiescence_column(self):
        rows = self.load([QWAITS_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["quiescence_waits"], 210)
        self.assertEqual(counters["res_lost_attr"], 9)
        self.assertEqual(counters["fused_windows"], 64)
        self.assertNotIn("kv_hits", counters)

    def test_headerless_32_decodes_serving_kv_columns(self):
        rows = self.load([NET_KV_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["quiescence_waits"], 210)
        self.assertEqual(counters["kv_hits"], 3800)
        self.assertEqual(counters["kv_scan_resumes"], 0)
        self.assertNotIn("net_batches", counters)

    def test_headerless_36_decodes_net_columns(self):
        rows = self.load([NET_ROW])
        self.assertEqual(len(rows), 1)
        counters = rows[0][-1]
        self.assertEqual(counters["net_batches"], 250)
        self.assertEqual(counters["net_fused_ops"], 3985)
        self.assertEqual(counters["quiescence_waits"], 210)
        self.assertEqual(counters["kv_migrations"], 96)

    def test_timeline_rows_are_skipped(self):
        rows = self.load([
            "timeline,fig5,alloc,rr-fa,4,10.00,123",
            LEGACY_ROW,
        ])
        self.assertEqual(len(rows), 1)
        self.assertEqual(rows[0][0], "fig2")


class CliTest(unittest.TestCase):
    def run_tool(self, tool, rows, *argv):
        path = write(rows)
        try:
            return subprocess.run(
                [sys.executable, str(TOOLS / tool), path, *argv],
                capture_output=True, text=True, timeout=60)
        finally:
            os.unlink(path)

    def test_summarize_renders_table(self):
        proc = self.run_tool("summarize_bench.py",
                             [LEGACY_ROW, OBSERVABILITY_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("fig2 / intset", proc.stdout)
        self.assertIn("rr-fa", proc.stdout)
        self.assertIn("live_peak", proc.stdout)  # observability column shows

    def test_summarize_renders_kv_table(self):
        proc = self.run_tool("summarize_bench.py", [KV_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("kv workload", proc.stdout)
        self.assertIn("95.00", proc.stdout)  # 3800 / 4000 keyed ops
        self.assertIn("96", proc.stdout)     # migrations column

    def test_summarize_renders_attribution_columns(self):
        proc = self.run_tool("summarize_bench.py",
                             [ATTR_HEADER, ATTR_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("lost_attr", proc.stdout)
        self.assertIn("aborts_attr", proc.stdout)
        self.assertIn("9.00", proc.stdout)  # 9 attributed per 1k commits

    def test_summarize_renders_fusion_columns(self):
        proc = self.run_tool("summarize_bench.py",
                             [FUSION_OBSERVABILITY_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("fusion_fb", proc.stdout)
        self.assertIn("fused_win", proc.stdout)
        self.assertIn("64.00", proc.stdout)  # 64 fused per 1k commits

    def test_pre_fusion_rows_render_no_fusion_columns(self):
        proc = self.run_tool("summarize_bench.py", [OBSERVABILITY_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("fused_win", proc.stdout)

    def test_summarize_renders_scan_columns(self):
        proc = self.run_tool("summarize_bench.py",
                             [SCAN_KV_HEADER, SCAN_KV_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("kv workload", proc.stdout)
        self.assertIn("win/scan", proc.stdout)
        self.assertIn("480", proc.stdout)   # scans
        self.assertIn("1320", proc.stdout)  # scan windows
        self.assertIn("2.75", proc.stdout)  # 1320 / 480 windows per scan

    def test_scanless_kv_rows_render_no_scan_columns(self):
        proc = self.run_tool("summarize_bench.py", [KV_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("kv workload", proc.stdout)
        self.assertNotIn("win/scan", proc.stdout)

    def test_non_kv_rows_render_no_kv_table(self):
        proc = self.run_tool("summarize_bench.py", [OBSERVABILITY_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("kv workload", proc.stdout)

    def test_summarize_renders_net_table(self):
        proc = self.run_tool("summarize_bench.py", [NET_HEADER, NET_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("serving tier", proc.stdout)
        self.assertIn("250", proc.stdout)    # batches
        self.assertIn("16.00", proc.stdout)  # 4000 keyed / 250 batches
        self.assertIn("99.62", proc.stdout)  # 3985 fused of 4000 keyed

    def test_summarize_renders_quiescence_column(self):
        proc = self.run_tool("summarize_bench.py",
                             [QWAITS_HEADER, QWAITS_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("qwaits", proc.stdout)
        self.assertIn("210.00", proc.stdout)  # 210 waits per 1k commits

    def test_netless_rows_render_no_serving_table(self):
        proc = self.run_tool("summarize_bench.py",
                             [SCAN_KV_HEADER, SCAN_KV_ROW])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("serving tier", proc.stdout)
        self.assertNotIn("qwaits", proc.stdout)

    def test_summarize_empty_input_fails(self):
        proc = self.run_tool("summarize_bench.py", ["# nothing here"])
        self.assertEqual(proc.returncode, 1)

    def test_trace_report_renders_latency_and_timeline(self):
        proc = self.run_tool("trace_report.py", [
            OBSERVABILITY_ROW,
            "timeline,fig2,intset,rr-fa,16,0.00,10",
            "timeline,fig2,intset,rr-fa,16,5.00,12",
            "timeline,fig2,intset,hazard,16,0.00,10",
            "timeline,fig2,intset,hazard,16,5.00,400",
        ])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("commit latency", proc.stdout)
        self.assertIn("footprint timeline", proc.stdout)
        self.assertIn("peak=400", proc.stdout)
        self.assertIn("peak=12", proc.stdout)


class TimelineParseTest(unittest.TestCase):
    def test_trace_report_load(self):
        path = write([
            OBSERVABILITY_ROW,
            "timeline,fig2,intset,rr-fa,16,0.00,10",
            "timeline,fig2,intset,rr-fa,16,5.00,12",
            "timeline,broken,row,only,six",
        ])
        try:
            latency_rows, timelines = trace_report.load(path)
        finally:
            os.unlink(path)
        self.assertEqual(len(latency_rows), 1)
        self.assertEqual(latency_rows[0][4]["commit_p99_ns"], 16384)
        samples = timelines[("fig2", "intset")][("rr-fa", 16)]
        self.assertEqual(samples, [(0.0, 10), (5.0, 12)])

    def test_sparkline_is_deterministic(self):
        samples = [(0.0, 0), (1.0, 50), (2.0, 100)]
        line = trace_report.sparkline(samples, 10, 0, 100)
        self.assertEqual(len(line), 10)
        self.assertEqual(line[0], trace_report.SPARK[0])
        self.assertEqual(line[-1], trace_report.SPARK[-1])

    def test_percentile_table_suppressed_when_zero(self):
        zero_row = TELEMETRY_ROW + ",0,0,0,0,0"
        buffer = io.StringIO()
        path = write([zero_row])
        try:
            latency_rows, _ = trace_report.load(path)
            with redirect_stdout(buffer):
                trace_report.emit_latency_tables(latency_rows)
        finally:
            os.unlink(path)
        self.assertIn("all zero", buffer.getvalue())


if __name__ == "__main__":
    unittest.main()
