#!/usr/bin/env python3
"""ctest-registered checks for tools/trace_report.py: the 20-column
observability CSV (its fusion-era 22/26-column successors, and the
scan-era 31-column kv layout) and the `timeline,...` rows must keep
parsing, the footprint sparklines must stay deterministic, the Chrome
trace-event summary must render (including the kv-activity — with its
range-scan digest — and window-fusion sections), and the CLI filters
(--figure, --width, --trace) must behave. Complements
tests/tools/summarize_bench_test.py, which covers the loaders shared
with summarize_bench.py."""

import io
import json
import os
import subprocess
import sys
import tempfile
import unittest
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

import trace_report  # noqa: E402

# The 20-column observability schema: 6 throughput columns, 9 telemetry
# counters, 4 commit-latency percentiles (ns), live_peak.
def obs_row(figure="fig2", panel="intset", series="rr-fa", threads=16,
            p50=2048, p95=8192, p99=16384, pmax=30000, live_peak=512):
    return (f"{figure},{panel},{series},{threads},10.5000,0.90,"
            f"1000,50,10,20,5,3,7,4,1,"
            f"{p50},{p95},{p99},{pmax},{live_peak}")


# Fusion-era 22-column row (PR 6): 11 telemetry counters
# (fusion_fallbacks in the cause block, fused_windows after res_lost)
# ahead of the same latency block.
def fusion_obs_row(figure="fig2", panel="intset", series="rr-fa",
                   threads=16, p50=2048, p95=8192, p99=16384, pmax=30000,
                   live_peak=512):
    return (f"{figure},{panel},{series},{threads},10.5000,0.90,"
            f"1000,50,10,20,5,3,7,4,2,1,64,"
            f"{p50},{p95},{p99},{pmax},{live_peak}")


def timeline_row(figure, panel, series, threads, t, live):
    return f"timeline,{figure},{panel},{series},{threads},{t},{live}"


def write(rows):
    handle = tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False)
    handle.write("\n".join(rows) + "\n")
    handle.close()
    return handle.name


class LoadTest(unittest.TestCase):
    def load(self, rows):
        path = write(rows)
        try:
            return trace_report.load(path)
        finally:
            os.unlink(path)

    def test_twenty_column_row_parses(self):
        latency_rows, timelines = self.load(["# comment", obs_row()])
        self.assertEqual(len(latency_rows), 1)
        self.assertEqual(len(timelines), 0)
        figure, panel, series, threads, values = latency_rows[0]
        self.assertEqual((figure, panel, series, threads),
                         ("fig2", "intset", "rr-fa", 16))
        self.assertEqual(values["commit_p50_ns"], 2048)
        self.assertEqual(values["commit_p95_ns"], 8192)
        self.assertEqual(values["commit_p99_ns"], 16384)
        self.assertEqual(values["commit_max_ns"], 30000)
        self.assertEqual(values["live_peak"], 512)

    def test_fusion_twenty_two_column_row_parses(self):
        latency_rows, _ = self.load([fusion_obs_row()])
        self.assertEqual(len(latency_rows), 1)
        values = latency_rows[0][4]
        self.assertEqual(values["commit_p50_ns"], 2048)
        self.assertEqual(values["commit_max_ns"], 30000)
        self.assertEqual(values["live_peak"], 512)

    def test_fusion_twenty_six_column_row_parses(self):
        kv_row = fusion_obs_row() + ",3800,200,96,3"
        latency_rows, _ = self.load([kv_row])
        self.assertEqual(len(latency_rows), 1)
        values = latency_rows[0][4]
        self.assertEqual(values["commit_p99_ns"], 16384)
        self.assertEqual(values["live_peak"], 512)

    def test_scan_era_thirty_one_column_row_parses(self):
        # PR 8 kv rows: attribution pair + four kv columns + the scan
        # triple after live_peak — the latency block does not move, and
        # the width-31 headerless fallback finds it.
        kv_row = fusion_obs_row() + ",9,6,3800,200,96,3,480,1320,2"
        latency_rows, _ = self.load([kv_row])
        self.assertEqual(len(latency_rows), 1)
        values = latency_rows[0][4]
        self.assertEqual(values["commit_p50_ns"], 2048)
        self.assertEqual(values["commit_max_ns"], 30000)
        self.assertEqual(values["live_peak"], 512)

    def test_short_rows_are_skipped(self):
        # Legacy 6-column and telemetry 15-column rows have no latency
        # data; trace_report must skip them without crashing.
        latency_rows, timelines = self.load([
            "fig2,intset,rr-fa,4,12.3456,1.20",
            "fig2,intset,rr-fa,8,10.5,0.9,1000,50,10,20,5,3,7,4,1",
            obs_row(),
        ])
        self.assertEqual(len(latency_rows), 1)
        self.assertEqual(len(timelines), 0)

    def test_malformed_latency_row_is_skipped(self):
        bad = obs_row().rsplit(",", 1)[0] + ",oops"
        latency_rows, _ = self.load([bad, obs_row()])
        self.assertEqual(len(latency_rows), 1)

    def test_timeline_rows_group_by_panel_and_series(self):
        _, timelines = self.load([
            timeline_row("fig5", "alloc", "rr-fa", 4, "0.00", 10),
            timeline_row("fig5", "alloc", "rr-fa", 4, "5.00", 12),
            timeline_row("fig5", "alloc", "hazard", 4, "0.00", 10),
            timeline_row("fig5", "mem", "rr-fa", 8, "0.00", 1),
        ])
        self.assertEqual(set(timelines), {("fig5", "alloc"), ("fig5", "mem")})
        self.assertEqual(timelines[("fig5", "alloc")][("rr-fa", 4)],
                         [(0.0, 10), (5.0, 12)])
        self.assertEqual(timelines[("fig5", "alloc")][("hazard", 4)],
                         [(0.0, 10)])
        self.assertEqual(timelines[("fig5", "mem")][("rr-fa", 8)],
                         [(0.0, 1)])

    def test_malformed_timeline_rows_are_skipped(self):
        _, timelines = self.load([
            "timeline,fig5,alloc,rr-fa,four,0.00,10",   # bad threads
            "timeline,fig5,alloc,rr-fa,4,zero,10",      # bad time
            "timeline,fig5,alloc,rr-fa,4,0.00,ten",     # bad live count
            "timeline,short,row",                        # too few columns
            timeline_row("fig5", "alloc", "rr-fa", 4, "1.00", 7),
        ])
        self.assertEqual(timelines[("fig5", "alloc")][("rr-fa", 4)],
                         [(1.0, 7)])


class SparklineTest(unittest.TestCase):
    def test_resamples_to_requested_width(self):
        samples = [(float(t), t) for t in range(100)]
        line = trace_report.sparkline(samples, 10, 0, 99)
        self.assertEqual(len(line), 10)

    def test_scale_endpoints(self):
        samples = [(0.0, 0), (1.0, 50), (2.0, 100)]
        line = trace_report.sparkline(samples, 6, 0, 100)
        self.assertEqual(line[0], trace_report.SPARK[0])
        self.assertEqual(line[-1], trace_report.SPARK[-1])

    def test_flat_series_renders_flat(self):
        samples = [(float(t), 42) for t in range(8)]
        line = trace_report.sparkline(samples, 8, 42, 42)
        self.assertEqual(len(set(line)), 1)

    def test_empty_and_single_sample(self):
        self.assertEqual(trace_report.sparkline([], 10, 0, 1), "")
        line = trace_report.sparkline([(0.0, 5)], 10, 0, 10)
        self.assertEqual(len(line), 10)


class RenderTest(unittest.TestCase):
    def render(self, fn, *args, **kwargs):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            fn(*args, **kwargs)
        return buffer.getvalue()

    def test_latency_table_converts_ns_to_us(self):
        path = write([obs_row(p50=2000, p95=8000, p99=16000, pmax=30000)])
        try:
            latency_rows, _ = trace_report.load(path)
        finally:
            os.unlink(path)
        out = self.render(trace_report.emit_latency_tables, latency_rows)
        self.assertIn("commit latency (us)", out)
        self.assertIn("2.00", out)    # 2000 ns == 2.00 us
        self.assertIn("30.00", out)   # max column
        self.assertIn("512", out)     # live_peak passthrough

    def test_all_zero_panel_is_flagged_not_rendered(self):
        path = write([obs_row(p50=0, p95=0, p99=0, pmax=0, live_peak=0)])
        try:
            latency_rows, _ = trace_report.load(path)
        finally:
            os.unlink(path)
        out = self.render(trace_report.emit_latency_tables, latency_rows)
        self.assertIn("all zero", out)
        self.assertNotIn("p50", out)

    def test_figure_filter(self):
        path = write([obs_row(figure="fig2"), obs_row(figure="fig7")])
        try:
            latency_rows, _ = trace_report.load(path)
        finally:
            os.unlink(path)
        out = self.render(trace_report.emit_latency_tables, latency_rows,
                          "fig7")
        self.assertIn("fig7", out)
        self.assertNotIn("fig2", out)

    def test_footprint_chart_reports_peak_and_final(self):
        path = write([
            timeline_row("fig5", "alloc", "hazard", 4, "0.00", 10),
            timeline_row("fig5", "alloc", "hazard", 4, "5.00", 400),
            timeline_row("fig5", "alloc", "hazard", 4, "10.00", 30),
            timeline_row("fig5", "alloc", "rr-fa", 4, "0.00", 10),
            timeline_row("fig5", "alloc", "rr-fa", 4, "10.00", 12),
        ])
        try:
            _, timelines = trace_report.load(path)
        finally:
            os.unlink(path)
        out = self.render(trace_report.emit_footprint_charts, timelines,
                          None, 40)
        self.assertIn("footprint timeline", out)
        self.assertIn("peak=400 final=30", out)
        self.assertIn("peak=12 final=12", out)
        self.assertIn("scale 10..400", out)

    def test_trace_summary_counts_events_and_threads(self):
        events = [
            {"name": "commit", "ph": "X", "ts": 0, "dur": 5, "tid": 1},
            {"name": "commit", "ph": "X", "ts": 100, "dur": 5, "tid": 2},
            {"name": "abort", "ph": "X", "ts": 2000, "dur": 1, "tid": 1},
        ]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("3 events", out)
        self.assertIn("2 threads", out)
        self.assertIn("2.000 ms", out)  # ts span 0..2000 us
        self.assertIn("commit", out)
        self.assertIn("abort", out)

    def test_trace_summary_kv_activity_section(self):
        def kv(name, v, ts=0):
            return {"name": name, "ph": "X", "ts": ts, "dur": 1, "tid": 1,
                    "args": {"v": v}}
        events = [
            kv("kv_op_start", 0), kv("kv_op_start", 1),
            kv("kv_op_start", 2),
            kv("kv_op_done", 0),   # get
            kv("kv_op_done", 1),   # put
            kv("kv_migrate", 0), kv("kv_migrate", 0),
            kv("kv_table_swap", 1),
            kv("kv_table_swap", 2, ts=100),  # second swap, not yet freed
            kv("kv_table_free", 16),
        ]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("## kv activity", out)
        self.assertIn("2 completed of 3 started", out)
        self.assertIn("get=1 put=1", out)
        self.assertIn("2 table swaps, 2 bucket migrations, "
                      "1 old tables freed (16 buckets)", out)
        self.assertIn("1 swap(s) still mid-migration", out)

    def test_trace_summary_scan_digest(self):
        def kv(name, v, ts=0):
            return {"name": name, "ph": "X", "ts": ts, "dur": 1, "tid": 1,
                    "args": {"v": v}}
        events = [
            kv("kv_op_start", 3),            # scan
            kv("kv_op_done", 3, ts=50),
            kv("kv_scan_window", 4),         # 4 entries this window
            kv("kv_scan_window", 2, ts=10),
            kv("kv_scan_resume", 0, ts=20),
        ]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("## kv activity", out)
        self.assertIn("scan=1", out)
        self.assertIn("2 window transactions delivered 6 entries", out)
        self.assertIn("1 cursor resumes", out)

    def test_trace_summary_no_scan_line_without_scan_events(self):
        def kv(name, v):
            return {"name": name, "ph": "X", "ts": 0, "dur": 1, "tid": 1,
                    "args": {"v": v}}
        events = [kv("kv_op_start", 0), kv("kv_op_done", 0)]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("## kv activity", out)
        self.assertNotIn("cursor resumes", out)

    def test_trace_summary_silent_without_kv_events(self):
        events = [{"name": "commit", "ph": "X", "ts": 0, "dur": 1,
                   "tid": 1}]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertNotIn("kv activity", out)
        self.assertNotIn("window fusion", out)

    def test_trace_summary_fusion_section(self):
        def ev(name, v, ts=0):
            return {"name": name, "ph": "X", "ts": ts, "dur": 1, "tid": 1,
                    "args": {"v": v}}
        events = [
            ev("fused_window", 3), ev("fused_window", 2, ts=50),
            ev("fusion_fallback", 0, ts=100),
        ]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("## window fusion", out)
        self.assertIn("2 fused commits elided 5 window boundaries", out)
        self.assertIn("1 fallbacks", out)

    def test_trace_summary_empty_file(self):
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        handle.write("[]")
        handle.close()
        try:
            out = self.render(trace_report.emit_trace_summary, handle.name)
        finally:
            os.unlink(handle.name)
        self.assertIn("empty", out)


class CliTest(unittest.TestCase):
    def run_tool(self, rows, *argv):
        path = write(rows)
        try:
            return subprocess.run(
                [sys.executable, str(TOOLS / "trace_report.py"), path,
                 *argv],
                capture_output=True, text=True, timeout=60)
        finally:
            os.unlink(path)

    def test_renders_both_sections(self):
        proc = self.run_tool([
            obs_row(),
            timeline_row("fig2", "intset", "rr-fa", 16, "0.00", 10),
            timeline_row("fig2", "intset", "rr-fa", 16, "5.00", 12),
        ])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("commit latency", proc.stdout)
        self.assertIn("footprint timeline", proc.stdout)

    def test_empty_input_fails(self):
        proc = self.run_tool(["# nothing to see"])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no observability rows", proc.stderr)

    def test_width_flag_controls_chart_width(self):
        rows = [timeline_row("fig5", "alloc", "rr-fa", 4, f"{t}.0", t)
                for t in range(20)]
        proc = self.run_tool(rows, "--width", "12")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        chart_lines = [l for l in proc.stdout.splitlines()
                       if "peak=" in l]
        self.assertEqual(len(chart_lines), 1)
        spark_chars = [c for c in chart_lines[0] if c in trace_report.SPARK]
        self.assertEqual(len(spark_chars), 12)

    def test_trace_flag_appends_summary(self):
        events = [{"name": "quiesce", "ph": "X", "ts": 0, "dur": 1,
                   "tid": 7}]
        handle = tempfile.NamedTemporaryFile("w", suffix=".json",
                                             delete=False)
        json.dump(events, handle)
        handle.close()
        try:
            proc = self.run_tool([obs_row()], "--trace", handle.name)
        finally:
            os.unlink(handle.name)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("1 events", proc.stdout)
        self.assertIn("quiesce", proc.stdout)


if __name__ == "__main__":
    unittest.main()
