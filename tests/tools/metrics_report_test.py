#!/usr/bin/env python3
"""ctest-registered checks for tools/metrics_report.py and
tools/bench_compare.py: the metrics-plane snapshot must render, the
attribution-sum invariants must be enforced exactly, and the perf-smoke
gate must seed its baseline on first run, hard-fail structural
regressions, and gate throughput by HOHTM_BENCH_TOLERANCE. Pure stdlib;
crafted snapshots, no bench binaries involved."""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402
import metrics_report  # noqa: E402


def snapshot(res_lost=4, attributed=3, unknown=1):
    """A coherent metrics snapshot: sums exact by construction."""
    by_aborter = [0] * 9
    by_aborter[2] = attributed
    by_aborter[-1] = unknown  # last bucket is the unknown bucket
    return {
        "counters": {"kv.ops": 1000, "reclaim.deferred": 12},
        "gauges": {"reclaim.backlog.rr": 3},
        "sections": {
            "tm": {
                "commits": 900,
                "aborts": 40,
                "res_lost": res_lost,
                "attribution": {
                    "losses_attributed": attributed,
                    "losses_unknown": unknown,
                    "aborts_attributed": 30,
                    "aborts_unknown": 10,
                    "fusion_fb_attributed": 2,
                    "fusion_fb_unknown": 0,
                    "loss_by_aborter": by_aborter,
                    "loss_by_site": {"list_remove": res_lost},
                    "aborted_by": [15, 15, 0],
                },
            },
            "kv_heatmap": [
                {"shard": 0, "cell": 3401, "weight": 7572},
                {"shard": 0, "cell": 12, "weight": 31},
            ],
            "watchdog": {
                "active_threads": 0,
                "stalled_threads": 0,
                "threshold_ns": 100000000,
                "max_stall_ns": 0,
                "stall_events": 1,
            },
        },
    }


def write_json(doc, suffix=".json"):
    handle = tempfile.NamedTemporaryFile("w", suffix=suffix, delete=False)
    json.dump(doc, handle)
    handle.close()
    return handle.name


SMOKE_CSV = """\
# kv smoke capture
fig7,kv,rr-fa,4,12.5000,0.90,1000,50
fig7,kv,hazard,4,8.0000,0.70,1000,50
timeline,fig7,kv,rr-fa,4,0.00,10
not,enough,cols
fig7,kv,rr-fa,oops,1.0,0.5
"""


def write_csv(text=SMOKE_CSV):
    handle = tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False)
    handle.write(text)
    handle.close()
    return handle.name


class LoadTest(unittest.TestCase):
    def test_load_plain_snapshot(self):
        path = write_json(snapshot())
        try:
            doc = metrics_report.load(path)
        finally:
            os.unlink(path)
        self.assertIn("counters", doc)
        self.assertEqual(doc["counters"]["kv.ops"], 1000)

    def test_load_unwraps_service_stats_snapshot(self):
        wrapped = {"service": {"uptime_ms": 5}, "metrics": snapshot()}
        path = write_json(wrapped)
        try:
            doc = metrics_report.load(path)
        finally:
            os.unlink(path)
        self.assertIn("counters", doc)
        self.assertNotIn("service", doc)


class CheckTest(unittest.TestCase):
    def test_coherent_snapshot_passes(self):
        self.assertEqual(metrics_report.check(snapshot()), [])

    def test_missing_tm_section_is_reported(self):
        problems = metrics_report.check({"counters": {}})
        self.assertEqual(len(problems), 1)
        self.assertIn("no tm section", problems[0])

    def test_attributed_plus_unknown_must_equal_losses(self):
        doc = snapshot()
        doc["sections"]["tm"]["attribution"]["losses_unknown"] = 99
        problems = metrics_report.check(doc)
        self.assertTrue(any("losses_unknown(99)" in p for p in problems))

    def test_aborter_buckets_must_sum_to_losses(self):
        doc = snapshot()
        doc["sections"]["tm"]["attribution"]["loss_by_aborter"][2] += 1
        problems = metrics_report.check(doc)
        self.assertTrue(any("loss_by_aborter" in p for p in problems))

    def test_site_buckets_must_sum_to_losses(self):
        doc = snapshot()
        doc["sections"]["tm"]["attribution"]["loss_by_site"] = {}
        problems = metrics_report.check(doc)
        self.assertTrue(any("loss_by_site" in p for p in problems))

    def test_aborted_by_may_undercount_but_not_overcount(self):
        doc = snapshot()
        doc["sections"]["tm"]["attribution"]["aborted_by"] = [1, 1]
        self.assertEqual(metrics_report.check(doc), [])  # <= aborts: fine
        doc["sections"]["tm"]["attribution"]["aborted_by"] = [41]
        problems = metrics_report.check(doc)
        self.assertTrue(any("aborted_by" in p for p in problems))


class RenderCliTest(unittest.TestCase):
    def run_tool(self, doc, *argv):
        path = write_json(doc)
        try:
            return subprocess.run(
                [sys.executable, str(TOOLS / "metrics_report.py"), path,
                 *argv],
                capture_output=True, text=True, timeout=60)
        finally:
            os.unlink(path)

    def test_renders_every_section(self):
        proc = self.run_tool(snapshot())
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for fragment in ("## counters", "kv.ops", "## gauges",
                         "## causal abort attribution",
                         "losses: 4 total = 3 attributed + 1 unknown",
                         "list_remove",
                         "## kv contention heatmap", "cell  3401",
                         "## reclamation-stall watchdog",
                         "1 lifetime events"):
            self.assertIn(fragment, proc.stdout)

    def test_check_passes_on_coherent_snapshot(self):
        proc = self.run_tool(snapshot(), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("attribution invariants ok", proc.stdout)

    def test_check_fails_on_broken_invariant(self):
        doc = snapshot()
        doc["sections"]["tm"]["attribution"]["losses_attributed"] = 0
        proc = self.run_tool(doc, "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("CHECK FAILED", proc.stderr)

    def test_net_counters_render_serving_tier_section(self):
        doc = snapshot()
        doc["counters"].update({"net.batches": 250, "net.fused_ops": 3985,
                                "net.bytes_in": 292988,
                                "net.bytes_out": 187515})
        proc = self.run_tool(doc)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("## serving tier", proc.stdout)
        self.assertIn("batches: 250, fused ops: 3985 (15.94 per batch)",
                      proc.stdout)
        self.assertIn("wire: 292988 bytes in, 187515 bytes out",
                      proc.stdout)

    def test_netless_snapshot_renders_no_serving_tier(self):
        proc = self.run_tool(snapshot())
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("serving tier", proc.stdout)

    def test_stalled_watchdog_renders_loudly(self):
        doc = snapshot()
        doc["sections"]["watchdog"]["stalled_threads"] = 2
        doc["sections"]["watchdog"]["active_threads"] = 3
        proc = self.run_tool(doc)
        self.assertIn("STALLED: 2 stalled of 3 active", proc.stdout)


class BenchRowsTest(unittest.TestCase):
    def test_load_rows_skips_comments_timelines_and_malformed(self):
        path = write_csv()
        try:
            rows = bench_compare.load_rows(path)
        finally:
            os.unlink(path)
        self.assertEqual([r["series"] for r in rows], ["rr-fa", "hazard"])
        self.assertEqual(rows[0]["threads"], 4)
        self.assertEqual(rows[0]["mops"], 12.5)


class BenchCompareTest(unittest.TestCase):
    """Drive emit/check through the CLI so argument wiring is covered."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="bench_compare_test_")
        self.dir = Path(self.tmp.name)
        self.baseline = self.dir / "BENCH_9.baseline.json"
        self.artifact = self.dir / "BENCH_9.json"

    def tearDown(self):
        self.tmp.cleanup()

    def run_tool(self, *argv, env_extra=None):
        env = dict(os.environ)
        env.pop("HOHTM_BENCH_TOLERANCE", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, str(TOOLS / "bench_compare.py"), *argv],
            capture_output=True, text=True, timeout=60, env=env)

    def emit(self, csv_text=SMOKE_CSV, metrics=None):
        csv_path = write_csv(csv_text)
        metrics_path = write_json(metrics or snapshot())
        try:
            proc = self.run_tool("emit", csv_path, metrics_path,
                                 "-o", str(self.artifact))
        finally:
            os.unlink(csv_path)
            os.unlink(metrics_path)
        return proc

    def check(self, env_extra=None):
        return self.run_tool("check", str(self.artifact),
                             "--baseline", str(self.baseline),
                             env_extra=env_extra)

    def test_emit_builds_the_artifact(self):
        proc = self.emit()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        artifact = json.loads(self.artifact.read_text())
        self.assertEqual(artifact["schema"], bench_compare.SCHEMA)
        self.assertEqual(len(artifact["rows"]), 2)
        self.assertIn("sections", artifact["metrics"])

    def test_emit_fails_on_empty_csv(self):
        proc = self.emit(csv_text="# nothing\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no bench rows", proc.stderr)

    def test_first_check_seeds_the_baseline(self):
        self.emit()
        proc = self.check()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("seeded baseline", proc.stdout)
        self.assertIn("commit it", proc.stdout)
        self.assertEqual(json.loads(self.baseline.read_text()),
                         json.loads(self.artifact.read_text()))

    def test_second_check_passes_against_the_seed(self):
        self.emit()
        self.check()
        proc = self.check()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bench compare ok: 2 baseline rows held", proc.stdout)

    def test_broken_metrics_never_seed_a_baseline(self):
        bad = snapshot()
        bad["sections"]["tm"]["attribution"]["losses_attributed"] = 0
        self.emit(metrics=bad)
        proc = self.check()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("FAIL (artifact)", proc.stderr)
        self.assertFalse(self.baseline.exists())

    def test_missing_row_is_a_structural_failure(self):
        self.emit()
        self.check()  # seed with both series
        one_series = ("fig7,kv,rr-fa,4,12.5000,0.90,1000,50\n")
        self.emit(csv_text=one_series)
        proc = self.check()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("row missing from artifact", proc.stderr)
        self.assertIn("hazard", proc.stderr)

    def test_empty_heatmap_is_a_structural_failure(self):
        self.emit()
        self.check()
        cold = snapshot()
        cold["sections"]["kv_heatmap"] = []
        self.emit(metrics=cold)
        proc = self.check()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("contention heatmap is empty", proc.stderr)

    def test_missing_watchdog_is_a_structural_failure(self):
        self.emit()
        self.check()
        mute = snapshot()
        del mute["sections"]["watchdog"]
        self.emit(metrics=mute)
        proc = self.check()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("watchdog section missing", proc.stderr)

    def test_throughput_floor_fails_a_slow_row(self):
        self.emit()
        self.check()
        slow = SMOKE_CSV.replace("12.5000", "1.0000")  # 8% of baseline
        self.emit(csv_text=slow)
        proc = self.check()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("Mops < floor", proc.stderr)
        self.assertIn("rr-fa", proc.stderr)

    def test_tolerance_zero_disables_the_throughput_gate(self):
        self.emit()
        self.check()
        slow = SMOKE_CSV.replace("12.5000", "1.0000")
        self.emit(csv_text=slow)
        proc = self.check(env_extra={"HOHTM_BENCH_TOLERANCE": "0"})
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("tolerance 0%", proc.stdout)

    def test_wide_tolerance_passes_a_mild_dip(self):
        self.emit()
        self.check()
        mild = SMOKE_CSV.replace("12.5000", "9.0000")  # 72% of baseline
        self.emit(csv_text=mild)
        proc = self.check()
        self.assertEqual(proc.returncode, 0, proc.stderr)


class StructuralUnitTest(unittest.TestCase):
    """Direct calls into the module for the pieces the CLI shares."""

    def artifact(self):
        return {"schema": 1,
                "rows": [{"figure": "fig7", "panel": "kv",
                          "series": "rr-fa", "threads": 4, "mops": 10.0}],
                "metrics": snapshot()}

    def test_structural_ok_against_itself(self):
        art = self.artifact()
        self.assertEqual(
            bench_compare.structural_problems(art, copy.deepcopy(art)), [])

    def test_throughput_floor_math(self):
        art = self.artifact()
        base = copy.deepcopy(art)
        art["rows"][0]["mops"] = 3.9  # floor at tolerance .60 is 4.0
        problems = bench_compare.throughput_problems(art, base, 0.60)
        self.assertEqual(len(problems), 1)
        art["rows"][0]["mops"] = 4.1
        self.assertEqual(
            bench_compare.throughput_problems(art, base, 0.60), [])


if __name__ == "__main__":
    unittest.main()
