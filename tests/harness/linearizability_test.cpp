// The linearizability checker itself: known-good and known-bad histories.
#include <gtest/gtest.h>

#include "harness/linearizability.hpp"

namespace hohtm::harness {
namespace {

SetOp op(SetOp::Kind kind, long key, bool result, std::uint64_t invoke,
         std::uint64_t response) {
  SetOp o;
  o.kind = kind;
  o.key = key;
  o.result = result;
  o.invoke = invoke;
  o.response = response;
  return o;
}

TEST(Linearizability, EmptyHistory) {
  EXPECT_TRUE(is_linearizable({}, {}));
}

TEST(Linearizability, SequentialHistoryConsistent) {
  EXPECT_TRUE(is_linearizable(
      {
          op(SetOp::kInsert, 1, true, 1, 2),
          op(SetOp::kContains, 1, true, 3, 4),
          op(SetOp::kRemove, 1, true, 5, 6),
          op(SetOp::kContains, 1, false, 7, 8),
      },
      {}));
}

TEST(Linearizability, SequentialHistoryInconsistent) {
  // contains(1) = false after insert(1) = true completed: impossible.
  EXPECT_FALSE(is_linearizable(
      {
          op(SetOp::kInsert, 1, true, 1, 2),
          op(SetOp::kContains, 1, false, 3, 4),
      },
      {}));
}

TEST(Linearizability, InitialStateRespected) {
  EXPECT_TRUE(is_linearizable({op(SetOp::kRemove, 9, true, 1, 2)}, {9}));
  EXPECT_FALSE(is_linearizable({op(SetOp::kRemove, 9, true, 1, 2)}, {}));
}

TEST(Linearizability, OverlappingOpsMayReorder) {
  // contains(1)=true overlaps insert(1)=true: legal — the insert may
  // linearize first even though its invocation is later.
  EXPECT_TRUE(is_linearizable(
      {
          op(SetOp::kContains, 1, true, 1, 10),
          op(SetOp::kInsert, 1, true, 2, 9),
      },
      {}));
}

TEST(Linearizability, RealTimeOrderEnforced) {
  // Same pair but NON-overlapping: contains completed before insert was
  // invoked, so contains(1)=true has no explanation.
  EXPECT_FALSE(is_linearizable(
      {
          op(SetOp::kContains, 1, true, 1, 2),
          op(SetOp::kInsert, 1, true, 3, 4),
      },
      {}));
}

TEST(Linearizability, DoubleSuccessfulRemoveRejected) {
  // Two remove(5)=true with only one insert: one remove must fail.
  EXPECT_FALSE(is_linearizable(
      {
          op(SetOp::kInsert, 5, true, 1, 2),
          op(SetOp::kRemove, 5, true, 3, 10),
          op(SetOp::kRemove, 5, true, 4, 11),
      },
      {}));
}

TEST(Linearizability, RacingRemovesOneWinnerAccepted) {
  EXPECT_TRUE(is_linearizable(
      {
          op(SetOp::kInsert, 5, true, 1, 2),
          op(SetOp::kRemove, 5, true, 3, 10),
          op(SetOp::kRemove, 5, false, 4, 11),
      },
      {}));
}

TEST(Linearizability, InsertRemoveRaceBothOrdersExplained) {
  // insert(7)=true and remove(7)=true overlap; a later contains sees 7
  // absent => remove must linearize after insert. Consistent.
  EXPECT_TRUE(is_linearizable(
      {
          op(SetOp::kInsert, 7, true, 1, 10),
          op(SetOp::kRemove, 7, true, 2, 11),
          op(SetOp::kContains, 7, false, 12, 13),
      },
      {}));
  // ...but if the later contains sees 7 PRESENT, remove-after-insert
  // contradicts it and remove-before-insert contradicts remove's result
  // (7 was never there): not linearizable.
  EXPECT_FALSE(is_linearizable(
      {
          op(SetOp::kInsert, 7, true, 1, 10),
          op(SetOp::kRemove, 7, true, 2, 11),
          op(SetOp::kContains, 7, true, 12, 13),
      },
      {}));
}

TEST(Linearizability, LostUpdateDetected) {
  // Classic atomicity bug shape: two overlapping insert(3) BOTH return
  // true — only one can win.
  EXPECT_FALSE(is_linearizable(
      {
          op(SetOp::kInsert, 3, true, 1, 10),
          op(SetOp::kInsert, 3, true, 2, 11),
      },
      {}));
}

TEST(Linearizability, WideOverlapWindowSearched) {
  // Five mutually overlapping ops needing a specific interleaving:
  // remove(2)=true forces insert(2) first; contains(2)=false must fit
  // after the remove; contains(1)=true after insert(1).
  EXPECT_TRUE(is_linearizable(
      {
          op(SetOp::kInsert, 1, true, 1, 20),
          op(SetOp::kInsert, 2, true, 2, 21),
          op(SetOp::kRemove, 2, true, 3, 22),
          op(SetOp::kContains, 2, false, 4, 23),
          op(SetOp::kContains, 1, true, 5, 24),
      },
      {}));
}

TEST(Linearizability, StampHelperMonotonic) {
  const auto a = next_history_stamp();
  const auto b = next_history_stamp();
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace hohtm::harness
