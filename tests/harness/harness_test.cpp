// Workload harness: prefill determinism, environment parsing, and the
// measurement driver end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>

#include "ds/sll_hoh.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"

namespace hohtm::harness {
namespace {

TEST(Workload, PrefillIsHalfTheRangeAndUnique) {
  WorkloadConfig config;
  config.key_bits = 8;
  const auto keys = prefill_keys(config);
  EXPECT_EQ(keys.size(), 128u);
  std::set<long> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  for (long k : keys) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 256);
  }
}

TEST(Workload, PrefillDeterministicPerSeed) {
  WorkloadConfig a;
  a.key_bits = 6;
  WorkloadConfig b = a;
  EXPECT_EQ(prefill_keys(a), prefill_keys(b));
  b.seed = 77;
  EXPECT_NE(prefill_keys(a), prefill_keys(b));
}

TEST(Workload, EnvironmentParsing) {
  setenv("HOH_BENCH_OPS", "123", 1);
  setenv("HOH_BENCH_TRIALS", "4", 1);
  setenv("HOH_BENCH_THREADS", "2,6", 1);
  setenv("HOH_BENCH_BIGBITS", "21", 1);
  const BenchEnv env = BenchEnv::from_environment();
  EXPECT_EQ(env.ops_per_thread, 123u);
  EXPECT_EQ(env.trials, 4);
  EXPECT_EQ(env.thread_counts, (std::vector<int>{2, 6}));
  EXPECT_EQ(env.big_key_bits, 21);
  unsetenv("HOH_BENCH_OPS");
  unsetenv("HOH_BENCH_TRIALS");
  unsetenv("HOH_BENCH_THREADS");
  unsetenv("HOH_BENCH_BIGBITS");
}

TEST(Workload, EnvironmentDefaults) {
  unsetenv("HOH_BENCH_OPS");
  unsetenv("HOH_BENCH_TRIALS");
  unsetenv("HOH_BENCH_THREADS");
  unsetenv("HOH_BENCH_BIGBITS");
  const BenchEnv env = BenchEnv::from_environment();
  EXPECT_GT(env.ops_per_thread, 0u);
  EXPECT_GE(env.trials, 1);
  EXPECT_FALSE(env.thread_counts.empty());
}

TEST(Driver, RunsTrialsAndReportsThroughput) {
  using TM = tm::Norec;
  using List = ds::SllHoh<TM, rr::RrV<TM>>;
  WorkloadConfig config;
  config.key_bits = 6;
  config.lookup_pct = 33;
  config.threads = 2;
  config.ops_per_thread = 2000;
  config.trials = 2;
  const CellResult cell =
      run_cell(config, [&] { return std::make_unique<List>(config.window); });
  EXPECT_EQ(cell.mops.n, 2u);
  EXPECT_GT(cell.mops.mean, 0.0);
  EXPECT_GT(cell.mops.min, 0.0);
}

TEST(Driver, LookupOnlyMixDoesNotMutate) {
  using TM = tm::Norec;
  using List = ds::SllHoh<TM, rr::RrV<TM>>;
  WorkloadConfig config;
  config.key_bits = 6;
  config.lookup_pct = 100;
  config.threads = 2;
  config.ops_per_thread = 2000;
  config.trials = 1;
  List* witness = nullptr;
  std::size_t prefill_size = 0;
  run_cell(config, [&] {
    auto list = std::make_unique<List>(config.window);
    witness = list.get();
    for (long k : prefill_keys(config)) list->insert(k);
    prefill_size = list->size();
    // run_cell prefills again on the same instance; inserts of present
    // keys are no-ops, so the size stays put.
    return list;
  });
  (void)witness;
  EXPECT_EQ(prefill_size, 32u);
}

}  // namespace
}  // namespace hohtm::harness
