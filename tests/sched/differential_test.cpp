// Cross-backend differential oracle: the same seeded operation script is
// interpreted against every real TM backend and against GLock (one global
// mutex — trivially correct), then per-operation results, final shared
// memory, and transactionally-allocated node state are diffed. Any
// divergence is a serializability / rollback / lifecycle bug in the
// backend under test.
//
// The script is single-threaded on purpose: with no concurrency every
// backend must be *functionally identical* to the oracle, so the diff is
// exact (concurrent semantics are covered by the schedule-exploration
// suites). Exercised per op: word reads, writes, read-modify-writes,
// multi-word transfers (invariant-carrying), transactional alloc/dealloc
// with commit-time destruction, and user exceptions that must roll back
// writes and allocations.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tm/glock.hpp"
#include "tm/norec.hpp"
#include "tm/tl2.hpp"
#include "tm/tleager.hpp"
#include "tm/tml.hpp"
#include "util/random.hpp"

namespace {

constexpr std::size_t kWords = 8;
constexpr std::size_t kNodeSlots = 4;
constexpr std::size_t kOps = 10000;

/// User exception used by the rollback op; must propagate out of
/// `atomically` with every effect of the attempt undone.
struct ScriptedFailure {};

template <class TM>
struct DiffState {
  static inline long words[kWords] = {};
  static inline long* nodes[kNodeSlots] = {};
};

/// Everything observable about one script execution.
struct Trace {
  std::vector<long> results;     // one entry per op
  std::vector<long> final_words;
  std::vector<long> final_nodes;  // -1 for empty slots
};

template <class TM>
Trace run_script(std::uint64_t seed) {
  using S = DiffState<TM>;
  for (auto& w : S::words) w = 0;
  for (auto& n : S::nodes) n = nullptr;

  hohtm::util::Xoshiro256 rng(seed);
  Trace t;
  t.results.reserve(kOps);

  for (std::size_t op = 0; op < kOps; ++op) {
    const std::size_t kind = static_cast<std::size_t>(rng.next_below(8));
    const std::size_t i = static_cast<std::size_t>(rng.next_below(kWords));
    const std::size_t j = static_cast<std::size_t>(rng.next_below(kWords));
    const std::size_t slot =
        static_cast<std::size_t>(rng.next_below(kNodeSlots));
    const long val = static_cast<long>(rng.next_below(1000));

    long result = 0;
    switch (kind) {
      case 0:  // read
        result = TM::atomically(
            [&](auto& tx) { return tx.read(S::words[i]); });
        break;
      case 1:  // write
        TM::atomically([&](auto& tx) { tx.write(S::words[i], val); });
        break;
      case 2:  // read-modify-write
        result = TM::atomically([&](auto& tx) {
          const long sum = tx.read(S::words[i]) + val;
          tx.write(S::words[i], sum);
          return sum;
        });
        break;
      case 3:  // multi-word transfer: moves `val` from word i to word j
        result = TM::atomically([&](auto& tx) {
          tx.write(S::words[i], tx.read(S::words[i]) - val);
          tx.write(S::words[j], tx.read(S::words[j]) + val);
          return tx.read(S::words[i]) + tx.read(S::words[j]);
        });
        break;
      case 4:  // allocate a node into an empty slot
        result = TM::atomically([&](auto& tx) -> long {
          if (tx.read(S::nodes[slot]) != nullptr) return -2;
          long* p = tx.template alloc<long>(val);
          tx.write(S::nodes[slot], p);
          return *p;
        });
        break;
      case 5:  // deallocate (precise: destruction runs at commit)
        result = TM::atomically([&](auto& tx) -> long {
          long* p = tx.read(S::nodes[slot]);
          if (p == nullptr) return -2;
          const long last = tx.read(*p);
          tx.dealloc(p);
          tx.write(S::nodes[slot], static_cast<long*>(nullptr));
          return last;
        });
        break;
      case 6:  // write through a node pointer
        result = TM::atomically([&](auto& tx) -> long {
          long* p = tx.read(S::nodes[slot]);
          if (p == nullptr) return -2;
          tx.write(*p, val);
          return tx.read(*p);
        });
        break;
      default:  // user exception after a write: the attempt must vanish
        try {
          TM::atomically([&](auto& tx) {
            tx.write(S::words[i], val + 100000);
            if (tx.read(S::nodes[slot]) == nullptr) {
              long* p = tx.template alloc<long>(val);
              tx.write(S::nodes[slot], p);
            }
            throw ScriptedFailure{};
          });
          result = -3;  // unreachable: the exception must propagate
        } catch (const ScriptedFailure&) {
          result = TM::atomically(
              [&](auto& tx) { return tx.read(S::words[i]); });
        }
        break;
    }
    t.results.push_back(result);
  }

  for (const long w : S::words) t.final_words.push_back(w);
  // Capture node values, then free everything so sanitizer builds stay
  // leak-clean.
  TM::atomically([&](auto& tx) {
    for (auto& n : S::nodes) {
      long* p = tx.read(n);
      t.final_nodes.push_back(p == nullptr ? -1 : tx.read(*p));
      if (p != nullptr) {
        tx.dealloc(p);
        tx.write(n, static_cast<long*>(nullptr));
      }
    }
  });
  return t;
}

template <class TM>
void diff_against_oracle(std::uint64_t seed) {
  const Trace oracle = run_script<hohtm::tm::GLock>(seed);
  const Trace candidate = run_script<TM>(seed);

  ASSERT_EQ(candidate.results.size(), oracle.results.size());
  for (std::size_t op = 0; op < oracle.results.size(); ++op) {
    ASSERT_EQ(candidate.results[op], oracle.results[op])
        << TM::name() << " diverged from glock at op " << op << " (seed "
        << seed << ")";
  }
  EXPECT_EQ(candidate.final_words, oracle.final_words)
      << TM::name() << " final memory diverged (seed " << seed << ")";
  EXPECT_EQ(candidate.final_nodes, oracle.final_nodes)
      << TM::name() << " final node state diverged (seed " << seed << ")";
}

TEST(Differential, TmlMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Tml>(0x10ad5eedULL);
}

TEST(Differential, NorecMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Norec>(0x10ad5eedULL);
}

TEST(Differential, Tl2MatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Tl2>(0x10ad5eedULL);
}

TEST(Differential, TlEagerMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::TlEager>(0x10ad5eedULL);
}

// A second seed per backend guards against a lucky script: the op mix is
// random, so one seed might never hit a given (kind, state) pair.
TEST(Differential, SecondSeedSweep) {
  diff_against_oracle<hohtm::tm::Tml>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::Norec>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::Tl2>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::TlEager>(0xba5eba11ULL);
}

}  // namespace
