// Schedule exploration of the range scan's cursor-carrying reservation
// (docs/KV.md, "Range scans").
//
// Three scenarios:
//
//  1. The cursor-handover discipline in isolation (static state, exact
//     mirror of the store's park_scan_cursor/resume_scan_cursor calls):
//     a scanner ends a window by parking its cursor node in the
//     reservation and resumes it in the next window's transaction,
//     racing a deleter that revokes the cursor, waits on the quiescence
//     fence, and "frees" it (stamps a tombstone, so a stale resume is
//     an assertion instead of UB). The kDropScanCursorHandover mutant
//     parks a raw cached pointer instead of reserving — exactly the bug
//     the handover prevents — and the explorer must catch it within a
//     bounded budget, with the failing schedule replaying
//     byte-identically from its recorded choices.
//
//  2. The real Store mid-resize: a scan's windows (window = 1, so the
//     cursor parks after every node, including mid-bucket) interleave
//     with a migrator driving the old bucket over one node at a time.
//     Every interleaving must deliver the exact canonical dump — no
//     entry lost to the migration, none duplicated by the reseek.
//
//  3. The real Store vs a delete of a node the cursor may be parked on:
//     the scan must stay sorted and dup-free, see every surviving key,
//     and observe the deleted key at most once.
//
// Backend is TML throughout (address-independent conflict detection,
// the determinism requirement of DFS prefix replay). Scenario 2 uses
// RR-Null, which forces the reseek path on every single window
// boundary; scenario 3 uses the real RR-V so the delete actually
// revokes a *held* cursor (under RR-Null keyed ops also livelock
// whenever a key sits deeper than the window in its chain — nil resume
// restarts them from the head — so a no-resize single-bucket store
// needs the real reservation anyway).
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rr_null.hpp"
#include "core/rr_v.hpp"
#include "kv/store.hpp"
#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "tm/config.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;
using hohtm::tm::Tml;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

bool canon_less(const std::string& a, const std::string& b) {
  return hohtm::kv::detail::precedes(hohtm::kv::detail::hash_bytes(a), a,
                                     hohtm::kv::detail::hash_bytes(b), b);
}

// ---------------------------------------------------------------------------
// Scenario 1: cursor handover vs. concurrent delete, distilled.

struct CursorNode {
  long tombstone = 0;
};

struct CursorState {
  using Node = CursorNode;
  // Static storage: addresses are identical across schedules, so the
  // recorded steps of a failing schedule compare byte-for-byte with its
  // replay (same reasoning as sched_kv_test.cpp's anchor scenario).
  static inline Node node;
  static inline hohtm::rr::RrV<Tml> reservations{4};
  static inline bool stale_resume;
};

Scenario cursor_scenario() {
  using S = CursorState;
  Scenario s;
  s.setup = [] {
    S::node.tombstone = 0;
    S::stale_resume = false;
  };
  s.bodies = {
      // Scanner: one window transaction ends by parking the scan cursor
      // (release + reserve — or, under the mutant, a raw cached
      // pointer); the next window's transaction resumes it and reads
      // through it. A nil resume means the deleter won; a real scan
      // reseeks from its remembered (hash, key) — here there is nothing
      // left to walk, so the schedule just ends.
      [] {
        hohtm::rr::Ref raw_cache = nullptr;
        Tml::atomically([&](auto& tx) {
          S::reservations.register_thread(tx);
          hohtm::kv::detail::park_scan_cursor(S::reservations, tx, &S::node,
                                              raw_cache);
        });
        const long saw = Tml::atomically([&](auto& tx) -> long {
          const hohtm::rr::Ref ref = hohtm::kv::detail::resume_scan_cursor(
              S::reservations, tx, raw_cache);
          if (ref == nullptr) return -1;
          const long t = tx.read(S::node.tombstone);
          S::reservations.release(tx);
          return t;
        });
        if (saw == 1) S::stale_resume = true;
      },
      // Deleter: unlink-equivalent — revoke the node the cursor may be
      // parked on, wait for every in-flight transaction, then "free" it.
      [] {
        Tml::atomically(
            [](auto& tx) { S::reservations.revoke(tx, &S::node); });
        Tml::quiesce_before_free();
        hohtm::tm::atomic_store(S::node.tombstone, 1L);
      },
  };
  s.check = [] {
    return S::stale_resume
               ? std::string("scan resumed a freed cursor node")
               : std::string();
  };
  return s;
}

TEST(SchedScan, CursorHandoverProtectsScanResume) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(cursor_scenario(), 8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

TEST(SchedScan, DropScanCursorHandoverMutantCaught) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const Scenario s = cursor_scenario();
  set_mutation(Mutation::kDropScanCursorHandover);
  const ExploreResult r = explore_dfs(s, 40000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << "mutant survived " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << "replay diverged";
}

// ---------------------------------------------------------------------------
// Real-store scenarios. One shard, single-node windows (the cursor
// parks after *every* walked node, including mid-bucket), no auto-help.

using SchedStore = hohtm::kv::Store<Tml, hohtm::rr::RrNull<Tml>>;

struct ScanState {
  static inline std::optional<SchedStore> store;
  static inline std::vector<std::string> inserted;
  static inline std::vector<std::string> seen;
};

void reset_scan_state(int grow_chain, const char* prefix, int keys) {
  ScanState::store.reset();
  ScanState::store.emplace(SchedStore::Options{
      /*log2_shards=*/0, /*log2_buckets=*/0, /*max_log2_buckets=*/4,
      /*window=*/1, grow_chain, /*auto_migrate=*/false});
  ScanState::inserted.clear();
  ScanState::seen.clear();
  for (int i = 0; i < keys; ++i) {
    const std::string key = prefix + std::to_string(i);
    ScanState::store->put(key, "v" + std::to_string(i));
    ScanState::inserted.push_back(key);
  }
}

// Shared between the real-store checks: the scan's output must be
// strictly canonical-sorted (which also rules out duplicates) and
// contain only inserted keys.
std::string check_scan_shape() {
  for (std::size_t i = 0; i + 1 < ScanState::seen.size(); ++i)
    if (!canon_less(ScanState::seen[i], ScanState::seen[i + 1]))
      return "scan output out of canonical order (or duplicated)";
  for (const std::string& k : ScanState::seen) {
    bool known = false;
    for (const std::string& ins : ScanState::inserted)
      if (ins == k) known = true;
    if (!known) return "scan saw phantom key " + k;
  }
  return std::string();
}

// Scenario 2: scan parked mid-bucket vs. the resize migration.

Scenario scan_vs_migration_scenario() {
  Scenario s;
  s.setup = [] {
    // grow_chain = 1: the second key that collides into the one chain
    // trips the grow, and auto_migrate = false leaves it pending, so
    // the scan starts against a store genuinely mid-resize.
    reset_scan_state(/*grow_chain=*/1, "s", /*keys=*/0);
    SchedStore& st = *ScanState::store;
    for (int i = 0; i < 8 && st.tables_swapped() == 0; ++i) {
      const std::string key = "s" + std::to_string(i);
      st.put(key, "v" + std::to_string(i));
      ScanState::inserted.push_back(key);
    }
  };
  s.bodies = {
      // Scanner: full dump. Its own windows migrate the buckets they
      // need before walking them, racing the migrator's windows.
      [] {
        ScanState::store->scan(
            ScanState::inserted.size() + 4,
            [](const std::string& k, const std::string&) {
              ScanState::seen.push_back(k);
            });
      },
      // Migrator: drive the one old bucket to completion node by node;
      // the window that empties it frees the old table.
      [] {
        while (!ScanState::store->migrate_bucket_window_for("s0")) {
        }
      },
  };
  s.check = [] {
    SchedStore& st = *ScanState::store;
    if (st.tables_swapped() != 1)
      return std::string("setup never installed the resize");
    if (st.migrating()) return std::string("store still mid-resize");
    if (st.tables_retired() != st.tables_swapped())
      return std::string("old table not retired precisely");
    if (!st.is_consistent()) return std::string("chain invariants broken");
    std::string shape = check_scan_shape();
    if (!shape.empty()) return shape;
    // No concurrent mutations: the scan must see exactly every key.
    if (ScanState::seen.size() != ScanState::inserted.size())
      return std::string("scan lost or duplicated entries: saw ") +
             std::to_string(ScanState::seen.size()) + " of " +
             std::to_string(ScanState::inserted.size());
    return std::string();
  };
  return s;
}

TEST(SchedScan, ScanWindowsVsResizeMigration) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r = explore_dfs(scan_vs_migration_scenario(),
                                      2000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  std::cout << "   [exploration] " << describe(r) << "\n";
  ScanState::store.reset();
}

// Scenario 3: scan vs. a delete of a node the cursor may be parked on.
// This one runs over the real reservation (RR-V): the deleter's
// unlink-revoke-dealloc genuinely revokes a cursor the scanner is
// holding, and the scan must detect the nil resume and reseek. (RR-V is
// also what makes a no-resize single-bucket store usable here at all —
// see the file comment.)

using SchedStoreRv = hohtm::kv::Store<Tml, hohtm::rr::RrV<Tml>>;

struct ScanRvState {
  static inline std::optional<SchedStoreRv> store;
  static inline std::vector<std::string> inserted;
  static inline std::vector<std::string> seen;
};

Scenario scan_vs_delete_scenario() {
  Scenario s;
  s.setup = [] {
    // High grow threshold: no resize in this one — the race under test
    // is purely cursor-parked-on-node vs. unlink-revoke-dealloc. One
    // bucket and window = 1, so the cursor parks mid-chain after every
    // emitted node and the delete has many boundaries to land on.
    ScanRvState::store.reset();
    ScanRvState::store.emplace(SchedStoreRv::Options{
        /*log2_shards=*/0, /*log2_buckets=*/0, /*max_log2_buckets=*/4,
        /*window=*/1, /*grow_chain=*/16, /*auto_migrate=*/false});
    ScanRvState::inserted.clear();
    ScanRvState::seen.clear();
    for (int i = 0; i < 4; ++i) {
      const std::string key = "d" + std::to_string(i);
      ScanRvState::store->put(key, "v" + std::to_string(i));
      ScanRvState::inserted.push_back(key);
    }
  };
  s.bodies = {
      [] {
        ScanRvState::store->scan(ScanRvState::inserted.size() + 4,
                                 [](const std::string& k, const std::string&) {
                                   ScanRvState::seen.push_back(k);
                                 });
      },
      [] { ScanRvState::store->del("d1"); },
  };
  s.check = [] {
    SchedStoreRv& st = *ScanRvState::store;
    if (!st.is_consistent()) return std::string("chain invariants broken");
    std::string v;
    if (st.get("d1", v)) return std::string("deleted key d1 survived");
    // Same shape rules as check_scan_shape(), over the RR-V state.
    for (std::size_t i = 0; i + 1 < ScanRvState::seen.size(); ++i)
      if (!canon_less(ScanRvState::seen[i], ScanRvState::seen[i + 1]))
        return std::string(
            "scan output out of canonical order (or duplicated)");
    for (const std::string& k : ScanRvState::seen) {
      bool known = false;
      for (const std::string& ins : ScanRvState::inserted)
        if (ins == k) known = true;
      if (!known) return "scan saw phantom key " + k;
    }
    // Linearizability: every surviving key appears exactly once; the
    // deleted key appears at most once (the delete lands before, after,
    // or mid-scan). Sortedness above already bounds each to <= 1, so
    // presence is all that is left to check.
    for (const std::string& ins : ScanRvState::inserted) {
      if (ins == "d1") continue;
      bool found = false;
      for (const std::string& k : ScanRvState::seen)
        if (k == ins) found = true;
      if (!found) return "scan missed surviving key " + ins;
    }
    return std::string();
  };
  return s;
}

TEST(SchedScan, ScanVsDeleteOfCursorNode) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r = explore_dfs(scan_vs_delete_scenario(),
                                      2000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  std::cout << "   [exploration] " << describe(r) << "\n";
  ScanRvState::store.reset();
}

}  // namespace
