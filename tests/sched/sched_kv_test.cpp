// Schedule exploration of the KV store's bucket-migration protocol.
//
// Two scenarios:
//
//  1. The anchor-handover discipline in isolation (static state, exact
//     mirror of the store's park_anchor/resume_anchor calls): a migrator
//     parks its insertion anchor at a window boundary and resumes it in
//     the next window's transaction, racing a deleter that revokes the
//     anchor, waits on the quiescence fence, and "frees" it (stamps a
//     tombstone, so a stale resume is an assertion instead of UB). The
//     kDropMigrationReserve mutant parks a raw cached pointer instead of
//     reserving — exactly the bug the reservation prevents — and the
//     explorer must catch it within a bounded budget, with the failing
//     schedule replaying byte-identically from its recorded choices.
//
//  2. The real Store mid-resize: one shard, one old bucket, window = 1,
//     a migrator driving single-node migration windows against a delete
//     whose own migrate-before-op races it. Every interleaving must end
//     settled, consistent, and with the old table retired precisely.
//
// Backend is TML throughout: its conflict detection is address-
// independent (one global seqlock), the determinism requirement of DFS
// prefix replay (src/sched/scheduler.hpp). Scenario 2 uses RR-Null so
// no reservation hash slot depends on recycled registry slot numbers.
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "core/rr_null.hpp"
#include "core/rr_v.hpp"
#include "kv/store.hpp"
#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "tm/config.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;
using hohtm::tm::Tml;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

// ---------------------------------------------------------------------------
// Scenario 1: anchor handover vs. concurrent delete, distilled.

struct AnchorNode {
  long tombstone = 0;
};

struct AnchorState {
  using Node = AnchorNode;
  // Static storage: addresses are identical across schedules, so the
  // recorded steps of a failing schedule compare byte-for-byte with its
  // replay. Each schedule's own park/resume/revoke sequence rewrites
  // every reservation word it later reads, so no per-schedule RR reset
  // is needed (same reasoning as sched_rr_test.cpp).
  static inline Node node;
  static inline hohtm::rr::RrV<Tml> reservations{4};
  static inline bool stale_resume;
};

Scenario anchor_scenario() {
  using S = AnchorState;
  Scenario s;
  s.setup = [] {
    S::node.tombstone = 0;
    S::stale_resume = false;
  };
  s.bodies = {
      // Migrator: one window transaction ends by parking the anchor
      // (release + reserve — or, under the mutant, a raw cached
      // pointer); the next window's transaction resumes it and uses it.
      // A nil resume means the deleter won; restart from the head (here:
      // back off, the distilled scenario has nothing else to traverse).
      [] {
        hohtm::rr::Ref raw_cache = nullptr;
        Tml::atomically([&](auto& tx) {
          S::reservations.register_thread(tx);
          hohtm::kv::detail::park_anchor(S::reservations, tx, &S::node,
                                         raw_cache);
        });
        const long saw = Tml::atomically([&](auto& tx) -> long {
          const hohtm::rr::Ref ref =
              hohtm::kv::detail::resume_anchor(S::reservations, tx,
                                               raw_cache);
          if (ref == nullptr) return -1;
          const long t = tx.read(S::node.tombstone);
          S::reservations.release(tx);
          return t;
        });
        if (saw == 1) S::stale_resume = true;
      },
      // Deleter: unlink-equivalent — revoke the node, wait for every
      // in-flight transaction, then "free" it.
      [] {
        Tml::atomically(
            [](auto& tx) { S::reservations.revoke(tx, &S::node); });
        Tml::quiesce_before_free();
        hohtm::tm::atomic_store(S::node.tombstone, 1L);
      },
  };
  s.check = [] {
    return S::stale_resume
               ? std::string("migration resumed a freed anchor")
               : std::string();
  };
  return s;
}

TEST(SchedKv, AnchorHandoverProtectsMigrationResume) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(anchor_scenario(), 8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

TEST(SchedKv, DropMigrationReserveMutantCaught) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const Scenario s = anchor_scenario();
  set_mutation(Mutation::kDropMigrationReserve);
  const ExploreResult r =
      explore_dfs(s, 40000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << "mutant survived " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << "replay diverged";
}

// ---------------------------------------------------------------------------
// Scenario 2: the real Store, one old bucket mid-resize, migration
// windows racing a delete.

using SchedStore = hohtm::kv::Store<Tml, hohtm::rr::RrNull<Tml>>;

struct StoreState {
  static inline std::optional<SchedStore> store;
  static inline int keys = 0;  // inserted by setup before the swap landed
};

Scenario migration_scenario() {
  Scenario s;
  s.setup = [] {
    StoreState::store.reset();
    // One shard, one initial bucket, single-node windows, growth after a
    // chain of 1 — and no auto-help, so setup leaves the resize pending
    // instead of finishing it. (window = 1 also keeps the insertion
    // scatter off: every schedule issues the identical transactions.)
    StoreState::store.emplace(SchedStore::Options{
        /*log2_shards=*/0, /*log2_buckets=*/0, /*max_log2_buckets=*/4,
        /*window=*/1, /*grow_chain=*/1, /*auto_migrate=*/false});
    SchedStore& st = *StoreState::store;
    // Insert until a put lands *behind* an existing node in the chain's
    // (hash, key) order and trips the grow — position in that order is
    // hash-dependent, so the count is discovered, not hard-coded. The
    // hash is seedless, so every schedule (and every run of this binary)
    // inserts the identical sequence; the check asserts the swap landed.
    StoreState::keys = 0;
    for (int i = 0; i < 8 && st.tables_swapped() == 0; ++i) {
      st.put("m" + std::to_string(i), "v" + std::to_string(i));
      StoreState::keys = i + 1;
    }
  };
  s.bodies = {
      // Migrator: drive the old bucket to completion one node at a time
      // (each window is its own transaction with a parked anchor
      // between; the last one frees the old table).
      [] {
        while (!StoreState::store->migrate_bucket_window_for("m0")) {
        }
      },
      // Deleter: del("m1") first helps migrate its own bucket (the same
      // one — there is only one), so its windows interleave with the
      // migrator's before the unlink-and-dealloc transaction runs.
      [] { StoreState::store->del("m1"); },
  };
  s.check = [] {
    SchedStore& st = *StoreState::store;
    if (st.tables_swapped() != 1)
      return std::string("setup never installed the resize");
    if (st.migrating()) return std::string("store still mid-resize");
    if (st.tables_retired() != st.tables_swapped())
      return std::string("old table not retired precisely");
    if (!st.is_consistent()) return std::string("chain invariants broken");
    if (st.size() != static_cast<std::size_t>(StoreState::keys - 1))
      return std::string("wrong size after delete");
    std::string v;
    if (st.get("m1", v)) return std::string("deleted key m1 survived");
    for (int i = 0; i < StoreState::keys; ++i) {
      if (i == 1) continue;
      if (!st.get("m" + std::to_string(i), v) ||
          v != "v" + std::to_string(i))
        return std::string("lost key m") + std::to_string(i);
    }
    return std::string();
  };
  return s;
}

TEST(SchedKv, MigrationWindowsVsConcurrentDelete) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  // Each schedule re-runs the store setup (a few puts and a table swap)
  // plus every migration-window transaction — heavier than the distilled
  // scenarios, so the budget is sized for the sched job's 180 s per-test
  // timeout; CI's deep job raises it through HOH_SCHED_DEPTH.
  const ExploreResult r =
      explore_dfs(migration_scenario(), 2000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  // The scenario must genuinely branch (a single-schedule "exploration"
  // would mean the bodies hit no concurrent sched points at all).
  EXPECT_GT(r.schedules, 1u) << describe(r);
  std::cout << "   [exploration] " << describe(r) << "\n";
  StoreState::store.reset();
}

}  // namespace
