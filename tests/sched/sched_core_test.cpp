// Unit tests for the virtual scheduler and the exploration drivers
// themselves. These run in EVERY build: the Scheduler's machinery is not
// gated on HOHTM_SCHED (only the TM/RR hooks are), and the toy scenarios
// here create their scheduling points explicitly with Scheduler::yield /
// Scheduler::block_until.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "sched/scheduler.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Scenario;
using hohtm::sched::Scheduler;
using hohtm::sched::describe;
using hohtm::sched::explore_dfs;
using hohtm::sched::explore_random;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::replay_random;

// Two threads, one explicit yield each: every thread has two segments
// (entry-park -> yield-park -> done), so the complete interleavings are
// the ways to merge two 2-segment sequences: C(4,2) = 6.
TEST(SchedCore, DfsCountsAllInterleavings) {
  static int completions;
  Scenario s;
  s.setup = [] { completions = 0; };
  auto body = [] {
    Scheduler::yield();
    ++completions;
  };
  s.bodies = {body, body};
  s.check = [] {
    return completions == 2 ? std::string()
                            : std::string("body did not finish");
  };
  const ExploreResult r = explore_dfs(s, 1000, 100);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_TRUE(r.exhausted) << describe(r);
  EXPECT_EQ(r.schedules, 6u) << describe(r);
}

// An ordering bug that only some schedules expose: thread B observes
// whether thread A's second segment already ran. DFS must find a failing
// schedule, and replaying its recorded choices must reproduce the exact
// same step sequence and verdict.
TEST(SchedCore, DfsFindsOrderingBugAndReplayReproducesIt) {
  static bool a_done;
  static bool b_saw_a;
  Scenario s;
  s.setup = [] {
    a_done = false;
    b_saw_a = false;
  };
  s.bodies = {
      [] {
        Scheduler::yield();
        a_done = true;
      },
      [] { b_saw_a = a_done; },
  };
  s.check = [] {
    return b_saw_a ? std::string("B observed A's unpublished write")
                   : std::string();
  };
  const ExploreResult r = explore_dfs(s, 1000, 100);
  ASSERT_TRUE(r.failed) << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());

  const ExploreResult again = replay_choices(s, r.failing_choices, 100);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(again.failure, r.failure);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps));
}

// Circular block_until dependency: neither predicate can ever become
// true, so the scheduler must report a deadlock rather than hang. On
// cancellation block_until returns false and the bodies bail out, which
// keeps the threads joinable.
TEST(SchedCore, DeadlockIsDetectedNotHung) {
  static std::atomic<bool> a{false};
  static std::atomic<bool> b{false};
  Scenario s;
  s.setup = [] {
    a.store(false);
    b.store(false);
  };
  s.bodies = {
      [] {
        if (!Scheduler::block_until([] { return a.load(); })) return;
        b.store(true);
      },
      [] {
        if (!Scheduler::block_until([] { return b.load(); })) return;
        a.store(true);
      },
  };
  const ExploreResult r = explore_dfs(s, 10, 100);
  ASSERT_TRUE(r.failed) << describe(r);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

// block_until threads whose predicates another thread satisfies are
// disabled, not deadlocked: the producer must run first even though the
// picker always prefers the lowest-numbered enabled thread.
TEST(SchedCore, BlockedThreadIsDisabledUntilPredicateHolds) {
  static std::atomic<bool> flag{false};
  static bool consumer_ran_after;
  Scenario s;
  s.setup = [] {
    flag.store(false);
    consumer_ran_after = false;
  };
  s.bodies = {
      [] {
        if (!Scheduler::block_until([] { return flag.load(); })) return;
        consumer_ran_after = flag.load();
      },
      [] { flag.store(true); },
  };
  s.check = [] {
    return consumer_ran_after ? std::string()
                              : std::string("consumer resumed too early");
  };
  const ExploreResult r = explore_dfs(s, 1000, 100);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_TRUE(r.exhausted) << describe(r);
}

// Hitting the step bound truncates the schedule (tallied, not failed).
TEST(SchedCore, TruncationIsCountedNotFailed) {
  Scenario s;
  s.bodies = {
      [] {
        for (int i = 0; i < 50; ++i) Scheduler::yield();
      },
      [] {},
  };
  const ExploreResult r = explore_dfs(s, 3, 10);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_EQ(r.truncated, r.schedules);
}

// Same seed => byte-identical schedule, for uniform-random and for PCT
// scheduling; replay_random(seed, depth) reproduces the printed failure.
TEST(SchedCore, SeededSchedulesAreReproducible) {
  static int dummy;
  Scenario s;
  s.setup = [] { dummy = 0; };
  auto body = [] {
    for (int i = 0; i < 4; ++i) {
      Scheduler::yield();
      ++dummy;
    }
  };
  s.bodies = {body, body, body};
  // Always "fail" so the explorer captures the executed steps.
  s.check = [] { return std::string("recorder"); };

  for (std::size_t depth : {std::size_t{0}, std::size_t{3}}) {
    const ExploreResult first = explore_random(s, 0xfeedULL, 1, depth, 200);
    const ExploreResult second = explore_random(s, 0xfeedULL, 1, depth, 200);
    ASSERT_TRUE(first.failed);
    EXPECT_EQ(first.failing_seed, 0xfeedULL);
    EXPECT_EQ(format_steps(first.failing_steps),
              format_steps(second.failing_steps))
        << "depth " << depth;

    const ExploreResult replay =
        replay_random(s, first.failing_seed, depth, 200);
    ASSERT_TRUE(replay.failed);
    EXPECT_EQ(format_steps(replay.failing_steps),
              format_steps(first.failing_steps))
        << "depth " << depth;
  }
}

// A healthy scenario under random exploration runs exactly the requested
// number of schedules.
TEST(SchedCore, RandomExplorationRunsAllSchedules) {
  Scenario s;
  auto body = [] { Scheduler::yield(); };
  s.bodies = {body, body};
  const ExploreResult r = explore_random(s, 7, 50, 2, 100);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_EQ(r.schedules, 50u);
}

// A scenario whose control flow differs between schedules breaks DFS
// prefix replay; the explorer must report that, not silently explore a
// wrong tree.
TEST(SchedCore, NondeterministicScenarioIsReported) {
  static int runs;
  runs = 0;
  Scenario s;
  s.setup = [] { ++runs; };
  s.bodies = {
      [] {
        if (runs == 1) Scheduler::yield();
      },
      [] { Scheduler::yield(); },
  };
  const ExploreResult r = explore_dfs(s, 100, 100);
  ASSERT_TRUE(r.failed) << describe(r);
  EXPECT_NE(r.failure.find("nondeterministic"), std::string::npos)
      << r.failure;
}

// Outside a scheduler run every hook is inert, in every build.
TEST(SchedCore, HooksAreNoopsOnUnmanagedThreads) {
  EXPECT_FALSE(hohtm::sched::managed());
  Scheduler::yield();  // must not crash or block
  EXPECT_FALSE(Scheduler::block_until([] { return true; }));
  EXPECT_FALSE(hohtm::sched::spin_wait(hohtm::sched::Op::kYield,
                                       [] { return true; }));
}

// Mutations are settable everywhere but only observable in sched builds,
// so production binaries carry no injected-bug branches.
TEST(SchedCore, MutationsAreGatedOnSchedBuilds) {
  using hohtm::sched::Mutation;
  hohtm::sched::set_mutation(Mutation::kDropRevoke);
  EXPECT_EQ(hohtm::sched::mutate(Mutation::kDropRevoke),
            hohtm::sched::kSchedBuild);
  EXPECT_FALSE(hohtm::sched::mutate(Mutation::kSkipQuiescenceWait));
  hohtm::sched::set_mutation(Mutation::kNone);
  EXPECT_FALSE(hohtm::sched::mutate(Mutation::kDropRevoke));
}

// HOH_SCHED_DEPTH scales exploration budgets; unset means 1.
TEST(SchedCore, DepthMultiplierDefaultsToOne) {
  EXPECT_GE(hohtm::sched::depth_multiplier(), 1u);
}

}  // namespace
