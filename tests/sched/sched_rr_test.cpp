// Schedule exploration of the revocable-reservation protocols: a
// hand-over-hand traverser that reserves a node in one transaction and
// dereferences it through a later Get, racing a remover that revokes the
// node, waits on the quiescence fence, and "frees" it (here: stamps a
// tombstone, so a use-after-free is an assertion instead of UB).
//
// Invariant (paper §3): a Get that commits non-nil entitles the holder
// to dereference the reference in that same transaction. The kDropRevoke
// mutant disables the revocation write and the explorer must find the
// resulting stale-dereference within a bounded number of schedules.
//
// Backend is TML: its conflict detection is address-independent (one
// global seqlock), so recycled thread-registry slot numbers can never
// change control flow between schedules — a determinism requirement of
// DFS prefix replay (src/sched/scheduler.hpp).
#include <string>

#include <gtest/gtest.h>

#include "core/rr_so.hpp"
#include "core/rr_v.hpp"
#include "core/rr_xo.hpp"
#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "tm/config.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;
using hohtm::tm::Tml;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

template <class R>
struct RrState {
  struct Node {
    long tombstone = 0;
  };
  // Static storage: addresses (and thus reservation hash slots) are
  // identical across schedules. The reservation object is constructed
  // once; each schedule's own register/reserve/revoke sequence rewrites
  // every word it later reads, so no per-schedule reset is needed.
  static inline Node node;
  static inline R reservations{4};
  static inline bool stale_deref;
};

template <class R>
Scenario rr_scenario() {
  using S = RrState<R>;
  Scenario s;
  s.setup = [] {
    S::node.tombstone = 0;
    S::stale_deref = false;
  };
  s.bodies = {
      // Traverser: reserve in one transaction, then (hand-over-hand) a
      // later transaction re-acquires the reference through Get and
      // dereferences it. Get == nil means the remover won; back off.
      [] {
        Tml::atomically([](auto& tx) {
          S::reservations.register_thread(tx);
          S::reservations.reserve(tx, &S::node);
        });
        const long saw = Tml::atomically([](auto& tx) -> long {
          const hohtm::rr::Ref ref = S::reservations.get(tx);
          if (ref == nullptr) return -1;
          return tx.read(S::node.tombstone);
        });
        if (saw == 1) S::stale_deref = true;
      },
      // Remover: revoke, fence, "free".
      [] {
        Tml::atomically(
            [](auto& tx) { S::reservations.revoke(tx, &S::node); });
        Tml::quiesce_before_free();
        hohtm::tm::atomic_store(S::node.tombstone, 1L);
      },
  };
  s.check = [] {
    return S::stale_deref
               ? std::string("committed Get returned a freed reference")
               : std::string();
  };
  return s;
}

template <class R>
void expect_reservation_protects() {
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(rr_scenario<R>(), 8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << R::name() << ": " << describe(r);
}

template <class R>
void expect_drop_revoke_caught() {
  ScenarioGuard guard;
  const Scenario s = rr_scenario<R>();
  set_mutation(Mutation::kDropRevoke);
  const ExploreResult r =
      explore_dfs(s, 40000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << R::name() << ": mutant survived " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << R::name() << ": " << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << R::name() << ": replay diverged";
}

TEST(SchedRr, RrXoReservationProtectsTraverser) {
  REQUIRE_SCHED_BUILD();
  expect_reservation_protects<hohtm::rr::RrXo<Tml>>();
}
TEST(SchedRr, RrSoReservationProtectsTraverser) {
  REQUIRE_SCHED_BUILD();
  expect_reservation_protects<hohtm::rr::RrSo<Tml>>();
}
TEST(SchedRr, RrVReservationProtectsTraverser) {
  REQUIRE_SCHED_BUILD();
  expect_reservation_protects<hohtm::rr::RrV<Tml>>();
}

TEST(SchedRr, RrXoDropRevokeMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_drop_revoke_caught<hohtm::rr::RrXo<Tml>>();
}
TEST(SchedRr, RrSoDropRevokeMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_drop_revoke_caught<hohtm::rr::RrSo<Tml>>();
}
TEST(SchedRr, RrVDropRevokeMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_drop_revoke_caught<hohtm::rr::RrV<Tml>>();
}

}  // namespace
