// Schedule exploration of the TM backends' synchronization protocols,
// plus the bug-injection mutants that validate the explorer itself
// (docs/TESTING.md). The scenarios need the compiled-in SchedPoint hooks,
// so every test skips unless the build was configured with -DHOHTM_SCHED=ON.
//
// Scenario rules (see src/sched/scheduler.hpp): shared state in static
// storage (stable addresses => stable orec slots), serial threshold
// raised out of reach (the stop-the-world serial path of TL2/TLEager
// blocks in a std::mutex the scheduler cannot see), and no GLock.
#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "sched/scheduler.hpp"
#include "tm/config.hpp"
#include "tm/norec.hpp"
#include "tm/quiescence.hpp"
#include "tm/tl2.hpp"
#include "tm/tleager.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::Scheduler;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::explore_random;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

/// Restores mutation + serial threshold even when an ASSERT bails out.
struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

// ---------------------------------------------------------------------------
// Write-write race: two transactions increment the same word. Any lost
// update is a serializability violation.

template <class TM>
struct CounterState {
  static inline long x = 0;
};

template <class TM>
Scenario counter_scenario() {
  using S = CounterState<TM>;
  Scenario s;
  s.setup = [] { S::x = 0; };
  auto incr = [] {
    TM::atomically([](auto& tx) { tx.write(S::x, tx.read(S::x) + 1); });
  };
  s.bodies = {incr, incr};
  s.check = [] {
    return S::x == 2 ? std::string()
                     : "lost update: x == " + std::to_string(S::x);
  };
  return s;
}

TEST(SchedTm, TmlConcurrentIncrementsNeverLoseUpdates) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(counter_scenario<hohtm::tm::Tml>(),
                  20000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

TEST(SchedTm, NorecConcurrentIncrementsNeverLoseUpdates) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(counter_scenario<hohtm::tm::Norec>(),
                  20000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

TEST(SchedTm, Tl2ConcurrentIncrementsNeverLoseUpdates) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(counter_scenario<hohtm::tm::Tl2>(),
                  20000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

TEST(SchedTm, TlEagerConcurrentIncrementsNeverLoseUpdates) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(counter_scenario<hohtm::tm::TlEager>(),
                  20000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
}

// ---------------------------------------------------------------------------
// Read-validate (opacity) race: a reader sums two words while a writer
// moves value between them; every committed read must see the invariant
// sum. The alignas keeps x and y on different 16-byte granules, i.e.
// different TL2/TLEager orecs — the torn read must be catchable per-word.

template <class TM>
struct InvariantState {
  alignas(64) static inline long x = 60;
  alignas(64) static inline long y = 40;
  static inline long observed = 100;
};

template <class TM>
Scenario invariant_scenario() {
  using S = InvariantState<TM>;
  Scenario s;
  s.setup = [] {
    S::x = 60;
    S::y = 40;
    S::observed = 100;
  };
  s.bodies = {
      [] {
        S::observed = TM::atomically([](auto& tx) {
          const long a = tx.read(S::x);
          const long b = tx.read(S::y);
          return a + b;
        });
      },
      [] {
        TM::atomically([](auto& tx) {
          tx.write(S::x, tx.read(S::x) - 10);
          tx.write(S::y, tx.read(S::y) + 10);
        });
      },
  };
  s.check = [] {
    return S::observed == 100
               ? std::string()
               : "inconsistent snapshot: sum == " + std::to_string(S::observed);
  };
  return s;
}

template <class TM>
void expect_opacity_holds() {
  ScenarioGuard guard;
  const Scenario s = invariant_scenario<TM>();
  const ExploreResult dfs =
      explore_dfs(s, 10000 * depth_multiplier(), 400);
  EXPECT_FALSE(dfs.failed) << TM::name() << ": " << describe(dfs);
  const ExploreResult pct =
      explore_random(s, 0x5eedULL, 300 * depth_multiplier(), 3, 400);
  EXPECT_FALSE(pct.failed) << TM::name() << ": " << describe(pct);
}

/// The explorer must catch a disabled read-validation within its DFS
/// budget, and replaying the recorded choices must reproduce the exact
/// same interleaving — the acceptance bar for the harness itself.
template <class TM>
void expect_mutant_caught() {
  ScenarioGuard guard;
  const Scenario s = invariant_scenario<TM>();
  set_mutation(Mutation::kSkipReadValidation);
  const ExploreResult r = explore_dfs(s, 20000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << TM::name()
                        << ": mutant survived " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << TM::name() << ": " << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << TM::name() << ": replay diverged";
}

TEST(SchedTm, TmlOpacityHolds) {
  REQUIRE_SCHED_BUILD();
  expect_opacity_holds<hohtm::tm::Tml>();
}
TEST(SchedTm, NorecOpacityHolds) {
  REQUIRE_SCHED_BUILD();
  expect_opacity_holds<hohtm::tm::Norec>();
}
TEST(SchedTm, Tl2OpacityHolds) {
  REQUIRE_SCHED_BUILD();
  expect_opacity_holds<hohtm::tm::Tl2>();
}
TEST(SchedTm, TlEagerOpacityHolds) {
  REQUIRE_SCHED_BUILD();
  expect_opacity_holds<hohtm::tm::TlEager>();
}

TEST(SchedTm, TmlSkipValidationMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_mutant_caught<hohtm::tm::Tml>();
}
TEST(SchedTm, NorecSkipValidationMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_mutant_caught<hohtm::tm::Norec>();
}
TEST(SchedTm, Tl2SkipValidationMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_mutant_caught<hohtm::tm::Tl2>();
}
TEST(SchedTm, TlEagerSkipValidationMutantCaught) {
  REQUIRE_SCHED_BUILD();
  expect_mutant_caught<hohtm::tm::TlEager>();
}

// ---------------------------------------------------------------------------
// Quiescence fence vs an in-flight reader, at the unit level: the reader
// publishes an old timestamp and enters a critical "zone" (standing in
// for dereferencing soon-to-be-freed memory); the remover's wait_until
// must not return while the reader is still inside.

struct QuiesceState {
  static inline hohtm::tm::Quiescence q;
  static inline bool in_zone = false;
  static inline bool bug = false;
};

Scenario quiesce_scenario() {
  Scenario s;
  s.setup = [] {
    QuiesceState::in_zone = false;
    QuiesceState::bug = false;
  };
  s.bodies = {
      [] {
        QuiesceState::q.publish(5);
        QuiesceState::in_zone = true;
        Scheduler::yield(hohtm::sched::Op::kUserMark);
        QuiesceState::in_zone = false;
        QuiesceState::q.deactivate();
      },
      [] {
        QuiesceState::q.wait_until(10);
        if (QuiesceState::in_zone) QuiesceState::bug = true;
      },
  };
  s.check = [] {
    return QuiesceState::bug
               ? std::string("fence returned while a reader was in the zone")
               : std::string();
  };
  return s;
}

TEST(SchedTm, QuiescenceFenceBlocksUntilReaderLeaves) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r = explore_dfs(quiesce_scenario(), 5000, 200);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_TRUE(r.exhausted) << describe(r);
}

TEST(SchedTm, QuiescenceSkipWaitMutantCaught) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const Scenario s = quiesce_scenario();
  set_mutation(Mutation::kSkipQuiescenceWait);
  const ExploreResult r = explore_dfs(s, 5000, 200);
  ASSERT_TRUE(r.failed) << "mutant survived " << describe(r);
  const ExploreResult again = replay_choices(s, r.failing_choices, 200);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps));
}

}  // namespace
