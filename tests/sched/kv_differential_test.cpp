// KV differential oracle: one seeded 10k-op script is interpreted
// against every TM backend's Store and against a plain std::map. Every
// operation's result is checked against the reference at the moment it
// executes, the final states are diffed exactly, and the whole observable
// trace of each backend must equal the GLock store's trace (GLock — one
// global mutex — is the trivially correct transactional oracle).
//
// The script is single-threaded on purpose, like differential_test.cpp:
// with no concurrency every backend must be *functionally identical*, so
// the diff is exact (concurrent semantics are covered by the kv tier-1
// churn test and the schedule-exploration suite). Exercised per op:
// put/get/del over a small hot key domain, bounded head scans, ranged
// scan_from ops diffed as exact canonical-order sequences against the
// sorted reference, periodic full-dump set comparison, insert bursts
// that push shards through incremental resize mid-script, and user
// exceptions (via the store's fail hook) that must roll back the whole
// mutating attempt. The final Gauge check proves the script's deletes
// and resizes freed precisely.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rr.hpp"
#include "kv/store.hpp"
#include "reclaim/gauge.hpp"
#include "tm/glock.hpp"
#include "tm/norec.hpp"
#include "tm/tl2.hpp"
#include "tm/tleager.hpp"
#include "tm/tml.hpp"
#include "util/random.hpp"

namespace {

constexpr std::size_t kOps = 10000;

struct ScriptedFailure {};

/// Everything observable about one script execution: one encoded result
/// per op, plus the final sorted dump. Backend-independent by design, so
/// traces diff exactly across backends.
struct Trace {
  std::vector<long> results;
  std::vector<std::pair<std::string, std::string>> final_dump;
};

/// The store's canonical scan order: (hash, key) ascending — what
/// scan_from emits, and the order the reference must be sorted into
/// before slicing a range for comparison.
bool canon_key_less(const std::string& a, const std::string& b) {
  return hohtm::kv::detail::precedes(hohtm::kv::detail::hash_bytes(a), a,
                                     hohtm::kv::detail::hash_bytes(b), b);
}

bool canon_entry_less(const std::pair<std::string, std::string>& a,
                      const std::pair<std::string, std::string>& b) {
  return canon_key_less(a.first, b.first);
}

// Out-parameter instead of a return value: the ASSERTs inside require a
// void-returning function (gtest's fatal-failure contract).
template <class TM>
void run_kv_script(std::uint64_t seed, Trace& t) {
  using Store = hohtm::kv::Store<TM, hohtm::rr::RrV<TM>>;
  const long long baseline = hohtm::reclaim::Gauge::live();
  t.results.reserve(kOps);
  {
    // Small window and low growth threshold: the script's bursts drive
    // several table swaps, so resize runs interleaved with the checked
    // operations rather than in a separate phase.
    typename Store::Options opt;
    opt.window = 4;
    opt.grow_chain = 4;
    Store store(opt);
    std::map<std::string, std::string> ref;
    hohtm::util::Xoshiro256 rng(seed);
    std::string value;

    bool armed = false;
    store.set_fail_hook_for_testing([&armed] {
      if (armed) throw ScriptedFailure{};
    });

    for (std::size_t op = 0; op < kOps; ++op) {
      const std::string key = "k" + std::to_string(rng.next_below(192));
      const int dice = static_cast<int>(rng.next_below(100));
      long result = 0;
      if (dice < 30) {
        const std::string val = "v" + std::to_string(op);
        const bool created = store.put(key, val);
        ASSERT_EQ(created, ref.find(key) == ref.end())
            << TM::name() << " op " << op << " (seed " << seed << ")";
        ref[key] = val;
        result = created ? 1 : 0;
      } else if (dice < 55) {
        const bool found = store.get(key, value);
        const auto it = ref.find(key);
        ASSERT_EQ(found, it != ref.end())
            << TM::name() << " op " << op << " (seed " << seed << ")";
        if (found) {
          ASSERT_EQ(value, it->second)
              << TM::name() << " op " << op << " (seed " << seed << ")";
        }
        result = found ? 2 : -2;
      } else if (dice < 75) {
        const bool removed = store.del(key);
        ASSERT_EQ(removed, ref.erase(key) == 1u)
            << TM::name() << " op " << op << " (seed " << seed << ")";
        result = removed ? 3 : -3;
      } else if (dice < 78) {
        // Bounded scan from the table head: visits exactly
        // min(limit, occupancy) entries regardless of layout.
        const std::size_t limit = rng.next_below(32);
        const std::size_t count =
            store.scan(limit, [](const std::string&, const std::string&) {});
        ASSERT_EQ(count, std::min(limit, ref.size()))
            << TM::name() << " op " << op << " (seed " << seed << ")";
        result = static_cast<long>(count);
      } else if (dice < 82) {
        // Ranged scan from a (possibly absent) hot key: the emitted
        // (key, value) sequence must equal the reference's
        // canonical-order slice exactly — the snapshot-consistent
        // prefix, sorted, no duplicates, no phantoms.
        const std::size_t limit =
            1 + static_cast<std::size_t>(rng.next_below(24));
        std::vector<std::pair<std::string, std::string>> got;
        const std::size_t count = store.scan_from(
            key, limit, [&got](const std::string& k, const std::string& v) {
              got.emplace_back(k, v);
            });
        std::vector<std::pair<std::string, std::string>> want(ref.begin(),
                                                              ref.end());
        std::sort(want.begin(), want.end(), canon_entry_less);
        const auto from = std::find_if(
            want.begin(), want.end(),
            [&key](const std::pair<std::string, std::string>& e) {
              return !canon_key_less(e.first, key);  // first not before key
            });
        want.erase(want.begin(), from);
        if (want.size() > limit) want.resize(limit);
        ASSERT_EQ(got, want)
            << TM::name() << " op " << op << " (seed " << seed << ")";
        ASSERT_EQ(count, got.size())
            << TM::name() << " op " << op << " (seed " << seed << ")";
        result = 6 + static_cast<long>(count);
      } else if (dice < 90) {
        // A user exception thrown from inside the mutating transaction:
        // the whole attempt (node allocation included) must vanish, and
        // the exception must reach the caller.
        const bool was_present = ref.find(key) != ref.end();
        armed = true;
        bool thrown = false;
        try {
          if (dice < 86) {
            store.put(key, "phantom");
          } else {
            store.del(key);
          }
        } catch (const ScriptedFailure&) {
          thrown = true;
        }
        armed = false;
        ASSERT_TRUE(thrown)
            << TM::name() << " op " << op << " (seed " << seed << ")";
        ASSERT_EQ(store.get(key, value), was_present)
            << TM::name() << " rollback leaked at op " << op << " (seed "
            << seed << ")";
        if (was_present) {
          ASSERT_EQ(value, ref[key]);
        }
        result = 4;
      } else {
        // Insert burst: fresh keys pile into the hot shards until the
        // observed chains trip another grow, so later ops run against a
        // store that is mid-migration.
        for (int i = 0; i < 24; ++i) {
          const std::string bkey =
              "b" + std::to_string(op) + "-" + std::to_string(i);
          ASSERT_TRUE(store.put(bkey, "burst"))
              << TM::name() << " op " << op << " (seed " << seed << ")";
          ref[bkey] = "burst";
        }
        result = 5;
      }
      t.results.push_back(result);

      if (op % 1000 == 999) {
        // Full-dump checkpoint: the store's contents equal the reference
        // as a set of pairs (scan order is (bucket, hash, key), so the
        // comparison sorts).
        std::set<std::pair<std::string, std::string>> dumped;
        store.scan(ref.size() + 10, [&dumped](const std::string& k,
                                              const std::string& v) {
          dumped.emplace(k, v);
        });
        std::set<std::pair<std::string, std::string>> expected(ref.begin(),
                                                               ref.end());
        ASSERT_EQ(dumped, expected)
            << TM::name() << " checkpoint at op " << op << " (seed " << seed
            << ")";
      }
    }

    store.finish_migration();
    EXPECT_FALSE(store.migrating()) << TM::name();
    EXPECT_EQ(store.tables_retired(), store.tables_swapped()) << TM::name();
    EXPECT_GE(store.tables_swapped(), 1u)
        << TM::name() << ": the bursts never triggered a resize";
    EXPECT_TRUE(store.is_consistent()) << TM::name();
    EXPECT_EQ(store.size(), ref.size()) << TM::name();
    // Settled Gauge-exact accounting: nodes + one table per shard + the
    // reservation algorithm's per-thread state, nothing else.
    EXPECT_EQ(hohtm::reclaim::Gauge::live() - baseline,
              static_cast<long long>(store.size() + store.shard_count() +
                                     store.reservation_overhead()))
        << TM::name() << " (seed " << seed << ")";
    store.scan(ref.size() + 10,
               [&t](const std::string& k, const std::string& v) {
                 t.final_dump.emplace_back(k, v);
               });
    std::sort(t.final_dump.begin(), t.final_dump.end());
  }
  // The store freed every node and table it ever allocated.
  EXPECT_EQ(hohtm::reclaim::Gauge::live(), baseline)
      << TM::name() << " (seed " << seed << ")";
}

template <class TM>
void diff_against_oracle(std::uint64_t seed) {
  Trace oracle;
  ASSERT_NO_FATAL_FAILURE(run_kv_script<hohtm::tm::GLock>(seed, oracle));
  Trace candidate;
  ASSERT_NO_FATAL_FAILURE(run_kv_script<TM>(seed, candidate));
  ASSERT_EQ(candidate.results.size(), oracle.results.size());
  for (std::size_t op = 0; op < oracle.results.size(); ++op) {
    ASSERT_EQ(candidate.results[op], oracle.results[op])
        << TM::name() << " diverged from glock at op " << op << " (seed "
        << seed << ")";
  }
  EXPECT_EQ(candidate.final_dump, oracle.final_dump)
      << TM::name() << " final contents diverged (seed " << seed << ")";
}

TEST(KvDifferential, TmlMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Tml>(0x10ad5eedULL);
}

TEST(KvDifferential, NorecMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Norec>(0x10ad5eedULL);
}

TEST(KvDifferential, Tl2MatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::Tl2>(0x10ad5eedULL);
}

TEST(KvDifferential, TlEagerMatchesGlockOracle) {
  diff_against_oracle<hohtm::tm::TlEager>(0x10ad5eedULL);
}

// A second seed per backend guards against a lucky script (same policy
// as differential_test.cpp).
TEST(KvDifferential, SecondSeedSweep) {
  diff_against_oracle<hohtm::tm::Tml>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::Norec>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::Tl2>(0xba5eba11ULL);
  diff_against_oracle<hohtm::tm::TlEager>(0xba5eba11ULL);
}

}  // namespace
