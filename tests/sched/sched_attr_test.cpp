// Schedule exploration of causal abort attribution (docs/OBSERVABILITY.md):
// when a revocation costs a hand-over-hand traverser its parked position,
// the loss record must name the revoker — a valid aborter slot and the
// revoke site — in EVERY schedule. The attribution invariant is exact by
// construction (every loss lands in exactly one aborter bucket and one
// site bucket), so the victim-side check here is `unknown == 0`: with the
// revoker publishing to the RevocationBoard and only one contended node,
// no loss may fall into the unknown bucket.
//
// The kDropAborterId mutant erases the revoker's board publish (and the
// backends' aborter stamps); the explorer must find a schedule where a
// loss goes unattributed, within a bounded budget, and replay it
// byte-identically from the recorded choices.
//
// Backend is TML for the same determinism reason as sched_rr_test.cpp:
// address-independent conflict detection keeps control flow identical
// across schedules.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/rr_v.hpp"
#include "ds/window_policy.hpp"
#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "tm/config.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;
using hohtm::tm::Tml;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

// ---------------------------------------------------------------------------
// Scenario 1: reservation loss must name its revoker.

using Rr = hohtm::rr::RrV<Tml>;
using Boundary = hohtm::ds::WindowBoundary<Rr>;

constexpr auto kSite = hohtm::tm::RevokeSite::kListRemove;
constexpr auto kSiteIndex = static_cast<std::size_t>(kSite);

struct AttrState {
  // No default member initializer: the struct is completed inside the
  // enclosing class where its static member is declared (same C++20
  // wrinkle as Watchdog::Slot); zero-init is what we want anyway.
  struct Node {
    long payload;
  };
  // Static storage: identical addresses (and board fingerprints) across
  // schedules, a determinism requirement of DFS prefix replay.
  static inline Node node;
  static inline Rr reservations{4};
  // Stats accumulate across schedules; the check diffs against setup.
  static inline std::uint64_t base_losses;
  static inline std::uint64_t base_attributed;
  static inline std::uint64_t base_unknown;
  static inline std::uint64_t base_site;
};

Scenario attribution_scenario() {
  Scenario s;
  s.setup = [] {
    // A previous schedule's publish for the same node address would let
    // a mutated revoker inherit its attribution — the mutant would
    // survive every schedule. Fresh board per schedule.
    hohtm::rr::RevocationBoard::reset_for_testing();
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    AttrState::base_losses = t.reservation_losses;
    AttrState::base_attributed = t.attributed_losses();
    AttrState::base_unknown = t.unknown_losses();
    AttrState::base_site = t.loss_by_site[kSiteIndex];
  };
  s.bodies = {
      // Traverser: park a reservation at a window boundary, then resume
      // in the next transaction. A nil resume is a lost position, and
      // its loss record must attribute the revoker.
      [] {
        Tml::atomically([](auto& tx) {
          AttrState::reservations.register_thread(tx);
          AttrState::reservations.reserve(tx, &AttrState::node);
        });
        const hohtm::rr::Ref resumed = Tml::atomically(
            [](auto& tx) { return AttrState::reservations.get(tx); });
        if (resumed == nullptr)
          Boundary::note_position_lost(&AttrState::node);
      },
      // Remover: revoke the parked node from a named site, as
      // ds::SllHoh::remove / kv::Store::del do.
      [] {
        hohtm::rr::SiteScope site(kSite);
        Tml::atomically([](auto& tx) {
          AttrState::reservations.revoke(tx, &AttrState::node);
        });
      },
  };
  s.check = [] {
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    const std::uint64_t losses =
        t.reservation_losses - AttrState::base_losses;
    const std::uint64_t attributed =
        t.attributed_losses() - AttrState::base_attributed;
    const std::uint64_t unknown =
        t.unknown_losses() - AttrState::base_unknown;
    const std::uint64_t at_site =
        t.loss_by_site[kSiteIndex] - AttrState::base_site;
    if (attributed + unknown != losses)
      return "aborter buckets sum to " + std::to_string(attributed + unknown) +
             " but the schedule lost " + std::to_string(losses);
    if (unknown != 0)
      return std::to_string(unknown) +
             " revocation loss(es) carry no aborter id";
    if (at_site != losses)
      return "revoke site buckets recorded " + std::to_string(at_site) +
             " of " + std::to_string(losses) + " losses";
    return std::string();
  };
  return s;
}

TEST(SchedAttr, RevocationLossAlwaysNamesItsRevoker) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(attribution_scenario(), 8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  std::cout << "   [exploration] " << describe(r) << "\n";
}

TEST(SchedAttr, DropAborterIdMutantCaught) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const Scenario s = attribution_scenario();
  set_mutation(Mutation::kDropAborterId);
  const ExploreResult r =
      explore_dfs(s, 40000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << "mutant survived: " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  // The recorded choices must reproduce the identical failing schedule.
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << "replay diverged";
}

// ---------------------------------------------------------------------------
// Scenario 2: a fused attempt killed by a conflicting writer must record
// its fallback with the writer's identity (fusion_fb_unknown stays 0 —
// TML's owner cell is stamped before the clock can move, so every
// read-validation abort in a two-thread schedule has a named aborter).

struct FusionAttrState {
  static inline long a = 0;
  static inline long b = 0;
  static inline std::uint64_t base_attributed;
  static inline std::uint64_t base_unknown;
};

Scenario fusion_attribution_scenario() {
  Scenario s;
  s.setup = [] {
    FusionAttrState::a = 0;
    FusionAttrState::b = 0;
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    FusionAttrState::base_attributed = t.fusion_fb_attributed;
    FusionAttrState::base_unknown = t.fusion_fb_unknown;
  };
  s.bodies = {
      [] {
        hohtm::ds::FusionState fusion(1);
        Tml::atomically([&](auto& tx) -> long {
          fusion.on_attempt_start();
          long sum = tx.read(FusionAttrState::a);
          if (fusion.try_fuse()) sum += tx.read(FusionAttrState::b);
          return sum;
        });
        fusion.on_commit();
      },
      [] {
        Tml::atomically([](auto& tx) {
          tx.write(FusionAttrState::a, tx.read(FusionAttrState::a) + 10);
          tx.write(FusionAttrState::b, tx.read(FusionAttrState::b) + 1);
        });
      },
  };
  s.check = [] {
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    const std::uint64_t unknown =
        t.fusion_fb_unknown - FusionAttrState::base_unknown;
    if (unknown != 0)
      return std::to_string(unknown) +
             " fusion fallback(s) carry no aborter id";
    return std::string();
  };
  return s;
}

TEST(SchedAttr, FusionFallbackNamesItsAborter) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r = explore_dfs(fusion_attribution_scenario(),
                                      8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  // The exploration must actually have exercised a fallback somewhere,
  // or the invariant was never tested.
  const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
  EXPECT_GT(t.fusion_fb_attributed, 0u)
      << "no schedule drove a fused attempt into a fallback";
}

}  // namespace
