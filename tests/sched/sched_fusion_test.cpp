// Schedule exploration of window fusion (ds/window_policy.hpp): the
// correctness edge of commit elision is the fallback under contention.
//
// Three scenarios:
//
//  1. A fused list traversal racing a remove that revokes and precisely
//     frees a node mid-walk. Every interleaving must keep the list
//     consistent, answer correctly, and — the fusion contract — balance
//     the books: each aborted speculative attempt is answered by exactly
//     one kFusionFallback record (the op retreats to the small-window
//     protocol), so per schedule fused_aborts == fusion_fallbacks.
//
//  2. The same invariant on a distilled two-node read, static state so a
//     failing schedule replays byte-identically. The
//     kFusionNeverFallback mutant keeps speculating after an abort —
//     fused_aborts advances without a matching fallback — and the
//     explorer must catch it within a bounded budget.
//
//  3. The contention gate: with fusion behind WindowTuner's clean-streak
//     gate, a contended schedule never earns a budget, so fusion
//     contributes zero speculative aborts — the abort-telemetry side of
//     the acceptance criterion.
//
// Backend is TML throughout: address-independent conflict detection is
// the determinism requirement of DFS prefix replay.
#include <cstdint>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "core/rr_v.hpp"
#include "ds/sll_hoh.hpp"
#include "ds/window_policy.hpp"
#include "sched/explore.hpp"
#include "sched/schedpoint.hpp"
#include "tm/config.hpp"
#include "tm/tml.hpp"

namespace {

using hohtm::sched::ExploreResult;
using hohtm::sched::Mutation;
using hohtm::sched::Scenario;
using hohtm::sched::describe;
using hohtm::sched::depth_multiplier;
using hohtm::sched::explore_dfs;
using hohtm::sched::format_steps;
using hohtm::sched::replay_choices;
using hohtm::sched::set_mutation;
using hohtm::tm::Tml;

#define REQUIRE_SCHED_BUILD()                                       \
  do {                                                              \
    if constexpr (!hohtm::sched::kSchedBuild)                       \
      GTEST_SKIP() << "needs -DHOHTM_SCHED=ON (scripts/check.sh "   \
                      "--sched)";                                   \
  } while (0)

struct ScenarioGuard {
  ScenarioGuard() { hohtm::tm::Config::set_serial_threshold(1000); }
  ~ScenarioGuard() {
    set_mutation(Mutation::kNone);
    hohtm::tm::Config::set_serial_threshold(8);
  }
};

std::uint64_t fallbacks(const hohtm::tm::StatCounters& c) {
  return c.cause(hohtm::tm::AbortCause::kFusionFallback);
}

// ---------------------------------------------------------------------------
// Scenario 1: fused traversal vs. a revoking remove, on the real list.

using FusedList = hohtm::ds::SllHoh<Tml, hohtm::rr::RrV<Tml>>;

struct ListState {
  static inline std::optional<FusedList> list;
  // Per-schedule telemetry baselines: Stats accumulate across schedules,
  // so the check diffs against what setup saw.
  static inline std::uint64_t base_fused_aborts;
  static inline std::uint64_t base_fallbacks;
  static inline std::uint64_t base_fused_windows;
};

void snapshot_baselines() {
  const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
  ListState::base_fused_aborts = t.fused_aborts;
  ListState::base_fallbacks = fallbacks(t);
  ListState::base_fused_windows = t.fused_windows;
}

std::string check_fusion_books() {
  const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
  const std::uint64_t fused_aborts =
      t.fused_aborts - ListState::base_fused_aborts;
  const std::uint64_t fell_back = fallbacks(t) - ListState::base_fallbacks;
  if (fused_aborts != fell_back)
    return "fused abort books unbalanced: " + std::to_string(fused_aborts) +
           " speculative aborts vs " + std::to_string(fell_back) +
           " fallbacks";
  return std::string();
}

Scenario fused_vs_revoke_scenario() {
  Scenario s;
  s.setup = [] {
    ListState::list.reset();
    // window = 1, no scatter: every schedule issues identical
    // transactions; budget 2 makes each traversal speculate.
    ListState::list.emplace(/*window=*/1, /*scatter=*/false);
    FusedList& l = *ListState::list;
    for (long k = 0; k < 5; ++k) l.insert(k);
    l.enable_fusion(/*budget=*/2);
    snapshot_baselines();
  };
  s.bodies = {
      // Traverser: a fused walk to the tail, crossing the remover's
      // victim. May retreat (fallback) or restart (revoked parking
      // node); either way it must find the still-present key.
      [] {
        if (!ListState::list->contains(4)) ListState::list.emplace();  // mark
      },
      // Remover: unlink + revoke + precise free of a mid-list node, the
      // write every fused read set crosses.
      [] { ListState::list->remove(2); },
  };
  s.check = [] {
    if (!ListState::list.has_value())
      return std::string("fused traversal lost a present key");
    FusedList& l = *ListState::list;
    if (l.contains(2)) return std::string("removed key survived");
    if (!l.is_sorted()) return std::string("list order broken");
    if (l.size() != 4) return std::string("wrong size after remove");
    const std::string books = check_fusion_books();
    if (!books.empty()) return books;
    // The scenario must genuinely speculate: the traverser either
    // committed elided boundaries or paid a speculative abort.
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    if (t.fused_windows == ListState::base_fused_windows &&
        t.fused_aborts == ListState::base_fused_aborts)
      return std::string("no schedule exercised fusion");
    return std::string();
  };
  return s;
}

TEST(SchedFusion, FusedTraversalVsRevoke) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(fused_vs_revoke_scenario(), 4000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  std::cout << "   [exploration] " << describe(r) << "\n";
  ListState::list.reset();
}

// ---------------------------------------------------------------------------
// Scenario 2: the fallback books on static state, so the mutant's
// failing schedule replays byte-identically from recorded choices.

struct TwoCell {
  static inline long a = 0;
  static inline long b = 0;
};

Scenario fallback_books_scenario() {
  Scenario s;
  s.setup = [] {
    TwoCell::a = 0;
    TwoCell::b = 0;
    snapshot_baselines();
  };
  s.bodies = {
      // Reader: one planned window reads `a`; the fusion budget lets it
      // keep going and read `b` in the same transaction. An abort lands
      // on on_attempt_start, which must retreat (or, mutated, doesn't).
      [] {
        hohtm::ds::FusionState fusion(1);
        Tml::atomically([&](auto& tx) -> long {
          fusion.on_attempt_start();
          long sum = tx.read(TwoCell::a);
          if (fusion.try_fuse()) sum += tx.read(TwoCell::b);
          return sum;
        });
        fusion.on_commit();
      },
      // Writer: a conflicting commit that aborts any in-flight reader.
      [] {
        Tml::atomically([](auto& tx) {
          tx.write(TwoCell::a, tx.read(TwoCell::a) + 10);
          tx.write(TwoCell::b, tx.read(TwoCell::b) + 1);
        });
      },
  };
  s.check = [] { return check_fusion_books(); };
  return s;
}

TEST(SchedFusion, FallbackBalancesTheBooks) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(fallback_books_scenario(), 8000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
}

TEST(SchedFusion, NeverFallbackMutantCaught) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const Scenario s = fallback_books_scenario();
  set_mutation(Mutation::kFusionNeverFallback);
  const ExploreResult r = explore_dfs(s, 40000 * depth_multiplier(), 400);
  ASSERT_TRUE(r.failed) << "mutant survived " << describe(r);
  ASSERT_FALSE(r.failing_choices.empty());
  const ExploreResult again = replay_choices(s, r.failing_choices, 400);
  EXPECT_TRUE(again.failed) << describe(again);
  EXPECT_EQ(format_steps(again.failing_steps), format_steps(r.failing_steps))
      << "replay diverged";
}

// ---------------------------------------------------------------------------
// Scenario 3: behind the tuner's contention gate, contended schedules
// never earn a budget — fusion adds zero speculative aborts.

Scenario gated_contention_scenario() {
  Scenario s;
  s.setup = [] {
    ListState::list.reset();
    ListState::list.emplace(/*window=*/1, /*scatter=*/false);
    FusedList& l = *ListState::list;
    for (long k = 0; k < 5; ++k) l.insert(k);
    // Gated: the budget exists but sits behind WindowTuner's clean
    // streak, which a fresh thread cannot have built.
    l.enable_adaptive_window(1, 8);
    l.enable_fusion(/*budget=*/4);
    snapshot_baselines();
  };
  s.bodies = {
      [] { ListState::list->contains(4); },
      [] { ListState::list->remove(2); },
  };
  s.check = [] {
    FusedList& l = *ListState::list;
    if (l.contains(2)) return std::string("removed key survived");
    if (!l.is_sorted()) return std::string("list order broken");
    const hohtm::tm::StatCounters t = hohtm::tm::Stats::total();
    if (t.fused_aborts != ListState::base_fused_aborts)
      return std::string("gated fusion paid a speculative abort");
    if (t.fused_windows != ListState::base_fused_windows)
      return std::string("gated fusion elided a boundary under contention");
    return std::string();
  };
  return s;
}

TEST(SchedFusion, ContentionGateAddsZeroAborts) {
  REQUIRE_SCHED_BUILD();
  ScenarioGuard guard;
  const ExploreResult r =
      explore_dfs(gated_contention_scenario(), 4000 * depth_multiplier(), 400);
  EXPECT_FALSE(r.failed) << describe(r);
  EXPECT_GT(r.schedules, 1u) << describe(r);
  ListState::list.reset();
}

}  // namespace
