// Range-scan coverage for the sharded KV store (docs/KV.md, "Range
// scans"): canonical (hash, key) order against a sorted mirror, edge
// cases (empty store, limit 0/1, absent start key), scans that span
// shard boundaries, scans against a store frozen mid-resize, and the
// scan telemetry counters. Everything here is single-threaded and
// deterministic — the concurrent interleavings live in
// tests/sched/sched_scan_test.cpp, and the smoke that forces a resize
// *during* a scan is bench/kv_ycsb --workload=E --smoke.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/rr.hpp"
#include "reclaim/gauge.hpp"

namespace hohtm {
namespace {

using ScanStore = kv::Store<tm::Norec, rr::RrV<tm::Norec>>;
using Entry = std::pair<std::string, std::string>;

/// The store's canonical total order over keys: hash first, then key
/// bytes — the order chains (and therefore scans) are sorted by.
bool canon_less(const std::string& a, const std::string& b) {
  return kv::detail::precedes(kv::detail::hash_bytes(a), a,
                              kv::detail::hash_bytes(b), b);
}

bool entry_canon_less(const Entry& a, const Entry& b) {
  return canon_less(a.first, b.first);
}

/// Mirror of the store's contents as scan_from would emit it: all
/// entries in canonical order, starting at `start`'s position
/// (inclusive), truncated to `limit`.
std::vector<Entry> expected_range(const std::map<std::string, std::string>& ref,
                                  const std::string& start,
                                  std::size_t limit) {
  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);
  auto it = std::find_if(sorted.begin(), sorted.end(), [&](const Entry& e) {
    return !canon_less(e.first, start);  // first key not before start
  });
  std::vector<Entry> out;
  for (; it != sorted.end() && out.size() < limit; ++it) out.push_back(*it);
  return out;
}

template <class Store>
std::vector<Entry> collect_from(Store& store, const std::string& start,
                                std::size_t limit) {
  std::vector<Entry> got;
  store.scan_from(start, limit, [&](const std::string& k,
                                    const std::string& v) {
    got.emplace_back(k, v);
  });
  return got;
}

TEST(KvScan, EmptyStoreAndLimitZero) {
  ScanStore store;
  std::size_t visits = 0;
  auto count_visit = [&](const std::string&, const std::string&) { ++visits; };
  EXPECT_EQ(store.scan(16, count_visit), 0u);
  EXPECT_EQ(store.scan_from("anything", 16, count_visit), 0u);
  EXPECT_EQ(visits, 0u);

  // limit 0 is a no-op even on a populated store — no windows run, no
  // entries surface, but the op still counts as a scan.
  store.put("a", "1");
  const std::uint64_t scans_before = store.scans();
  const std::uint64_t windows_before = store.scan_windows();
  EXPECT_EQ(store.scan(0, count_visit), 0u);
  EXPECT_EQ(store.scan_from("a", 0, count_visit), 0u);
  EXPECT_EQ(visits, 0u);
  EXPECT_EQ(store.scans(), scans_before + 2);
  EXPECT_EQ(store.scan_windows(), windows_before);
}

TEST(KvScan, LimitOneReturnsCanonicalFirst) {
  ScanStore store;
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "one" + std::to_string(i);
    store.put(key, "v" + std::to_string(i));
    ref[key] = "v" + std::to_string(i);
  }
  // Note: scan() starts at the true canonical minimum (hash 0), which
  // is NOT the same as scan_from("") — the empty string hashes to an
  // interior position like any other key.
  std::vector<Entry> want(ref.begin(), ref.end());
  std::sort(want.begin(), want.end(), entry_canon_less);
  std::vector<Entry> got;
  EXPECT_EQ(store.scan(1, [&](const std::string& k, const std::string& v) {
              got.emplace_back(k, v);
            }),
            1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], want[0]);
  // ...and scanning from that key inclusive returns it again.
  EXPECT_EQ(collect_from(store, got[0].first, 1), got);
}

TEST(KvScan, CanonicalOrderMatchesSortedMirror) {
  ScanStore store;
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "mirror" + std::to_string(i);
    const std::string val = "v" + std::to_string(i);
    store.put(key, val);
    ref[key] = val;
  }
  store.finish_migration();

  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);
  std::vector<Entry> got;
  EXPECT_EQ(store.scan(ref.size() + 10,
                       [&](const std::string& k, const std::string& v) {
                         got.emplace_back(k, v);
                       }),
            ref.size());
  EXPECT_EQ(got, sorted);  // exact sequence: order, no dups, no phantoms

  // Ranged scans from several interior positions match the mirror's
  // suffix slices exactly (inclusive start, bounded length).
  for (std::size_t at : {std::size_t{0}, std::size_t{1}, std::size_t{137},
                         sorted.size() - 1}) {
    const std::string& start = sorted[at].first;
    for (std::size_t limit : {std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
      EXPECT_EQ(collect_from(store, start, limit),
                expected_range(ref, start, limit))
          << "start #" << at << " limit " << limit;
    }
  }
}

TEST(KvScan, AbsentStartKeyStartsAtSuccessor) {
  ScanStore store;
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "gap" + std::to_string(2 * i);  // evens only
    store.put(key, "v");
    ref[key] = "v";
  }
  // Absent keys (odd suffixes) resolve to their canonical successor —
  // same slice the mirror produces for the same start position.
  for (int i = 1; i < 100; i += 17) {
    const std::string start = "gap" + std::to_string(2 * i + 1);
    EXPECT_EQ(collect_from(store, start, 5), expected_range(ref, start, 5))
        << "start " << start;
  }
  // A start past the last canonical key scans nothing; the mirror
  // agrees by construction.
  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);
  const std::string last = sorted.back().first;
  EXPECT_EQ(collect_from(store, last, 10).size(),
            expected_range(ref, last, 10).size());
}

TEST(KvScan, SpansShardBoundaries) {
  ScanStore::Options opt;
  opt.log2_shards = 3;  // 8 shards, so most scans cross several
  opt.window = 4;
  ScanStore store(opt);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "span" + std::to_string(i);
    store.put(key, "v" + std::to_string(i));
    ref[key] = "v" + std::to_string(i);
  }
  store.finish_migration();
  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);

  // The full scan crosses every shard in ascending hash order: the
  // canonical order is shard-major (top hash bits pick the shard), so
  // the mirror comparison also proves the shard stitching.
  std::vector<Entry> got;
  EXPECT_EQ(store.scan(ref.size(),
                       [&](const std::string& k, const std::string& v) {
                         got.emplace_back(k, v);
                       }),
            ref.size());
  EXPECT_EQ(got, sorted);

  // A bounded scan starting late in one shard spills into the next
  // shard(s) seamlessly.
  const std::string start = sorted[sorted.size() / 2].first;
  EXPECT_EQ(collect_from(store, start, 64), expected_range(ref, start, 64));
}

TEST(KvScan, ScansStoreFrozenMidResize) {
  ScanStore::Options opt;
  opt.log2_shards = 0;
  opt.log2_buckets = 0;
  opt.window = 4;
  opt.grow_chain = 1;       // first chain collision trips a grow
  opt.auto_migrate = false;  // ...and nothing settles it for us
  ScanStore store(opt);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 32; ++i) {
    const std::string key = "mid" + std::to_string(i);
    store.put(key, "v" + std::to_string(i));
    ref[key] = "v" + std::to_string(i);
  }
  ASSERT_TRUE(store.migrating()) << "setup never left a resize pending";

  // The scan itself migrates the buckets it needs (scan windows reach
  // unmigrated old buckets and drive migrate_window before walking), so
  // a store frozen mid-resize still yields the exact canonical dump.
  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);
  std::vector<Entry> got;
  EXPECT_EQ(store.scan(ref.size() + 10,
                       [&](const std::string& k, const std::string& v) {
                         got.emplace_back(k, v);
                       }),
            ref.size());
  EXPECT_EQ(got, sorted);

  store.finish_migration();
  EXPECT_FALSE(store.migrating());
  EXPECT_TRUE(store.is_consistent());
  EXPECT_EQ(store.tables_retired(), store.tables_swapped());
}

TEST(KvScan, CountersTrackWindowsAndScans) {
  ScanStore::Options opt;
  opt.window = 2;  // tiny windows force multiple per scan
  ScanStore store(opt);
  for (int i = 0; i < 40; ++i)
    store.put("ctr" + std::to_string(i), "v");
  store.finish_migration();

  const std::uint64_t scans0 = store.scans();
  const std::uint64_t windows0 = store.scan_windows();
  EXPECT_EQ(store.scan(40, [](const std::string&, const std::string&) {}),
            40u);
  EXPECT_EQ(store.scans(), scans0 + 1);
  // 40 entries at <= 2 walked nodes per window transaction: at least 20
  // committed windows (empty-bucket hops and shard finishes add more).
  EXPECT_GE(store.scan_windows(), windows0 + 20);
  // Single-threaded: nothing revoked the parked cursor.
  EXPECT_EQ(store.scan_resumes(), 0u);
}

// RR-Null carries no real reservation, so every window boundary comes
// back nil — the scan must reseek from its remembered position each
// window and still produce the exact canonical sequence (and the nil
// steady state must not count as a "resume" event). The store keeps the
// default window (16): keyed ops under RR-Null restart from the chain
// head every window, so they only terminate while chains stay shorter
// than the window (grow_chain = 8 guarantees that); the *scan* has no
// such constraint — reseek skips are budget-free — which is exactly
// what this test exercises.
TEST(KvScan, NullReservationReseeksEveryWindow) {
  using NullStore = kv::Store<tm::Norec, rr::RrNull<tm::Norec>>;
  NullStore store;
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 80; ++i) {
    const std::string key = "null" + std::to_string(i);
    store.put(key, "v" + std::to_string(i));
    ref[key] = "v" + std::to_string(i);
  }
  store.finish_migration();
  std::vector<Entry> sorted(ref.begin(), ref.end());
  std::sort(sorted.begin(), sorted.end(), entry_canon_less);
  std::vector<Entry> got;
  EXPECT_EQ(store.scan(ref.size(),
                       [&](const std::string& k, const std::string& v) {
                         got.emplace_back(k, v);
                       }),
            ref.size());
  EXPECT_EQ(got, sorted);
  // 80 keys over 4 shards: every shard commits at least its closing
  // window and the largest shard (>= 20 keys) needs a handover — so at
  // least one boundary came back nil and was reseeked.
  EXPECT_GE(store.scan_windows(), 5u);
  EXPECT_EQ(store.scan_resumes(), 0u);
}

// Scans allocate nothing: a scanned-then-emptied store leaves the Gauge
// exactly where it started.
TEST(KvScan, ScanLeavesNoFootprint) {
  const long long baseline = reclaim::Gauge::live();
  {
    ScanStore store;
    std::vector<std::string> keys;
    for (int i = 0; i < 50; ++i) {
      keys.push_back("leak" + std::to_string(i));
      store.put(keys.back(), "v");
    }
    store.finish_migration();
    store.scan(100, [](const std::string&, const std::string&) {});
    store.scan_from(keys[10], 20,
                    [](const std::string&, const std::string&) {});
    for (const std::string& k : keys) store.del(k);
    EXPECT_EQ(store.size(), 0u);
  }
  EXPECT_EQ(reclaim::Gauge::live(), baseline);
}

}  // namespace
}  // namespace hohtm
