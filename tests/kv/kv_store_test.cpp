// Tier-1 coverage for the sharded transactional KV store: the full
// backend x reservation matrix on the basic API, reference-checked
// random histories, incremental resize with precise old-table
// reclamation (Gauge-exact, no sleeps), scans, and rollback of a
// failing mutation. Concurrency cases are small and assertion-driven —
// nothing here depends on timing (single-core CI box).
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rr.hpp"
#include "reclaim/gauge.hpp"
#include "util/random.hpp"

namespace hohtm {
namespace {

template <class TM_, class RR_>
struct Combo {
  using TM = TM_;
  using RR = RR_;
};

template <class C>
class KvStoreTest : public ::testing::Test {
 protected:
  using Store = kv::Store<typename C::TM, typename C::RR>;
};

using Combos = ::testing::Types<
    Combo<tm::GLock, rr::RrV<tm::GLock>>,
    Combo<tm::Tml, rr::RrXo<tm::Tml>>,
    Combo<tm::Norec, rr::RrV<tm::Norec>>,
    Combo<tm::Norec, rr::RrFa<tm::Norec>>,
    Combo<tm::Tl2, rr::RrSo<tm::Tl2>>,
    Combo<tm::TlEager, rr::RrDm<tm::TlEager>>,
    Combo<tm::Norec, rr::RrNull<tm::Norec>>>;
TYPED_TEST_SUITE(KvStoreTest, Combos);

TYPED_TEST(KvStoreTest, PutGetDelBasics) {
  typename TestFixture::Store store;
  std::string value;
  EXPECT_FALSE(store.get("alpha", value));
  EXPECT_TRUE(store.put("alpha", "1"));
  EXPECT_TRUE(store.get("alpha", value));
  EXPECT_EQ(value, "1");
  // Overwrite: not a new key, and readers see the new value.
  EXPECT_FALSE(store.put("alpha", "2"));
  EXPECT_TRUE(store.get("alpha", value));
  EXPECT_EQ(value, "2");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.del("alpha"));
  EXPECT_FALSE(store.del("alpha"));
  EXPECT_FALSE(store.get("alpha", value));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.is_consistent());
}

TYPED_TEST(KvStoreTest, VariableLengthKeysAndValues) {
  typename TestFixture::Store store;
  std::string value;
  // Empty key and empty value are legal payloads.
  EXPECT_TRUE(store.put("", "empty-key"));
  EXPECT_TRUE(store.put("empty-value", ""));
  EXPECT_TRUE(store.get("", value));
  EXPECT_EQ(value, "empty-key");
  EXPECT_TRUE(store.get("empty-value", value));
  EXPECT_EQ(value, "");
  // A value larger than any pool size class still round-trips (the flex
  // node is one block; the allocator routes big blocks by header).
  const std::string big(5000, 'x');
  const std::string key(300, 'k');
  EXPECT_TRUE(store.put(key, big));
  EXPECT_TRUE(store.get(key, value));
  EXPECT_EQ(value, big);
  EXPECT_TRUE(store.del(key));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.is_consistent());
}

TYPED_TEST(KvStoreTest, MatchesReferenceHistory) {
  typename TestFixture::Store store;
  std::map<std::string, std::string> reference;
  util::Xoshiro256 rng(0x6b765eedULL);
  std::string value;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(96));
    const int dice = static_cast<int>(rng.next_below(100));
    if (dice < 40) {
      const std::string val = "v" + std::to_string(i);
      const bool created = store.put(key, val);
      EXPECT_EQ(created, reference.find(key) == reference.end());
      reference[key] = val;
    } else if (dice < 65) {
      const bool removed = store.del(key);
      EXPECT_EQ(removed, reference.erase(key) == 1u);
    } else {
      const bool found = store.get(key, value);
      const auto it = reference.find(key);
      ASSERT_EQ(found, it != reference.end());
      if (found) {
        EXPECT_EQ(value, it->second);
      }
    }
  }
  EXPECT_EQ(store.size(), reference.size());
  EXPECT_TRUE(store.is_consistent());
  // Full dump equals the reference as a set of pairs.
  std::set<std::pair<std::string, std::string>> dumped;
  store.scan(reference.size() + 10, [&](const std::string& k,
                                        const std::string& v) {
    dumped.emplace(k, v);
  });
  std::set<std::pair<std::string, std::string>> expected(reference.begin(),
                                                         reference.end());
  EXPECT_EQ(dumped, expected);
}

TYPED_TEST(KvStoreTest, GrowCompletesAndFreesOldTablesPrecisely) {
  const long long baseline = reclaim::Gauge::live();
  {
    typename TestFixture::Store store;
    const std::size_t initial_buckets = store.bucket_count();
    for (int i = 0; i < 400; ++i)
      ASSERT_TRUE(store.put("key" + std::to_string(i), "v"));
    EXPECT_GE(store.tables_swapped(), 1u) << "growth never triggered";
    store.finish_migration();
    EXPECT_FALSE(store.migrating());
    // Every swap's old table was freed precisely (in the transaction
    // that migrated its last bucket — not by any background reclaimer).
    EXPECT_EQ(store.tables_retired(), store.tables_swapped());
    EXPECT_GT(store.bucket_count(), initial_buckets);
    EXPECT_GT(store.migrated_buckets(), 0u);
    EXPECT_TRUE(store.is_consistent());
    EXPECT_EQ(store.size(), 400u);
    std::string value;
    for (int i = 0; i < 400; ++i)
      EXPECT_TRUE(store.get("key" + std::to_string(i), value)) << i;
    // Gauge-exact accounting at the settled state: live objects are the
    // nodes, exactly one table per shard, and whatever per-thread state
    // the reservation algorithm owns (RR-FA/RR-DM allocate one node per
    // registered thread) — no retired table and no deleted node lingers.
    const long long tables =
        static_cast<long long>(store.shard_count());
    const long long rr_nodes =
        static_cast<long long>(store.reservation_overhead());
    EXPECT_EQ(reclaim::Gauge::live() - baseline,
              static_cast<long long>(store.size()) + tables + rr_nodes);
  }
  EXPECT_EQ(reclaim::Gauge::live(), baseline);
}

TYPED_TEST(KvStoreTest, DeleteFreesInTheUnlinkingTransaction) {
  typename TestFixture::Store store;
  for (int i = 0; i < 8; ++i)
    store.put("stable" + std::to_string(i), "v");
  store.finish_migration();
  const long long settled = reclaim::Gauge::live();
  ASSERT_TRUE(store.put("victim", "v"));
  EXPECT_EQ(reclaim::Gauge::live(), settled + 1);
  // The delete's own commit returns the node: no epoch to advance, no
  // scan to run, the gauge drops before the call returns.
  ASSERT_TRUE(store.del("victim"));
  EXPECT_EQ(reclaim::Gauge::live(), settled);
  // Overwrite frees the replaced node the same way: net zero.
  ASSERT_FALSE(store.put("stable0", "fresh"));
  EXPECT_EQ(reclaim::Gauge::live(), settled);
}

TYPED_TEST(KvStoreTest, ScanBoundsAndOrder) {
  typename TestFixture::Store store;
  std::vector<std::pair<std::string, std::string>> dump;
  const auto collect = [&](const std::string& k, const std::string& v) {
    dump.emplace_back(k, v);
  };
  EXPECT_EQ(store.scan(10, collect), 0u);
  for (int i = 0; i < 50; ++i)
    store.put("s" + std::to_string(i), std::to_string(i));
  dump.clear();
  EXPECT_EQ(store.scan(7, collect), 7u);
  EXPECT_EQ(dump.size(), 7u);
  dump.clear();
  EXPECT_EQ(store.scan(1000, collect), 50u);
  EXPECT_EQ(dump.size(), 50u);
  // scan_from an existing key starts exactly at that key.
  dump.clear();
  EXPECT_EQ(store.scan_from("s17", 1, collect), 1u);
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].first, "s17");
  EXPECT_EQ(dump[0].second, "17");
  EXPECT_TRUE(store.is_consistent());
}

TYPED_TEST(KvStoreTest, FailHookRollsBackTheWholeAttempt) {
  typename TestFixture::Store store;
  store.put("kept", "old");
  store.finish_migration();
  const long long settled = reclaim::Gauge::live();
  struct Boom {};
  bool arm = false;
  store.set_fail_hook_for_testing([&] {
    if (arm) throw Boom{};
  });
  arm = true;
  // A failing insert rolls back its node allocation (gauge unchanged)
  // and leaves the map untouched.
  EXPECT_THROW(store.put("phantom", "x"), Boom);
  // A failing overwrite neither frees the old node nor leaks the new.
  EXPECT_THROW(store.put("kept", "new"), Boom);
  // A failing delete keeps the node.
  EXPECT_THROW(store.del("kept"), Boom);
  arm = false;
  EXPECT_EQ(reclaim::Gauge::live(), settled);
  std::string value;
  EXPECT_FALSE(store.get("phantom", value));
  EXPECT_TRUE(store.get("kept", value));
  EXPECT_EQ(value, "old");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.is_consistent());
}

TYPED_TEST(KvStoreTest, ConcurrentChurnSettlesPrecisely) {
  const long long baseline = reclaim::Gauge::live();
  {
    typename TestFixture::Store store;
    const int kThreads = 2;
    const int kOps = 1500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        util::Xoshiro256 rng(0xc0ffee + t);
        std::string value;
        for (int i = 0; i < kOps; ++i) {
          const std::string key = "c" + std::to_string(rng.next_below(256));
          const int dice = static_cast<int>(rng.next_below(100));
          if (dice < 45) {
            store.put(key, "t" + std::to_string(t));
          } else if (dice < 70) {
            store.del(key);
          } else {
            store.get(key, value);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // The churn inserts enough distinct keys to trigger growth; the
    // migration protocol must have completed (or completes now) under
    // the mutation that ran concurrently with it.
    store.finish_migration();
    EXPECT_FALSE(store.migrating());
    EXPECT_GE(store.tables_swapped(), 1u);
    EXPECT_EQ(store.tables_retired(), store.tables_swapped());
    EXPECT_TRUE(store.is_consistent());
    const long long tables = static_cast<long long>(store.shard_count());
    const long long rr_nodes =
        static_cast<long long>(store.reservation_overhead());
    EXPECT_EQ(reclaim::Gauge::live() - baseline,
              static_cast<long long>(store.size()) + tables + rr_nodes);
  }
  EXPECT_EQ(reclaim::Gauge::live(), baseline);
}

}  // namespace
}  // namespace hohtm
