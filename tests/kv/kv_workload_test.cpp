// KV workload generator: key construction must be collision-free.
//
// make_key documents that the splitmix64 scramble is invertible, hence
// collision-free — but that only holds if the key embeds the *entire*
// scrambled rank. A truncated hex emission (the bug this pins) keeps
// only the top 4*digits bits, so distinct ranks can silently collide
// and shrink the prefilled key population under the workload's feet.
#include "kv/workload.hpp"

#include <cstdint>
#include <set>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/zipfian.hpp"

namespace hohtm::kv {
namespace {

TEST(KvWorkloadKey, ShapeAndDeterminism) {
  const std::string k = make_key(0);
  EXPECT_EQ(k.substr(0, 4), "user");
  // 16 hex digits always present (full 64-bit scramble), up to 8 more
  // of deterministic leading-zero padding for length variety.
  EXPECT_GE(k.size(), 4u + 16u);
  EXPECT_LE(k.size(), 4u + 24u);
  EXPECT_EQ(make_key(12345), make_key(12345));
}

TEST(KvWorkloadKey, EmbedsTheFullScrambledRank) {
  // Invertibility of the scramble transfers to the key only because the
  // key carries all 64 bits: parse the hex tail back and compare.
  for (std::uint64_t rank : {0ull, 1ull, 12345ull, 0xffffffffull,
                             (2048ull + (1ull << 32))}) {
    const std::string k = make_key(rank);
    const std::uint64_t parsed = std::stoull(k.substr(4), nullptr, 16);
    EXPECT_EQ(parsed, util::scramble_rank(rank)) << k;
  }
}

TEST(KvWorkloadKey, LengthsVaryDeterministically) {
  std::set<std::size_t> lengths;
  for (std::uint64_t r = 0; r < 64; ++r) lengths.insert(make_key(r).size());
  EXPECT_GT(lengths.size(), 1u);  // the flex-alloc path sees size spread
}

TEST(KvWorkloadKey, UniqueOverLargeRankRange) {
  // The regression: with truncated emission, ranks whose scrambles share
  // a top-bit prefix (but differ below it) mapped to the same key. Cover
  // a dense prefill-sized range plus the sparse per-thread insert bases
  // Mix D uses (records + (t+1) << 32).
  std::unordered_set<std::string> seen;
  seen.reserve(220000);
  for (std::uint64_t r = 0; r < 200000; ++r)
    ASSERT_TRUE(seen.insert(make_key(r)).second)
        << "rank " << r << " collided: " << make_key(r);
  for (std::uint64_t t = 1; t <= 8; ++t)
    for (std::uint64_t i = 0; i < 2048; ++i) {
      const std::uint64_t rank = 2048 + (t << 32) + i;
      ASSERT_TRUE(seen.insert(make_key(rank)).second)
          << "rank " << rank << " collided: " << make_key(rank);
    }
}

}  // namespace
}  // namespace hohtm::kv
