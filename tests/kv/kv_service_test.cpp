// The request-serving front-end: submission ring semantics (tiny
// capacity forces wraparound and producer parking), synchronous client
// calls, result codes, concurrent clients, and drained shutdown. All
// blocking is atomic wait/notify — no sleeps, no timing assertions.
#include "kv/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rr.hpp"

namespace hohtm {
namespace {

using TM = tm::Norec;
using RR = rr::RrV<TM>;
using Store = kv::Store<TM, RR>;
using Service = kv::Service<TM, RR>;

TEST(KvRequestRing, FifoThroughWraparound) {
  kv::RequestRing ring(2);  // capacity 4: wraps several times below
  ASSERT_EQ(ring.capacity(), 4u);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i)
      ring.push(kv::Request{kv::OpCode::kPut,
                            "k" + std::to_string(round * 4 + i), "", 0,
                            nullptr});
    for (int i = 0; i < 4; ++i) {
      const kv::Request req = ring.pop();
      EXPECT_EQ(req.key, "k" + std::to_string(round * 4 + i));
    }
  }
  kv::Request none;
  EXPECT_FALSE(ring.try_pop(none));
}

TEST(KvRequestRing, FullRingParksProducerUntilConsumed) {
  kv::RequestRing ring(1);  // capacity 2
  ring.push(kv::Request{kv::OpCode::kGet, "a", "", 0, nullptr});
  ring.push(kv::Request{kv::OpCode::kGet, "b", "", 0, nullptr});
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ring.push(kv::Request{kv::OpCode::kGet, "c", "", 0, nullptr});
    third_pushed.store(true);
    third_pushed.notify_all();
  });
  // The producer is blocked on the full ring; popping one slot releases
  // it. (No assertion on "still blocked" — that would be a timing test.)
  EXPECT_EQ(ring.pop().key, "a");
  third_pushed.wait(false);
  producer.join();
  EXPECT_EQ(ring.pop().key, "b");
  EXPECT_EQ(ring.pop().key, "c");
}

TEST(KvService, SynchronousCallsAndResultCodes) {
  Store store;
  Service svc(store, 2, 3);
  std::string value;
  EXPECT_EQ(svc.get("missing", value), kv::ResultCode::kNotFound);
  bool created = false;
  EXPECT_EQ(svc.put("a", "1", &created), kv::ResultCode::kOk);
  EXPECT_TRUE(created);
  EXPECT_EQ(svc.put("a", "2", &created), kv::ResultCode::kOk);
  EXPECT_FALSE(created);
  EXPECT_EQ(svc.get("a", value), kv::ResultCode::kOk);
  EXPECT_EQ(value, "2");
  EXPECT_EQ(svc.del("a"), kv::ResultCode::kOk);
  EXPECT_EQ(svc.del("a"), kv::ResultCode::kNotFound);
  for (int i = 0; i < 20; ++i)
    svc.put("scan" + std::to_string(i), "v", nullptr);
  std::size_t count = 0;
  EXPECT_EQ(svc.scan("", 1000, count), kv::ResultCode::kOk);
  EXPECT_GT(count, 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.puts, 22u);
  EXPECT_EQ(stats.dels, 2u);
  EXPECT_EQ(stats.scans, 1u);
}

TEST(KvService, ConcurrentClientsThroughATinyRing) {
  Store store;
  Service svc(store, 2, 1);  // queue capacity 2: constant backpressure
  const int kClients = 3;
  const int kOpsEach = 200;
  std::vector<std::thread> clients;
  std::atomic<int> hits{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &hits, c] {
      std::string value;
      for (int i = 0; i < kOpsEach; ++i) {
        const std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i % 17);
        svc.put(key, std::to_string(i), nullptr);
        if (svc.get(key, value) == kv::ResultCode::kOk) hits.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  // Each client reads back its own key right after writing it; no other
  // client touches it, so every one of these reads must hit.
  EXPECT_EQ(hits.load(), kClients * kOpsEach);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.puts, static_cast<std::uint64_t>(kClients * kOpsEach));
  EXPECT_EQ(stats.gets, static_cast<std::uint64_t>(kClients * kOpsEach));
  svc.stop();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kClients * 17));
}

TEST(KvService, StopIsIdempotentAndServesEverythingSubmitted) {
  Store store;
  auto svc = std::make_unique<Service>(store, 1, 4);
  for (int i = 0; i < 10; ++i)
    svc->put("k" + std::to_string(i), "v", nullptr);
  svc->stop();
  svc->stop();          // idempotent
  svc.reset();          // destructor after stop: no double join
  EXPECT_EQ(store.size(), 10u);
}

TEST(KvService, CollectingScanReturnsEntriesInCanonicalOrder) {
  Store store;
  Service svc(store, 2, 3);
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back("ce" + std::to_string(i));
    svc.put(keys.back(), "v" + std::to_string(i), nullptr);
  }
  // The sorted mirror: the store's canonical (hash, key) order.
  std::sort(keys.begin(), keys.end(), [](const std::string& a,
                                         const std::string& b) {
    return kv::detail::precedes(kv::detail::hash_bytes(a), a,
                                kv::detail::hash_bytes(b), b);
  });
  // Scan from the canonical-first key (scan_from("") would start at
  // the empty string's own hash position, not the beginning).
  std::vector<std::pair<std::string, std::string>> entries;
  EXPECT_EQ(svc.scan(keys[0], 1000, entries), kv::ResultCode::kOk);
  ASSERT_EQ(entries.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(entries[i].first, keys[i]) << "position " << i;
  }
  // Ranged + bounded: starts at the requested key inclusive, stops at
  // the limit, and the values ride along with their keys.
  entries.clear();
  EXPECT_EQ(svc.scan(keys[10], 5, entries), kv::ResultCode::kOk);
  ASSERT_EQ(entries.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[i].first, keys[10 + i]);
    const std::string suffix = entries[i].first.substr(2);
    EXPECT_EQ(entries[i].second, "v" + suffix);
  }
  // The count-only overload agrees with the collecting one, and both
  // count as scans in the service stats.
  std::size_t count = 0;
  EXPECT_EQ(svc.scan(keys[10], 5, count), kv::ResultCode::kOk);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(svc.stats().scans, 3u);
}

TEST(KvService, LargeValuesRoundTripThroughTheRing) {
  Store store;
  Service svc(store, 2, 2);
  const std::string big(4096 + 500, 'z');
  svc.put("big", big, nullptr);
  std::string value;
  EXPECT_EQ(svc.get("big", value), kv::ResultCode::kOk);
  EXPECT_EQ(value, big);
}

// The submit-after-stop hazard, closed: once stop() has begun, submit()
// fails fast — no push into a ring nobody drains — and the request's
// Completion still signals, with the dedicated kShutdown code.
TEST(KvService, SubmitAfterStopFailsFastWithShutdown) {
  Store store;
  Service svc(store, 1, 3);
  svc.put("pre", "v", nullptr);
  svc.stop();
  kv::Completion done;
  kv::Request req;
  req.op = kv::OpCode::kGet;
  req.key = "pre";
  req.done = &done;
  EXPECT_FALSE(svc.submit(std::move(req)));
  done.wait();  // already signalled: returns immediately, no worker left
  EXPECT_EQ(done.rc, kv::ResultCode::kShutdown);
  // The synchronous wrappers surface the same code instead of hanging.
  std::string value;
  EXPECT_EQ(svc.get("pre", value), kv::ResultCode::kShutdown);
  EXPECT_EQ(svc.put("x", "y", nullptr), kv::ResultCode::kShutdown);
  EXPECT_EQ(svc.del("pre"), kv::ResultCode::kShutdown);
}

// Clients racing stop(): every synchronous call must return — served
// (kOk/kNotFound), drained at shutdown (kStopped), or rejected at the
// gate (kShutdown) — and nothing may deadlock against the drain loop.
TEST(KvService, SubmittersRacingStopAlwaysComplete) {
  for (int round = 0; round < 20; ++round) {
    Store store;
    Service svc(store, 2, 2);
    constexpr int kClients = 4;
    std::atomic<bool> go{false};
    std::vector<std::thread> clients;
    std::atomic<int> rejected{0};
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        go.wait(false);
        for (int i = 0; i < 50; ++i) {
          const kv::ResultCode rc =
              svc.put("r" + std::to_string(c), std::to_string(i), nullptr);
          ASSERT_TRUE(rc == kv::ResultCode::kOk ||
                      rc == kv::ResultCode::kStopped ||
                      rc == kv::ResultCode::kShutdown);
          if (rc == kv::ResultCode::kShutdown) {
            rejected.fetch_add(1);
            break;  // the service is gone; later calls would all reject
          }
        }
      });
    }
    go.store(true);
    go.notify_all();
    svc.stop();
    for (auto& t : clients) t.join();
  }
}

// The serving tier's bridge into the store: one kBatch request carrying
// a pipeline of ops executes them in order, reports per-op results, and
// fuses consecutive same-shard runs (single shard here, so the whole
// batch is one run) into fewer transactions than ops.
TEST(KvService, BatchRequestExecutesInOrderAndFuses) {
  Store::Options opt;
  opt.log2_shards = 0;
  opt.window = 16;
  opt.fusion_cap = 16;
  Store store(opt);
  Service svc(store, 1, 3);
  // The contention-gated tuner grants fusion budgets only after a clean
  // streak (ds::WindowTuner::kFuseStreak) — warm the lone worker past it.
  for (int i = 0; i < 16; ++i)
    svc.put("warm" + std::to_string(i), "v", nullptr);
  std::vector<kv::BatchOp> ops(6);
  ops[0] = {kv::OpCode::kPut, "bk", "v1"};
  ops[1] = {kv::OpCode::kGet, "bk"};
  ops[2] = {kv::OpCode::kPut, "bk", "v2"};   // overwrite, in order
  ops[3] = {kv::OpCode::kGet, "bk"};
  ops[4] = {kv::OpCode::kDel, "bk"};
  ops[5] = {kv::OpCode::kGet, "bk"};
  kv::Completion done;
  kv::Request req;
  req.op = kv::OpCode::kBatch;
  req.done = &done;
  req.batch = ops.data();
  req.batch_len = static_cast<std::uint32_t>(ops.size());
  ASSERT_TRUE(svc.submit(std::move(req)));
  done.wait();
  EXPECT_EQ(done.rc, kv::ResultCode::kOk);
  EXPECT_TRUE(ops[0].hit);   // created
  EXPECT_TRUE(ops[1].hit);
  EXPECT_EQ(ops[1].out, "v1");
  EXPECT_FALSE(ops[2].hit);  // overwrite, not a create
  EXPECT_EQ(ops[3].out, "v2");
  EXPECT_TRUE(ops[4].hit);
  EXPECT_FALSE(ops[5].hit);  // deleted two ops earlier
  // Program order held AND the run fused: 6 ops, fewer transactions.
  EXPECT_GT(done.fused_ops, 0u);
  EXPECT_LT(done.batch_txs, ops.size());
}

}  // namespace
}  // namespace hohtm
