#include "tm/txsets.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hohtm::tm {
namespace {

TEST(WriteSet, FindMissReturnsNull) {
  WriteSet ws;
  int x = 0;
  EXPECT_EQ(ws.find(&x), nullptr);
}

TEST(WriteSet, PutThenFind) {
  WriteSet ws;
  int x = 0;
  ws.put(&x, erase_word(42));
  const ErasedWord* w = ws.find(&x);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(restore_word<int>(*w), 42);
}

TEST(WriteSet, OverwriteKeepsOneEntry) {
  WriteSet ws;
  int x = 0;
  ws.put(&x, erase_word(1));
  ws.put(&x, erase_word(2));
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(restore_word<int>(*ws.find(&x)), 2);
}

TEST(WriteSet, GrowthPreservesEntries) {
  WriteSet ws;
  constexpr int kCount = 1000;
  static std::uint64_t cells[kCount];
  for (int i = 0; i < kCount; ++i)
    ws.put(&cells[i], erase_word<std::uint64_t>(i * 3));
  EXPECT_EQ(ws.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const ErasedWord* w = ws.find(&cells[i]);
    ASSERT_NE(w, nullptr) << i;
    EXPECT_EQ(restore_word<std::uint64_t>(*w), static_cast<std::uint64_t>(i * 3));
  }
}

TEST(WriteSet, WriteBackAppliesAllWidths) {
  WriteSet ws;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  ws.put(&a, erase_word<std::uint8_t>(0x12));
  ws.put(&b, erase_word<std::uint16_t>(0x1234));
  ws.put(&c, erase_word<std::uint32_t>(0x12345678));
  ws.put(&d, erase_word<std::uint64_t>(0x123456789ABCDEF0ULL));
  ws.write_back();
  EXPECT_EQ(a, 0x12);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0x12345678u);
  EXPECT_EQ(d, 0x123456789ABCDEF0ULL);
}

TEST(WriteSet, ClearKeepsItUsable) {
  WriteSet ws;
  int x = 0;
  ws.put(&x, erase_word(1));
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&x), nullptr);
  ws.put(&x, erase_word(9));
  EXPECT_EQ(restore_word<int>(*ws.find(&x)), 9);
}

TEST(UndoLog, RollsBackInReverseOrder) {
  UndoLog undo;
  int x = 0;
  undo.record(&x, erase_word(0));  // before first write
  x = 1;
  undo.record(&x, erase_word(1));  // before second write
  x = 2;
  undo.roll_back();
  EXPECT_EQ(x, 0);
  EXPECT_TRUE(undo.empty());
}

TEST(UndoLog, PointerWidth) {
  UndoLog undo;
  int target = 5;
  int* p = &target;
  int* const original = p;
  undo.record(&p, erase_word(p));
  p = nullptr;
  undo.roll_back();
  EXPECT_EQ(p, original);
}

TEST(LifecycleLog, CommitRunsFreesDropsAllocs) {
  LifecycleLog log;
  static int destroyed;
  destroyed = 0;
  int alloc_token = 0, free_token = 0;
  log.on_abort(&alloc_token, [](void*) noexcept { destroyed += 100; });
  log.on_commit(&free_token, [](void*) noexcept { destroyed += 1; });
  log.commit();
  EXPECT_EQ(destroyed, 1);  // only the deferred free ran
}

TEST(LifecycleLog, AbortUndoesAllocsDropsFrees) {
  LifecycleLog log;
  static int destroyed;
  destroyed = 0;
  int alloc_token = 0, free_token = 0;
  log.on_abort(&alloc_token, [](void*) noexcept { destroyed += 100; });
  log.on_commit(&free_token, [](void*) noexcept { destroyed += 1; });
  log.abort();
  EXPECT_EQ(destroyed, 100);  // only the allocation rollback ran
}

TEST(LifecycleLog, PendingFreesFlag) {
  LifecycleLog log;
  EXPECT_FALSE(log.has_pending_frees());
  int token = 0;
  log.on_commit(&token, [](void*) noexcept {});
  EXPECT_TRUE(log.has_pending_frees());
  log.commit();
  EXPECT_FALSE(log.has_pending_frees());
}

TEST(ErasedWord, RoundTripsNegativeValues) {
  const ErasedWord w = erase_word<int>(-7);
  EXPECT_EQ(restore_word<int>(w), -7);
  const ErasedWord b = erase_word<bool>(true);
  EXPECT_EQ(restore_word<bool>(b), true);
}

}  // namespace
}  // namespace hohtm::tm
