// Direct unit tests of the quiescence fence (normally exercised
// indirectly through tx.dealloc).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "tm/quiescence.hpp"
#include "util/barrier.hpp"

namespace hohtm::tm {
namespace {

TEST(Quiescence, NoWaitWhenAllInactive) {
  Quiescence q;
  q.wait_until(100);  // must return immediately
  q.wait_all_inactive();
  SUCCEED();
}

TEST(Quiescence, PublishedTimestampGates) {
  Quiescence q;
  util::SpinBarrier barrier(2);
  std::atomic<bool> released{false};
  std::atomic<bool> waiter_done{false};

  std::thread reader([&] {
    q.publish(5);
    barrier.arrive_and_wait();
    while (!released.load()) std::this_thread::yield();
    q.publish(10);  // advance past the waiter's bar
    while (!waiter_done.load()) std::this_thread::yield();
    q.deactivate();
  });

  barrier.arrive_and_wait();
  // Reader is published at 5 < 10: a short poll confirms wait_until(10)
  // would block (we cannot call it here or we would deadlock the test,
  // so check the observable precondition instead).
  std::thread waiter([&] {
    q.wait_until(10);
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_done.load()) << "waiter passed a lagging reader";
  released.store(true);
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  reader.join();
}

TEST(Quiescence, DeactivateUnblocks) {
  Quiescence q;
  util::SpinBarrier barrier(2);
  std::atomic<bool> waiter_done{false};

  std::thread reader([&] {
    q.publish(3);
    barrier.arrive_and_wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.deactivate();
  });
  barrier.arrive_and_wait();
  q.wait_until(10);  // reader at 3 gates us until it deactivates
  waiter_done.store(true);
  reader.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST(Quiescence, ActiveFlagTracksPublish) {
  Quiescence q;
  EXPECT_FALSE(q.active());
  q.publish(1);
  EXPECT_TRUE(q.active());
  q.deactivate();
  EXPECT_FALSE(q.active());
}

TEST(Quiescence, TimestampZeroIsValid) {
  // publish(0) must register as active (the slot encoding is ts+1).
  Quiescence q;
  q.publish(0);
  EXPECT_TRUE(q.active());
  std::thread other([&] {
    // A thread at ts 0 gates wait_until(1) but not wait_until(0).
    q.wait_until(0);
  });
  other.join();
  q.deactivate();
}

}  // namespace
}  // namespace hohtm::tm
