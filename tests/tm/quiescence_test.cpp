// Direct unit tests of the quiescence fence (normally exercised
// indirectly through tx.dealloc).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "tm/quiescence.hpp"
#include "util/barrier.hpp"

namespace hohtm::tm {
namespace {

TEST(Quiescence, NoWaitWhenAllInactive) {
  Quiescence q;
  q.wait_until(100);  // must return immediately
  q.wait_all_inactive();
  SUCCEED();
}

TEST(Quiescence, PublishedTimestampGates) {
  Quiescence q;
  util::SpinBarrier barrier(2);
  std::atomic<bool> released{false};

  std::thread reader([&] {
    q.publish(5);
    barrier.arrive_and_wait();
    released.wait(false, std::memory_order_acquire);
    q.publish(10);  // advance past the waiter's bar
    q.deactivate();
  });

  barrier.arrive_and_wait();
  // The reader is published at 5, so the fence's settle predicate (the
  // exact condition wait_until spins on) must hold at 5 and fail above
  // it — a deterministic probe of "wait_until(10) would block", with no
  // timing involved.
  EXPECT_FALSE(q.settled_at(10)) << "fence would pass a lagging reader";
  EXPECT_FALSE(q.settled_at(6));
  EXPECT_TRUE(q.settled_at(5));
  EXPECT_TRUE(q.settled_at(4));
  released.store(true, std::memory_order_release);
  released.notify_all();
  q.wait_until(10);  // returns only once the reader advances to 10
  reader.join();
  EXPECT_TRUE(q.settled_at(10));
}

TEST(Quiescence, DeactivateUnblocks) {
  Quiescence q;
  util::SpinBarrier barrier(2);
  std::atomic<bool> release{false};

  std::thread reader([&] {
    q.publish(3);
    barrier.arrive_and_wait();
    release.wait(false, std::memory_order_acquire);
    q.deactivate();
  });
  barrier.arrive_and_wait();
  EXPECT_FALSE(q.settled_at(10));  // reader at 3 gates the fence
  release.store(true, std::memory_order_release);
  release.notify_all();
  q.wait_until(10);  // returns only once the reader deactivates
  reader.join();
  EXPECT_TRUE(q.settled_at(10));
  EXPECT_TRUE(q.all_inactive());
}

TEST(Quiescence, ActiveFlagTracksPublish) {
  Quiescence q;
  EXPECT_FALSE(q.active());
  q.publish(1);
  EXPECT_TRUE(q.active());
  q.deactivate();
  EXPECT_FALSE(q.active());
}

TEST(Quiescence, TimestampZeroIsValid) {
  // publish(0) must register as active (the slot encoding is ts+1).
  Quiescence q;
  q.publish(0);
  EXPECT_TRUE(q.active());
  std::thread other([&] {
    // A thread at ts 0 gates wait_until(1) but not wait_until(0).
    q.wait_until(0);
  });
  other.join();
  q.deactivate();
}

}  // namespace
}  // namespace hohtm::tm
