// Single-threaded semantics shared by all four TM backends.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tm/tm.hpp"

namespace hohtm::tm {
namespace {

template <class TM>
class TmBasicTest : public ::testing::Test {};

using Backends = ::testing::Types<GLock, Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(TmBasicTest, Backends);

struct Cell {
  long value = 0;
  long other = 0;
};

TYPED_TEST(TmBasicTest, ReadInitialValue) {
  using TM = TypeParam;
  Cell cell;
  cell.value = 17;
  const long got =
      TM::atomically([&](typename TM::Tx& tx) { return tx.read(cell.value); });
  EXPECT_EQ(got, 17);
}

TYPED_TEST(TmBasicTest, WriteVisibleAfterCommit) {
  using TM = TypeParam;
  Cell cell;
  TM::atomically([&](typename TM::Tx& tx) { tx.write(cell.value, 5L); });
  EXPECT_EQ(cell.value, 5);
}

TYPED_TEST(TmBasicTest, ReadAfterWriteSeesBufferedValue) {
  using TM = TypeParam;
  Cell cell;
  const long got = TM::atomically([&](typename TM::Tx& tx) {
    tx.write(cell.value, 9L);
    return tx.read(cell.value);
  });
  EXPECT_EQ(got, 9);
  EXPECT_EQ(cell.value, 9);
}

TYPED_TEST(TmBasicTest, MultipleWritesLastWins) {
  using TM = TypeParam;
  Cell cell;
  TM::atomically([&](typename TM::Tx& tx) {
    tx.write(cell.value, 1L);
    tx.write(cell.value, 2L);
    tx.write(cell.value, 3L);
  });
  EXPECT_EQ(cell.value, 3);
}

TYPED_TEST(TmBasicTest, VoidTransaction) {
  using TM = TypeParam;
  Cell cell;
  TM::atomically([&](typename TM::Tx& tx) {
    tx.write(cell.value, tx.read(cell.value) + 1);
  });
  EXPECT_EQ(cell.value, 1);
}

TYPED_TEST(TmBasicTest, ReturnsNonTrivialValue) {
  using TM = TypeParam;
  Cell cell;
  cell.value = 3;
  cell.other = 4;
  const auto pair = TM::atomically([&](typename TM::Tx& tx) {
    return std::pair<long, long>(tx.read(cell.value), tx.read(cell.other));
  });
  EXPECT_EQ(pair.first, 3);
  EXPECT_EQ(pair.second, 4);
}

TYPED_TEST(TmBasicTest, FlatNestingRunsInEnclosingTx) {
  using TM = TypeParam;
  Cell cell;
  TM::atomically([&](typename TM::Tx& outer_tx) {
    outer_tx.write(cell.value, 1L);
    TM::atomically([&](typename TM::Tx& inner_tx) {
      // The inner transaction must observe the outer's buffered write.
      EXPECT_EQ(inner_tx.read(cell.value), 1);
      EXPECT_EQ(&inner_tx, &outer_tx);
      inner_tx.write(cell.other, 2L);
    });
    EXPECT_EQ(outer_tx.read(cell.other), 2);
  });
  EXPECT_EQ(cell.value, 1);
  EXPECT_EQ(cell.other, 2);
}

TYPED_TEST(TmBasicTest, UserExceptionRollsBackAndPropagates) {
  using TM = TypeParam;
  Cell cell;
  cell.value = 10;
  EXPECT_THROW(TM::atomically([&](typename TM::Tx& tx) {
                 tx.write(cell.value, 99L);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(cell.value, 10) << "aborted write must not be visible";
}

TYPED_TEST(TmBasicTest, DifferentWidths) {
  using TM = TypeParam;
  struct Mixed {
    bool flag = false;
    std::uint16_t half = 0;
    std::uint32_t word = 0;
    std::uint64_t wide = 0;
    void* ptr = nullptr;
  } mixed;
  int target = 0;
  TM::atomically([&](typename TM::Tx& tx) {
    tx.write(mixed.flag, true);
    tx.write(mixed.half, static_cast<std::uint16_t>(0xBEEF));
    tx.write(mixed.word, 0xDEADBEEFu);
    tx.write(mixed.wide, static_cast<std::uint64_t>(0x0123456789ABCDEFULL));
    tx.write(mixed.ptr, static_cast<void*>(&target));
  });
  EXPECT_TRUE(mixed.flag);
  EXPECT_EQ(mixed.half, 0xBEEF);
  EXPECT_EQ(mixed.word, 0xDEADBEEFu);
  EXPECT_EQ(mixed.wide, 0x0123456789ABCDEFULL);
  EXPECT_EQ(mixed.ptr, &target);
  TM::atomically([&](typename TM::Tx& tx) {
    EXPECT_TRUE(tx.read(mixed.flag));
    EXPECT_EQ(tx.read(mixed.half), 0xBEEF);
    EXPECT_EQ(tx.read(mixed.ptr), &target);
  });
}

TYPED_TEST(TmBasicTest, SequentialTransactionsCompose) {
  using TM = TypeParam;
  Cell cell;
  for (int i = 0; i < 100; ++i) {
    TM::atomically([&](typename TM::Tx& tx) {
      tx.write(cell.value, tx.read(cell.value) + 1);
    });
  }
  EXPECT_EQ(cell.value, 100);
}

TYPED_TEST(TmBasicTest, CommitCountersAdvance) {
  using TM = TypeParam;
  Cell cell;
  const auto before = Stats::total();
  TM::atomically([&](typename TM::Tx& tx) { tx.write(cell.value, 1L); });
  const auto after = Stats::total();
  EXPECT_GE(after.commits + after.serial_commits,
            before.commits + before.serial_commits + 1);
}

}  // namespace
}  // namespace hohtm::tm
