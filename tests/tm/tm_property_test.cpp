// Parameterized property sweeps over the TM backends: invariant
// preservation under randomized concurrent workloads at several thread
// counts and contention levels.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "tm/tm.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::tm {
namespace {

struct SweepParam {
  const char* backend;
  int threads;
  int cells;  // contention: fewer cells = more conflicts
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.backend) + "_t" +
         std::to_string(info.param.threads) + "_c" +
         std::to_string(info.param.cells);
}

class TmSweep : public ::testing::TestWithParam<SweepParam> {};

// Run `body(tx, cells, rng)` concurrently on the selected backend.
template <class TM>
void run_invariant_sweep(const SweepParam& param) {
  constexpr int kOpsPerThread = 700;
  constexpr int kMaxCells = 64;
  static long cells[kMaxCells];
  for (auto& c : cells) c = 10;
  const long expected_total = 10L * param.cells;

  util::SpinBarrier barrier(static_cast<std::size_t>(param.threads));
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t * 977 + 13);
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int a = static_cast<int>(rng.next_below(param.cells));
        const int b = static_cast<int>(rng.next_below(param.cells));
        if (i % 5 == 4) {
          // Reader: the sum across all cells must always be conserved.
          const long sum = TM::atomically([&](typename TM::Tx& tx) {
            long s = 0;
            for (int c = 0; c < param.cells; ++c) s += tx.read(cells[c]);
            return s;
          });
          if (sum != expected_total) torn.store(true);
        } else {
          // Writer: conserve the sum while moving a random amount.
          TM::atomically([&](typename TM::Tx& tx) {
            const long amount =
                static_cast<long>(rng.next_below(5)) - 2;  // [-2, 2]
            tx.write(cells[a], tx.read(cells[a]) - amount);
            tx.write(cells[b], tx.read(cells[b]) + amount);
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn.load()) << "reader observed a non-conserved sum";
  long final_sum = 0;
  for (int c = 0; c < param.cells; ++c) final_sum += cells[c];
  EXPECT_EQ(final_sum, expected_total);
}

TEST_P(TmSweep, SumConservedUnderRandomTransfers) {
  const SweepParam& param = GetParam();
  const std::string backend = param.backend;
  if (backend == "glock") return run_invariant_sweep<GLock>(param);
  if (backend == "tml") return run_invariant_sweep<Tml>(param);
  if (backend == "norec") return run_invariant_sweep<Norec>(param);
  if (backend == "tl2") return run_invariant_sweep<Tl2>(param);
  if (backend == "tleager") return run_invariant_sweep<TlEager>(param);
  FAIL() << "unknown backend " << backend;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TmSweep,
    ::testing::Values(
        SweepParam{"glock", 2, 4}, SweepParam{"glock", 4, 16},
        SweepParam{"tml", 2, 4}, SweepParam{"tml", 4, 16},
        SweepParam{"tml", 4, 2},
        SweepParam{"norec", 2, 4}, SweepParam{"norec", 4, 16},
        SweepParam{"norec", 4, 2}, SweepParam{"norec", 8, 32},
        SweepParam{"tl2", 2, 4}, SweepParam{"tl2", 4, 16},
        SweepParam{"tl2", 4, 2}, SweepParam{"tl2", 8, 32},
        SweepParam{"tleager", 2, 4}, SweepParam{"tleager", 4, 16},
        SweepParam{"tleager", 4, 2}, SweepParam{"tleager", 8, 32}),
    param_name);

}  // namespace
}  // namespace hohtm::tm
