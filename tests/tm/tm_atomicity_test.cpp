// Multi-threaded atomicity and opacity properties of the TM backends.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/tm.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/random.hpp"

namespace hohtm::tm {
namespace {

template <class TM>
class TmAtomicityTest : public ::testing::Test {};

using Backends = ::testing::Types<GLock, Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(TmAtomicityTest, Backends);

TYPED_TEST(TmAtomicityTest, ConcurrentIncrementsAllLand) {
  using TM = TypeParam;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  static long counter;
  counter = 0;
  util::SpinBarrier barrier(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        TM::atomically([&](typename TM::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TYPED_TEST(TmAtomicityTest, TransfersPreserveTotal) {
  using TM = TypeParam;
  constexpr int kThreads = 4;
  constexpr int kAccounts = 16;
  constexpr int kTransfers = 1500;
  static long accounts[kAccounts];
  for (auto& a : accounts) a = 100;
  util::SpinBarrier barrier(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < kTransfers; ++i) {
        const int from = static_cast<int>(rng.next_below(kAccounts));
        const int to = static_cast<int>(rng.next_below(kAccounts));
        TM::atomically([&](typename TM::Tx& tx) {
          const long amount = tx.read(accounts[from]) / 2;
          tx.write(accounts[from], tx.read(accounts[from]) - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  long total = 0;
  for (long a : accounts) total += a;
  EXPECT_EQ(total, 100L * kAccounts);
}

// Writers keep x == y at all times; readers must never observe x != y
// (opacity: even doomed transactions see consistent states; here we check
// the weaker but still demanding committed-snapshot consistency).
TYPED_TEST(TmAtomicityTest, ReadersNeverSeeTornInvariant) {
  using TM = TypeParam;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOps = 1500;
  struct Pair {
    long x = 0;
    char pad[util::kCacheLineSize];
    long y = 0;
  };
  static Pair pair;
  pair = Pair{};
  std::atomic<bool> torn{false};
  util::SpinBarrier barrier(kWriters + kReaders);

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        TM::atomically([&](typename TM::Tx& tx) {
          const long v = tx.read(pair.x);
          tx.write(pair.x, v + 1);
          tx.write(pair.y, tx.read(pair.y) + 1);
        });
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const auto snapshot = TM::atomically([&](typename TM::Tx& tx) {
          return std::pair<long, long>(tx.read(pair.x), tx.read(pair.y));
        });
        if (snapshot.first != snapshot.second) torn.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(pair.x, static_cast<long>(kWriters) * kOps);
  EXPECT_EQ(pair.y, pair.x);
}

// A transaction that reads two locations while another transaction swaps
// them must see either both-old or both-new, never a mix.
TYPED_TEST(TmAtomicityTest, SwapsAppearAtomic) {
  using TM = TypeParam;
  constexpr int kOps = 3000;
  static long a;
  static long b;
  a = 1;
  b = 2;
  std::atomic<bool> mixed{false};
  util::SpinBarrier barrier(2);

  std::thread swapper([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kOps; ++i) {
      TM::atomically([&](typename TM::Tx& tx) {
        const long va = tx.read(a);
        const long vb = tx.read(b);
        tx.write(a, vb);
        tx.write(b, va);
      });
    }
  });
  std::thread checker([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kOps; ++i) {
      const auto seen = TM::atomically([&](typename TM::Tx& tx) {
        return std::pair<long, long>(tx.read(a), tx.read(b));
      });
      const bool ok = (seen.first == 1 && seen.second == 2) ||
                      (seen.first == 2 && seen.second == 1);
      if (!ok) mixed.store(true);
    }
  });
  swapper.join();
  checker.join();
  EXPECT_FALSE(mixed.load());
}

}  // namespace
}  // namespace hohtm::tm
