// Abort-cause taxonomy (tm::AbortCause): every backend must attribute a
// forced conflict to the right per-cause counter, not just bump the
// total. The choreographies use explicit phase handshakes, so each test
// forces exactly the conflict it claims to.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tm/tm.hpp"

namespace hohtm::tm {
namespace {

/// Restore the serial threshold on scope exit; these tests tune it to
/// keep forced conflicts out of (or deterministically in) serial mode.
struct ThresholdGuard {
  std::uint32_t saved = Config::serial_threshold();
  ~ThresholdGuard() { Config::set_serial_threshold(saved); }
};

StatCounters snapshot() { return Stats::mine(); }

std::uint64_t delta(const StatCounters& before, AbortCause cause) {
  return Stats::mine().cause(cause) - before.cause(cause);
}

template <class TM>
class AbortCauseTest : public ::testing::Test {};

// Futex-wait until `phase` reaches `target`: precise wakeups instead of a
// yield loop, which on the single-core CI box would starve the peer the
// handshake is waiting on (and trips the hohtm-lint no-sleep-sync rule).
void await_phase(const std::atomic<int>& phase, int target) {
  for (int seen = phase.load(std::memory_order_acquire); seen < target;
       seen = phase.load(std::memory_order_acquire))
    phase.wait(seen, std::memory_order_acquire);
}

void advance_phase(std::atomic<int>& phase, int to) {
  phase.store(to, std::memory_order_release);
  phase.notify_all();
}

using ConcurrentBackends = ::testing::Types<Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(AbortCauseTest, ConcurrentBackends);

// A reader that observes a concurrent committed write between two reads
// of the same location aborts exactly once, attributed to read
// validation (clock check in TML, value validation in NOrec, orec
// version in TL2/TLEager).
TYPED_TEST(AbortCauseTest, ConcurrentWriteIsReadValidationFailure) {
  using TM = TypeParam;
  using Tx = typename TM::Tx;
  ThresholdGuard guard;
  Config::set_serial_threshold(64);

  long loc = 0;
  std::atomic<int> phase{0};
  std::thread writer([&] {
    await_phase(phase, 1);
    TM::atomically([&](Tx& tx) { tx.write(loc, 1L); });
    advance_phase(phase, 2);
  });

  const StatCounters before = snapshot();
  int attempts = 0;
  TM::atomically([&](Tx& tx) {
    (void)tx.read(loc);
    if (attempts++ == 0) {  // only the first attempt waits for the writer
      advance_phase(phase, 1);
      await_phase(phase, 2);
    }
    (void)tx.read(loc);
  });
  writer.join();

  EXPECT_EQ(delta(before, AbortCause::kReadValidation), 1u);
  EXPECT_EQ(delta(before, AbortCause::kLockConflict), 0u);
  EXPECT_EQ(Stats::mine().aborts - before.aborts, 1u);
}

// The retry budget runs out after `serial_threshold` aborts: the
// escalation itself is a recorded cause, distinct from the user aborts
// that exhausted the budget.
TYPED_TEST(AbortCauseTest, EscalationToSerialIsRecorded) {
  using TM = TypeParam;
  using Tx = typename TM::Tx;
  ThresholdGuard guard;
  Config::set_serial_threshold(2);

  const StatCounters before = snapshot();
  int attempts = 0;
  TM::atomically([&](Tx& tx) {
    if (attempts++ < 3) tx.retry();  // 2 speculative attempts + 1 serial
  });

  EXPECT_EQ(delta(before, AbortCause::kSerialEscalation), 1u);
  EXPECT_EQ(delta(before, AbortCause::kUserAbort), 3u);
  EXPECT_EQ(Stats::mine().user_retries - before.user_retries, 3u);
  EXPECT_EQ(Stats::mine().serial_commits - before.serial_commits, 1u);
}

// TML attributes a failed writer upgrade (seqlock moved since the
// snapshot) to lock conflict, not read validation.
TEST(AbortCauseTml, StaleWriterUpgradeIsLockConflict) {
  using TM = Tml;
  ThresholdGuard guard;
  Config::set_serial_threshold(64);

  long loc = 0;
  std::atomic<int> phase{0};
  std::thread writer([&] {
    await_phase(phase, 1);
    TM::atomically([&](TM::Tx& tx) { tx.write(loc, 1L); });
    advance_phase(phase, 2);
  });

  const StatCounters before = snapshot();
  int attempts = 0;
  long unrelated = 0;
  TM::atomically([&](TM::Tx& tx) {
    (void)tx.read(unrelated);  // pin the snapshot without touching loc
    if (attempts++ == 0) {
      advance_phase(phase, 1);
      await_phase(phase, 2);
    }
    tx.write(unrelated, 2L);  // upgrade fails: clock moved under us
  });
  writer.join();

  EXPECT_EQ(delta(before, AbortCause::kLockConflict), 1u);
}

// TLEager writers lock orecs at the access, so a second writer of a
// locked location dies immediately with a lock conflict — the immediacy
// the backend exists to model.
TEST(AbortCauseTlEager, LockedOrecIsLockConflict) {
  using TM = TlEager;
  ThresholdGuard guard;
  Config::set_serial_threshold(64);

  long loc = 0;
  std::atomic<int> phase{0};
  std::thread holder([&] {
    TM::atomically([&](TM::Tx& tx) {
      tx.write(loc, 1L);  // eager acquire: orec now locked
      advance_phase(phase, 1);
      await_phase(phase, 2);
    });
  });
  await_phase(phase, 1);

  const StatCounters before = snapshot();
  int attempts = 0;
  TM::atomically([&](TM::Tx& tx) {
    if (attempts++ > 0) advance_phase(phase, 2);  // first abort releases the holder
    tx.write(loc, 2L);
  });
  holder.join();

  EXPECT_GE(delta(before, AbortCause::kLockConflict), 1u);
}

// GLock cannot conflict; its only abort source is an explicit user
// retry, and that is exactly what its counters must say.
TEST(AbortCauseGLock, UserRetryIsTheOnlyAbort) {
  const StatCounters before = snapshot();
  int attempts = 0;
  GLock::atomically([&](GLock::Tx& tx) {
    if (attempts++ == 0) tx.retry();
  });

  EXPECT_EQ(delta(before, AbortCause::kUserAbort), 1u);
  EXPECT_EQ(Stats::mine().aborts - before.aborts, 1u);
  EXPECT_EQ(delta(before, AbortCause::kReadValidation), 0u);
  EXPECT_EQ(delta(before, AbortCause::kLockConflict), 0u);
}

// The aggregate view sums per-thread slots, including exited threads'.
TEST(AbortCauseStats, TotalAggregatesAcrossThreads) {
  const StatCounters before = Stats::total();
  std::thread worker([] {
    int attempts = 0;
    Norec::atomically([&](Norec::Tx& tx) {
      if (attempts++ == 0) tx.retry();
    });
  });
  worker.join();
  const StatCounters after = Stats::total();
  EXPECT_GE(after.cause(AbortCause::kUserAbort) -
                before.cause(AbortCause::kUserAbort),
            1u);
  EXPECT_GE(after.commits - before.commits, 1u);
}

}  // namespace
}  // namespace hohtm::tm
