// Opacity: even transactions that will later abort must never *observe*
// an inconsistent snapshot. The paper's system model requires it ("opaque
// [15] STM"), and the hand-over-hand structures rely on it: a traversal
// acting on torn state could chase a wild pointer before any conflict is
// detected.
//
// Method: writers preserve x == y in every committed state. Readers read
// both inside one transaction and record (non-transactionally, so the
// record survives an abort) whether the two reads they were *handed*
// ever disagreed. With an opaque TM the answer must be never — reads
// either return a consistent pair or the transaction aborts before the
// second read returns.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/tm.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"

namespace hohtm::tm {
namespace {

template <class TM>
class TmOpacityTest : public ::testing::Test {};

using Backends = ::testing::Types<GLock, Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(TmOpacityTest, Backends);

TYPED_TEST(TmOpacityTest, ZombiesNeverSeeTornPairs) {
  using TM = TypeParam;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOps = 4000;
  struct Pair {
    long x = 0;
    char pad[util::kCacheLineSize] = {};
    long y = 0;
  };
  static Pair pair;
  pair.x = pair.y = 0;
  std::atomic<bool> torn_observed{false};
  util::SpinBarrier barrier(kWriters + kReaders);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        TM::atomically([&](typename TM::Tx& tx) {
          tx.write(pair.x, tx.read(pair.x) + 1);
          tx.write(pair.y, tx.read(pair.y) + 1);
        });
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        try {
          TM::atomically([&](typename TM::Tx& tx) {
            const long seen_x = tx.read(pair.x);
            const long seen_y = tx.read(pair.y);
            // Record BEFORE any later abort can unwind us: opacity says
            // these two values are from one consistent snapshot.
            if (seen_x != seen_y) torn_observed.store(true);
          });
        } catch (...) {
          // no user exceptions thrown; Conflict never escapes atomically
          FAIL() << "unexpected exception escaped atomically";
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn_observed.load())
      << "a transaction observed a torn x/y pair (opacity violation)";
  EXPECT_EQ(pair.x, pair.y);
}

// Opacity for read-modify-write interleavings: a transaction increments
// both halves; the halves must never drift even transiently under heavy
// abort pressure (serial-mode boundaries included).
TYPED_TEST(TmOpacityTest, DriftFreeUnderAbortPressure) {
  using TM = TypeParam;
  Config::set_serial_threshold(1);  // force frequent serial fallbacks
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  static long a;
  static long b;
  a = b = 0;
  std::atomic<bool> drift{false};
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        TM::atomically([&](typename TM::Tx& tx) {
          const long va = tx.read(a);
          const long vb = tx.read(b);
          if (va != vb) drift.store(true);
          tx.write(a, va + 1);
          tx.write(b, vb + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  Config::set_serial_threshold(8);
  EXPECT_FALSE(drift.load());
  EXPECT_EQ(a, static_cast<long>(kThreads) * kOps);
  EXPECT_EQ(b, a);
}

}  // namespace
}  // namespace hohtm::tm
