// Serial-irrevocable fallback and user-initiated retry.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/tm.hpp"
#include "util/barrier.hpp"

namespace hohtm::tm {
namespace {

template <class TM>
class TmSerialTest : public ::testing::Test {
 protected:
  void TearDown() override { Config::set_serial_threshold(8); }
};

using Backends = ::testing::Types<GLock, Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(TmSerialTest, Backends);

TYPED_TEST(TmSerialTest, ThresholdZeroForcesSerialMode) {
  using TM = TypeParam;
  Config::set_serial_threshold(0);
  static long counter;
  counter = 0;
  const auto before = Stats::total();
  TM::atomically([&](typename TM::Tx& tx) {
    tx.write(counter, tx.read(counter) + 1);
  });
  const auto after = Stats::total();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(after.serial_commits, before.serial_commits + 1);
  EXPECT_EQ(after.commits, before.commits);
}

TYPED_TEST(TmSerialTest, SerialModeIsStillAtomicUnderConcurrency) {
  using TM = TypeParam;
  Config::set_serial_threshold(0);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 500;
  static long counter;
  counter = 0;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        TM::atomically([&](typename TM::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TYPED_TEST(TmSerialTest, MixedSerialAndSpeculativeThreads) {
  using TM = TypeParam;
  // Half the increments run with threshold 0 (serial), half with the
  // normal speculative path; atomicity must hold across the mix.
  // The threshold is global, so flip it from a dedicated thread.
  Config::set_serial_threshold(8);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 400;
  static long counter;
  counter = 0;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        if (t == 0 && i % 50 == 0)
          Config::set_serial_threshold(i % 100 == 0 ? 0 : 8);
        TM::atomically([&](typename TM::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TYPED_TEST(TmSerialTest, UserRetryWaitsForCondition) {
  using TM = TypeParam;
  Config::set_serial_threshold(8);
  static long flag;
  static long result;
  flag = 0;
  result = 0;
  // Handshake instead of a sleep: the setter satisfies the condition only
  // after the waiter has observed flag == 0 and committed to retrying, so
  // the retry path is exercised deterministically on any scheduler.
  std::atomic<bool> retried{false};

  std::thread waiter([&] {
    TM::atomically([&](typename TM::Tx& tx) {
      if (tx.read(flag) == 0) {
        retried.store(true, std::memory_order_release);
        retried.notify_all();  // non-transactional: survives the abort
        tx.retry();            // spins until flag is set
      }
      tx.write(result, tx.read(flag) * 2);
    });
  });
  std::thread setter([&] {
    retried.wait(false, std::memory_order_acquire);
    TM::atomically([&](typename TM::Tx& tx) { tx.write(flag, 21L); });
  });
  waiter.join();
  setter.join();
  EXPECT_EQ(result, 42);
}

TYPED_TEST(TmSerialTest, UserRetryCountsInStats) {
  using TM = TypeParam;
  Config::set_serial_threshold(100);  // keep it speculative
  static long flag;
  flag = 0;
  // Handshake instead of a sleep: the setter satisfies the condition only
  // after the waiter has committed to at least one retry, so exactly-zero
  // retries is impossible regardless of scheduling (or sanitizer slowdown).
  std::atomic<bool> retried{false};
  const auto before = Stats::total();
  std::thread setter([&] {
    retried.wait(false, std::memory_order_acquire);
    TM::atomically([&](typename TM::Tx& tx) { tx.write(flag, 1L); });
  });
  TM::atomically([&](typename TM::Tx& tx) {
    if (tx.read(flag) == 0) {
      retried.store(true, std::memory_order_release);
      retried.notify_all();  // non-transactional: survives the abort
      tx.retry();
    }
  });
  setter.join();
  const auto after = Stats::total();
  EXPECT_GT(after.user_retries, before.user_retries);
}

}  // namespace
}  // namespace hohtm::tm
