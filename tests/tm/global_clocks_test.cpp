// Unit tests for the shared TM primitives: sequence lock and orec table.
#include "tm/global_clocks.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

namespace hohtm::tm {
namespace {

TEST(SeqLock, StartsEvenAndUnlocked) {
  SeqLock lock;
  EXPECT_EQ(lock.load_acquire(), 0u);
  EXPECT_EQ(lock.wait_even(), 0u);
}

TEST(SeqLock, LockUnlockCycle) {
  SeqLock lock;
  EXPECT_TRUE(lock.try_lock_from(0));
  EXPECT_EQ(lock.load_acquire(), 1u);
  EXPECT_FALSE(lock.try_lock_from(0)) << "stale even value must fail";
  lock.unlock_to(2);
  EXPECT_EQ(lock.wait_even(), 2u);
  EXPECT_TRUE(lock.try_lock_from(2));
  lock.unlock_to(4);
}

TEST(SeqLock, WaitEvenBlocksUntilRelease) {
  SeqLock lock;
  ASSERT_TRUE(lock.try_lock_from(0));
  // Ordering-free assertion (no sleep needed): wait_even can only return
  // an even value, and the only even transition is the releaser's
  // unlock_to(2), so the return value proves wait_even observed the
  // release whether or not it had to spin first.
  std::thread releaser([&] { lock.unlock_to(2); });
  EXPECT_EQ(lock.wait_even(), 2u);
  releaser.join();
}

TEST(OrecTable, EncodingRoundTrips) {
  EXPECT_FALSE(OrecTable::is_locked(OrecTable::unlocked(7)));
  EXPECT_EQ(OrecTable::version_of(OrecTable::unlocked(7)), 7u);
  const auto locked = OrecTable::locked_by(13);
  EXPECT_TRUE(OrecTable::is_locked(locked));
}

TEST(OrecTable, ClockMonotonic) {
  OrecTable table;
  const auto a = table.advance_clock();
  const auto b = table.advance_clock();
  EXPECT_LT(a, b);
  EXPECT_GE(table.clock(), b);
}

TEST(OrecTable, SameGranuleSharesOrec) {
  OrecTable table;
  alignas(16) char granule[16];
  EXPECT_EQ(&table.orec_for(&granule[0]), &table.orec_for(&granule[15]));
}

TEST(OrecTable, DistinctAddressesSpread) {
  OrecTable table;
  // 64 well-separated addresses should map to many distinct orecs.
  static char blocks[64][64];
  std::set<const void*> orecs;
  for (auto& block : blocks) orecs.insert(&table.orec_for(block));
  EXPECT_GT(orecs.size(), 48u) << "orec hash is clumping badly";
}

}  // namespace
}  // namespace hohtm::tm
