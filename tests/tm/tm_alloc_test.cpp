// Transactional allocation / precise-reclamation semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "reclaim/gauge.hpp"
#include "tm/tm.hpp"
#include "util/barrier.hpp"

namespace hohtm::tm {
namespace {

template <class TM>
class TmAllocTest : public ::testing::Test {};

using Backends = ::testing::Types<GLock, Tml, Norec, Tl2, TlEager>;
TYPED_TEST_SUITE(TmAllocTest, Backends);

struct Node {
  long value = 0;
  Node* next = nullptr;
  explicit Node(long v) : value(v) {}
};

TYPED_TEST(TmAllocTest, AllocSurvivesCommit) {
  using TM = TypeParam;
  const auto live_before = reclaim::Gauge::live();
  Node* made = TM::atomically(
      [&](typename TM::Tx& tx) { return tx.template alloc<Node>(7L); });
  ASSERT_NE(made, nullptr);
  EXPECT_EQ(made->value, 7);
  EXPECT_EQ(reclaim::Gauge::live(), live_before + 1);
  TM::atomically([&](typename TM::Tx& tx) { tx.dealloc(made); });
  EXPECT_EQ(reclaim::Gauge::live(), live_before);
}

TYPED_TEST(TmAllocTest, AllocRolledBackOnUserException) {
  using TM = TypeParam;
  const auto live_before = reclaim::Gauge::live();
  EXPECT_THROW(TM::atomically([&](typename TM::Tx& tx) {
                 tx.template alloc<Node>(1L);
                 tx.template alloc<Node>(2L);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(reclaim::Gauge::live(), live_before)
      << "allocations in an aborted transaction must be returned";
}

TYPED_TEST(TmAllocTest, DeallocDiscardedOnUserException) {
  using TM = TypeParam;
  Node* node = TM::atomically(
      [&](typename TM::Tx& tx) { return tx.template alloc<Node>(3L); });
  const auto live_before = reclaim::Gauge::live();
  EXPECT_THROW(TM::atomically([&](typename TM::Tx& tx) {
                 tx.dealloc(node);
                 throw std::runtime_error("abort");
               }),
               std::runtime_error);
  EXPECT_EQ(reclaim::Gauge::live(), live_before)
      << "a free deferred by an aborted transaction must not run";
  // The node is still valid and freeable.
  EXPECT_EQ(node->value, 3);
  TM::atomically([&](typename TM::Tx& tx) { tx.dealloc(node); });
  EXPECT_EQ(reclaim::Gauge::live(), live_before - 1);
}

TYPED_TEST(TmAllocTest, FreeIsPreciseAtCommit) {
  using TM = TypeParam;
  // Allocate 100 nodes, then free them one per transaction; the gauge must
  // decrease step by step — no deferral window as with epochs/hazards.
  const auto live_before = reclaim::Gauge::live();
  std::vector<Node*> nodes;
  for (long i = 0; i < 100; ++i) {
    nodes.push_back(TM::atomically(
        [&](typename TM::Tx& tx) { return tx.template alloc<Node>(i); }));
  }
  EXPECT_EQ(reclaim::Gauge::live(), live_before + 100);
  for (int i = 0; i < 100; ++i) {
    TM::atomically([&](typename TM::Tx& tx) { tx.dealloc(nodes[i]); });
    EXPECT_EQ(reclaim::Gauge::live(), live_before + 100 - (i + 1));
  }
}

// The unlink-and-free pattern the paper's data structures rely on: one
// thread repeatedly publishes a node and later unlinks + frees it in a
// single transaction, while readers traverse through the shared cell.
// Quiescence must prevent any reader crash / torn traversal.
TYPED_TEST(TmAllocTest, UnlinkAndFreeUnderConcurrentReaders) {
  using TM = TypeParam;
  constexpr int kChurn = 800;
  constexpr int kReaders = 2;
  static Node* shared_head;
  shared_head = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad_value{false};
  util::SpinBarrier barrier(kReaders + 1);

  std::thread churner([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kChurn; ++i) {
      TM::atomically([&](typename TM::Tx& tx) {
        Node* fresh = tx.template alloc<Node>(4242L);
        tx.write(shared_head, fresh);
      });
      TM::atomically([&](typename TM::Tx& tx) {
        Node* victim = tx.read(shared_head);
        if (victim != nullptr) {
          tx.write(shared_head, static_cast<Node*>(nullptr));
          tx.dealloc(victim);  // freed at commit, after quiescence
        }
      });
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        TM::atomically([&](typename TM::Tx& tx) {
          Node* n = tx.read(shared_head);
          if (n != nullptr) {
            // Dereference inside the transaction: with precise reclamation
            // this is safe; the value must be the published constant.
            if (tx.read(n->value) != 4242L) bad_value.store(true);
          }
        });
      }
    });
  }
  churner.join();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(bad_value.load());
}

}  // namespace
}  // namespace hohtm::tm
