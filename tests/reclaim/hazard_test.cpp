// Hazard-pointer domain: protection blocks frees, scans free the rest.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/hazard_pointers.hpp"
#include "util/barrier.hpp"

namespace hohtm::reclaim {
namespace {

struct Tracked {
  static inline std::atomic<int> destroyed{0};
};

void count_delete(void* p) noexcept {
  delete static_cast<Tracked*>(p);
  Tracked::destroyed.fetch_add(1);
}

TEST(HazardDomain, UnprotectedNodesFreedByScan) {
  HazardDomain domain(/*scan_threshold=*/1000);  // manual scans only
  Tracked::destroyed.store(0);
  for (int i = 0; i < 10; ++i) domain.retire(new Tracked, &count_delete);
  EXPECT_EQ(Tracked::destroyed.load(), 0);
  domain.scan();
  EXPECT_EQ(Tracked::destroyed.load(), 10);
  EXPECT_EQ(domain.my_backlog(), 0u);
}

TEST(HazardDomain, ProtectedNodeSurvivesScan) {
  HazardDomain domain(1000);
  Tracked::destroyed.store(0);
  auto* pinned = new Tracked;
  domain.protect(0, pinned);
  domain.retire(pinned, &count_delete);
  domain.retire(new Tracked, &count_delete);
  domain.scan();
  EXPECT_EQ(Tracked::destroyed.load(), 1) << "only the unprotected one";
  EXPECT_EQ(domain.my_backlog(), 1u);
  domain.clear(0);
  domain.scan();
  EXPECT_EQ(Tracked::destroyed.load(), 2);
}

TEST(HazardDomain, ThresholdTriggersAutomaticScan) {
  HazardDomain domain(/*scan_threshold=*/8);
  Tracked::destroyed.store(0);
  for (int i = 0; i < 8; ++i) domain.retire(new Tracked, &count_delete);
  EXPECT_EQ(Tracked::destroyed.load(), 8) << "8th retire should auto-scan";
}

TEST(HazardDomain, CrossThreadProtectionHonored) {
  HazardDomain domain(1000);
  Tracked::destroyed.store(0);
  auto* shared = new Tracked;
  util::SpinBarrier barrier(2);
  std::atomic<bool> release{false};

  std::thread holder([&] {
    domain.protect(0, shared);
    barrier.arrive_and_wait();  // retirer may proceed
    release.wait(false, std::memory_order_acquire);
    domain.clear_all();
  });

  barrier.arrive_and_wait();
  domain.retire(shared, &count_delete);
  domain.scan();
  EXPECT_EQ(Tracked::destroyed.load(), 0) << "another thread holds it";
  release.store(true, std::memory_order_release);
  release.notify_all();
  holder.join();
  domain.scan();
  EXPECT_EQ(Tracked::destroyed.load(), 1);
}

TEST(HazardDomain, DestructorDrainsBacklog) {
  Tracked::destroyed.store(0);
  {
    HazardDomain domain(1000);
    auto* pinned = new Tracked;
    domain.protect(0, pinned);
    domain.retire(pinned, &count_delete);
    domain.clear_all();  // protection dropped, but no scan ran
  }
  EXPECT_EQ(Tracked::destroyed.load(), 1);
}

TEST(HazardDomain, PrescanHookRuns) {
  static std::atomic<int> hook_calls;
  hook_calls.store(0);
  HazardDomain domain(1000, []() noexcept { hook_calls.fetch_add(1); });
  domain.retire(new Tracked, &count_delete);
  domain.scan();
  EXPECT_EQ(hook_calls.load(), 1);
}

}  // namespace
}  // namespace hohtm::reclaim
