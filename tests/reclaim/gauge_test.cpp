#include "reclaim/gauge.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace hohtm::reclaim {
namespace {

// The gauge is process-global and deliberately not resettable (zeroing
// races with other threads' cells), so every assertion differences
// live() against a baseline taken at the start of the test.

TEST(Gauge, AllocFreeNetsToZero) {
  const std::int64_t baseline = Gauge::live();
  for (int i = 0; i < 100; ++i) Gauge::on_alloc();
  EXPECT_EQ(Gauge::live() - baseline, 100);
  for (int i = 0; i < 100; ++i) Gauge::on_free();
  EXPECT_EQ(Gauge::live() - baseline, 0);
}

TEST(Gauge, CrossSlotNetting) {
  // Allocations by one thread, frees by another: live() must net the
  // per-slot counters globally, not per slot. This is the pattern every
  // deferred reclaimer produces (the retiring thread is rarely the
  // scanning thread that frees).
  const std::int64_t baseline = Gauge::live();
  std::thread allocator([] {
    for (int i = 0; i < 50; ++i) Gauge::on_alloc();
  });
  allocator.join();
  EXPECT_EQ(Gauge::live() - baseline, 50);
  for (int i = 0; i < 50; ++i) Gauge::on_free();
  EXPECT_EQ(Gauge::live() - baseline, 0);
  // A slot whose frees outnumber its allocs is fine in isolation.
  std::thread freer([] {
    for (int i = 0; i < 30; ++i) Gauge::on_free();
  });
  freer.join();
  EXPECT_EQ(Gauge::live() - baseline, -30);
  for (int i = 0; i < 30; ++i) Gauge::on_alloc();
  EXPECT_EQ(Gauge::live() - baseline, 0);
}

TEST(Gauge, LiveIsASnapshotAfterJoin) {
  // live() has snapshot semantics at quiescent points: once the mutating
  // threads are joined, repeated reads agree exactly.
  const std::int64_t baseline = Gauge::live();
  std::thread worker([] {
    for (int i = 0; i < 200; ++i) Gauge::on_alloc();
    for (int i = 0; i < 80; ++i) Gauge::on_free();
  });
  worker.join();
  const std::int64_t first = Gauge::live() - baseline;
  EXPECT_EQ(first, 120);
  EXPECT_EQ(Gauge::live() - baseline, first);
  for (int i = 0; i < 120; ++i) Gauge::on_free();
  EXPECT_EQ(Gauge::live() - baseline, 0);
}

TEST(Gauge, PeakIsMonotonicHighWaterOverSnapshots) {
  const std::int64_t baseline = Gauge::live();
  const std::int64_t peak_before = Gauge::peak();
  for (int i = 0; i < 40; ++i) Gauge::on_alloc();
  const std::int64_t high = Gauge::live();  // snapshot feeds the peak
  EXPECT_GE(Gauge::peak(), high);
  EXPECT_GE(Gauge::peak(), peak_before);
  for (int i = 0; i < 40; ++i) Gauge::on_free();
  EXPECT_EQ(Gauge::live() - baseline, 0);
  // Dropping back down must not lower the high-water mark.
  EXPECT_GE(Gauge::peak(), high);
}

}  // namespace
}  // namespace hohtm::reclaim
