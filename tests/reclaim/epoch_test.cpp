// Epoch-based reclamation: generations free only after two advances, and
// a stalled pinned reader blocks reclamation (the pathology the paper's
// precise reclamation avoids).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "reclaim/epoch.hpp"
#include "util/barrier.hpp"

namespace hohtm::reclaim {
namespace {

struct Tracked {
  static inline std::atomic<int> destroyed{0};
};

void count_delete(void* p) noexcept {
  delete static_cast<Tracked*>(p);
  Tracked::destroyed.fetch_add(1);
}

TEST(EpochDomain, FreesAfterTwoAdvances) {
  EpochDomain domain(/*advance_threshold=*/1000);
  Tracked::destroyed.store(0);
  domain.retire(new Tracked, &count_delete);  // generation e
  EXPECT_TRUE(domain.try_advance());          // e+1
  EXPECT_EQ(Tracked::destroyed.load(), 0);
  EXPECT_TRUE(domain.try_advance());          // e+2
  EXPECT_TRUE(domain.try_advance());          // frees generation e
  EXPECT_EQ(Tracked::destroyed.load(), 1);
}

TEST(EpochDomain, StalledReaderBlocksAdvance) {
  EpochDomain domain(1000);
  Tracked::destroyed.store(0);
  util::SpinBarrier barrier(2);
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochDomain::Pin pin(domain);
    barrier.arrive_and_wait();
    release.wait(false, std::memory_order_acquire);
  });
  barrier.arrive_and_wait();
  domain.retire(new Tracked, &count_delete);
  // A reader pinned at epoch e permits one advance (to e+1) but then
  // stalls the clock: the retired node, which needs the epoch to reach
  // e+3, stays in the backlog indefinitely — the unbounded delay of
  // deferred schemes.
  EXPECT_TRUE(domain.try_advance());
  EXPECT_FALSE(domain.try_advance());
  EXPECT_FALSE(domain.try_advance());
  EXPECT_EQ(domain.total_backlog(), 1u);
  EXPECT_EQ(Tracked::destroyed.load(), 0);
  release.store(true, std::memory_order_release);
  release.notify_all();
  reader.join();
  EXPECT_TRUE(domain.try_advance());
  EXPECT_TRUE(domain.try_advance());
  EXPECT_TRUE(domain.try_advance());
  EXPECT_EQ(Tracked::destroyed.load(), 1);
}

TEST(EpochDomain, PinUnpinCycles) {
  EpochDomain domain(1000);
  for (int i = 0; i < 100; ++i) {
    EpochDomain::Pin pin(domain);
  }
  EXPECT_TRUE(domain.try_advance());
}

TEST(EpochDomain, DestructorDrains) {
  Tracked::destroyed.store(0);
  {
    EpochDomain domain(1000);
    domain.retire(new Tracked, &count_delete);
    domain.retire(new Tracked, &count_delete);
  }
  EXPECT_EQ(Tracked::destroyed.load(), 2);
}

}  // namespace
}  // namespace hohtm::reclaim
