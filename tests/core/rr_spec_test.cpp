// Sequential-specification conformance (paper Listing 1) for all six
// revocable-reservation implementations, over two TM backends.
#include <gtest/gtest.h>

#include "core/rr.hpp"

namespace hohtm::rr {
namespace {

template <class TmT, template <class> class RrT>
struct Combo {
  using TM = TmT;
  using RR = RrT<TmT>;
};

template <class TM>
using RrSaDefault = RrSa<TM, 4>;
template <class TM>
using RrSoDefault = RrSo<TM, 4>;

using Combos = ::testing::Types<
    Combo<tm::GLock, RrFa>, Combo<tm::GLock, RrDm>, Combo<tm::GLock, RrSaDefault>,
    Combo<tm::GLock, RrXo>, Combo<tm::GLock, RrSoDefault>, Combo<tm::GLock, RrV>,
    Combo<tm::Norec, RrFa>, Combo<tm::Norec, RrDm>, Combo<tm::Norec, RrSaDefault>,
    Combo<tm::Norec, RrXo>, Combo<tm::Norec, RrSoDefault>, Combo<tm::Norec, RrV>,
    Combo<tm::Tl2, RrFa>, Combo<tm::Tl2, RrXo>, Combo<tm::Tl2, RrV>,
    Combo<tm::Tml, RrDm>, Combo<tm::Tml, RrSoDefault>, Combo<tm::Tml, RrV>>;

template <class C>
class RrSpecTest : public ::testing::Test {
 protected:
  using TM = typename C::TM;
  using RR = typename C::RR;
  using Tx = typename TM::Tx;

  RR rr;
  int node_a = 0, node_b = 0;  // stand-ins for data-structure nodes
  Ref a = &node_a;
  Ref b = &node_b;

  template <class F>
  decltype(auto) tx(F&& f) {
    return TM::atomically([&](Tx& t) {
      rr.register_thread(t);
      return f(t);
    });
  }
};

TYPED_TEST_SUITE(RrSpecTest, Combos);

TYPED_TEST(RrSpecTest, GetWithoutReserveIsNil) {
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, ReserveThenGetSameTransaction) {
  const Ref got = this->tx([&](auto& t) {
    this->rr.reserve(t, this->a);
    return this->rr.get(t);
  });
  EXPECT_EQ(got, this->a);
}

TYPED_TEST(RrSpecTest, ReservationPersistsAcrossTransactions) {
  this->tx([&](auto& t) { this->rr.reserve(t, this->a); });
  const Ref got = this->tx([&](auto& t) { return this->rr.get(t); });
  EXPECT_EQ(got, this->a);
}

TYPED_TEST(RrSpecTest, ReleaseClearsReservation) {
  this->tx([&](auto& t) { this->rr.reserve(t, this->a); });
  this->tx([&](auto& t) { this->rr.release(t); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, RevokeClearsOwnReservation) {
  this->tx([&](auto& t) { this->rr.reserve(t, this->a); });
  this->tx([&](auto& t) { this->rr.revoke(t, this->a); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, ReserveOverwritesPreviousReservation) {
  this->tx([&](auto& t) { this->rr.reserve(t, this->a); });
  this->tx([&](auto& t) { this->rr.reserve(t, this->b); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), this->b);
  // Revoking the *old* reference must not clear the new reservation
  // (strict guarantee; relaxed implementations may clear spuriously on a
  // hash collision, which the distinct stack addresses make unlikely but
  // possible — accept either nil or b for relaxed).
  this->tx([&](auto& t) { this->rr.revoke(t, this->a); });
  const Ref got = this->tx([&](auto& t) { return this->rr.get(t); });
  if (TestFixture::RR::kStrict) {
    EXPECT_EQ(got, this->b);
  } else {
    EXPECT_TRUE(got == this->b || got == nullptr);
  }
}

TYPED_TEST(RrSpecTest, RevokeOfUnreservedReferenceHarmless) {
  this->tx([&](auto& t) { this->rr.revoke(t, this->a); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, ReleaseWhenEmptyHarmless) {
  this->tx([&](auto& t) { this->rr.release(t); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, AbortedReserveLeavesNoReservation) {
  struct Bail {};
  EXPECT_THROW(this->tx([&](auto& t) {
                 this->rr.reserve(t, this->a);
                 throw Bail{};
               }),
               Bail);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), nullptr);
}

TYPED_TEST(RrSpecTest, AbortedRevokeLeavesReservationIntact) {
  this->tx([&](auto& t) { this->rr.reserve(t, this->a); });
  struct Bail {};
  EXPECT_THROW(this->tx([&](auto& t) {
                 this->rr.revoke(t, this->a);
                 throw Bail{};
               }),
               Bail);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }), this->a);
}

TYPED_TEST(RrSpecTest, ReserveReleaseCycleStress) {
  for (int i = 0; i < 200; ++i) {
    this->tx([&](auto& t) { this->rr.reserve(t, i % 2 ? this->a : this->b); });
    EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t); }),
              i % 2 ? this->a : this->b);
    this->tx([&](auto& t) { this->rr.release(t); });
  }
}

}  // namespace
}  // namespace hohtm::rr
