// Concurrent safety property of revocable reservations: once Revoke(r)
// commits, no Get may return r in any transaction that begins afterwards,
// for every implementation and backend combination under churn.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/rr.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::rr {
namespace {

template <class TmT, template <class> class RrT>
struct Combo {
  using TM = TmT;
  using RR = RrT<TmT>;
};

template <class TM>
using RrSaDefault = RrSa<TM, 4>;
template <class TM>
using RrSoDefault = RrSo<TM, 4>;

using Combos = ::testing::Types<
    Combo<tm::Norec, RrFa>, Combo<tm::Norec, RrDm>, Combo<tm::Norec, RrSaDefault>,
    Combo<tm::Norec, RrXo>, Combo<tm::Norec, RrSoDefault>, Combo<tm::Norec, RrV>,
    Combo<tm::Tl2, RrFa>, Combo<tm::Tl2, RrV>, Combo<tm::Tml, RrXo>>;

template <class C>
class RrConcurrentTest : public ::testing::Test {};

TYPED_TEST_SUITE(RrConcurrentTest, Combos);

// "Removal" protocol on a pool of fake nodes: an eraser picks a node,
// revokes it, and marks it dead, all in one transaction. Holders reserve
// a node in one transaction and in a later transaction call Get and check
// that a returned node was not dead *at reservation time and still
// reserved*. Because revoke-and-mark is atomic, any Get that returns a
// node the eraser processed is a safety violation.
TYPED_TEST(RrConcurrentTest, GetNeverReturnsRevokedNode) {
  using TM = typename TypeParam::TM;
  using RR = typename TypeParam::RR;
  using Tx = typename TM::Tx;

  constexpr int kNodes = 64;
  constexpr int kHolders = 3;
  constexpr int kErase = 300;
  struct FakeNode {
    long dead = 0;
  };
  static FakeNode nodes[kNodes];
  for (auto& n : nodes) n.dead = 0;

  RR rr;
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  util::SpinBarrier barrier(kHolders + 1);

  std::vector<std::thread> holders;
  for (int h = 0; h < kHolders; ++h) {
    holders.emplace_back([&, h] {
      util::Xoshiro256 rng(h + 100);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        FakeNode* target = &nodes[rng.next_below(kNodes)];
        // Reserve target only if it is still alive, atomically.
        const bool reserved = TM::atomically([&](Tx& t) {
          rr.register_thread(t);
          if (t.read(target->dead) != 0) return false;
          rr.reserve(t, target);
          return true;
        });
        if (!reserved) continue;
        // Later transaction: resume from the reservation. If Get returns
        // the node, the node must still be alive — the eraser revokes in
        // the same transaction that kills it.
        TM::atomically([&](Tx& t) {
          rr.register_thread(t);
          auto got = static_cast<const FakeNode*>(rr.get(t));
          if (got != nullptr) {
            if (t.read(got->dead) != 0) violation.store(true);
            rr.release(t);
          }
        });
      }
    });
  }

  std::thread eraser([&] {
    util::Xoshiro256 rng(7);
    barrier.arrive_and_wait();
    int erased = 0;
    while (erased < kErase) {
      FakeNode* victim = &nodes[rng.next_below(kNodes)];
      const bool killed = TM::atomically([&](Tx& t) {
        rr.register_thread(t);
        if (t.read(victim->dead) != 0) return false;
        rr.revoke(t, victim);
        t.write(victim->dead, 1L);
        return true;
      });
      if (killed) {
        ++erased;
        continue;
      }
      // The chosen node was already dead: resurrect it so the pool cannot
      // drain and stall the loop. A resurrected node is conceptually a
      // *new* allocation at the same address; revoke again so stale
      // reservations from before the death cannot "see" the new node as
      // their old one.
      TM::atomically([&](Tx& t) {
        rr.register_thread(t);
        if (t.read(victim->dead) != 0) {
          rr.revoke(t, victim);
          t.write(victim->dead, 0L);
        }
      });
    }
    stop.store(true);
  });

  eraser.join();
  for (auto& th : holders) th.join();
  EXPECT_FALSE(violation.load());
}

// Reserve/Release churn from many threads must never corrupt the shared
// metadata structures (bucket lists in RR-DM/SA, arrays elsewhere).
TYPED_TEST(RrConcurrentTest, ReserveReleaseChurn) {
  using TM = typename TypeParam::TM;
  using RR = typename TypeParam::RR;
  using Tx = typename TM::Tx;

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  static long cells[32];
  RR rr;
  util::SpinBarrier barrier(kThreads);
  std::atomic<bool> wrong_ref{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      util::Xoshiro256 rng(w + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        long* ref = &cells[rng.next_below(32)];
        TM::atomically([&](Tx& t) {
          rr.register_thread(t);
          rr.reserve(t, ref);
        });
        const Ref got = TM::atomically([&](Tx& t) {
          rr.register_thread(t);
          return rr.get(t);
        });
        // Relaxed implementations may return nil, but never a *different*
        // reference than the one this thread reserved.
        if (got != nullptr && got != ref) wrong_ref.store(true);
        TM::atomically([&](Tx& t) {
          rr.register_thread(t);
          rr.release(t);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(wrong_ref.load());
}

}  // namespace
}  // namespace hohtm::rr
