// Revocation telemetry: every Revoke implementation tallies
// tm::AbortCause::kRrRevocation on the revoking thread, so bench CSVs
// can attribute contention to reservation revocation rather than
// guessing from throughput. (The *loss* side — a holder observing its
// reservation gone — is counted by the HOH structures; see
// tests/ds/window_tuner_test.cpp.)
#include <gtest/gtest.h>

#include "core/multi_rr.hpp"
#include "core/rr.hpp"
#include "tm/tm.hpp"

namespace hohtm::rr {
namespace {

using TM = tm::Norec;
using Tx = TM::Tx;

std::uint64_t revocations() {
  return tm::Stats::mine().cause(tm::AbortCause::kRrRevocation);
}

template <class RR>
class RrCauseTest : public ::testing::Test {};

using AllReservations =
    ::testing::Types<RrFa<TM>, RrDm<TM>, RrSa<TM, 8>, RrXo<TM>, RrSo<TM, 8>,
                     RrV<TM>, RrNull<TM>>;
TYPED_TEST_SUITE(RrCauseTest, AllReservations);

TYPED_TEST(RrCauseTest, RevokeIncrementsTheRevocationCounter) {
  TypeParam rr;
  long node = 0;
  const std::uint64_t before = revocations();
  TM::atomically([&](Tx& tx) {
    rr.register_thread(tx);
    rr.reserve(tx, &node);
    rr.revoke(tx, &node);
    // Post-revoke, the reservation is gone for every implementation
    // (RR-Null never held one to begin with).
    EXPECT_EQ(rr.get(tx), nullptr);
  });
  EXPECT_EQ(revocations() - before, 1u);
}

TYPED_TEST(RrCauseTest, RevokeOfUnreservedRefStillCounts) {
  TypeParam rr;
  long node = 0;
  const std::uint64_t before = revocations();
  TM::atomically([&](Tx& tx) {
    rr.register_thread(tx);
    rr.revoke(tx, &node);  // a remover revokes whether or not anyone holds
  });
  EXPECT_EQ(revocations() - before, 1u);
}

TEST(MultiRrCause, BothMultiImplementationsCount) {
  MultiRrV<TM> versioned;
  MultiRrFa<TM> associative;
  long node = 0;
  const std::uint64_t before = revocations();
  TM::atomically([&](Tx& tx) {
    versioned.register_thread(tx);
    versioned.reserve(tx, &node);
    versioned.revoke(tx, &node);
    EXPECT_EQ(versioned.get(tx, &node), nullptr);
    associative.register_thread(tx);
    associative.reserve(tx, &node);
    associative.revoke(tx, &node);
    EXPECT_EQ(associative.get(tx, &node), nullptr);
  });
  EXPECT_EQ(revocations() - before, 2u);
}

}  // namespace
}  // namespace hohtm::rr
