// Multi-reservation objects (Listing 1 semantics with per-thread sets).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/multi_rr.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::rr {
namespace {

template <class TmT, template <class, std::size_t> class RrT>
struct Combo {
  using TM = TmT;
  using RR = RrT<TmT, 4>;
};

using Combos =
    ::testing::Types<Combo<tm::GLock, MultiRrV>, Combo<tm::Norec, MultiRrV>,
                     Combo<tm::Tl2, MultiRrV>, Combo<tm::GLock, MultiRrFa>,
                     Combo<tm::Norec, MultiRrFa>, Combo<tm::Tml, MultiRrFa>>;

template <class C>
class MultiRrTest : public ::testing::Test {
 protected:
  using TM = typename C::TM;
  using RR = typename C::RR;
  using Tx = typename TM::Tx;

  RR rr;
  int nodes[8] = {};

  template <class F>
  decltype(auto) tx(F&& f) {
    return TM::atomically([&](Tx& t) {
      rr.register_thread(t);
      return f(t);
    });
  }
};

TYPED_TEST_SUITE(MultiRrTest, Combos);

TYPED_TEST(MultiRrTest, EmptySetGetsNil) {
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[0]); }),
            nullptr);
}

TYPED_TEST(MultiRrTest, HoldsMultipleSimultaneously) {
  this->tx([&](auto& t) {
    EXPECT_TRUE(this->rr.reserve(t, &this->nodes[0]));
    EXPECT_TRUE(this->rr.reserve(t, &this->nodes[1]));
    EXPECT_TRUE(this->rr.reserve(t, &this->nodes[2]));
  });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.held(t); }), 3u);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[1]); }),
            &this->nodes[1]);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[3]); }),
            nullptr);
}

TYPED_TEST(MultiRrTest, CapacityBound) {
  this->tx([&](auto& t) {
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(this->rr.reserve(t, &this->nodes[i]));
    EXPECT_FALSE(this->rr.reserve(t, &this->nodes[4])) << "set is full";
    // Re-reserving a held reference is not an additional slot.
    EXPECT_TRUE(this->rr.reserve(t, &this->nodes[0]));
  });
}

TYPED_TEST(MultiRrTest, ReleaseIsSelective) {
  this->tx([&](auto& t) {
    this->rr.reserve(t, &this->nodes[0]);
    this->rr.reserve(t, &this->nodes[1]);
  });
  this->tx([&](auto& t) { this->rr.release(t, &this->nodes[0]); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[0]); }),
            nullptr);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[1]); }),
            &this->nodes[1]);
}

TYPED_TEST(MultiRrTest, RevokeIsSelective) {
  this->tx([&](auto& t) {
    this->rr.reserve(t, &this->nodes[0]);
    this->rr.reserve(t, &this->nodes[1]);
  });
  this->tx([&](auto& t) { this->rr.revoke(t, &this->nodes[1]); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[1]); }),
            nullptr);
  const Ref survivor =
      this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[0]); });
  if (TestFixture::RR::kStrict) {
    EXPECT_EQ(survivor, &this->nodes[0]);
  } else {
    EXPECT_TRUE(survivor == &this->nodes[0] || survivor == nullptr);
  }
}

TYPED_TEST(MultiRrTest, ReleaseAllEmptiesTheSet) {
  this->tx([&](auto& t) {
    this->rr.reserve(t, &this->nodes[0]);
    this->rr.reserve(t, &this->nodes[1]);
    this->rr.reserve(t, &this->nodes[2]);
  });
  this->tx([&](auto& t) { this->rr.release_all(t); });
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.held(t); }), 0u);
}

TYPED_TEST(MultiRrTest, CrossThreadRevokeClearsHolder) {
  this->tx([&](auto& t) { this->rr.reserve(t, &this->nodes[0]); });
  std::thread revoker([&] {
    this->tx([&](auto& t) { this->rr.revoke(t, &this->nodes[0]); });
  });
  revoker.join();
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.get(t, &this->nodes[0]); }),
            nullptr);
}

TYPED_TEST(MultiRrTest, AbortedReserveUnwinds) {
  struct Bail {};
  EXPECT_THROW(this->tx([&](auto& t) {
                 this->rr.reserve(t, &this->nodes[0]);
                 this->rr.reserve(t, &this->nodes[1]);
                 throw Bail{};
               }),
               Bail);
  EXPECT_EQ(this->tx([&](auto& t) { return this->rr.held(t); }), 0u);
}

TYPED_TEST(MultiRrTest, ConcurrentChurnKeepsSetsDisjointPerThread) {
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  util::SpinBarrier barrier(kThreads);
  std::atomic<bool> wrong{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 5);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        int* a = &this->nodes[rng.next_below(8)];
        int* b = &this->nodes[rng.next_below(8)];
        this->tx([&](auto& trans) {
          this->rr.reserve(trans, a);
          this->rr.reserve(trans, b);
        });
        const Ref got =
            this->tx([&](auto& trans) { return this->rr.get(trans, a); });
        if (got != nullptr && got != a) wrong.store(true);
        this->tx([&](auto& trans) { this->rr.release_all(trans); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(wrong.load());
}

}  // namespace
}  // namespace hohtm::rr
