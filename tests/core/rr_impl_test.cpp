// Implementation-specific behaviours of the reservation algorithms:
// strict vs relaxed semantics, delayed unlink, slot recycling, collisions.
#include <gtest/gtest.h>

#include <thread>

#include "core/rr.hpp"
#include "util/barrier.hpp"

namespace hohtm::rr {
namespace {

using TM = tm::Norec;
using Tx = TM::Tx;

template <class RR, class F>
decltype(auto) in_tx(RR& rr, F&& f) {
  return TM::atomically([&](Tx& t) {
    rr.register_thread(t);
    return f(t);
  });
}

TEST(RrXoSemantics, CollidingReserveEvictsOtherThread) {
  // One hash slot: every reference collides. Thread B's reserve of a
  // different reference must spuriously invalidate A's reservation —
  // the exclusive-ownership relaxation of Section 3.2.
  RrXo<TM> rr(/*log2_slots=*/0);
  int na = 0, nb = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &na); });
  std::thread other([&] { in_tx(rr, [&](Tx& t) { rr.reserve(t, &nb); }); });
  other.join();
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), nullptr)
      << "exclusive ownership: the colliding reserve must evict";
}

TEST(RrVSemantics, CollidingReserveDoesNotEvict) {
  // RR-V allows any number of threads to share a reservation slot;
  // only a Revoke bumps the counter.
  RrV<TM> rr(/*log2_slots=*/0);
  int na = 0, nb = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &na); });
  std::thread other([&] { in_tx(rr, [&](Tx& t) { rr.reserve(t, &nb); }); });
  other.join();
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), &na);
}

TEST(RrVSemantics, CollidingRevokeEvictsSpuriously) {
  RrV<TM> rr(/*log2_slots=*/0);
  int na = 0, nb = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &na); });
  std::thread other([&] { in_tx(rr, [&](Tx& t) { rr.revoke(t, &nb); }); });
  other.join();
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), nullptr)
      << "hash-colliding revoke must invalidate (relaxed semantics)";
}

TEST(RrFaSemantics, StrictUnderCollidingTraffic) {
  // The strict algorithms key on the reference itself, not a hash, so no
  // amount of other-reference traffic may evict a reservation.
  RrFa<TM> rr;
  int na = 0, nb = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &na); });
  std::thread other([&] {
    for (int i = 0; i < 50; ++i) {
      in_tx(rr, [&](Tx& t) { rr.reserve(t, &nb); });
      in_tx(rr, [&](Tx& t) { rr.revoke(t, &nb); });
      in_tx(rr, [&](Tx& t) { rr.release(t); });
    }
  });
  other.join();
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), &na);
}

TEST(RrFaSemantics, RegisteredCountTracksThreads) {
  RrFa<TM> rr;
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      in_tx(rr, [&](Tx& t) { rr.register_thread(t); });
      barrier.arrive_and_wait();  // all registered while all still alive
    });
  }
  for (auto& th : threads) th.join();
  const std::size_t count =
      TM::atomically([&](Tx& t) { return rr.registered_count(t); });
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads));
}

TEST(RrDmSemantics, ReleaseDelaysUnlink) {
  RrDm<TM> rr;
  int node = 0;
  const std::size_t bucket = hash_ref(&node, 6);  // default log2_buckets = 6
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, bucket); }),
            1u);
  in_tx(rr, [&](Tx& t) { rr.release(t); });
  // The paper's contention-avoiding optimization: the node stays linked.
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, bucket); }),
            1u);
}

TEST(RrDmSemantics, EagerUnlinkEmptiesBucketOnRelease) {
  RrDm<TM> rr(/*log2_buckets=*/6, /*delayed_unlink=*/false);
  int node = 0;
  const std::size_t bucket = hash_ref(&node, 6);
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, bucket); }),
            1u);
  in_tx(rr, [&](Tx& t) { rr.release(t); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, bucket); }),
            0u)
      << "eager variant must unlink on release";
  // Re-reserving relinks cleanly.
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), &node);
}

TEST(RrDmSemantics, ReserveMovesNodeBetweenBuckets) {
  RrDm<TM> rr;
  // Find two references that hash to different buckets.
  alignas(64) int nodes[64];
  std::size_t b0 = hash_ref(&nodes[0], 6);
  int* second = nullptr;
  std::size_t b1 = b0;
  for (auto& n : nodes) {
    if (hash_ref(&n, 6) != b0) {
      second = &n;
      b1 = hash_ref(&n, 6);
      break;
    }
  }
  ASSERT_NE(second, nullptr);

  in_tx(rr, [&](Tx& t) { rr.reserve(t, &nodes[0]); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, b0); }), 1u);
  in_tx(rr, [&](Tx& t) { rr.reserve(t, second); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, b0); }), 0u);
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.bucket_occupancy(t, b1); }), 1u);
}

TEST(RrDmSemantics, RevokeScansOnlyMatchingBucket) {
  RrDm<TM> rr;
  int node = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); });
  // Revoke of a reference in a different bucket leaves the reservation.
  alignas(64) int decoys[64];
  int* other_bucket = nullptr;
  for (auto& d : decoys) {
    if (hash_ref(&d, 6) != hash_ref(&node, 6)) {
      other_bucket = &d;
      break;
    }
  }
  ASSERT_NE(other_bucket, nullptr);
  in_tx(rr, [&](Tx& t) { rr.revoke(t, other_bucket); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), &node);
  // Revoke of the same reference clears it even though the node was
  // linked by this same thread.
  in_tx(rr, [&](Tx& t) { rr.revoke(t, &node); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), nullptr);
}

template <class RR>
void expect_recycled_slot_is_scrubbed() {
  // A thread reserves and exits without releasing. The next thread to
  // inherit its registry slot must NOT see the dead thread's reservation
  // (it would be a dangling reference in real use).
  RR rr;
  static int node;
  std::thread first(
      [&] { in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); }); });
  first.join();
  Ref inherited = nullptr;
  std::thread second(
      [&] { inherited = in_tx(rr, [&](Tx& t) { return rr.get(t); }); });
  second.join();
  EXPECT_EQ(inherited, nullptr);
}

TEST(RrSlotRecycling, FaScrubbed) { expect_recycled_slot_is_scrubbed<RrFa<TM>>(); }
TEST(RrSlotRecycling, DmScrubbed) { expect_recycled_slot_is_scrubbed<RrDm<TM>>(); }
TEST(RrSlotRecycling, SaScrubbed) { expect_recycled_slot_is_scrubbed<RrSa<TM, 4>>(); }
TEST(RrSlotRecycling, XoScrubbed) { expect_recycled_slot_is_scrubbed<RrXo<TM>>(); }
TEST(RrSlotRecycling, SoScrubbed) { expect_recycled_slot_is_scrubbed<RrSo<TM, 4>>(); }
TEST(RrSlotRecycling, VScrubbed) { expect_recycled_slot_is_scrubbed<RrV<TM>>(); }

TEST(RrNull, AlwaysNil) {
  RrNull<TM> rr;
  int node = 0;
  in_tx(rr, [&](Tx& t) { rr.reserve(t, &node); });
  EXPECT_EQ(in_tx(rr, [&](Tx& t) { return rr.get(t); }), nullptr);
}

}  // namespace
}  // namespace hohtm::rr
