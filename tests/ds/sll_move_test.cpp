// SllMove: the multi-reservation composition (atomic move) extension.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/sll_move.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

using TM = tm::Norec;
using List = SllMove<TM>;

TEST(SllMove, BasicSetSemantics) {
  List list(4);
  EXPECT_TRUE(list.insert(5));
  EXPECT_TRUE(list.insert(1));
  EXPECT_FALSE(list.insert(5));
  EXPECT_TRUE(list.contains(1));
  EXPECT_TRUE(list.remove(5));
  EXPECT_FALSE(list.remove(5));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, MoveDisjointPositions) {
  List list(4);
  for (long k : {10L, 20L, 30L, 40L}) list.insert(k);
  EXPECT_TRUE(list.move(20, 35));
  EXPECT_FALSE(list.contains(20));
  EXPECT_TRUE(list.contains(35));
  EXPECT_EQ(list.size(), 4u);
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, MoveIntoSameGap) {
  List list(4);
  for (long k : {10L, 20L, 30L}) list.insert(k);
  // replacement lands exactly where the victim was (same predecessor).
  EXPECT_TRUE(list.move(20, 15));
  EXPECT_FALSE(list.contains(20));
  EXPECT_TRUE(list.contains(15));
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, MoveToGapAfterVictim) {
  List list(4);
  for (long k : {10L, 20L, 30L}) list.insert(k);
  EXPECT_TRUE(list.move(20, 25));
  EXPECT_FALSE(list.contains(20));
  EXPECT_TRUE(list.contains(25));
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, MoveFailsWhenVictimAbsent) {
  List list(4);
  list.insert(10);
  EXPECT_FALSE(list.move(99, 50));
  EXPECT_FALSE(list.contains(50));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SllMove, MoveFailsWhenReplacementPresent) {
  List list(4);
  list.insert(10);
  list.insert(20);
  EXPECT_FALSE(list.move(10, 20));
  EXPECT_TRUE(list.contains(10)) << "failed move must not remove the victim";
  EXPECT_EQ(list.size(), 2u);
}

TEST(SllMove, MoveAcrossLongDistances) {
  List list(4);  // small window: many hand-over-hand hops per hunt
  for (long k = 0; k < 100; k += 2) list.insert(k);
  EXPECT_TRUE(list.move(0, 99));
  EXPECT_TRUE(list.move(98, 1));
  EXPECT_TRUE(list.contains(99));
  EXPECT_TRUE(list.contains(1));
  EXPECT_FALSE(list.contains(0));
  EXPECT_FALSE(list.contains(98));
  EXPECT_EQ(list.size(), 50u);
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, MoveIsPreciselyReclaimed) {
  List list(4);
  list.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 20; ++k) list.insert(k * 10);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 20);
  for (long k = 0; k < 20; ++k) EXPECT_TRUE(list.move(k * 10, k * 10 + 5));
  // Every move frees its victim in the committing transaction.
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 20);
  EXPECT_EQ(list.size(), 20u);
}

TEST(SllMove, ConcurrentMovesConserveElementCount) {
  List list(4);
  constexpr int kThreads = 4;
  constexpr long kSlots = 32;
  // Thread t owns slots congruent to t; each slot holds exactly one key
  // in [slot*100, slot*100+99]; moves shuffle the key within the slot.
  for (long s = 0; s < kSlots; ++s) list.insert(s * 100);
  util::SpinBarrier barrier(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 9);
      long offset[kSlots] = {};  // current in-slot offset for owned slots
      barrier.arrive_and_wait();
      for (int i = 0; i < 300; ++i) {
        const long slot = (rng.next_below(kSlots / kThreads)) * kThreads + t;
        const long from = slot * 100 + offset[slot];
        const long to = slot * 100 + (offset[slot] + 1 + static_cast<long>(rng.next_below(98))) % 100;
        if (from == to) continue;
        if (!list.move(from, to)) {
          failed.store(true);
          break;
        }
        offset[slot] = to - slot * 100;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load()) << "owned-slot moves must always succeed";
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kSlots));
  EXPECT_TRUE(list.is_sorted());
}

TEST(SllMove, ConcurrentMovesAndReadersSeeExactlyOneKeyPerSlot) {
  // Movers shuffle within disjoint slots while readers verify that each
  // slot always contains exactly one key — the atomicity guarantee of
  // move(): never zero (remove visible before insert) nor two.
  List list(4);
  constexpr long kSlots = 8;
  for (long s = 0; s < kSlots; ++s) list.insert(s * 100);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::thread mover([&] {
    util::Xoshiro256 rng(3);
    long offset[kSlots] = {};
    for (int i = 0; i < 600; ++i) {
      const long slot = static_cast<long>(rng.next_below(kSlots));
      const long from = slot * 100 + offset[slot];
      const long to =
          slot * 100 + (offset[slot] + 1 + static_cast<long>(rng.next_below(98))) % 100;
      if (from == to) continue;
      if (list.move(from, to)) offset[slot] = to - slot * 100;
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t n = list.size();
      if (n != static_cast<std::size_t>(kSlots)) violation.store(true);
    }
  });
  mover.join();
  reader.join();
  EXPECT_FALSE(violation.load())
      << "a size other than kSlots means a move was observed half-done";
}

}  // namespace
}  // namespace hohtm::ds
