// Skip list with hand-over-hand lookups and revocable reservations.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/skiplist.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, int kWindow>
struct Combo {
  using TM = TmT;
  using List = SkipList<TmT, RrT<TmT>>;
  static constexpr int window = kWindow;
};

using Combos = ::testing::Types<
    Combo<tm::Norec, rr::RrV, 4>, Combo<tm::Norec, rr::RrXo, 4>,
    Combo<tm::Norec, rr::RrFa, 4>, Combo<tm::Norec, rr::RrDm, 4>,
    Combo<tm::GLock, rr::RrV, 4>, Combo<tm::Tl2, rr::RrXo, 4>,
    Combo<tm::Tml, rr::RrV, 4>, Combo<tm::Norec, rr::RrV, 1>,
    Combo<tm::Norec, rr::RrNull, SkipList<tm::Norec, rr::RrNull<tm::Norec>>::kUnbounded>>;

template <class C>
class SkipListTest : public ::testing::Test {
 protected:
  using List = typename C::List;
  List list{C::window};
};

TYPED_TEST_SUITE(SkipListTest, Combos);

TYPED_TEST(SkipListTest, Empty) {
  EXPECT_FALSE(this->list.contains(5));
  EXPECT_FALSE(this->list.remove(5));
  EXPECT_EQ(this->list.size(), 0u);
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(SkipListTest, InsertLookupRemove) {
  EXPECT_TRUE(this->list.insert(10));
  EXPECT_TRUE(this->list.insert(5));
  EXPECT_TRUE(this->list.insert(20));
  EXPECT_FALSE(this->list.insert(10));
  EXPECT_TRUE(this->list.contains(5));
  EXPECT_TRUE(this->list.contains(20));
  EXPECT_FALSE(this->list.contains(15));
  EXPECT_TRUE(this->list.remove(10));
  EXPECT_FALSE(this->list.remove(10));
  EXPECT_EQ(this->list.size(), 2u);
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(SkipListTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(91);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->list.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->list.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->list.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->list.size(), reference.size());
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(SkipListTest, TallTowersSpliceCleanly) {
  // Insert enough keys that multi-level towers certainly exist; removing
  // every key must leave a structurally empty, consistent list.
  for (long k = 0; k < 300; ++k) this->list.insert(k);
  EXPECT_TRUE(this->list.is_consistent());
  for (long k = 0; k < 300; ++k) EXPECT_TRUE(this->list.remove(k));
  EXPECT_EQ(this->list.size(), 0u);
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(SkipListTest, ReclamationIsPrecise) {
  this->list.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 64; ++k) this->list.insert(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 64);
  for (long k = 0; k < 64; ++k) {
    this->list.remove(k);
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 64 - (k + 1));
  }
}

TYPED_TEST(SkipListTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  constexpr long kRange = 128;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 47);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key =
            static_cast<long>(rng.next_below(kRange / kThreads)) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->list.insert(key)) ++mine;
            break;
          case 1:
            if (this->list.remove(key)) --mine;
            break;
          default:
            this->list.contains(static_cast<long>(rng.next_below(kRange)));
            break;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(SkipListTest, LookupsCorrectDuringConcurrentRemovals) {
  // Lookups of never-removed keys must always succeed while removers
  // shred the keys around them (reservation resume across removals).
  constexpr long kKeys = 200;
  for (long k = 0; k < kKeys; ++k) this->list.insert(k);
  std::atomic<bool> lost{false};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (long k = 1; k < kKeys; k += 4)  // keys = 1 mod 4 never removed
        if (!this->list.contains(k)) lost.store(true);
    }
  });
  std::thread remover([&] {
    for (long k = 0; k < kKeys; ++k)
      if (k % 4 != 1) this->list.remove(k);
    stop.store(true);
  });
  remover.join();
  reader.join();
  EXPECT_FALSE(lost.load());
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(kKeys / 4));
}

}  // namespace
}  // namespace hohtm::ds
