// Parameterized property sweeps over the data structures:
//  - randomized mixed workloads vs a reference set, across window sizes;
//  - failure injection: user exceptions thrown mid-operation must leave
//    the structure exactly as it was (transactional rollback);
//  - allocator-backend sweep: everything holds with the pool allocator.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "alloc/pool.hpp"
#include "ds/bst_external.hpp"
#include "ds/bst_internal.hpp"
#include "ds/dll_hoh.hpp"
#include "ds/hash_set.hpp"
#include "ds/sll_hoh.hpp"
#include "reclaim/gauge.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

using TM = tm::Norec;

struct SweepParam {
  const char* structure;
  int window;
  bool pool_allocator;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.structure) + "_w" +
         std::to_string(info.param.window) +
         (info.param.pool_allocator ? "_pool" : "_malloc");
}

class DsSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override { alloc::use_pool(GetParam().pool_allocator); }
  void TearDown() override { alloc::use_pool(false); }
};

template <class Set>
void reference_sweep(Set& set, std::uint64_t seed) {
  std::set<long> reference;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 2000; ++i) {
    const long key = static_cast<long>(rng.next_below(160));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(set.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        ASSERT_EQ(set.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        ASSERT_EQ(set.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  ASSERT_EQ(set.size(), reference.size());
}

TEST_P(DsSweep, MatchesReferenceUnderRandomOps) {
  const SweepParam& param = GetParam();
  const std::string structure = param.structure;
  if (structure == "sll") {
    SllHoh<TM, rr::RrV<TM>> set(param.window);
    reference_sweep(set, 1);
  } else if (structure == "dll") {
    DllHoh<TM, rr::RrFa<TM>> set(param.window);
    reference_sweep(set, 2);
  } else if (structure == "bst_int") {
    BstInternal<TM, rr::RrXo<TM>> set(param.window);
    reference_sweep(set, 3);
  } else if (structure == "bst_ext") {
    BstExternal<TM, rr::RrV<TM>> set(param.window);
    reference_sweep(set, 4);
  } else if (structure == "hash") {
    HashSet<TM, rr::RrV<TM>> set(/*log2_buckets=*/3, param.window);
    reference_sweep(set, 5);
  } else {
    FAIL() << structure;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, DsSweep,
    ::testing::Values(SweepParam{"sll", 1, false}, SweepParam{"sll", 3, false},
                      SweepParam{"sll", 16, false}, SweepParam{"sll", 4, true},
                      SweepParam{"dll", 1, false}, SweepParam{"dll", 5, false},
                      SweepParam{"dll", 4, true},
                      SweepParam{"bst_int", 2, false},
                      SweepParam{"bst_int", 8, false},
                      SweepParam{"bst_int", 4, true},
                      SweepParam{"bst_ext", 2, false},
                      SweepParam{"bst_ext", 8, false},
                      SweepParam{"bst_ext", 4, true},
                      SweepParam{"hash", 2, false},
                      SweepParam{"hash", 8, true}),
    param_name);

// ---------------------------------------------------------------------------
// Failure injection: a user exception mid-transaction aborts the whole
// operation; the structure and the live-object gauge must be untouched.
// ---------------------------------------------------------------------------

struct Bomb {};

TEST(FailureInjection, ExplodingTransactionLeavesListIntact) {
  SllHoh<TM, rr::RrV<TM>> set(4);
  for (long k = 0; k < 32; ++k) set.insert(k);
  set.contains(0);  // settle RR registration
  const auto live_before = reclaim::Gauge::live();
  const auto size_before = set.size();

  // A transaction that mutates unrelated cells and then explodes must
  // not disturb the set even though it shares the TM runtime.
  static long scratch;
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(TM::atomically([&](TM::Tx& tx) {
                   tx.write(scratch, tx.read(scratch) + 1);
                   throw Bomb{};
                 }),
                 Bomb);
  }
  EXPECT_EQ(scratch, 0);
  EXPECT_EQ(set.size(), size_before);
  EXPECT_EQ(reclaim::Gauge::live(), live_before);
  EXPECT_TRUE(set.is_sorted());
}

TEST(FailureInjection, ExplodingAllocationsNeverLeak) {
  struct Payload {
    long a[4];
    explicit Payload(long v) : a{v, v, v, v} {}
  };
  const auto live_before = reclaim::Gauge::live();
  for (int i = 0; i < 100; ++i) {
    EXPECT_THROW(TM::atomically([&](TM::Tx& tx) {
                   tx.template alloc<Payload>(1L);
                   tx.template alloc<Payload>(2L);
                   if (i % 2 == 0) tx.template alloc<Payload>(3L);
                   throw Bomb{};
                 }),
                 Bomb);
  }
  EXPECT_EQ(reclaim::Gauge::live(), live_before);
}

TEST(FailureInjection, PoolBackendSurvivesAbortStorm) {
  alloc::use_pool(true);
  struct Payload {
    long a[6];
  };
  const auto live_before = reclaim::Gauge::live();
  for (int i = 0; i < 200; ++i) {
    try {
      TM::atomically([&](TM::Tx& tx) {
        Payload* p = tx.template alloc<Payload>();
        (void)p;
        if (i % 3 != 0) throw Bomb{};
        tx.dealloc(p);
      });
    } catch (const Bomb&) {
    }
  }
  EXPECT_EQ(reclaim::Gauge::live(), live_before);
  alloc::use_pool(false);
}

}  // namespace
}  // namespace hohtm::ds
