// TMHP and REF list variants: correctness plus the *deferred* reclamation
// behaviours that contrast with revocable reservations.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/bst_external_tmhp.hpp"
#include "ds/dll_tmhp.hpp"
#include "ds/sll_ref.hpp"
#include "ds/sll_tmhp.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class ListT>
class HohBaselineTest : public ::testing::Test {
 protected:
  ListT list{/*window=*/4};
};

using Lists = ::testing::Types<SllTmhp<tm::Norec>, SllTmhp<tm::Tl2>,
                               SllTmhp<tm::GLock>, SllRef<tm::Norec>,
                               SllRef<tm::GLock>, DllTmhp<tm::Norec>,
                               DllTmhp<tm::Tml>, BstExternalTmhp<tm::Norec>,
                               BstExternalTmhp<tm::Tl2>>;
TYPED_TEST_SUITE(HohBaselineTest, Lists);

TYPED_TEST(HohBaselineTest, Empty) {
  EXPECT_FALSE(this->list.contains(9));
  EXPECT_FALSE(this->list.remove(9));
  EXPECT_EQ(this->list.size(), 0u);
}

TYPED_TEST(HohBaselineTest, InsertLookupRemove) {
  EXPECT_TRUE(this->list.insert(5));
  EXPECT_TRUE(this->list.insert(3));
  EXPECT_FALSE(this->list.insert(5));
  EXPECT_TRUE(this->list.contains(3));
  EXPECT_TRUE(this->list.remove(5));
  EXPECT_FALSE(this->list.remove(5));
  EXPECT_EQ(this->list.size(), 1u);
}

TYPED_TEST(HohBaselineTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(73);
  for (int i = 0; i < 2500; ++i) {
    const long key = static_cast<long>(rng.next_below(96));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->list.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->list.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->list.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->list.size(), reference.size());
}

TYPED_TEST(HohBaselineTest, LongTraversalsAcrossWindows) {
  for (long k = 0; k < 150; ++k) EXPECT_TRUE(this->list.insert(k));
  EXPECT_TRUE(this->list.contains(149));
  EXPECT_FALSE(this->list.contains(150));
  EXPECT_TRUE(this->list.remove(149));
  EXPECT_EQ(this->list.size(), 149u);
}

TYPED_TEST(HohBaselineTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 800;
  constexpr long kRange = 64;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 37);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key =
            static_cast<long>(rng.next_below(kRange / kThreads)) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->list.insert(key)) ++mine;
            break;
          case 1:
            if (this->list.remove(key)) --mine;
            break;
          default:
            this->list.contains(static_cast<long>(rng.next_below(kRange)));
            break;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(net.load()));
}

TEST(TmhpReclamation, DeferralBacklogThenDrain) {
  // TMHP defers: after removals, unreclaimed nodes sit in the hazard
  // domain until a scan. Revocable reservations would free each node in
  // its remove's transaction (see SllTest.ReclamationIsPrecise).
  SllTmhp<tm::Norec> list(/*window=*/4, /*scatter=*/true,
                          /*scan_threshold=*/1000);
  for (long k = 0; k < 40; ++k) list.insert(k);
  const auto live_before_removes = reclaim::Gauge::live();
  for (long k = 0; k < 40; ++k) list.remove(k);
  EXPECT_EQ(list.reclaimer_backlog(), 40u);
  EXPECT_EQ(reclaim::Gauge::live(), live_before_removes)
      << "memory not yet reclaimed: the deferral the paper eliminates";
}

TEST(TmhpExternalTree, RetiresLeafAndRouterPerRemove) {
  BstExternalTmhp<tm::Norec> tree(/*window=*/4, true,
                                  /*scan_threshold=*/1000);
  for (long k = 0; k < 30; ++k) tree.insert(k);
  for (long k = 0; k < 30; ++k) tree.remove(k);
  EXPECT_EQ(tree.reclaimer_backlog(), 60u) << "leaf + router per remove";
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RefReclamation, UnpinnedRemovesFreeImmediately) {
  // With no concurrent pins, REF frees in the removing transaction.
  SllRef<tm::Norec> list(/*window=*/4);
  list.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 20; ++k) list.insert(k);
  for (long k = 0; k < 20; ++k) list.remove(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline);
}

}  // namespace
}  // namespace hohtm::ds
