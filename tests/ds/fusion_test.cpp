// Window fusion (ROADMAP item 5): commit elision across hand-over-hand
// windows. FusionState's protocol is pinned directly (budget consumption,
// the fall-back-on-aborted-speculation rule, commit-time crediting), then
// end-to-end through SllHoh: a fused traversal must complete the same
// operations in measurably fewer transactions, with zero added aborts,
// and the contention gate in WindowTuner must keep the budget at zero
// until a clean streak earns it.
#include <gtest/gtest.h>

#include "ds/sll_hoh.hpp"
#include "ds/window_policy.hpp"
#include "ds/window_tuner.hpp"
#include "tm/tm.hpp"

namespace hohtm::ds {
namespace {

using TM = tm::Norec;

TEST(FusionState, ConsumesBudgetPerElision) {
  FusionState fusion(2);
  fusion.on_attempt_start();
  EXPECT_TRUE(fusion.try_fuse());
  EXPECT_TRUE(fusion.try_fuse());
  EXPECT_FALSE(fusion.try_fuse());  // budget exhausted: park as usual
  EXPECT_EQ(fusion.budget(), 0);
}

TEST(FusionState, ZeroBudgetNeverFuses) {
  FusionState fusion(0);
  fusion.on_attempt_start();
  EXPECT_FALSE(fusion.try_fuse());
}

TEST(FusionState, CommitCreditsElidedBoundaries) {
  const std::uint64_t before = tm::Stats::mine().fused_windows;
  FusionState fusion(3);
  fusion.on_attempt_start();
  EXPECT_TRUE(fusion.try_fuse());
  EXPECT_TRUE(fusion.try_fuse());
  fusion.on_commit();
  EXPECT_EQ(tm::Stats::mine().fused_windows, before + 2);
  // A second commit with no elisions credits nothing.
  fusion.on_attempt_start();
  fusion.on_commit();
  EXPECT_EQ(tm::Stats::mine().fused_windows, before + 2);
}

TEST(FusionState, AbortedSpeculationFallsBack) {
  tm::StatCounters& c = tm::Stats::mine();
  const std::uint64_t aborts_before = c.fused_aborts;
  const std::uint64_t fallbacks_before =
      c.cause(tm::AbortCause::kFusionFallback);
  FusionState fusion(4);
  fusion.on_attempt_start();
  EXPECT_TRUE(fusion.try_fuse());
  // The attempt aborts: TM::atomically re-runs the body, so the next
  // on_attempt_start sees the speculation that did not commit. It must
  // drop the budget and tag the retreat, exactly once each.
  fusion.on_attempt_start();
  EXPECT_EQ(c.fused_aborts, aborts_before + 1);
  EXPECT_EQ(c.cause(tm::AbortCause::kFusionFallback), fallbacks_before + 1);
  EXPECT_EQ(fusion.budget(), 0);
  EXPECT_FALSE(fusion.try_fuse());  // op re-runs under the plain protocol
  fusion.on_commit();
  // Nothing speculative committed, so nothing is credited.
  EXPECT_EQ(c.fused_aborts, aborts_before + 1);
}

TEST(FusionState, FallbackAccountingBalances) {
  // The telemetry invariant the sched mutant test leans on: under correct
  // code every fused abort is answered by exactly one fallback record.
  tm::StatCounters& c = tm::Stats::mine();
  const std::uint64_t aborts_before = c.fused_aborts;
  const std::uint64_t fallbacks_before =
      c.cause(tm::AbortCause::kFusionFallback);
  for (int i = 0; i < 3; ++i) {
    FusionState fusion(2);
    fusion.on_attempt_start();
    ASSERT_TRUE(fusion.try_fuse());
    fusion.on_attempt_start();  // abort + fallback
    fusion.on_commit();
  }
  EXPECT_EQ(c.fused_aborts - aborts_before,
            c.cause(tm::AbortCause::kFusionFallback) - fallbacks_before);
}

TEST(FusedList, FewerCommitsSameAnswers) {
  // Two identical read-only passes over a 64-key list with W = 4; the
  // fused pass gets enough budget to elide every interior boundary.
  SllHoh<TM, rr::RrV<TM>> list(/*window=*/4, /*scatter=*/false);
  for (long k = 0; k < 64; ++k) ASSERT_TRUE(list.insert(k));

  tm::StatCounters& c = tm::Stats::mine();
  const std::uint64_t commits_a = c.commits;
  for (long k = 0; k < 64; ++k) ASSERT_TRUE(list.contains(k));
  const std::uint64_t unfused_commits = c.commits - commits_a;

  list.enable_fusion(/*budget=*/64);
  const std::uint64_t commits_b = c.commits;
  const std::uint64_t aborts_b = c.aborts;
  const std::uint64_t fused_b = c.fused_windows;
  for (long k = 0; k < 64; ++k) ASSERT_TRUE(list.contains(k));
  const std::uint64_t fused_commits = c.commits - commits_b;

  EXPECT_LT(fused_commits, unfused_commits);
  EXPECT_GT(c.fused_windows, fused_b);           // boundaries were elided
  EXPECT_EQ(c.aborts, aborts_b);                 // single-threaded: none
  EXPECT_FALSE(list.contains(64));               // answers unchanged
  EXPECT_TRUE(list.is_sorted());
}

TEST(FusedList, MutatorsCorrectUnderFusion) {
  SllHoh<TM, rr::RrV<TM>> list(/*window=*/2, /*scatter=*/false);
  list.enable_fusion(/*budget=*/8);
  for (long k = 0; k < 32; ++k) ASSERT_TRUE(list.insert(k));
  for (long k = 0; k < 32; k += 2) ASSERT_TRUE(list.remove(k));
  for (long k = 0; k < 32; ++k)
    EXPECT_EQ(list.contains(k), (k & 1) == 1) << k;
  EXPECT_EQ(list.size(), 16u);
  EXPECT_TRUE(list.is_sorted());
}

TEST(WindowTuner, FusionBudgetGatedOnCleanStreak) {
  WindowTuner tuner(4, 4, /*fusion_cap=*/8);
  // A fresh thread has no streak: the plan grants window only.
  EXPECT_EQ(tuner.plan_op().fusion_budget, 0);
  tuner.observe();
  for (int i = 1; i < 8; ++i) {  // seven more clean ops: still gated
    EXPECT_EQ(tuner.plan_op().fusion_budget, 0) << i;
    tuner.observe();
  }
  // kFuseStreak clean ops: the gate opens at the configured cap.
  EXPECT_EQ(tuner.plan_op().fusion_budget, 8);
  EXPECT_EQ(tuner.plan_op().window, 4);
  // One contended op slams it shut again.
  tm::Stats::mine().aborts += 1;
  tuner.observe();
  EXPECT_EQ(tuner.plan_op().fusion_budget, 0);
}

TEST(WindowTuner, FusionGateStaysOpenAtMaxWindow) {
  // At the window ceiling the clean streak must saturate, not wrap to
  // zero on the (impossible) doubling — otherwise the fusion gate would
  // close every kGrowStreak ops at steady state.
  WindowTuner tuner(4, 4, /*fusion_cap=*/2);
  for (int i = 0; i < 40; ++i) {  // past kGrowStreak
    tuner.plan_op();
    tuner.observe();
  }
  EXPECT_EQ(tuner.plan_op().fusion_budget, 2);
}

TEST(WindowTuner, NoCapMeansNoBudget) {
  WindowTuner tuner(2, 32);
  for (int i = 0; i < 16; ++i) {
    tuner.plan_op();
    tuner.observe();
  }
  EXPECT_EQ(tuner.plan_op().fusion_budget, 0);
}

}  // namespace
}  // namespace hohtm::ds
