// Doubly linked list: reference semantics, the two-phase remove paths
// (strict, relaxed, and baseline), bidirectional consistency, precision.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/dll_hoh.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, int kWindow>
struct Combo {
  using TM = TmT;
  using List = DllHoh<TmT, RrT<TmT>>;
  static constexpr int window = kWindow;
};

template <class TM>
using RrSa4 = rr::RrSa<TM, 4>;
template <class TM>
using RrSo4 = rr::RrSo<TM, 4>;

using Combos = ::testing::Types<
    // Strict family: exercises the "nil after reserve means concurrent
    // removal, return false" optimization.
    Combo<tm::Norec, rr::RrFa, 4>, Combo<tm::Norec, rr::RrDm, 4>,
    Combo<tm::Norec, RrSa4, 4>,
    // Relaxed family: exercises the retry-on-nil path.
    Combo<tm::Norec, rr::RrXo, 4>, Combo<tm::Norec, RrSo4, 4>,
    Combo<tm::Norec, rr::RrV, 4>,
    // Single-transaction baseline (inline unlink path).
    Combo<tm::Norec, rr::RrNull, DllHoh<tm::Norec, rr::RrNull<tm::Norec>>::kUnbounded>,
    // Backend coverage.
    Combo<tm::GLock, rr::RrFa, 4>, Combo<tm::Tl2, rr::RrV, 4>,
    Combo<tm::Tml, rr::RrXo, 4>, Combo<tm::Norec, rr::RrV, 1>>;

template <class C>
class DllTest : public ::testing::Test {
 protected:
  using List = typename C::List;
  List list{C::window};
};

TYPED_TEST_SUITE(DllTest, Combos);

TYPED_TEST(DllTest, EmptyListBehaviour) {
  EXPECT_FALSE(this->list.contains(3));
  EXPECT_FALSE(this->list.remove(3));
  EXPECT_EQ(this->list.size(), 0u);
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(DllTest, InsertLookupRemove) {
  EXPECT_TRUE(this->list.insert(10));
  EXPECT_TRUE(this->list.insert(5));
  EXPECT_TRUE(this->list.insert(15));
  EXPECT_FALSE(this->list.insert(10));
  EXPECT_TRUE(this->list.contains(5));
  EXPECT_TRUE(this->list.contains(15));
  EXPECT_TRUE(this->list.is_consistent());
  EXPECT_TRUE(this->list.remove(10));
  EXPECT_FALSE(this->list.remove(10));
  EXPECT_TRUE(this->list.is_consistent());
  EXPECT_EQ(this->list.size(), 2u);
}

TYPED_TEST(DllTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(128));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->list.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->list.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->list.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->list.size(), reference.size());
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(DllTest, ReclamationIsPrecise) {
  this->list.contains(0);  // strict RRs allocate their thread node here
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 48; ++k) this->list.insert(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 48);
  for (long k = 0; k < 48; ++k) {
    this->list.remove(k);
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 48 - (k + 1));
  }
}

TYPED_TEST(DllTest, ConcurrentRemovalIsExclusive) {
  // Every key removed by exactly one thread: the strict two-phase path
  // must correctly interpret a revoked reservation as "lost the race".
  constexpr int kThreads = 4;
  constexpr long kKeys = 96;
  for (long k = 0; k < kKeys; ++k) this->list.insert(k);

  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (this->list.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(this->list.size(), 0u);
  EXPECT_TRUE(this->list.is_consistent());
}

TYPED_TEST(DllTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  constexpr long kKeyRange = 64;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net_inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 17);
      long net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long mine =
            static_cast<long>(rng.next_below(kKeyRange / kThreads)) * kThreads +
            t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->list.insert(mine)) ++net;
            break;
          case 1:
            if (this->list.remove(mine)) --net;
            break;
          default:
            this->list.contains(static_cast<long>(rng.next_below(kKeyRange)));
            break;
        }
      }
      net_inserted.fetch_add(net);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(net_inserted.load()));
  EXPECT_TRUE(this->list.is_consistent());
}

}  // namespace
}  // namespace hohtm::ds
