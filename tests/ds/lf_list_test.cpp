// Lock-free Harris–Michael list with Leaky and HazardPointer reclaimers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/lf_list.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class R>
class LfListTest : public ::testing::Test {
 protected:
  LfList<R> list;
};

using Reclaimers = ::testing::Types<LeakyReclaimer, HazardReclaimer>;
TYPED_TEST_SUITE(LfListTest, Reclaimers);

TYPED_TEST(LfListTest, Empty) {
  EXPECT_FALSE(this->list.contains(7));
  EXPECT_FALSE(this->list.remove(7));
  EXPECT_EQ(this->list.size(), 0u);
}

TYPED_TEST(LfListTest, InsertLookupRemove) {
  EXPECT_TRUE(this->list.insert(3));
  EXPECT_TRUE(this->list.insert(1));
  EXPECT_TRUE(this->list.insert(2));
  EXPECT_FALSE(this->list.insert(2));
  EXPECT_TRUE(this->list.contains(1));
  EXPECT_TRUE(this->list.contains(2));
  EXPECT_TRUE(this->list.contains(3));
  EXPECT_TRUE(this->list.is_sorted());
  EXPECT_TRUE(this->list.remove(2));
  EXPECT_FALSE(this->list.remove(2));
  EXPECT_FALSE(this->list.contains(2));
  EXPECT_EQ(this->list.size(), 2u);
}

TYPED_TEST(LfListTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(59);
  for (int i = 0; i < 4000; ++i) {
    const long key = static_cast<long>(rng.next_below(128));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->list.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->list.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->list.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->list.size(), reference.size());
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(LfListTest, ConcurrentDisjointInsertsAllLand) {
  constexpr int kThreads = 4;
  constexpr long kPerThread = 200;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i)
        EXPECT_TRUE(this->list.insert(i * kThreads + t));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(LfListTest, ConcurrentRemovalIsExclusive) {
  constexpr int kThreads = 4;
  constexpr long kKeys = 256;
  for (long k = 0; k < kKeys; ++k) this->list.insert(k);
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (this->list.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(this->list.size(), 0u);
}

TYPED_TEST(LfListTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  constexpr long kRange = 64;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 23);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key =
            static_cast<long>(rng.next_below(kRange / kThreads)) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->list.insert(key)) ++mine;
            break;
          case 1:
            if (this->list.remove(key)) --mine;
            break;
          default:
            this->list.contains(static_cast<long>(rng.next_below(kRange)));
            break;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(this->list.is_sorted());
}

TEST(LfListReclaim, LeakyAccumulatesBacklog) {
  LfList<LeakyReclaimer> list;
  for (long k = 0; k < 50; ++k) list.insert(k);
  for (long k = 0; k < 50; ++k) list.remove(k);
  EXPECT_EQ(list.reclaimer_backlog(), 50u)
      << "LFLeak never frees during the run";
}

TEST(LfListReclaim, HazardBoundsBacklog) {
  LfList<HazardReclaimer> list(/*scan_threshold=*/16);
  for (long k = 0; k < 200; ++k) list.insert(k);
  for (long k = 0; k < 200; ++k) list.remove(k);
  EXPECT_LT(list.reclaimer_backlog(), 16u + reclaim::HazardDomain::kSlotsPerThread);
}

}  // namespace
}  // namespace hohtm::ds
