// Hash set with hand-over-hand chains and revocable reservations.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/hash_set.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, std::size_t kLog2Buckets>
struct Combo {
  using TM = TmT;
  using Set = HashSet<TmT, RrT<TmT>>;
  static constexpr std::size_t log2_buckets = kLog2Buckets;
};

template <class TM>
using RrSa4 = rr::RrSa<TM, 4>;

using Combos = ::testing::Types<
    // Tiny tables force long chains: the hand-over-hand regime.
    Combo<tm::Norec, rr::RrV, 2>, Combo<tm::Norec, rr::RrXo, 2>,
    Combo<tm::Norec, rr::RrFa, 2>, Combo<tm::Norec, RrSa4, 2>,
    // Realistic table: chains of ~1.
    Combo<tm::Norec, rr::RrV, 8>, Combo<tm::Tl2, rr::RrV, 4>,
    Combo<tm::GLock, rr::RrXo, 4>, Combo<tm::Tml, rr::RrFa, 4>>;

template <class C>
class HashSetTest : public ::testing::Test {
 protected:
  using Set = typename C::Set;
  Set set{C::log2_buckets, /*window=*/4};
};

TYPED_TEST_SUITE(HashSetTest, Combos);

TYPED_TEST(HashSetTest, Empty) {
  EXPECT_FALSE(this->set.contains(7));
  EXPECT_FALSE(this->set.remove(7));
  EXPECT_EQ(this->set.size(), 0u);
  EXPECT_TRUE(this->set.is_consistent());
}

TYPED_TEST(HashSetTest, InsertLookupRemove) {
  EXPECT_TRUE(this->set.insert(42));
  EXPECT_FALSE(this->set.insert(42));
  EXPECT_TRUE(this->set.contains(42));
  EXPECT_TRUE(this->set.remove(42));
  EXPECT_FALSE(this->set.contains(42));
  EXPECT_TRUE(this->set.is_consistent());
}

TYPED_TEST(HashSetTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(83);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(512));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->set.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->set.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->set.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->set.size(), reference.size());
  EXPECT_TRUE(this->set.is_consistent());
}

TYPED_TEST(HashSetTest, ReclamationIsPrecise) {
  this->set.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 64; ++k) this->set.insert(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 64);
  for (long k = 0; k < 64; ++k) {
    this->set.remove(k);
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 64 - (k + 1));
  }
}

TYPED_TEST(HashSetTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  constexpr long kRange = 256;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 3);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key =
            static_cast<long>(rng.next_below(kRange / kThreads)) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->set.insert(key)) ++mine;
            break;
          case 1:
            if (this->set.remove(key)) --mine;
            break;
          default:
            this->set.contains(static_cast<long>(rng.next_below(kRange)));
            break;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->set.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(this->set.is_consistent());
}

TYPED_TEST(HashSetTest, ConcurrentRemovalIsExclusive) {
  constexpr int kThreads = 4;
  constexpr long kKeys = 128;
  for (long k = 0; k < kKeys; ++k) this->set.insert(k);
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (this->set.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(this->set.size(), 0u);
}

}  // namespace
}  // namespace hohtm::ds
