// Adaptive window tuning (implemented future work from paper §5.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "ds/sll_hoh.hpp"
#include "ds/window_tuner.hpp"
#include "util/barrier.hpp"

namespace hohtm::ds {
namespace {

using TM = tm::Norec;

TEST(WindowTuner, StartsAtGeometricMidpoint) {
  WindowTuner tuner(2, 32);
  EXPECT_EQ(tuner.current(), 8);  // 8*8 = 64 = 2*32
}

TEST(WindowTuner, ShrinksOnAborts) {
  WindowTuner tuner(2, 32);
  const int before = tuner.begin_op();
  tm::Stats::mine().aborts += 1;  // simulate a conflict during the op
  tuner.observe();
  EXPECT_EQ(tuner.current(), before / 2);
}

// Contention in HOH operations often arrives with zero aborts: every
// transaction commits, but a reservation was revoked out from under the
// op or the op had to restart. The tuner must see those too.
TEST(WindowTuner, ShrinksOnObservedReservationLoss) {
  WindowTuner tuner(2, 32);
  const int before = tuner.begin_op();
  tm::Stats::mine().reservation_losses += 1;
  tuner.observe();
  EXPECT_EQ(tuner.current(), before / 2);
}

TEST(WindowTuner, ShrinksOnHohRetry) {
  WindowTuner tuner(2, 32);
  const int before = tuner.begin_op();
  tm::Stats::mine().record(tm::AbortCause::kHohRetry);
  tuner.observe();
  EXPECT_EQ(tuner.current(), before / 2);
}

// Revocations this thread *performs* (as a remover) are not contention
// against it; only losses it *suffers* are. A remover must not shrink
// its own window for doing its job.
TEST(WindowTuner, PerformedRevocationsDoNotShrink) {
  WindowTuner tuner(2, 32);
  const int before = tuner.begin_op();
  tm::Stats::mine().record(tm::AbortCause::kRrRevocation);
  tuner.observe();
  EXPECT_EQ(tuner.current(), before);
}

// Regression: tm::Stats::reset() between begin_op() and observe() (the
// harness wipes counters between trials) makes the contention signal
// move *backwards*. The tuner used to fall into the "signal changed"
// path and halve a perfectly healthy window; it must instead re-arm its
// baseline at the new, lower reading and leave the window alone — while
// still reacting to genuine contention measured against that re-armed
// baseline.
TEST(WindowTuner, CounterResetMidOpReArmsInsteadOfShrinking) {
  WindowTuner tuner(2, 32);
  tm::Stats::mine().aborts += 5;  // pre-existing signal from earlier work
  const int before = tuner.begin_op();
  tm::Stats::reset();  // trial boundary: every counter wiped
  tuner.observe();
  EXPECT_EQ(tuner.current(), before);  // no shrink on the backwards jump
  // The re-armed baseline still catches real contention afterwards.
  tuner.begin_op();
  tm::Stats::mine().aborts += 1;
  tuner.observe();
  EXPECT_EQ(tuner.current(), before / 2);
}

TEST(WindowTuner, FloorsAtMinimum) {
  WindowTuner tuner(2, 32);
  for (int i = 0; i < 10; ++i) {
    tuner.begin_op();
    tm::Stats::mine().aborts += 1;
    tuner.observe();
  }
  EXPECT_EQ(tuner.current(), 2);
}

TEST(WindowTuner, GrowsAfterCleanStreakAndCaps) {
  WindowTuner tuner(2, 32);
  for (int i = 0; i < 32 * 8; ++i) {  // enough clean ops for several grows
    tuner.begin_op();
    tuner.observe();
  }
  EXPECT_EQ(tuner.current(), 32);
}

TEST(WindowTuner, PerThreadIndependence) {
  WindowTuner tuner(2, 32);
  // This thread shrinks its window...
  tuner.begin_op();
  tm::Stats::mine().aborts += 1;
  tuner.observe();
  const int mine = tuner.current();
  // ...another thread still sees the initial window.
  int other = 0;
  std::thread peer([&] { other = tuner.current(); });
  peer.join();
  EXPECT_LT(mine, other);
}

// Registry slots are recycled on thread exit (lowest free index first),
// so the successor thread below lands on the victim's slot. It must
// start from the initial window, not inherit the victim's shrunken one.
TEST(WindowTuner, SlotReuseDoesNotInheritState) {
  WindowTuner tuner(2, 32);
  std::thread victim([&] {
    tuner.begin_op();
    tm::Stats::mine().aborts += 1;
    tuner.observe();
    EXPECT_EQ(tuner.current(), 4);
  });
  victim.join();
  int successor_window = 0;
  std::thread successor([&] { successor_window = tuner.current(); });
  successor.join();
  EXPECT_EQ(successor_window, 8);
}

TEST(AdaptiveList, CorrectUnderConcurrencyWhileTuning) {
  SllHoh<TM, rr::RrV<TM>> list(/*window=*/16);
  list.enable_adaptive_window(2, 32);
  constexpr int kThreads = 4;
  constexpr int kOps = 1200;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 13);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key = static_cast<long>(rng.next_below(16)) * kThreads + t;
        if (rng.next() & 1) {
          if (list.insert(key)) ++mine;
        } else {
          if (list.remove(key)) --mine;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(list.is_sorted());
}

TEST(AdaptiveList, ContentionShrinksTheWindow) {
  // Deterministic core: contention is injected through the hand-over
  // hook, which runs *mid-operation* (between an op's transactions), so
  // the tuner's begin_op/observe pair brackets it. Each contended op
  // halves the window; the floor holds; clean ops grow it back.
  SllHoh<TM, rr::RrV<TM>> list(16);
  for (long k = 0; k < 64; ++k) list.insert(k);  // prefill BEFORE tuning
  list.enable_adaptive_window(2, 32);
  ASSERT_EQ(list.effective_window(), 8);

  list.set_handover_hook_for_testing(
      [] { tm::Stats::mine().reservation_losses += 1; });
  list.contains(63);  // deep enough to hand over at any window <= 32
  EXPECT_EQ(list.effective_window(), 4);
  list.contains(63);
  EXPECT_EQ(list.effective_window(), 2);
  list.contains(63);
  EXPECT_EQ(list.effective_window(), 2);  // floors at min_window
  list.set_handover_hook_for_testing(nullptr);

  // Calm phase: 32 clean ops per doubling, 2 -> 32 in four doublings.
  for (int i = 0; i < 32 * 5; ++i) list.contains(0);
  EXPECT_EQ(list.effective_window(), 32);

  // Coarse stochastic check: under multi-threaded hammering of one
  // 64-key region, every worker's window trends at-or-below the
  // uncontended baseline (fresh threads start at the midpoint; real
  // contention can only push the minimum down, never above it). How much
  // contention actually materializes is scheduler- and core-count-
  // dependent — the deterministic hook phase above is what pins the
  // shrink mechanism — so only the at-or-below trend is asserted.
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> min_window_seen{1 << 30};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      int my_min = 1 << 30;
      for (int i = 0; i < 1500; ++i) {
        const long key = (i + t) % 64;
        if (i & 1)
          list.insert(key);
        else
          list.remove(key);
        my_min = std::min(my_min, list.effective_window());
      }
      int current = min_window_seen.load();
      while (my_min < current &&
             !min_window_seen.compare_exchange_weak(current, my_min)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(min_window_seen.load(), 8);
  EXPECT_TRUE(list.is_sorted());
}

}  // namespace
}  // namespace hohtm::ds
