// Adaptive window tuning (implemented future work from paper §5.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ds/sll_hoh.hpp"
#include "ds/window_tuner.hpp"
#include "util/barrier.hpp"

namespace hohtm::ds {
namespace {

using TM = tm::Norec;

TEST(WindowTuner, StartsAtGeometricMidpoint) {
  WindowTuner tuner(2, 32);
  EXPECT_EQ(tuner.current(), 8);  // 8*8 = 64 = 2*32
}

TEST(WindowTuner, ShrinksOnAborts) {
  WindowTuner tuner(2, 32);
  const int before = tuner.begin_op();
  tm::Stats::mine().aborts += 1;  // simulate a conflict during the op
  tuner.observe();
  EXPECT_EQ(tuner.current(), before / 2);
}

TEST(WindowTuner, FloorsAtMinimum) {
  WindowTuner tuner(2, 32);
  for (int i = 0; i < 10; ++i) {
    tuner.begin_op();
    tm::Stats::mine().aborts += 1;
    tuner.observe();
  }
  EXPECT_EQ(tuner.current(), 2);
}

TEST(WindowTuner, GrowsAfterCleanStreakAndCaps) {
  WindowTuner tuner(2, 32);
  for (int i = 0; i < 32 * 8; ++i) {  // enough clean ops for several grows
    tuner.begin_op();
    tuner.observe();
  }
  EXPECT_EQ(tuner.current(), 32);
}

TEST(WindowTuner, PerThreadIndependence) {
  WindowTuner tuner(2, 32);
  // This thread shrinks its window...
  tuner.begin_op();
  tm::Stats::mine().aborts += 1;
  tuner.observe();
  const int mine = tuner.current();
  // ...another thread still sees the initial window.
  int other = 0;
  std::thread peer([&] { other = tuner.current(); });
  peer.join();
  EXPECT_LT(mine, other);
}

TEST(AdaptiveList, CorrectUnderConcurrencyWhileTuning) {
  SllHoh<TM, rr::RrV<TM>> list(/*window=*/16);
  list.enable_adaptive_window(2, 32);
  constexpr int kThreads = 4;
  constexpr int kOps = 1200;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 13);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key = static_cast<long>(rng.next_below(16)) * kThreads + t;
        if (rng.next() & 1) {
          if (list.insert(key)) ++mine;
        } else {
          if (list.remove(key)) --mine;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(list.is_sorted());
}

TEST(AdaptiveList, ContentionShrinksTheWindow) {
  // Heavy same-region write contention should drive the tuned window
  // toward the minimum; single-threaded calm should grow it back.
  SllHoh<TM, rr::RrV<TM>> list(16);
  list.enable_adaptive_window(2, 32);
  for (long k = 0; k < 64; ++k) list.insert(k);

  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> min_window_seen{1 << 30};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 1500; ++i) {
        const long key = (i + t) % 64;
        if (i & 1)
          list.insert(key);
        else
          list.remove(key);
      }
      int seen = list.effective_window();
      int current = min_window_seen.load();
      while (seen < current &&
             !min_window_seen.compare_exchange_weak(current, seen)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  // At least one thread should have been driven below the initial 8.
  EXPECT_LT(min_window_seen.load(), 8);

  // Calm single-threaded phase: the window recovers.
  for (int i = 0; i < 32 * 6; ++i) list.contains(i % 64);
  EXPECT_GT(list.effective_window(), 2);
}

}  // namespace
}  // namespace hohtm::ds
