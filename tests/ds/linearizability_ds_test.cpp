// End-to-end linearizability: record real concurrent histories from the
// library's structures and feed them to the checker. Small histories
// (checking is exponential in overlap) but many rounds with fresh seeds:
// a cheap randomized-model-checking pass over the actual implementations.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ds/bst_external.hpp"
#include "ds/hash_set.hpp"
#include "ds/skiplist.hpp"
#include "ds/sll_hoh.hpp"
#include "harness/linearizability.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

using harness::SetOp;
using TM = tm::Norec;

/// Run several rounds of 3 racing threads over a tiny key range against
/// `set`. Before each round the quiescent state is snapshotted; the
/// round's merged history must be linearizable starting from it.
template <class Set>
void run_linearizability_rounds(Set& set, std::uint64_t seed_base,
                                int rounds = 40) {
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 12;
  constexpr long kKeyRange = 4;  // tiny: force constant interference

  for (int round = 0; round < rounds; ++round) {
    // Quiescent snapshot (threads of the previous round have joined).
    std::set<long> initial;
    for (long k = 0; k < kKeyRange; ++k)
      if (set.contains(k)) initial.insert(k);

    std::vector<std::vector<SetOp>> per_thread(kThreads);
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        util::Xoshiro256 rng(seed_base + round * 97 + t);
        per_thread[t].reserve(kOpsPerThread);
        barrier.arrive_and_wait();
        for (int i = 0; i < kOpsPerThread; ++i) {
          const long key = static_cast<long>(rng.next_below(kKeyRange));
          switch (rng.next_below(3)) {
            case 0:
              per_thread[t].push_back(harness::record_op(
                  SetOp::kInsert, key, [&] { return set.insert(key); }));
              break;
            case 1:
              per_thread[t].push_back(harness::record_op(
                  SetOp::kRemove, key, [&] { return set.remove(key); }));
              break;
            default:
              per_thread[t].push_back(harness::record_op(
                  SetOp::kContains, key, [&] { return set.contains(key); }));
              break;
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    std::vector<SetOp> history;
    for (auto& ops : per_thread)
      history.insert(history.end(), ops.begin(), ops.end());
    ASSERT_TRUE(harness::is_linearizable(std::move(history), initial))
        << "non-linearizable history in round " << round;
  }
}

TEST(LinearizabilityDs, SllHohRrV) {
  SllHoh<TM, rr::RrV<TM>> set(/*window=*/1);  // max hand-over-hand churn
  run_linearizability_rounds(set, 1000);
}

TEST(LinearizabilityDs, SllHohRrFa) {
  SllHoh<TM, rr::RrFa<TM>> set(2);
  run_linearizability_rounds(set, 2000);
}

TEST(LinearizabilityDs, SllHohRrXoTl2) {
  SllHoh<tm::Tl2, rr::RrXo<tm::Tl2>> set(2);
  run_linearizability_rounds(set, 3000);
}

TEST(LinearizabilityDs, SllHohRrVTlEager) {
  SllHoh<tm::TlEager, rr::RrV<tm::TlEager>> set(1);
  run_linearizability_rounds(set, 3500);
}

TEST(LinearizabilityDs, BstExternalRrV) {
  BstExternal<TM, rr::RrV<TM>> set(2);
  run_linearizability_rounds(set, 4000);
}

TEST(LinearizabilityDs, HashSetRrXo) {
  HashSet<TM, rr::RrXo<TM>> set(/*log2_buckets=*/1, /*window=*/1);
  run_linearizability_rounds(set, 5000);
}

TEST(LinearizabilityDs, SkipListRrV) {
  SkipList<TM, rr::RrV<TM>> set(2);
  run_linearizability_rounds(set, 6000);
}

}  // namespace
}  // namespace hohtm::ds
