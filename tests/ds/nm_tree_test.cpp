// Natarajan–Mittal lock-free external BST (leaky).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/nm_tree.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

TEST(NmTree, Empty) {
  NmTree<> tree;
  EXPECT_FALSE(tree.contains(1));
  EXPECT_FALSE(tree.remove(1));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, InsertLookupRemove) {
  NmTree<> tree;
  EXPECT_TRUE(tree.insert(50));
  EXPECT_TRUE(tree.insert(25));
  EXPECT_TRUE(tree.insert(75));
  EXPECT_FALSE(tree.insert(25));
  EXPECT_TRUE(tree.contains(25));
  EXPECT_TRUE(tree.remove(50));
  EXPECT_FALSE(tree.remove(50));
  EXPECT_TRUE(tree.contains(25));
  EXPECT_TRUE(tree.contains(75));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, MatchesReferenceSet) {
  NmTree<> tree;
  std::set<long> reference;
  util::Xoshiro256 rng(61);
  for (int i = 0; i < 4000; ++i) {
    const long key = static_cast<long>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(tree.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(tree.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(tree.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, RemoveToEmptyAndRefill) {
  NmTree<> tree;
  for (long k = 0; k < 64; ++k) EXPECT_TRUE(tree.insert(k));
  for (long k = 0; k < 64; ++k) EXPECT_TRUE(tree.remove(k));
  EXPECT_EQ(tree.size(), 0u);
  for (long k = 0; k < 64; ++k) EXPECT_TRUE(tree.insert(k));
  EXPECT_EQ(tree.size(), 64u);
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, ConcurrentDisjointInserts) {
  NmTree<> tree;
  constexpr int kThreads = 4;
  constexpr long kPerThread = 250;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i)
        EXPECT_TRUE(tree.insert(i * kThreads + t));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, ConcurrentRemovalIsExclusive) {
  NmTree<> tree;
  constexpr int kThreads = 4;
  constexpr long kKeys = 256;
  for (long k = 0; k < kKeys; ++k) tree.insert(k);
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (tree.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.is_valid());
}

TEST(NmTree, ConcurrentMixedChurn) {
  NmTree<> tree;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  constexpr long kRange = 128;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 29);
      long mine = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long key =
            static_cast<long>(rng.next_below(kRange / kThreads)) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0:
            if (tree.insert(key)) ++mine;
            break;
          case 1:
            if (tree.remove(key)) --mine;
            break;
          default:
            tree.contains(static_cast<long>(rng.next_below(kRange)));
            break;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(tree.is_valid());
}

}  // namespace
}  // namespace hohtm::ds
