// External (leaf-oriented) BST: reference semantics, leaf+router removal,
// sentinel integrity, reclamation precision, concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/bst_external.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, int kWindow>
struct Combo {
  using TM = TmT;
  using Tree = BstExternal<TmT, RrT<TmT>>;
  static constexpr int window = kWindow;
};

template <class TM>
using RrSa4 = rr::RrSa<TM, 4>;
template <class TM>
using RrSo4 = rr::RrSo<TM, 4>;

using Combos = ::testing::Types<
    Combo<tm::Norec, rr::RrFa, 4>, Combo<tm::Norec, rr::RrDm, 4>,
    Combo<tm::Norec, RrSa4, 4>, Combo<tm::Norec, rr::RrXo, 4>,
    Combo<tm::Norec, RrSo4, 4>, Combo<tm::Norec, rr::RrV, 4>,
    Combo<tm::Norec, rr::RrNull, BstExternal<tm::Norec, rr::RrNull<tm::Norec>>::kUnbounded>,
    Combo<tm::GLock, rr::RrXo, 4>, Combo<tm::Tl2, rr::RrV, 4>,
    Combo<tm::Tml, rr::RrV, 4>, Combo<tm::Norec, rr::RrXo, 1>>;

template <class C>
class BstExternalTest : public ::testing::Test {
 protected:
  using Tree = typename C::Tree;
  Tree tree{C::window};
};

TYPED_TEST_SUITE(BstExternalTest, Combos);

TYPED_TEST(BstExternalTest, EmptyTree) {
  EXPECT_FALSE(this->tree.contains(1));
  EXPECT_FALSE(this->tree.remove(1));
  EXPECT_EQ(this->tree.size(), 0u);
  EXPECT_TRUE(this->tree.is_valid());
}

TYPED_TEST(BstExternalTest, InsertLookupRemove) {
  EXPECT_TRUE(this->tree.insert(50));
  EXPECT_TRUE(this->tree.insert(25));
  EXPECT_TRUE(this->tree.insert(75));
  EXPECT_FALSE(this->tree.insert(50));
  EXPECT_TRUE(this->tree.contains(25));
  EXPECT_TRUE(this->tree.is_valid());
  EXPECT_TRUE(this->tree.remove(50));
  EXPECT_FALSE(this->tree.remove(50));
  EXPECT_FALSE(this->tree.contains(50));
  EXPECT_TRUE(this->tree.contains(25));
  EXPECT_TRUE(this->tree.contains(75));
  EXPECT_EQ(this->tree.size(), 2u);
  EXPECT_TRUE(this->tree.is_valid());
}

TYPED_TEST(BstExternalTest, RemoveDownToEmptyAndRefill) {
  for (long k = 0; k < 40; ++k) EXPECT_TRUE(this->tree.insert(k));
  for (long k = 0; k < 40; ++k) EXPECT_TRUE(this->tree.remove(k));
  EXPECT_EQ(this->tree.size(), 0u);
  EXPECT_TRUE(this->tree.is_valid()) << "sentinels must survive emptiness";
  for (long k = 0; k < 40; ++k) EXPECT_TRUE(this->tree.insert(k));
  EXPECT_EQ(this->tree.size(), 40u);
}

TYPED_TEST(BstExternalTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(43);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->tree.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->tree.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->tree.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->tree.size(), reference.size());
  EXPECT_TRUE(this->tree.is_valid());
}

TYPED_TEST(BstExternalTest, ReclamationIsPreciseTwoNodesPerRemove) {
  this->tree.contains(0);
  const auto baseline = reclaim::Gauge::live();
  // n inserts allocate a leaf + a router each (2n)...
  for (long k = 0; k < 32; ++k) this->tree.insert(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 64);
  // ...and each remove frees exactly a leaf + a router, immediately.
  for (long k = 0; k < 32; ++k) {
    this->tree.remove(k);
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 64 - 2 * (k + 1));
  }
}

TYPED_TEST(BstExternalTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  constexpr long kKeyRange = 128;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net_inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 67);
      long net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long mine =
            static_cast<long>(rng.next_below(kKeyRange / kThreads)) * kThreads +
            t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->tree.insert(mine)) ++net;
            break;
          case 1:
            if (this->tree.remove(mine)) --net;
            break;
          default:
            this->tree.contains(static_cast<long>(rng.next_below(kKeyRange)));
            break;
        }
      }
      net_inserted.fetch_add(net);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->tree.size(), static_cast<std::size_t>(net_inserted.load()));
  EXPECT_TRUE(this->tree.is_valid());
}

TYPED_TEST(BstExternalTest, ConcurrentRemovalIsExclusive) {
  constexpr int kThreads = 4;
  constexpr long kKeys = 96;
  for (long k = 0; k < kKeys; ++k) this->tree.insert(k);
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (this->tree.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(this->tree.size(), 0u);
  EXPECT_TRUE(this->tree.is_valid());
}

}  // namespace
}  // namespace hohtm::ds
