// Hand-over-hand singly linked list: sequential semantics, concurrent
// linearizability-style invariants, and reclamation precision, across
// reservation implementations and TM backends.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/sll_hoh.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, int kWindow>
struct Combo {
  using TM = TmT;
  using List = SllHoh<TmT, RrT<TmT>>;
  static constexpr int window = kWindow;
};

template <class TM>
using RrSa4 = rr::RrSa<TM, 4>;
template <class TM>
using RrSo4 = rr::RrSo<TM, 4>;

using Combos = ::testing::Types<
    // All six reservation algorithms over NOrec with a small window (the
    // interesting hand-over-hand regime).
    Combo<tm::Norec, rr::RrFa, 4>, Combo<tm::Norec, rr::RrDm, 4>,
    Combo<tm::Norec, RrSa4, 4>, Combo<tm::Norec, rr::RrXo, 4>,
    Combo<tm::Norec, RrSo4, 4>, Combo<tm::Norec, rr::RrV, 4>,
    // The single-transaction "HTM" baseline expressed through RrNull.
    Combo<tm::Norec, rr::RrNull, SllHoh<tm::Norec, rr::RrNull<tm::Norec>>::kUnbounded>,
    // Cross-backend coverage for representative strict + relaxed choices.
    Combo<tm::GLock, rr::RrFa, 4>, Combo<tm::GLock, rr::RrV, 4>,
    Combo<tm::Tml, rr::RrXo, 4>, Combo<tm::Tl2, rr::RrFa, 4>,
    Combo<tm::Tl2, rr::RrV, 4>, Combo<tm::Tl2, rr::RrXo, 2>,
    // Eager backend: conflicts surface at the access (HTM-like timing).
    Combo<tm::TlEager, rr::RrV, 4>, Combo<tm::TlEager, rr::RrFa, 4>,
    // Window of 1: maximal hand-over-hand, worst case for resume logic.
    Combo<tm::Norec, rr::RrV, 1>>;

template <class C>
class SllTest : public ::testing::Test {
 protected:
  using List = typename C::List;
  List list{C::window};
};

TYPED_TEST_SUITE(SllTest, Combos);

TYPED_TEST(SllTest, EmptyListBehaviour) {
  EXPECT_FALSE(this->list.contains(5));
  EXPECT_FALSE(this->list.remove(5));
  EXPECT_EQ(this->list.size(), 0u);
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(SllTest, InsertLookupRemove) {
  EXPECT_TRUE(this->list.insert(5));
  EXPECT_TRUE(this->list.contains(5));
  EXPECT_FALSE(this->list.insert(5)) << "duplicate insert must fail";
  EXPECT_TRUE(this->list.remove(5));
  EXPECT_FALSE(this->list.contains(5));
  EXPECT_FALSE(this->list.remove(5)) << "double remove must fail";
}

TYPED_TEST(SllTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(128));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->list.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->list.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->list.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->list.size(), reference.size());
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(SllTest, LongChainCrossesManyWindows) {
  // Keys far apart so lookups traverse > window nodes repeatedly.
  for (long k = 0; k < 200; ++k) EXPECT_TRUE(this->list.insert(k));
  EXPECT_TRUE(this->list.contains(199));
  EXPECT_FALSE(this->list.contains(200));
  EXPECT_TRUE(this->list.remove(199));
  EXPECT_TRUE(this->list.remove(0));
  EXPECT_EQ(this->list.size(), 198u);
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(SllTest, ReclamationIsPrecise) {
  // Touch the structure once so the strict reservation algorithms perform
  // their one-time per-thread node allocation before the baseline.
  this->list.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 64; ++k) this->list.insert(k);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 64);
  for (long k = 0; k < 64; ++k) {
    this->list.remove(k);
    // Precision: the node is back with the allocator the moment remove
    // returns — not after an epoch, not after a hazard-pointer scan.
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 64 - (k + 1));
  }
}

TYPED_TEST(SllTest, ConcurrentMixedWorkloadKeepsInvariants) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1200;
  constexpr long kKeyRange = 64;
  util::SpinBarrier barrier(kThreads);

  // Deterministic per-thread key partitions for exact accounting: thread t
  // owns keys with key % kThreads == t, inserts and removes only those, so
  // the final state is predictable while lookups roam everywhere.
  std::vector<std::thread> threads;
  std::atomic<long> net_inserted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 71);
      long net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long mine =
            static_cast<long>(rng.next_below(kKeyRange / kThreads)) * kThreads +
            t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->list.insert(mine)) ++net;
            break;
          case 1:
            if (this->list.remove(mine)) --net;
            break;
          default:
            this->list.contains(static_cast<long>(rng.next_below(kKeyRange)));
            break;
        }
      }
      net_inserted.fetch_add(net);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->list.size(), static_cast<std::size_t>(net_inserted.load()));
  EXPECT_TRUE(this->list.is_sorted());
}

TYPED_TEST(SllTest, ConcurrentRemovalOfSharedKeysIsExclusive) {
  // All threads fight to remove the same pre-inserted keys; each key must
  // be removed by exactly one thread.
  constexpr int kThreads = 4;
  constexpr long kKeys = 128;
  for (long k = 0; k < kKeys; ++k) this->list.insert(k);

  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      long mine = 0;
      for (long k = 0; k < kKeys; ++k)
        if (this->list.remove(k)) ++mine;
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(this->list.size(), 0u);
}

}  // namespace
}  // namespace hohtm::ds
