// Internal BST: reference semantics, successor-swap removal, path
// revocation under concurrency, reclamation precision.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ds/bst_internal.hpp"
#include "reclaim/gauge.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"

namespace hohtm::ds {
namespace {

template <class TmT, template <class> class RrT, int kWindow>
struct Combo {
  using TM = TmT;
  using Tree = BstInternal<TmT, RrT<TmT>>;
  static constexpr int window = kWindow;
};

template <class TM>
using RrSa4 = rr::RrSa<TM, 4>;
template <class TM>
using RrSo4 = rr::RrSo<TM, 4>;

using Combos = ::testing::Types<
    Combo<tm::Norec, rr::RrFa, 4>, Combo<tm::Norec, rr::RrDm, 4>,
    Combo<tm::Norec, RrSa4, 4>, Combo<tm::Norec, rr::RrXo, 4>,
    Combo<tm::Norec, RrSo4, 4>, Combo<tm::Norec, rr::RrV, 4>,
    Combo<tm::Norec, rr::RrNull, BstInternal<tm::Norec, rr::RrNull<tm::Norec>>::kUnbounded>,
    Combo<tm::GLock, rr::RrV, 4>, Combo<tm::Tl2, rr::RrXo, 4>,
    Combo<tm::Tml, rr::RrFa, 4>, Combo<tm::Norec, rr::RrV, 2>>;

template <class C>
class BstInternalTest : public ::testing::Test {
 protected:
  using Tree = typename C::Tree;
  Tree tree{C::window};
};

TYPED_TEST_SUITE(BstInternalTest, Combos);

TYPED_TEST(BstInternalTest, EmptyTree) {
  EXPECT_FALSE(this->tree.contains(1));
  EXPECT_FALSE(this->tree.remove(1));
  EXPECT_EQ(this->tree.size(), 0u);
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, InsertShapes) {
  // Build a known shape: 50 as root, children 25/75, grandchildren.
  for (long k : {50L, 25L, 75L, 10L, 30L, 60L, 90L}) {
    EXPECT_TRUE(this->tree.insert(k));
  }
  EXPECT_FALSE(this->tree.insert(50));
  EXPECT_EQ(this->tree.size(), 7u);
  EXPECT_TRUE(this->tree.is_valid_bst());
  for (long k : {50L, 25L, 75L, 10L, 30L, 60L, 90L})
    EXPECT_TRUE(this->tree.contains(k));
  EXPECT_FALSE(this->tree.contains(55));
}

TYPED_TEST(BstInternalTest, RemoveLeaf) {
  for (long k : {50L, 25L, 75L}) this->tree.insert(k);
  EXPECT_TRUE(this->tree.remove(25));
  EXPECT_FALSE(this->tree.contains(25));
  EXPECT_TRUE(this->tree.contains(50));
  EXPECT_TRUE(this->tree.contains(75));
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, RemoveNodeWithOneChild) {
  for (long k : {50L, 25L, 10L}) this->tree.insert(k);  // 25 has one child
  EXPECT_TRUE(this->tree.remove(25));
  EXPECT_TRUE(this->tree.contains(10));
  EXPECT_TRUE(this->tree.contains(50));
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, RemoveNodeWithTwoChildren) {
  for (long k : {50L, 25L, 75L, 60L, 90L, 55L, 65L}) this->tree.insert(k);
  // 75 has two children; successor is 90's... successor of 75 is 90? No:
  // leftmost of right(90) subtree is 90 itself (no left child)... after
  // inserting 80 the successor becomes 80.
  this->tree.insert(80);
  EXPECT_TRUE(this->tree.remove(75));
  EXPECT_FALSE(this->tree.contains(75));
  for (long k : {50L, 25L, 60L, 90L, 55L, 65L, 80L})
    EXPECT_TRUE(this->tree.contains(k)) << k;
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, RemoveRootRepeatedly) {
  for (long k = 0; k < 32; ++k) this->tree.insert((k * 7) % 32);
  for (int i = 0; i < 32; ++i) {
    // Always remove the smallest remaining (exercises one-child and
    // two-children root paths as the tree reshapes).
    long victim = -1;
    for (long k = 0; k < 32; ++k)
      if (this->tree.contains(k)) {
        victim = k;
        break;
      }
    ASSERT_NE(victim, -1);
    EXPECT_TRUE(this->tree.remove(victim));
    EXPECT_TRUE(this->tree.is_valid_bst());
  }
  EXPECT_EQ(this->tree.size(), 0u);
}

TYPED_TEST(BstInternalTest, MatchesReferenceSet) {
  std::set<long> reference;
  util::Xoshiro256 rng(41);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->tree.insert(key), reference.insert(key).second) << key;
        break;
      case 1:
        EXPECT_EQ(this->tree.remove(key), reference.erase(key) == 1) << key;
        break;
      default:
        EXPECT_EQ(this->tree.contains(key), reference.contains(key)) << key;
        break;
    }
  }
  EXPECT_EQ(this->tree.size(), reference.size());
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, ReclamationIsPrecise) {
  this->tree.contains(0);
  const auto baseline = reclaim::Gauge::live();
  for (long k = 0; k < 48; ++k) this->tree.insert((k * 13) % 48);
  EXPECT_EQ(reclaim::Gauge::live(), baseline + 48);
  long freed = 0;
  for (long k = 0; k < 48; ++k) {
    this->tree.remove(k);
    ++freed;
    EXPECT_EQ(reclaim::Gauge::live(), baseline + 48 - freed);
  }
}

TYPED_TEST(BstInternalTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  constexpr long kKeyRange = 128;
  util::SpinBarrier barrier(kThreads);
  std::atomic<long> net_inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 53);
      long net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long mine =
            static_cast<long>(rng.next_below(kKeyRange / kThreads)) * kThreads +
            t;
        switch (rng.next_below(3)) {
          case 0:
            if (this->tree.insert(mine)) ++net;
            break;
          case 1:
            if (this->tree.remove(mine)) --net;
            break;
          default:
            this->tree.contains(static_cast<long>(rng.next_below(kKeyRange)));
            break;
        }
      }
      net_inserted.fetch_add(net);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(this->tree.size(), static_cast<std::size_t>(net_inserted.load()));
  EXPECT_TRUE(this->tree.is_valid_bst());
}

TYPED_TEST(BstInternalTest, ConcurrentRemoveWithSharedKeys) {
  // Threads remove overlapping keys including two-children cases: the
  // path-revocation logic must keep concurrent searches correct. Each key
  // removed exactly once.
  constexpr int kThreads = 4;
  constexpr long kKeys = 64;
  for (long k = 0; k < kKeys; ++k) this->tree.insert((k * 31) % kKeys);

  util::SpinBarrier barrier(kThreads);
  std::atomic<long> removed{0};
  std::atomic<bool> lost_key{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      long mine = 0;
      if (t % 2 == 0) {
        for (long k = 0; k < kKeys; k += 2)
          if (this->tree.remove(k)) ++mine;
      } else {
        // Odd threads look for keys that are never removed: they must
        // always be found no matter what removals reshape the tree.
        for (int round = 0; round < 40; ++round)
          for (long k = 1; k < kKeys; k += 2)
            if (!this->tree.contains(k)) lost_key.store(true);
      }
      removed.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys / 2);
  EXPECT_FALSE(lost_key.load())
      << "a concurrent successor-swap removal hid a live key";
  EXPECT_TRUE(this->tree.is_valid_bst());
}

}  // namespace
}  // namespace hohtm::ds
