// Protocol-layer tests for the serving tier (docs/SERVING.md): encode /
// decode round trips for every frame type, plus the seeded byte-stream
// splitter — the decoder must produce byte-identical frame sequences
// under EVERY torn/coalesced partition of a valid stream, including
// 1-byte reads and chunks straddling frame boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "util/random.hpp"

namespace net = hohtm::net;

namespace {

// A representative request stream touching every opcode, empty keys and
// values, and payloads spanning several length scales.
std::string sample_request_stream(std::vector<net::NetOp>* expect) {
  std::string wire;
  const auto want = [&](net::WireOp op, std::uint32_t seq, std::string key,
                        std::string value, std::uint32_t limit) {
    net::NetOp e;
    e.op = op;
    e.seq = seq;
    e.key = std::move(key);
    e.value = std::move(value);
    e.scan_limit = limit;
    if (expect != nullptr) expect->push_back(std::move(e));
  };
  net::encode_get(wire, 1, "alpha");
  want(net::WireOp::kGet, 1, "alpha", "", 0);
  net::encode_put(wire, 2, "beta", std::string(300, 'v'));
  want(net::WireOp::kPut, 2, "beta", std::string(300, 'v'), 0);
  net::encode_del(wire, 3, "");
  want(net::WireOp::kDel, 3, "", "", 0);
  net::encode_scan(wire, 4, "gamma", 17);
  want(net::WireOp::kScan, 4, "gamma", "", 17);
  net::encode_stats(wire, 5);
  want(net::WireOp::kStats, 5, "", "", 0);
  net::encode_put(wire, 6, std::string(40, 'k'), "");
  want(net::WireOp::kPut, 6, std::string(40, 'k'), "", 0);
  net::encode_get(wire, 0xdeadbeef, "last");
  want(net::WireOp::kGet, 0xdeadbeef, "last", "", 0);
  return wire;
}

std::string sample_response_stream(std::vector<net::NetResponse>* expect) {
  std::string wire;
  const auto emit = [&](net::NetResponse r) {
    net::encode_response(wire, r);
    if (expect != nullptr) expect->push_back(std::move(r));
  };
  net::NetResponse get_ok;
  get_ok.op = net::WireOp::kGet;
  get_ok.status = net::WireStatus::kOk;
  get_ok.seq = 1;
  get_ok.value = std::string(123, 'x');
  emit(get_ok);
  net::NetResponse get_miss;
  get_miss.op = net::WireOp::kGet;
  get_miss.status = net::WireStatus::kNotFound;
  get_miss.seq = 2;
  emit(get_miss);
  net::NetResponse put_ok;
  put_ok.op = net::WireOp::kPut;
  put_ok.status = net::WireStatus::kOk;
  put_ok.seq = 3;
  put_ok.created = true;
  emit(put_ok);
  net::NetResponse del_miss;
  del_miss.op = net::WireOp::kDel;
  del_miss.status = net::WireStatus::kNotFound;
  del_miss.seq = 4;
  emit(del_miss);
  net::NetResponse scan_ok;
  scan_ok.op = net::WireOp::kScan;
  scan_ok.status = net::WireStatus::kOk;
  scan_ok.seq = 5;
  scan_ok.scan_count = 42;
  emit(scan_ok);
  net::NetResponse stats_ok;
  stats_ok.op = net::WireOp::kStats;
  stats_ok.status = net::WireStatus::kOk;
  stats_ok.seq = 6;
  stats_ok.value = "{\"service\":{}}";
  emit(stats_ok);
  net::NetResponse shut;
  shut.op = net::WireOp::kDel;
  shut.status = net::WireStatus::kShutdown;
  shut.seq = 7;
  emit(shut);
  return wire;
}

void expect_same_op(const net::NetOp& a, const net::NetOp& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.scan_limit, b.scan_limit);
}

void expect_same_response(const net::NetResponse& a,
                          const net::NetResponse& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.scan_count, b.scan_count);
}

/// Decode `wire` fed through the given chunk partition; the chunk list
/// is a sequence of split points covering [0, wire.size()).
std::vector<net::NetOp> decode_with_splits(const std::string& wire,
                                           const std::vector<std::size_t>&
                                               splits) {
  net::FrameDecoder dec;
  std::vector<net::NetOp> out;
  std::size_t pos = 0;
  for (const std::size_t cut : splits) {
    dec.feed(wire.data() + pos, cut - pos);
    pos = cut;
    net::NetOp op;
    while (dec.next(op) == net::DecodeResult::kFrame)
      out.push_back(std::move(op));
  }
  return out;
}

TEST(NetDecoder, RequestRoundTripUnsplit) {
  std::vector<net::NetOp> expect;
  const std::string wire = sample_request_stream(&expect);
  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::vector<net::NetOp> got;
  net::NetOp op;
  while (dec.next(op) == net::DecodeResult::kFrame) got.push_back(op);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_same_op(got[i], expect[i]);
  EXPECT_FALSE(dec.buffered());
}

TEST(NetDecoder, ResponseRoundTripUnsplit) {
  std::vector<net::NetResponse> expect;
  const std::string wire = sample_response_stream(&expect);
  net::ResponseDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::vector<net::NetResponse> got;
  net::NetResponse r;
  while (dec.next(r) == net::DecodeResult::kFrame) got.push_back(r);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_same_response(got[i], expect[i]);
  EXPECT_FALSE(dec.buffered());
}

TEST(NetDecoder, OneByteReads) {
  std::vector<net::NetOp> expect;
  const std::string wire = sample_request_stream(&expect);
  std::vector<std::size_t> splits;
  for (std::size_t i = 1; i <= wire.size(); ++i) splits.push_back(i);
  const std::vector<net::NetOp> got = decode_with_splits(wire, splits);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_same_op(got[i], expect[i]);
}

// Every chunk size from 1 to the stream length: each one produces some
// partition with chunks straddling frame boundaries.
TEST(NetDecoder, EveryFixedChunkSize) {
  std::vector<net::NetOp> expect;
  const std::string wire = sample_request_stream(&expect);
  for (std::size_t chunk = 1; chunk <= wire.size(); ++chunk) {
    std::vector<std::size_t> splits;
    for (std::size_t i = chunk; i < wire.size(); i += chunk)
      splits.push_back(i);
    splits.push_back(wire.size());
    const std::vector<net::NetOp> got = decode_with_splits(wire, splits);
    ASSERT_EQ(got.size(), expect.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_same_op(got[i], expect[i]);
  }
}

// Seeded random partitions: many rounds of arbitrary torn/coalesced
// splits, each re-encoded from the decoded ops and required to be
// byte-identical to the original stream.
TEST(NetDecoder, SeededRandomSplitsReEncodeByteIdentical) {
  std::vector<net::NetOp> expect;
  const std::string wire = sample_request_stream(&expect);
  hohtm::util::Xoshiro256 rng(0x5eed5eedULL);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::size_t> splits;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      pos += 1 + static_cast<std::size_t>(rng.next_below(64));
      if (pos > wire.size()) pos = wire.size();
      splits.push_back(pos);
    }
    const std::vector<net::NetOp> got = decode_with_splits(wire, splits);
    ASSERT_EQ(got.size(), expect.size()) << "round=" << round;
    std::string reencoded;
    for (const net::NetOp& op : got) {
      switch (op.op) {
        case net::WireOp::kGet:
          net::encode_get(reencoded, op.seq, op.key);
          break;
        case net::WireOp::kPut:
          net::encode_put(reencoded, op.seq, op.key, op.value);
          break;
        case net::WireOp::kDel:
          net::encode_del(reencoded, op.seq, op.key);
          break;
        case net::WireOp::kScan:
          net::encode_scan(reencoded, op.seq, op.key, op.scan_limit);
          break;
        case net::WireOp::kStats:
          net::encode_stats(reencoded, op.seq);
          break;
      }
    }
    ASSERT_EQ(reencoded, wire) << "round=" << round;
  }
}

TEST(NetDecoder, SplitResponsesDecodeIdentically) {
  std::vector<net::NetResponse> expect;
  const std::string wire = sample_response_stream(&expect);
  hohtm::util::Xoshiro256 rng(0xfeedULL);
  for (int round = 0; round < 100; ++round) {
    net::ResponseDecoder dec;
    std::vector<net::NetResponse> got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      std::size_t next =
          pos + 1 + static_cast<std::size_t>(rng.next_below(48));
      if (next > wire.size()) next = wire.size();
      dec.feed(wire.data() + pos, next - pos);
      pos = next;
      net::NetResponse r;
      while (dec.next(r) == net::DecodeResult::kFrame)
        got.push_back(std::move(r));
    }
    ASSERT_EQ(got.size(), expect.size()) << "round=" << round;
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_same_response(got[i], expect[i]);
  }
}

TEST(NetDecoder, OversizedFrameRejectedWithoutBuffering) {
  net::FrameDecoder dec(/*max_frame=*/64);
  std::string wire;
  net::encode_put(wire, 1, "key", std::string(500, 'v'));
  // Feed only the length prefix: the decoder must flag kTooBig from the
  // declared length alone, before the payload ever arrives.
  dec.feed(wire.data(), 4);
  net::NetOp op;
  EXPECT_EQ(dec.next(op), net::DecodeResult::kTooBig);
}

TEST(NetDecoder, BadOpcodeIsMalformed) {
  net::FrameDecoder dec;
  std::string wire;
  net::encode_get(wire, 1, "k");
  wire[4] = 0x7f;  // clobber the opcode byte
  dec.feed(wire.data(), wire.size());
  net::NetOp op;
  EXPECT_EQ(dec.next(op), net::DecodeResult::kMalformed);
}

TEST(NetDecoder, LengthPayloadMismatchIsMalformed) {
  net::FrameDecoder dec;
  std::string wire;
  net::encode_get(wire, 1, "key");
  // Shrink the inner klen so it disagrees with the frame length.
  wire[9] = 1;
  dec.feed(wire.data(), wire.size());
  net::NetOp op;
  EXPECT_EQ(dec.next(op), net::DecodeResult::kMalformed);
}

TEST(NetDecoder, TruncatedBodyIsMalformed) {
  net::FrameDecoder dec;
  std::string wire;
  net::detail::put_u32(wire, 3);  // declares 3 body bytes: too few for op+seq
  wire.append("abc", 3);
  dec.feed(wire.data(), wire.size());
  net::NetOp op;
  EXPECT_EQ(dec.next(op), net::DecodeResult::kMalformed);
}

}  // namespace
