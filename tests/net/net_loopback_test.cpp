// End-to-end serving-tier tests over real loopback sockets
// (docs/SERVING.md): pipelined multi-connection runs checked against a
// std::map differential oracle, in-order completion, per-connection
// backpressure, torn writes, oversized-frame rejection, idle timeout,
// and the stalled-client reclamation scenario — a connection parked
// mid-pipeline must leave the reclamation-stall watchdog clean and the
// footprint Gauge-exact while other clients churn.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rr.hpp"
#include "net/client.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/watchdog.hpp"
#include "util/random.hpp"

namespace hohtm {
namespace {

using TM = tm::Norec;
using RR = rr::RrV<TM>;
using Store = kv::Store<TM, RR>;
using Service = kv::Service<TM, RR>;
using Server = net::Server<TM, RR>;

kv::Store<TM, RR>::Options small_store() {
  kv::Store<TM, RR>::Options opt;
  opt.log2_shards = 1;
  opt.log2_buckets = 3;
  opt.fusion_cap = 8;
  return opt;
}

TEST(NetLoopback, RoundTripEveryOpcode) {
  Store store(small_store());
  Service svc(store, 2);
  Server server(svc, Server::Options{});
  ASSERT_TRUE(server.ok());

  net::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  client.queue_put("alpha", "1");
  client.queue_get("alpha");
  client.queue_get("missing");
  client.queue_del("alpha");
  client.queue_del("alpha");
  client.queue_put("scan-a", "x");
  client.queue_put("scan-b", "y");
  // Scans start at the given key's canonical (hash, key) position and
  // are inclusive, so scanning from a live key yields at least itself.
  client.queue_scan("scan-a", 100);
  client.queue_stats();
  ASSERT_GT(client.flush(), 0u);

  net::NetResponse r;
  ASSERT_TRUE(client.recv(r));  // put alpha
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_TRUE(r.created);
  ASSERT_TRUE(client.recv(r));  // get alpha
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.value, "1");
  ASSERT_TRUE(client.recv(r));  // get missing
  EXPECT_EQ(r.status, net::WireStatus::kNotFound);
  ASSERT_TRUE(client.recv(r));  // del alpha
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  ASSERT_TRUE(client.recv(r));  // del alpha again
  EXPECT_EQ(r.status, net::WireStatus::kNotFound);
  ASSERT_TRUE(client.recv(r));  // put scan-a
  ASSERT_TRUE(client.recv(r));  // put scan-b
  ASSERT_TRUE(client.recv(r));  // scan
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_GE(r.scan_count, 1u);
  EXPECT_LE(r.scan_count, 2u);
  ASSERT_TRUE(client.recv(r));  // stats
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_NE(r.value.find("\"service\""), std::string::npos);

  client.close();
  server.stop();
  svc.stop();
}

// Multi-connection pipelined mixed-op run against per-connection
// std::map oracles (disjoint keyspaces make each oracle independent),
// with the in-order-completion assertion: every response carries the
// next expected seq for its connection, strictly increasing.
TEST(NetLoopback, MultiConnectionPipelinedDifferentialOracle) {
  Store store(small_store());
  Service svc(store, 2);
  Server server(svc, Server::Options{});
  ASSERT_TRUE(server.ok());

  constexpr int kConns = 4;
  constexpr int kRounds = 12;
  constexpr int kPipeline = 16;
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      net::Client client;
      ASSERT_TRUE(client.connect(server.port()));
      std::map<std::string, std::string> oracle;
      util::Xoshiro256 rng(0x1000 + static_cast<std::uint64_t>(c));
      const std::string prefix = "c" + std::to_string(c) + "-";
      std::uint32_t expect_seq = 0;
      for (int round = 0; round < kRounds; ++round) {
        // Queue a pipeline of mixed ops and remember the model answers.
        struct Expected {
          net::WireOp op;
          std::uint32_t seq;
          bool hit;
          std::string value;
        };
        std::vector<Expected> expect;
        for (int i = 0; i < kPipeline; ++i) {
          const std::string key =
              prefix + std::to_string(rng.next_below(32));
          const std::uint64_t kind = rng.next_below(4);
          if (kind < 2) {
            const std::string value =
                "v" + std::to_string(rng.next_below(1000));
            const bool created = oracle.find(key) == oracle.end();
            oracle[key] = value;
            expect.push_back({net::WireOp::kPut, client.queue_put(key, value),
                              created, ""});
          } else if (kind == 2) {
            const auto it = oracle.find(key);
            expect.push_back({net::WireOp::kGet, client.queue_get(key),
                              it != oracle.end(),
                              it != oracle.end() ? it->second : ""});
          } else {
            const bool present = oracle.erase(key) > 0;
            expect.push_back(
                {net::WireOp::kDel, client.queue_del(key), present, ""});
          }
        }
        ASSERT_GT(client.flush(), 0u);
        for (const Expected& e : expect) {
          net::NetResponse r;
          ASSERT_TRUE(client.recv(r));
          EXPECT_EQ(r.op, e.op);
          // In-order completion: seqs echo back strictly in submission
          // order on this connection.
          EXPECT_GT(r.seq, expect_seq);
          expect_seq = r.seq;
          EXPECT_EQ(r.seq, e.seq);
          switch (e.op) {
            case net::WireOp::kPut:
              EXPECT_EQ(r.status, net::WireStatus::kOk);
              EXPECT_EQ(r.created, e.hit);
              break;
            case net::WireOp::kGet:
              EXPECT_EQ(r.status, e.hit ? net::WireStatus::kOk
                                        : net::WireStatus::kNotFound);
              if (e.hit) EXPECT_EQ(r.value, e.value);
              break;
            default:
              EXPECT_EQ(r.status, e.hit ? net::WireStatus::kOk
                                        : net::WireStatus::kNotFound);
              break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const Server::Counters c = server.counters();
  EXPECT_GE(c.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_GT(c.batches, 0u);
  server.stop();
  svc.stop();
}

// Per-connection backpressure: a 64-op pipeline against a 4-op in-flight
// window must answer everything correctly while never exceeding the
// window (high-water counter), the reads throttled by EPOLLIN removal.
TEST(NetLoopback, BackpressureBoundsInflightWindow) {
  Store store(small_store());
  Service svc(store, 2);
  Server::Options opt;
  opt.max_inflight_ops = 4;
  Server server(svc, opt);
  ASSERT_TRUE(server.ok());

  net::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  constexpr int kOps = 64;
  for (int i = 0; i < kOps; ++i)
    client.queue_put("bp" + std::to_string(i), "v" + std::to_string(i));
  ASSERT_GT(client.flush(), 0u);
  for (int i = 0; i < kOps; ++i) {
    net::NetResponse r;
    ASSERT_TRUE(client.recv(r));
    EXPECT_EQ(r.status, net::WireStatus::kOk);
    EXPECT_TRUE(r.created);
  }
  std::string value;
  for (int i = 0; i < kOps; ++i) {
    client.queue_get("bp" + std::to_string(i));
    ASSERT_GT(client.flush(), 0u);
    net::NetResponse r;
    ASSERT_TRUE(client.recv(r));
    EXPECT_EQ(r.value, "v" + std::to_string(i));
  }
  const Server::Counters c = server.counters();
  EXPECT_LE(c.max_inflight, 4u);
  EXPECT_GT(c.batches, 0u);
  server.stop();
  svc.stop();
}

// Torn frames over a real socket: drip-feed an encoded pipeline one byte
// at a time; the incremental decoder must reassemble it exactly.
TEST(NetLoopback, TornWritesReassemble) {
  Store store(small_store());
  Service svc(store, 1);
  Server server(svc, Server::Options{});
  ASSERT_TRUE(server.ok());

  net::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  std::string wire;
  net::encode_put(wire, 1, "torn", "value");
  net::encode_get(wire, 2, "torn");
  for (char byte : wire) ASSERT_TRUE(client.send_raw({&byte, 1}));
  net::NetResponse r;
  ASSERT_TRUE(client.recv(r));
  EXPECT_EQ(r.seq, 1u);
  EXPECT_TRUE(r.created);
  ASSERT_TRUE(client.recv(r));
  EXPECT_EQ(r.seq, 2u);
  EXPECT_EQ(r.value, "value");
  server.stop();
  svc.stop();
}

TEST(NetLoopback, OversizedFrameRejectedAndConnectionClosed) {
  Store store(small_store());
  Service svc(store, 1);
  Server::Options opt;
  opt.max_frame_bytes = 128;
  Server server(svc, opt);
  ASSERT_TRUE(server.ok());

  net::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  std::string wire;
  net::encode_put(wire, 1, "ok-key", "small");  // fits: served normally
  net::encode_put(wire, 2, "big-key", std::string(4096, 'x'));  // rejected
  ASSERT_TRUE(client.send_raw(wire));
  net::NetResponse r;
  ASSERT_TRUE(client.recv(r));
  EXPECT_EQ(r.seq, 1u);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  ASSERT_TRUE(client.recv(r));
  EXPECT_EQ(r.status, net::WireStatus::kBadFrame);
  EXPECT_FALSE(client.recv(r));  // server closed after the rejection
  EXPECT_GE(server.counters().rejected_frames, 1u);
  server.stop();
  svc.stop();
}

TEST(NetLoopback, IdleConnectionTimesOut) {
  Store store(small_store());
  Service svc(store, 1);
  Server::Options opt;
  opt.idle_timeout_ms = 20;
  Server server(svc, opt);
  ASSERT_TRUE(server.ok());

  net::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  // Park mid-frame: a length prefix promising more than we send.
  ASSERT_TRUE(client.send_raw(std::string("\x40\x00\x00\x00", 4)));
  net::NetResponse r;
  EXPECT_FALSE(client.recv(r));  // blocks until the server reaps us: EOF
  EXPECT_GE(server.counters().timeouts, 1u);
  server.stop();
  svc.stop();
}

// The serving-robustness story (ISSUE 10 acceptance): a client parked
// mid-pipeline holds no reservation and no quiescence fence — workers
// never block on a socket — so reclamation stays watchdog-clean and
// precise while other clients churn updates (which free nodes), and the
// final footprint is Gauge-exact.
TEST(NetLoopback, StalledClientLeavesWatchdogCleanAndFootprintExact) {
  reclaim::Watchdog::reset_for_testing();
  const std::int64_t baseline = reclaim::Gauge::live();
  {
    Store store(small_store());
    Service svc(store, 2);
    Server server(svc, Server::Options{});
    ASSERT_TRUE(server.ok());

    net::Client stalled;
    ASSERT_TRUE(stalled.connect(server.port()));
    // A full op followed by a torn frame: the op is served, the torn
    // tail parks the connection mid-pipeline indefinitely.
    std::string wire;
    net::encode_put(wire, 1, "stalled-key", "v");
    wire.append("\x30\x00\x00\x00\x02", 5);  // header + 1 of 0x30 body bytes
    ASSERT_TRUE(stalled.send_raw(wire));
    net::NetResponse r;
    ASSERT_TRUE(stalled.recv(r));
    EXPECT_EQ(r.seq, 1u);

    // Arm the watchdog baselines, churn node-freeing traffic from a
    // healthy connection, then probe past the threshold: nothing may
    // register as a reclamation stall.
    const std::uint64_t t0 = 1;
    reclaim::Watchdog::check(t0);
    net::Client healthy;
    ASSERT_TRUE(healthy.connect(server.port()));
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 16; ++i) {
        const std::string key = "churn" + std::to_string(i);
        healthy.queue_put(key, "v" + std::to_string(round));
        healthy.queue_del(key);
      }
      ASSERT_GT(healthy.flush(), 0u);
      for (int i = 0; i < 32; ++i) ASSERT_TRUE(healthy.recv(r));
    }
    const reclaim::Watchdog::Report report = reclaim::Watchdog::check(
        t0 + reclaim::Watchdog::threshold_ns() + 1);
    EXPECT_EQ(report.stalled_threads, 0);
    EXPECT_EQ(reclaim::Watchdog::stall_events(), 0u);

    server.stop();
    svc.stop();
    store.finish_migration();
    // Gauge-exact footprint: one tracked node per live entry plus one
    // tracked table per shard (old tables are freed once migration
    // settles); every delete/overwrite freed its node precisely.
    const std::int64_t shards = 1 << small_store().log2_shards;
    EXPECT_EQ(reclaim::Gauge::live(),
              baseline + static_cast<std::int64_t>(store.size()) + shards);
  }
  // Store destroyed: footprint returns exactly to the baseline.
  EXPECT_EQ(reclaim::Gauge::live(), baseline);
}

}  // namespace
}  // namespace hohtm
