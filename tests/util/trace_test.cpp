#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hohtm::util {
namespace {

// Deterministic clock injected through the trace API: no sleeps, no
// wall-clock assertions (the suite must pass identically on a loaded
// single-core box). Each call advances by a fixed step.
std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now += 100; }

// The Trace rings are process-global; every test starts from a clean,
// deterministic state and restores the real clock afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::reset();
    Metrics::reset();
    g_fake_now = 0;
    Trace::set_clock(&fake_clock);
    Trace::set_active(true);
  }
  void TearDown() override {
    Trace::set_clock(nullptr);
    Trace::set_active(true);
    Trace::reset();
    Metrics::reset();
  }
};

TEST_F(TraceTest, RecordAndSnapshot) {
  Trace::record(Ev::kTxBegin, 0);
  Trace::record(Ev::kTxCommit, 1234);
  Trace::record(Ev::kTxAbort, 2);
  const std::vector<TraceRecord> events = Trace::snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, Ev::kTxBegin);
  EXPECT_EQ(events[1].kind, Ev::kTxCommit);
  EXPECT_EQ(events[1].arg, 1234u);
  EXPECT_EQ(events[2].kind, Ev::kTxAbort);
  EXPECT_EQ(events[2].arg, 2u);
  // Timestamps come from the injected clock and are strictly increasing.
  EXPECT_EQ(events[0].ts, 100u);
  EXPECT_EQ(events[1].ts, 200u);
  EXPECT_EQ(events[2].ts, 300u);
  EXPECT_EQ(Trace::size(), 3u);
  EXPECT_EQ(Trace::dropped(), 0u);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  const std::size_t extra = 10;
  for (std::size_t i = 0; i < Trace::kCapacity + extra; ++i)
    Trace::record(Ev::kAlloc, i);
  EXPECT_EQ(Trace::size(), Trace::kCapacity);
  EXPECT_EQ(Trace::dropped(), extra);
  const std::vector<TraceRecord> events = Trace::snapshot();
  ASSERT_EQ(events.size(), Trace::kCapacity);
  // The retained window is the *last* kCapacity events.
  EXPECT_EQ(events.front().arg, extra);
  EXPECT_EQ(events.back().arg, Trace::kCapacity + extra - 1);
}

TEST_F(TraceTest, SetActiveSuppressesRecording) {
  Trace::record(Ev::kRrReserve, 1);
  Trace::set_active(false);
  Trace::record(Ev::kRrReserve, 2);
  Trace::record(Ev::kRrRevoke, 3);
  Trace::set_active(true);
  Trace::record(Ev::kRrGet, 4);
  const std::vector<TraceRecord> events = Trace::snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_EQ(events[1].arg, 4u);
}

TEST_F(TraceTest, ResetClearsEverything) {
  Trace::record(Ev::kQuiesceEnter);
  Trace::record(Ev::kQuiesceExit, 50);
  Trace::reset();
  EXPECT_EQ(Trace::size(), 0u);
  EXPECT_EQ(Trace::dropped(), 0u);
  EXPECT_TRUE(Trace::snapshot().empty());
}

TEST_F(TraceTest, DrainJsonEmitsChromeTraceEvents) {
  Trace::record(Ev::kTxBegin, 0);
  Trace::record(Ev::kScan, 7);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  Trace::drain_json(tmp);
  std::fseek(tmp, 0, SEEK_END);
  const long size = std::ftell(tmp);
  std::fseek(tmp, 0, SEEK_SET);
  std::string json(static_cast<std::size_t>(size), '\0');
  ASSERT_EQ(std::fread(json.data(), 1, json.size(), tmp), json.size());
  std::fclose(tmp);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"tx_begin\""), std::string::npos);
  EXPECT_NE(json.find("\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Draining does not clear the rings.
  EXPECT_EQ(Trace::size(), 2u);
}

TEST_F(TraceTest, EventNamesCoverTheTaxonomy) {
  ASSERT_EQ(kEvCount, 24u);
  for (std::size_t i = 0; i < kEvCount; ++i) {
    ASSERT_NE(kEvNames[i], nullptr);
    EXPECT_GT(std::string(kEvNames[i]).size(), 0u);
  }
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kEpochAdvance)],
               "epoch_advance");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kKvTableFree)],
               "kv_table_free");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kFusedWindow)],
               "fused_window");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kFusionFallback)],
               "fusion_fallback");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kRrLossAttr)],
               "rr_loss_attr");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kKvScanWindow)],
               "kv_scan_window");
  EXPECT_STREQ(kEvNames[static_cast<std::size_t>(Ev::kKvScanResume)],
               "kv_scan_resume");
}

TEST_F(TraceTest, MetricsAggregateAcrossSlots) {
  Metrics::mine().commit_ns.record(100);
  Metrics::mine().commit_ns.record(300);
  Metrics::mine().retry_ns.record(50);
  const LatencyHistograms total = Metrics::total();
  EXPECT_EQ(total.commit_ns.count(), 2u);
  EXPECT_EQ(total.commit_ns.sum(), 400u);
  EXPECT_EQ(total.retry_ns.count(), 1u);
  EXPECT_EQ(total.quiesce_ns.count(), 0u);
  Metrics::reset();
  EXPECT_EQ(Metrics::total().commit_ns.count(), 0u);
}

TEST_F(TraceTest, HooksFollowTheBuildMode) {
  // The hooks compile in every build; whether they *do* anything is the
  // compile-time switch. This pins the contract for both configurations.
  trace_event(Ev::kFree, 99);
  const std::uint64_t t0 = trace_clock();
  trace_tx_commit(t0);
  if constexpr (kTraceBuild) {
    EXPECT_GE(Trace::size(), 2u);  // kFree plus the commit event
    EXPECT_EQ(Metrics::total().commit_ns.count(), 1u);
    EXPECT_GT(t0, 0u);
  } else {
    EXPECT_EQ(Trace::size(), 0u);
    EXPECT_EQ(Metrics::total().commit_ns.count(), 0u);
    EXPECT_EQ(t0, 0u);
  }
}

TEST_F(TraceTest, QuiesceHooksRecordStall) {
  const std::uint64_t t0 = trace_quiesce_enter();
  trace_quiesce_exit(t0);
  if constexpr (kTraceBuild) {
    EXPECT_EQ(Metrics::total().quiesce_ns.count(), 1u);
    EXPECT_EQ(Trace::size(), 2u);  // enter + exit
  } else {
    EXPECT_EQ(t0, 0u);
    EXPECT_EQ(Metrics::total().quiesce_ns.count(), 0u);
    EXPECT_EQ(Trace::size(), 0u);
  }
}

}  // namespace
}  // namespace hohtm::util
