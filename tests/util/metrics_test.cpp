// Deterministic unit tests for the always-on metrics plane
// (util::MetricsRegistry), the kv contention heatmap (kv::ContentionMap),
// and the reclamation-stall watchdog (reclaim::Watchdog). No sleeps and
// no wall-clock dependence: the watchdog is driven with explicit
// timestamps, and the concurrent snapshot test asserts monotonicity, not
// timing.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kv/contention.hpp"
#include "reclaim/watchdog.hpp"
#include "util/barrier.hpp"
#include "util/metrics.hpp"

namespace {

using hohtm::kv::ContentionMap;
using hohtm::reclaim::Watchdog;
using hohtm::util::MetricsRegistry;

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  const int id = MetricsRegistry::counter("test.idempotent");
  ASSERT_GE(id, 0);
  EXPECT_EQ(MetricsRegistry::counter("test.idempotent"), id);
  const int other = MetricsRegistry::counter("test.idempotent.other");
  EXPECT_NE(other, id);
}

TEST(MetricsRegistry, NegativeIdIsHarmless) {
  MetricsRegistry::add(-1);  // must not crash or write anywhere
  EXPECT_EQ(MetricsRegistry::total(-1), 0u);
}

// A retired thread's counts must survive: the cells stay in the registry
// slot, and a later thread recycling that slot keeps adding to them.
TEST(MetricsRegistry, ThreadRetirementLosesNoCounts) {
  const int id = MetricsRegistry::counter("test.retire");
  ASSERT_GE(id, 0);
  MetricsRegistry::reset_counters_for_testing();
  MetricsRegistry::add(id, 5);
  std::thread first([&] { MetricsRegistry::add(id, 1000); });
  first.join();  // thread retires; its registry slot may now be recycled
  std::thread second([&] { MetricsRegistry::add(id, 500); });
  second.join();
  EXPECT_EQ(MetricsRegistry::total(id), 1505u);
}

// Snapshot-during-update: aggregation is lock-free, so totals observed
// while writers are mid-burst must be monotone and land exactly on the
// final sum once the writers join.
TEST(MetricsRegistry, SnapshotDuringUpdateIsMonotone) {
  const int id = MetricsRegistry::counter("test.concurrent");
  ASSERT_GE(id, 0);
  MetricsRegistry::reset_counters_for_testing();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  hohtm::util::SpinBarrier barrier(kWriters + 1);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerWriter; ++i)
        MetricsRegistry::add(id);
    });
  }
  barrier.arrive_and_wait();
  std::uint64_t last = 0;
  for (int probe = 0; probe < 1000; ++probe) {
    const std::uint64_t now = MetricsRegistry::total(id);
    ASSERT_GE(now, last);  // owner-only release stores: sums never regress
    ASSERT_LE(now, kWriters * kPerWriter);
    last = now;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(MetricsRegistry::total(id), kWriters * kPerWriter);
}

TEST(MetricsRegistry, SnapshotJsonCarriesAllThreeKinds) {
  const int id = MetricsRegistry::counter("test.json.counter");
  ASSERT_GE(id, 0);
  MetricsRegistry::reset_counters_for_testing();
  MetricsRegistry::add(id, 7);
  ASSERT_TRUE(MetricsRegistry::register_gauge("test.json.gauge",
                                              [] { return std::int64_t{42}; }));
  ASSERT_TRUE(MetricsRegistry::register_section(
      "test.json.section",
      [](std::FILE* out) { std::fputs("{\"x\": 1}", out); }));
  const std::string doc = MetricsRegistry::snapshot_json();
  EXPECT_NE(doc.find("\"test.json.counter\": 7"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"test.json.gauge\": 42"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"test.json.section\": {\"x\": 1}"),
            std::string::npos) << doc;
}

// Registration past the fixed capacity must degrade, not reallocate:
// -1 ids that every later add() ignores. (Runs in its own ctest process,
// so filling the table cannot starve the other tests.)
TEST(MetricsRegistry, TableOverflowReturnsMinusOne) {
  int last = 0;
  for (int i = 0; last >= 0 && i <= MetricsRegistry::kMaxMetrics; ++i)
    last = MetricsRegistry::counter(
        ("test.overflow." + std::to_string(i)).c_str());
  EXPECT_EQ(last, -1);
  MetricsRegistry::add(last);  // and the failed id stays harmless
}

TEST(ContentionMapTest, TopMergesThreadsAndOrdersByWeight) {
  ContentionMap::reset();
  ContentionMap::note(0, 10, 5);
  ContentionMap::note(1, 20, 2);
  std::thread peer([] {
    ContentionMap::note(0, 10, 6);  // same cell from another thread
    ContentionMap::note(2, 30, 1);
  });
  peer.join();
  const auto hot = ContentionMap::top(4);
  ASSERT_GE(hot.size(), 3u);
  EXPECT_EQ(hot[0].shard, 0u);
  EXPECT_EQ(hot[0].cell, 10u);
  EXPECT_EQ(hot[0].weight, 11u);  // merged across both threads
  EXPECT_EQ(hot[1].weight, 2u);
  ContentionMap::reset();
  EXPECT_TRUE(ContentionMap::top(1).empty());
}

TEST(ContentionMapTest, CellOfIsStableAndInRange) {
  const std::uint64_t h = 0xDEADBEEFCAFEF00DULL;
  for (std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    const std::uint32_t cell = ContentionMap::cell_of(h, shards);
    EXPECT_LT(cell, 1u << ContentionMap::kCellBits);
    // Same hash, same shard count -> same cell, across "resizes": the
    // cell is a function of the hash alone, never of the bucket count.
    EXPECT_EQ(ContentionMap::cell_of(h, shards), cell);
  }
}

// The watchdog contract, driven with explicit timestamps: a thread that
// is active at two samples with unchanged progress and elapsed past the
// threshold is stalled; progress or deactivation re-arms it; a stall
// counts as ONE event no matter how many checks observe it.
TEST(WatchdogTest, DetectsStallExactlyOncePerEpisode) {
  Watchdog::reset_for_testing();
  const std::uint64_t threshold = Watchdog::threshold_ns();
  Watchdog::on_publish();  // enter a window: active, progress = p
  const std::uint64_t t0 = 1;
  Watchdog::Report armed = Watchdog::check(t0);
  EXPECT_GE(armed.active_threads, 1);
  EXPECT_EQ(armed.stalled_threads, 0);
  Watchdog::Report tripped = Watchdog::check(t0 + threshold + 1);
  EXPECT_GE(tripped.stalled_threads, 1);
  EXPECT_GT(tripped.max_stall_ns, threshold);
  EXPECT_EQ(Watchdog::stall_events(), 1u);
  // Still parked at a later sample: stalled again, but no second event.
  Watchdog::Report still = Watchdog::check(t0 + 3 * threshold);
  EXPECT_GE(still.stalled_threads, 1);
  EXPECT_EQ(Watchdog::stall_events(), 1u);
  Watchdog::on_deactivate();
  Watchdog::Report after = Watchdog::check(t0 + 4 * threshold);
  EXPECT_EQ(after.stalled_threads, 0);
}

TEST(WatchdogTest, ProgressSuppressesTheStall) {
  Watchdog::reset_for_testing();
  const std::uint64_t threshold = Watchdog::threshold_ns();
  Watchdog::on_publish();
  Watchdog::check(1);              // arm
  Watchdog::on_publish();          // progress moved: a new window began
  Watchdog::Report report = Watchdog::check(1 + threshold + 1);
  EXPECT_EQ(report.stalled_threads, 0);  // baseline re-armed, not stalled
  EXPECT_EQ(Watchdog::stall_events(), 0u);
  Watchdog::on_deactivate();
}

TEST(WatchdogTest, ThresholdIsAdjustable) {
  Watchdog::reset_for_testing();
  const std::uint64_t saved = Watchdog::threshold_ns();
  Watchdog::set_threshold_ns(10);
  EXPECT_EQ(Watchdog::threshold_ns(), 10u);
  Watchdog::on_publish();
  Watchdog::check(100);
  EXPECT_GE(Watchdog::check(200).stalled_threads, 1);  // 100ns >> 10ns
  Watchdog::on_deactivate();
  Watchdog::set_threshold_ns(saved);
}

}  // namespace
