#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hohtm::util {
namespace {

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += (a.next() != b.next());
  EXPECT_GT(differing, 95);
}

TEST(Xoshiro256, BoundRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(37), 37u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_in(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Xoshiro256, RoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    histogram[rng.next_below(kBuckets)] += 1;
  // Each bucket should be within 10% of the expected count.
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / kBuckets * 9 / 10);
    EXPECT_LT(count, kDraws / kBuckets * 11 / 10);
  }
}

TEST(SplitMix64, KnownSequenceDistinct) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace hohtm::util
