#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace hohtm::util {
namespace {

TEST(Stats, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.cv_percent(), 0.0);
}

TEST(Stats, SingleSample) {
  const Summary s = summarize({5.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic data set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, CvPercent) {
  const Summary s = summarize({10.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(s.cv_percent(), 0.0);
  const Summary t = summarize({9.0, 10.0, 11.0});
  EXPECT_NEAR(t.cv_percent(), 10.0, 0.5);
}

}  // namespace
}  // namespace hohtm::util
