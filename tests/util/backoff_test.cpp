#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace hohtm::util {
namespace {

TEST(Backoff, PauseCompletes) {
  Backoff backoff;
  for (int i = 0; i < 20; ++i) backoff.pause();  // must grow then yield
  SUCCEED();
}

TEST(Backoff, GrowsExponentiallyUntilYield) {
  // With a tiny spin ceiling the pause path switches to yield quickly;
  // we can only observe behaviour indirectly: it must not take long.
  Backoff backoff(1, 8);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) backoff.pause();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 2.0);
}

TEST(Backoff, ResetRestartsRamp) {
  Backoff backoff(4, 64);
  backoff.pause();
  backoff.pause();
  backoff.reset(4);
  backoff.pause();  // must not throw / misbehave after reset
  SUCCEED();
}

TEST(CpuRelax, IsCallable) {
  for (int i = 0; i < 100; ++i) cpu_relax();
  SUCCEED();
}

}  // namespace
}  // namespace hohtm::util
