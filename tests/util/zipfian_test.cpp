// Zipfian generator: determinism is the contract. Every assertion pins
// an exact draw sequence (goldens recorded from this implementation) —
// no statistical or timing checks, per the project testing rules: a
// distribution test would be flaky on principle, while exact sequences
// catch every change to the CDF construction, the uniform-draw mapping,
// and the underlying PRNG.
#include "util/zipfian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hohtm::util {
namespace {

TEST(Zipfian, GoldenSequenceDefaultTheta) {
  Zipfian z(100, 0.99, 0x5eedULL);
  const std::size_t expected[] = {71, 54, 45, 87, 19, 8, 2, 4,
                                  31, 25, 0,  18, 9,  2, 13, 1};
  for (std::size_t want : expected) EXPECT_EQ(z.next(), want);
}

TEST(Zipfian, GoldenSequenceMildSkew) {
  Zipfian z(1000, 0.5, 42);
  const std::size_t expected[] = {10,  154, 472, 858, 984, 600, 526, 728,
                                  587, 351, 475, 93,  648, 113, 515, 775};
  for (std::size_t want : expected) EXPECT_EQ(z.next(), want);
}

TEST(Zipfian, GoldenSequenceTinyDomain) {
  Zipfian z(8, 0.99, 7);
  const std::size_t expected[] = {3, 0, 5, 7, 7, 5, 0, 0, 1, 0, 1, 3,
                                  6, 5, 1, 2, 0, 1, 0, 0, 0, 2, 2, 0};
  for (std::size_t want : expected) EXPECT_EQ(z.next(), want);
}

TEST(Zipfian, SameSeedReplaysIdentically) {
  Zipfian a(100, 0.99, 0x5eedULL);
  Zipfian b(100, 0.99, 0x5eedULL);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Zipfian, DifferentSeedsDiverge) {
  Zipfian a(100, 0.99, 1);
  Zipfian b(100, 0.99, 2);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) diverged = a.next() != b.next();
  EXPECT_TRUE(diverged);
}

TEST(Zipfian, DrawsStayInDomain) {
  Zipfian z(17, 1.2, 99);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.next(), 17u);
  EXPECT_EQ(z.n(), 17u);
}

TEST(Zipfian, SingleElementDomainAlwaysZero) {
  Zipfian z(1, 0.99, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(), 0u);
}

// Regression: n == 0 used to build an empty CDF, and next()'s
// `cdf_.size() - 1` underflowed to SIZE_MAX, walking the binary search
// off the vector. The constructor now clamps to a single-rank domain.
TEST(Zipfian, ZeroDomainClampsToSingleRank) {
  Zipfian z(0, 0.99, 3);
  EXPECT_EQ(z.n(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(), 0u);
}

TEST(ScrambleRank, GoldenValuesAndBijectivity) {
  EXPECT_EQ(scramble_rank(0), 16294208416658607535ULL);
  EXPECT_EQ(scramble_rank(1), 10451216379200822465ULL);
  EXPECT_EQ(scramble_rank(12345), 2454886589211414944ULL);
  // splitmix64 is invertible, so distinct ranks never collide; check a
  // dense window of the key space the KV workload actually uses.
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 4096; ++r)
    ASSERT_TRUE(seen.insert(scramble_rank(r)).second) << r;
}

}  // namespace
}  // namespace hohtm::util
