#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hohtm::util {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, BucketingByBitWidth) {
  Histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3
  h.record(255);  // bucket 8
  h.record(256);  // bucket 9
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(8), 255u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, ExtremeValues) {
  Histogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(64), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.percentile(1.0), ~std::uint64_t{0});
}

TEST(Histogram, MinMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(90);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 90u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(Histogram, PercentileReportsBucketUpperClampedToMax) {
  Histogram h;
  // 100 samples of value 5 (bucket 3, upper bound 7): every quantile must
  // clamp to the observed max, not report the bucket bound.
  for (int i = 0; i < 100; ++i) h.record(5);
  EXPECT_EQ(h.percentile(0.50), 5u);
  EXPECT_EQ(h.percentile(0.99), 5u);
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, PercentileRankSelection) {
  Histogram h;
  // 90 small samples (bucket 4: 8..15), 10 large ones (bucket 11:
  // 1024..2047). p50/p90 land in the small bucket, p95/p99 in the large.
  for (int i = 0; i < 90; ++i) h.record(12);
  for (int i = 0; i < 10; ++i) h.record(1500);
  EXPECT_EQ(h.percentile(0.50), 15u);   // bucket 4 upper bound
  EXPECT_EQ(h.percentile(0.90), 15u);   // rank 90 is the last small sample
  EXPECT_EQ(h.percentile(0.95), 1500u);  // bucket 11 upper clamped to max
  EXPECT_EQ(h.percentile(0.99), 1500u);
  EXPECT_EQ(h.percentile(1.0), 1500u);
}

TEST(Histogram, PercentileEdgeFractions) {
  Histogram h;
  h.record(4);
  h.record(1000);
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(-1.0), h.min());
  EXPECT_EQ(h.percentile(2.0), h.max());  // out-of-range p clamps to 1.0
}

TEST(Histogram, MergeCombinesEverything) {
  Histogram a;
  Histogram b;
  a.record(3);
  a.record(100);
  b.record(1);
  b.record(5000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 3u + 100 + 1 + 5000);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_EQ(a.bucket_count(1), 1u);  // the 1 from b
  EXPECT_EQ(a.bucket_count(2), 1u);  // the 3 from a
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a;
  a.record(42);
  const Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);

  Histogram fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_EQ(fresh.min(), 42u);  // min taken from the non-empty side
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  h.record(7);
  h.record(9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
  h.record(2);  // usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 2u);
}

}  // namespace
}  // namespace hohtm::util
