#include "util/cacheline.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hohtm::util {
namespace {

TEST(CachePadded, SizeAndAlignment) {
  EXPECT_EQ(sizeof(CachePadded<std::uint64_t>), kCacheLineSize);
  EXPECT_EQ(alignof(CachePadded<std::uint64_t>), kCacheLineSize);
  struct Big {
    char bytes[100];
  };
  EXPECT_EQ(sizeof(CachePadded<Big>), 2 * kCacheLineSize);
}

TEST(CachePadded, ArrayElementsOnDistinctLines) {
  CachePadded<int> cells[4];
  for (int i = 0; i < 4; ++i) cells[i].value = i;
  for (int i = 1; i < 4; ++i) {
    auto gap = reinterpret_cast<std::uintptr_t>(&cells[i].value) -
               reinterpret_cast<std::uintptr_t>(&cells[i - 1].value);
    EXPECT_GE(gap, kCacheLineSize);
  }
}

TEST(CachePadded, AccessOperators) {
  CachePadded<int> cell(42);
  EXPECT_EQ(*cell, 42);
  *cell = 7;
  EXPECT_EQ(cell.value, 7);
}

TEST(CachePadded, ForwardingConstructor) {
  struct Pair {
    int a, b;
    Pair(int x, int y) : a(x), b(y) {}
  };
  CachePadded<Pair> cell(1, 2);
  EXPECT_EQ(cell->a, 1);
  EXPECT_EQ(cell->b, 2);
}

}  // namespace
}  // namespace hohtm::util
