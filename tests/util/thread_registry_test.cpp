#include "util/thread_registry.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/barrier.hpp"

namespace hohtm::util {
namespace {

TEST(ThreadRegistry, StableWithinThread) {
  const std::size_t first = ThreadRegistry::slot();
  const std::size_t second = ThreadRegistry::slot();
  EXPECT_EQ(first, second);
  EXPECT_LT(first, kMaxThreads);
}

TEST(ThreadRegistry, DistinctAcrossConcurrentThreads) {
  // Slots are recycled on thread exit, so distinctness is only guaranteed
  // among *simultaneously live* threads: hold every thread at a barrier
  // until all have claimed their slot.
  constexpr int kThreads = 8;
  std::mutex mu;
  std::set<std::size_t> slots;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      const std::size_t s = ThreadRegistry::slot();
      {
        std::lock_guard<std::mutex> lock(mu);
        slots.insert(s);
      }
      barrier.arrive_and_wait();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(slots.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, SlotsRecycledAfterExit) {
  // Run many short-lived threads sequentially; the registry must not run
  // out of slots because each exiting thread returns its slot.
  for (int i = 0; i < static_cast<int>(kMaxThreads) * 3; ++i) {
    std::thread([] {
      EXPECT_LT(ThreadRegistry::slot(), kMaxThreads);
    }).join();
  }
}

TEST(ThreadRegistry, WatermarkCoversLiveSlots) {
  const std::size_t mine = ThreadRegistry::slot();
  EXPECT_GT(ThreadRegistry::high_watermark(), mine);
}

}  // namespace
}  // namespace hohtm::util
