#include "util/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hohtm::util {
namespace {

TEST(SpinBarrier, SingleParty) {
  SpinBarrier barrier(1);
  barrier.arrive_and_wait();  // must not block
  barrier.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, NoThreadPassesEarly) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        arrived.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads arrivals of this round (and no
        // more than the next round's) must have happened.
        const int seen = arrived.load();
        if (seen < (round + 1) * kThreads) violation.store(true);
        barrier.arrive_and_wait();  // separate rounds
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(arrived.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace hohtm::util
