#!/usr/bin/env python3
"""Summarize hohtm bench output into per-panel tables.

Usage:
    python3 tools/summarize_bench.py bench_output.txt [--figure fig2]
                                     [--causes]

Reads the CSV rows emitted by the bench binaries. Two layouts are
accepted:

  legacy (6 cols):  figure,panel,series,threads,mops,cv_pct
  telemetry (15):   figure,panel,series,threads,mops,cv_pct,commits,
                    aborts,validation,lock,user,serial_esc,revocations,
                    hoh_retries,res_lost

Groups rows by figure and panel and prints one throughput table per
panel with series as rows and thread counts as columns — the same layout
as the paper's figures, so shapes (who wins, where crossovers fall) can
be eyeballed or diffed. With --causes (or automatically when telemetry
columns are present), an abort-rate table per panel attributes the
contention: aborts per 1k commits, split by cause.
"""

import argparse
import collections
import sys

CAUSE_FIELDS = [
    "commits", "aborts", "validation", "lock", "user", "serial_esc",
    "revocations", "hoh_retries", "res_lost",
]


def load(path):
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("====="):
                continue
            parts = line.split(",")
            if len(parts) < 6:
                continue
            figure, panel, series, threads, mops, cv = parts[:6]
            try:
                threads = int(threads)
                mops = float(mops)
            except ValueError:
                continue
            counters = None
            if len(parts) >= 6 + len(CAUSE_FIELDS):
                try:
                    values = [int(v) for v in parts[6:6 + len(CAUSE_FIELDS)]]
                    counters = dict(zip(CAUSE_FIELDS, values))
                except ValueError:
                    pass  # malformed telemetry: keep the throughput columns
            rows.append((figure, panel, series, threads, mops, counters))
    return rows


def summarize(rows, only_figure=None, show_causes=False):
    figures = collections.defaultdict(
        lambda: collections.defaultdict(dict))  # fig -> panel -> (series, t) -> mops
    counter_cells = {}  # (figure, panel, series, threads) -> counters dict
    thread_sets = collections.defaultdict(set)
    series_order = collections.defaultdict(list)
    for figure, panel, series, threads, mops, counters in rows:
        if only_figure and figure != only_figure:
            continue
        figures[figure][panel][(series, threads)] = mops
        if counters is not None:
            counter_cells[(figure, panel, series, threads)] = counters
        thread_sets[(figure, panel)].add(threads)
        key = (figure, panel)
        if series not in series_order[key]:
            series_order[key].append(series)

    for figure in sorted(figures):
        for panel in figures[figure]:
            key = (figure, panel)
            threads = sorted(thread_sets[key])
            print(f"\n## {figure} / {panel}  (Mops/s)")
            header = "series".ljust(14) + "".join(f"{t:>9}" for t in threads)
            print(header)
            print("-" * len(header))
            cells = figures[figure][panel]
            for series in series_order[key]:
                row = series.ljust(14)
                for t in threads:
                    value = cells.get((series, t))
                    row += f"{value:9.3f}" if value is not None else "        -"
                print(row)
            # Flag the winner at the highest thread count.
            top = max(threads)
            best = max(
                ((s, cells.get((s, top), 0.0)) for s in series_order[key]),
                key=lambda pair: pair[1],
            )
            print(f"best @ {top} threads: {best[0]} ({best[1]:.3f})")
            if show_causes:
                emit_cause_table(figure, panel, series_order[key], top,
                                 counter_cells)


def emit_cause_table(figure, panel, series_list, threads, counter_cells):
    """Abort attribution at the highest thread count of the panel: events
    per 1k commits, per cause — who aborts, and why."""
    have = [(s, counter_cells.get((figure, panel, s, threads)))
            for s in series_list]
    have = [(s, c) for s, c in have if c]
    if not have:
        return
    causes = ["validation", "lock", "user", "serial_esc", "revocations",
              "hoh_retries", "res_lost"]
    header = ("series".ljust(14) + f"{'aborts/1k':>11}" +
              "".join(f"{c:>12}" for c in causes))
    print(f"   abort attribution @ {threads} threads (per 1k commits)")
    print(header)
    print("-" * len(header))
    for series, c in have:
        commits = max(c["commits"], 1)
        row = series.ljust(14) + f"{1000.0 * c['aborts'] / commits:11.2f}"
        for cause in causes:
            row += f"{1000.0 * c[cause] / commits:12.2f}"
        print(row)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--figure", default=None)
    parser.add_argument("--causes", action="store_true",
                        help="force the abort-attribution tables")
    args = parser.parse_args()
    rows = load(args.path)
    if not rows:
        print("no bench rows found", file=sys.stderr)
        return 1
    has_telemetry = any(counters is not None for *_rest, counters in rows)
    summarize(rows, args.figure, show_causes=args.causes or has_telemetry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
