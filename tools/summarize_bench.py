#!/usr/bin/env python3
"""Summarize hohtm bench output into per-panel tables.

Usage:
    python3 tools/summarize_bench.py bench_output.txt [--figure fig2]

Reads the CSV rows emitted by the bench binaries
(figure,panel,series,threads,mops,cv_pct), groups them by figure and
panel, and prints one table per panel with series as rows and thread
counts as columns — the same layout as the paper's figures, so shapes
(who wins, where crossovers fall) can be eyeballed or diffed.
"""

import argparse
import collections
import sys


def load(path):
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("====="):
                continue
            parts = line.split(",")
            if len(parts) != 6:
                continue
            figure, panel, series, threads, mops, cv = parts
            try:
                rows.append((figure, panel, series, int(threads), float(mops)))
            except ValueError:
                continue
    return rows


def summarize(rows, only_figure=None):
    figures = collections.defaultdict(
        lambda: collections.defaultdict(dict))  # fig -> panel -> (series, t) -> mops
    thread_sets = collections.defaultdict(set)
    series_order = collections.defaultdict(list)
    for figure, panel, series, threads, mops in rows:
        if only_figure and figure != only_figure:
            continue
        figures[figure][panel][(series, threads)] = mops
        thread_sets[(figure, panel)].add(threads)
        key = (figure, panel)
        if series not in series_order[key]:
            series_order[key].append(series)

    for figure in sorted(figures):
        for panel in figures[figure]:
            key = (figure, panel)
            threads = sorted(thread_sets[key])
            print(f"\n## {figure} / {panel}  (Mops/s)")
            header = "series".ljust(14) + "".join(f"{t:>9}" for t in threads)
            print(header)
            print("-" * len(header))
            cells = figures[figure][panel]
            for series in series_order[key]:
                row = series.ljust(14)
                for t in threads:
                    value = cells.get((series, t))
                    row += f"{value:9.3f}" if value is not None else "        -"
                print(row)
            # Flag the winner at the highest thread count.
            top = max(threads)
            best = max(
                ((s, cells.get((s, top), 0.0)) for s in series_order[key]),
                key=lambda pair: pair[1],
            )
            print(f"best @ {top} threads: {best[0]} ({best[1]:.3f})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--figure", default=None)
    args = parser.parse_args()
    rows = load(args.path)
    if not rows:
        print("no bench rows found", file=sys.stderr)
        return 1
    summarize(rows, args.figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
