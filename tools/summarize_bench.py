#!/usr/bin/env python3
"""Summarize hohtm bench output into per-panel tables.

Usage:
    python3 tools/summarize_bench.py bench_output.txt [--figure fig2]
                                     [--causes]

Reads the CSV rows emitted by the bench binaries. The layout is
*header-driven*: every bench prints a `# columns: name1,name2,...` line
(src/harness/report.cpp), and data rows whose column count matches a
seen header are decoded by those names — new columns appended by a
future schema load without touching this tool.

For headerless input (older captures, hand-made fixtures) the layout
falls back to detection by column count:

  legacy (6 cols):  figure,panel,series,threads,mops,cv_pct
  telemetry (15):   figure,panel,series,threads,mops,cv_pct,commits,
                    aborts,validation,lock,user,serial_esc,revocations,
                    hoh_retries,res_lost
  observability (20): the 15 telemetry columns plus commit_p50_ns,
                    commit_p95_ns,commit_p99_ns,commit_max_ns,live_peak
  kv (24):          the 20 observability columns plus kv_hits,kv_misses,
                    kv_migrations,kv_resizes (see report.hpp emit_kv_row)
  fusion (17/22/26): the same three telemetry layouts after window
                    fusion (PR 6) widened the cause block with
                    fusion_fallbacks and appended fused_windows after
                    res_lost; the two column-count families are
                    disjoint, so both generations of output load.
  scan-era kv (31): the 26 fusion-era observability columns plus
                    res_lost_attr,aborts_attr (PR 7), the four kv
                    columns, and the range-scan triple kv_scans,
                    kv_scan_windows,kv_scan_resumes (PR 8).
  serving era (25/32/36): PR 10 appends quiescence_waits after
                    aborts_attr in every layout (base 25, kv 32), and
                    the net layout (36) adds net_batches,net_fused_ops,
                    net_bytes_in,net_bytes_out after the scan triple
                    (report.hpp emit_net_row).

(The attribution-era 24/28-column layouts emitted since PR 7 always
carry their header, so the 24-column collision with the pre-fusion kv
layout never bites in practice; 31 is disjoint from every earlier
width, so scan-era kv rows decode even without their header, and the
serving-era widths {25, 32, 36} are disjoint from everything above.)

`timeline,...` rows (the reclamation-footprint samples) are skipped
here; tools/trace_report.py renders those, along with the latency
percentiles, as curves and tables.

Groups rows by figure and panel and prints one throughput table per
panel with series as rows and thread counts as columns — the same layout
as the paper's figures, so shapes (who wins, where crossovers fall) can
be eyeballed or diffed. With --causes (or automatically when telemetry
columns are present), an abort-rate table per panel attributes the
contention: aborts per 1k commits, split by cause, plus the cell's
live_peak when the observability columns are present.
"""

import argparse
import collections
import sys

CAUSE_FIELDS = [
    "commits", "aborts", "validation", "lock", "user", "serial_esc",
    "revocations", "hoh_retries", "res_lost",
]
# Post-fusion telemetry block (PR 6): fusion_fallbacks joins the abort
# causes and fused_windows follows res_lost.
CAUSE_FIELDS_V2 = [
    "commits", "aborts", "validation", "lock", "user", "serial_esc",
    "revocations", "hoh_retries", "fusion_fallbacks", "res_lost",
    "fused_windows",
]
OBSERVABILITY_FIELDS = [
    "commit_p50_ns", "commit_p95_ns", "commit_p99_ns", "commit_max_ns",
    "live_peak",
]
KV_FIELDS = [
    "kv_hits", "kv_misses", "kv_migrations", "kv_resizes",
]
# Causal attribution pair (PR 7) and the range-scan triple (PR 8); the
# 31-column scan-era kv layout is the fusion-era observability columns
# plus these and the kv block, in emit_kv_header order.
ATTRIBUTION_FIELDS = [
    "res_lost_attr", "aborts_attr",
]
KV_SCAN_FIELDS = [
    "kv_scans", "kv_scan_windows", "kv_scan_resumes",
]
SCAN_ERA_KV_FIELDS = (CAUSE_FIELDS_V2 + OBSERVABILITY_FIELDS +
                      ATTRIBUTION_FIELDS + KV_FIELDS + KV_SCAN_FIELDS)
# Serving-era layouts (PR 10): quiescence_waits joins the base tail, and
# the loopback bench appends the four net columns after the scan triple.
QUIESCENCE_FIELDS = [
    "quiescence_waits",
]
NET_FIELDS = [
    "net_batches", "net_fused_ops", "net_bytes_in", "net_bytes_out",
]
SERVING_ERA_BASE_FIELDS = (CAUSE_FIELDS_V2 + OBSERVABILITY_FIELDS +
                           ATTRIBUTION_FIELDS + QUIESCENCE_FIELDS)
SERVING_ERA_KV_FIELDS = (SERVING_ERA_BASE_FIELDS + KV_FIELDS +
                         KV_SCAN_FIELDS)
SERVING_ERA_NET_FIELDS = SERVING_ERA_KV_FIELDS + NET_FIELDS


def parse_header_line(line, headers):
    """Records a `# columns: a,b,c` header, keyed by column count (the
    only property a data row exposes). A later header with the same
    count — e.g. a second bench appended to the same capture — wins."""
    names = [n.strip() for n in line.split(":", 1)[1].split(",") if n.strip()]
    if len(names) >= 6:
        headers[len(names)] = names


def header_counters(parts, headers):
    """Decode the telemetry tail of a row by the matching header's
    column names; None when no header with this width was seen."""
    names = headers.get(len(parts))
    if names is None:
        return None
    counters = {}
    for name, value in zip(names[6:], parts[6:]):
        try:
            counters[name] = int(value)
        except ValueError:
            pass  # non-integer telemetry cell: keep the rest
    return counters or None


def fallback_counters(parts):
    """Count-based decoding for headerless rows (pre-PR-7 captures,
    plus the scan/serving-era rows whose header got stripped — their
    widths {31, 25, 32, 36} are disjoint from every earlier layout)."""
    for fields in (SERVING_ERA_NET_FIELDS, SERVING_ERA_KV_FIELDS,
                   SERVING_ERA_BASE_FIELDS):
        if len(parts) == 6 + len(fields):
            try:
                return dict(zip(fields, (int(v) for v in parts[6:])))
            except ValueError:
                break  # malformed row: fall through to the older layouts
    if len(parts) == 6 + len(SCAN_ERA_KV_FIELDS):  # 31: scan-era kv
        try:
            return dict(zip(SCAN_ERA_KV_FIELDS,
                            (int(v) for v in parts[6:])))
        except ValueError:
            pass  # malformed row: fall through to the older layouts
    # The fusion-era column counts {17, 22, 26} are disjoint
    # from the pre-fusion {15, 20, 24}, so the count picks the
    # cause-block width unambiguously.
    cause_fields = (CAUSE_FIELDS_V2 if len(parts) in (17, 22, 26)
                    else CAUSE_FIELDS)
    counters = None
    if len(parts) >= 6 + len(cause_fields):
        try:
            values = [int(v) for v in parts[6:6 + len(cause_fields)]]
            counters = dict(zip(cause_fields, values))
        except ValueError:
            pass  # malformed telemetry: keep the throughput columns
    if counters is not None and \
            len(parts) >= 6 + len(cause_fields) + len(OBSERVABILITY_FIELDS):
        start = 6 + len(cause_fields)
        try:
            values = [int(v) for v in
                      parts[start:start + len(OBSERVABILITY_FIELDS)]]
            counters.update(zip(OBSERVABILITY_FIELDS, values))
        except ValueError:
            pass  # malformed observability tail: keep the rest
    if counters is not None and \
            len(parts) >= 6 + len(cause_fields) + \
            len(OBSERVABILITY_FIELDS) + len(KV_FIELDS):
        start = 6 + len(cause_fields) + len(OBSERVABILITY_FIELDS)
        try:
            values = [int(v) for v in
                      parts[start:start + len(KV_FIELDS)]]
            counters.update(zip(KV_FIELDS, values))
        except ValueError:
            pass  # malformed kv tail: keep the rest
    return counters


def load(path):
    rows = []
    headers = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("# columns:"):
                parse_header_line(line, headers)
                continue
            if not line or line.startswith("#") or line.startswith("====="):
                continue
            parts = line.split(",")
            if len(parts) < 6 or parts[0] == "timeline":
                continue
            figure, panel, series, threads, mops, cv = parts[:6]
            try:
                threads = int(threads)
                mops = float(mops)
            except ValueError:
                continue
            counters = header_counters(parts, headers)
            if counters is None:
                counters = fallback_counters(parts)
            rows.append((figure, panel, series, threads, mops, counters))
    return rows


def summarize(rows, only_figure=None, show_causes=False):
    figures = collections.defaultdict(
        lambda: collections.defaultdict(dict))  # fig -> panel -> (series, t) -> mops
    counter_cells = {}  # (figure, panel, series, threads) -> counters dict
    thread_sets = collections.defaultdict(set)
    series_order = collections.defaultdict(list)
    for figure, panel, series, threads, mops, counters in rows:
        if only_figure and figure != only_figure:
            continue
        figures[figure][panel][(series, threads)] = mops
        if counters is not None:
            counter_cells[(figure, panel, series, threads)] = counters
        thread_sets[(figure, panel)].add(threads)
        key = (figure, panel)
        if series not in series_order[key]:
            series_order[key].append(series)

    for figure in sorted(figures):
        for panel in figures[figure]:
            key = (figure, panel)
            threads = sorted(thread_sets[key])
            print(f"\n## {figure} / {panel}  (Mops/s)")
            header = "series".ljust(14) + "".join(f"{t:>9}" for t in threads)
            print(header)
            print("-" * len(header))
            cells = figures[figure][panel]
            for series in series_order[key]:
                row = series.ljust(14)
                for t in threads:
                    value = cells.get((series, t))
                    row += f"{value:9.3f}" if value is not None else "        -"
                print(row)
            # Flag the winner at the highest thread count.
            top = max(threads)
            best = max(
                ((s, cells.get((s, top), 0.0)) for s in series_order[key]),
                key=lambda pair: pair[1],
            )
            print(f"best @ {top} threads: {best[0]} ({best[1]:.3f})")
            if show_causes:
                emit_cause_table(figure, panel, series_order[key], top,
                                 counter_cells)
            emit_kv_table(figure, panel, series_order[key], top,
                          counter_cells)
            emit_net_table(figure, panel, series_order[key], top,
                           counter_cells)


def emit_cause_table(figure, panel, series_list, threads, counter_cells):
    """Abort attribution at the highest thread count of the panel: events
    per 1k commits, per cause — who aborts, and why."""
    have = [(s, counter_cells.get((figure, panel, s, threads)))
            for s in series_list]
    have = [(s, c) for s, c in have if c]
    if not have:
        return
    causes = [("validation", "validation"), ("lock", "lock"),
              ("user", "user"), ("serial_esc", "serial_esc"),
              ("revocations", "revocations"), ("hoh_retries", "hoh_retries"),
              ("res_lost", "res_lost")]
    # Fusion columns (PR 6 layouts) only when any series carries them.
    if any("fused_windows" in c for _, c in have):
        causes += [("fusion_fallbacks", "fusion_fb"),
                   ("fused_windows", "fused_win")]
    # Causal-attribution columns (PR 7 layouts): losses / aborts whose
    # aborter thread is known.
    if any("res_lost_attr" in c for _, c in have):
        causes += [("res_lost_attr", "lost_attr"),
                   ("aborts_attr", "aborts_attr")]
    # Quiescence fences (PR 10 layouts): the precise-reclamation
    # synchrony cost, the denominator batch fusion drives down.
    if any("quiescence_waits" in c for _, c in have):
        causes += [("quiescence_waits", "qwaits")]
    show_peak = any("live_peak" in c for _, c in have)
    header = ("series".ljust(14) + f"{'aborts/1k':>11}" +
              "".join(f"{label:>12}" for _, label in causes) +
              (f"{'live_peak':>11}" if show_peak else ""))
    print(f"   abort attribution @ {threads} threads (per 1k commits)")
    print(header)
    print("-" * len(header))
    for series, c in have:
        commits = max(c["commits"], 1)
        row = series.ljust(14) + f"{1000.0 * c['aborts'] / commits:11.2f}"
        for cause, _ in causes:
            row += f"{1000.0 * c.get(cause, 0) / commits:12.2f}"
        if show_peak:
            row += f"{c.get('live_peak', 0):11d}"
        print(row)


def emit_kv_table(figure, panel, series_list, threads, counter_cells):
    """KV workload columns at the highest thread count: hit rate over the
    keyed ops, how much resize work (bucket migrations, table swaps) ran
    inside the measured window, and — when the scan triple is present
    (YCSB E) — scans, committed scan windows, the windows-per-scan
    ratio, and cursor resumes after a revoked handover."""
    have = [(s, counter_cells.get((figure, panel, s, threads)))
            for s in series_list]
    have = [(s, c) for s, c in have if c and "kv_hits" in c]
    if not have:
        return
    show_scans = any(c.get("kv_scans", 0) or c.get("kv_scan_windows", 0)
                     for _, c in have)
    header = (
        "series".ljust(14) + f"{'hits':>12}" + f"{'misses':>12}" +
        f"{'hit%':>8}" + f"{'migrations':>12}" + f"{'resizes':>9}")
    if show_scans:
        header += (f"{'scans':>10}" + f"{'scan_win':>10}" +
                   f"{'win/scan':>9}" + f"{'resumes':>9}")
    print(f"   kv workload @ {threads} threads")
    print(header)
    print("-" * len(header))
    for series, c in have:
        keyed = max(c["kv_hits"] + c["kv_misses"], 1)
        row = (series.ljust(14) +
               f"{c['kv_hits']:12d}" + f"{c['kv_misses']:12d}" +
               f"{100.0 * c['kv_hits'] / keyed:8.2f}" +
               f"{c['kv_migrations']:12d}" + f"{c['kv_resizes']:9d}")
        if show_scans:
            scans = c.get("kv_scans", 0)
            windows = c.get("kv_scan_windows", 0)
            row += (f"{scans:10d}" + f"{windows:10d}" +
                    f"{windows / max(scans, 1):9.2f}" +
                    f"{c.get('kv_scan_resumes', 0):9d}")
        print(row)


def emit_net_table(figure, panel, series_list, threads, counter_cells):
    """Serving-tier columns (PR 10, the kv_loopback bench): pipeline
    batches submitted through the ring, ops committed inside fused
    same-shard groups (with ops-per-batch and the fused share of the
    keyed ops), and raw wire traffic."""
    have = [(s, counter_cells.get((figure, panel, s, threads)))
            for s in series_list]
    have = [(s, c) for s, c in have if c and "net_batches" in c]
    if not have:
        return
    header = ("series".ljust(14) + f"{'batches':>10}" +
              f"{'ops/batch':>10}" + f"{'fused_ops':>11}" +
              f"{'fused%':>8}" + f"{'bytes_in':>12}" + f"{'bytes_out':>12}")
    print(f"   serving tier @ {threads} threads")
    print(header)
    print("-" * len(header))
    for series, c in have:
        keyed = max(c.get("kv_hits", 0) + c.get("kv_misses", 0), 1)
        batches = c["net_batches"]
        row = (series.ljust(14) + f"{batches:10d}" +
               f"{keyed / max(batches, 1):10.2f}" +
               f"{c['net_fused_ops']:11d}" +
               f"{100.0 * c['net_fused_ops'] / keyed:8.2f}" +
               f"{c['net_bytes_in']:12d}" + f"{c['net_bytes_out']:12d}")
        print(row)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--figure", default=None)
    parser.add_argument("--causes", action="store_true",
                        help="force the abort-attribution tables")
    args = parser.parse_args()
    rows = load(args.path)
    if not rows:
        print("no bench rows found", file=sys.stderr)
        return 1
    has_telemetry = any(counters is not None for *_rest, counters in rows)
    summarize(rows, args.figure, show_causes=args.causes or has_telemetry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
