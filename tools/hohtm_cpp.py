#!/usr/bin/env python3
"""hohtm_cpp: the shared C++ source-handling layer for this repo's
static-analysis tools (tools/hohtm_lint.py, tools/hohtm_analyze.py).

Dependency-free by design (stdlib only). Provides:

  * lex(text)            -- position-preserving comment/string blanking
  * line_of(off, starts) -- byte offset -> 1-based line number
  * line_starts_of(code) -- the offset table line_of consumes
  * match_balanced(...)  -- balanced-delimiter extraction (multi-line
                            argument lists, brace bodies)
  * tx_body_spans(code)  -- byte ranges of atomically(...) lambda bodies
  * collect(root, paths) -- the tools' shared file-collection walk
  * allow_re(tool)       -- the `// <tool>: allow(rule-a, rule-b)`
                            suppression-comment pattern
  * allowed(...)         -- pragma lookup (same line or line above)

Both tools import this module by path-relative sys.path (they live in the
same directory), so running either script directly keeps working from any
cwd. The lexer's contract is load-bearing for every rule: comments and
string/char literal *contents* are replaced by spaces while newlines are
kept, so byte offsets and line numbers in the blanked code match the
original file exactly.
"""

from __future__ import annotations

import os
import re
import sys

LINTED_EXTS = (".cpp", ".hpp", ".h", ".cc")


# --------------------------------------------------------------------------
# Lexer: blank comments and string/char literals, keep positions stable.
# --------------------------------------------------------------------------

def lex(text: str) -> tuple[str, dict[int, str]]:
    """Return (code, comments): `code` is `text` with comments and string/
    char literal *contents* replaced by spaces (newlines kept, so offsets
    and line numbers survive); `comments` maps 1-based line number -> the
    comment text seen on that line (for allow-pragma lookup)."""
    out = []
    comments: dict[int, str] = {}
    i, n, line = 0, len(text), 1

    def note_comment(s: str, start_line: int) -> None:
        for off, part in enumerate(s.split("\n")):
            comments[start_line + off] = comments.get(start_line + off, "") + part

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            note_comment(text[i:j], line)
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            note_comment(seg, line)
            out.append(re.sub(r"[^\n]", " ", seg))
            line += seg.count("\n")
            i = j + 2
        elif c == '"' and text[i - 1] == "R" and i >= 1:
            m = re.match(r'R"([^(\s]*)\(', text[i - 1:])
            if m:
                delim = ")" + m.group(1) + '"'
                j = text.find(delim, i + len(m.group(0)) - 1)
                j = n - len(delim) if j == -1 else j
                seg = text[i:j + len(delim)]
                out.append(re.sub(r"[^\n]", " ", seg))
                line += seg.count("\n")
                i = j + len(delim)
            else:
                out.append(c)
                i += 1
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * (j - i - 1) + (text[j] if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), comments


def line_starts_of(code: str) -> list[int]:
    """Byte offset of the start of each line of `code` (for line_of)."""
    starts = [0]
    for ln in code.split("\n")[:-1]:
        starts.append(starts[-1] + len(ln) + 1)
    return starts


def line_of(offset: int, line_starts: list[int]) -> int:
    """1-based line number containing byte `offset` (binary search)."""
    lo, hi = 0, len(line_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if line_starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_balanced(code: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index just past the delimiter matching code[open_idx] (== open_ch),
    or len(code) if unbalanced."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def tx_body_spans(code: str) -> list[tuple[int, int]]:
    """Byte ranges of `atomically(...)` transaction bodies: the braces of
    the lambda passed to an atomically( call."""
    spans = []
    for m in re.finditer(r"\batomically\s*(?:<[^>]*>)?\s*\(", code):
        paren_open = code.index("(", m.end() - 1)
        paren_end = match_balanced(code, paren_open, "(", ")")
        brace = code.find("{", paren_open, paren_end)
        if brace == -1:
            continue
        body_end = match_balanced(code, brace, "{", "}")
        spans.append((brace, min(body_end, paren_end)))
    return spans


# --------------------------------------------------------------------------
# Suppression pragmas: `// <tool>: allow(rule-a, rule-b)` on the finding's
# line or the line directly above.
# --------------------------------------------------------------------------

def allow_re(tool: str) -> re.Pattern:
    return re.compile(re.escape(tool) + r":\s*allow\(([^)]*)\)")


def allowed(comments: dict[int, str], pattern: re.Pattern, line: int,
            rule: str) -> bool:
    for ln in (line, line - 1):
        m = pattern.search(comments.get(ln, ""))
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


# --------------------------------------------------------------------------
# File collection shared by the CLIs.
# --------------------------------------------------------------------------

def collect(root: str, paths: list[str], tool: str) -> list[str]:
    files: list[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = [d for d in dirnames
                               if not d.startswith((".", "build"))]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in filenames if f.endswith(LINTED_EXTS)
                )
        else:
            print(f"{tool}: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)
