#!/usr/bin/env python3
"""hohtm-lint: transactional-discipline static analyzer for this repo.

The TM's precise-reclamation guarantee rests on coding rules the compiler
never checks (every transactional allocation goes through tx.alloc /
tx.dealloc, every atomic in the TM core spells out its memory order, spin
loops park, hooks stay gated).  This linter machine-enforces them.

Usage:
    tools/hohtm_lint.py [--json] [--list-rules] [paths...]

With no paths it lints the default tree: src/ tests/ bench/ examples/.
Exit status: 0 = clean, 1 = findings, 2 = usage error.

Suppressions: a comment `// hohtm-lint: allow(<rule>)` on the same line as
the finding, or alone on the line directly above it, silences that rule
for that line.  Several rules may be listed: `allow(rule-a, rule-b)`.
Every rule is documented in docs/STATIC_ANALYSIS.md.

Dependency-free by design (stdlib only): the position-preserving lexer,
balanced-delimiter extraction, and transaction-body tracking live in the
shared tools/hohtm_cpp.py module (also used by tools/hohtm_analyze.py,
the path-sensitive transactional-effect analyzer).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import hohtm_cpp
from hohtm_cpp import lex, line_of, match_balanced, tx_body_spans  # noqa: F401

# --------------------------------------------------------------------------
# Rule catalog. `paths` are path-prefix filters relative to the repo root
# (empty tuple = all linted files); `headers_only` restricts to .hpp/.h.
# --------------------------------------------------------------------------

RULES = {
    "tx-raw-alloc": (
        "no raw new/delete/malloc/free inside atomically() transaction "
        "bodies; use tx.alloc<T>(...) / tx.dealloc(p) so aborts roll "
        "allocations back and frees stay precise"
    ),
    "atomic-order": (
        "every std::atomic access in src/tm/, src/core/, src/ds/, "
        "src/kv/, src/reclaim/, and src/sched/ must pass an explicit "
        "std::memory_order argument"
    ),
    "no-sleep-sync": (
        "no sleep_for/sleep_until/usleep or this_thread::yield based "
        "synchronization (single-core CI box: timed sleeps hide races and "
        "burn the only CPU); block on a condition_variable or atomic wait"
    ),
    "spin-park": (
        "spin loops on an atomic must park: contain a Backoff pause, "
        "sched::spin_wait, cpu_relax, or atomic wait, so HOHTM_SCHED=ON "
        "exploration trees stay finite and the single CPU is not starved"
    ),
    "gated-hooks": (
        "trace/sched/tsan hook machinery (gate macros, __tsan_* symbols, "
        "detail::point_impl) may appear only inside the designated hook "
        "headers; everywhere else use the always-compiled wrappers"
    ),
    "pragma-once": "every header starts with #pragma once",
    "no-using-namespace": "headers must not contain using namespace",
    "padded-shared-array": (
        "per-thread shared arrays (sized by kMaxThreads) in src/ headers "
        "must wrap elements in util::CachePadded<> to prevent false sharing"
    ),
    "padded-metric-slots": (
        "shared metric-slot arrays (static atomics sized by kMaxMetrics) "
        "must sit behind util::CachePadded<> blocks: a flat static array "
        "makes every thread's counter bumps false-share with its "
        "neighbours, which the always-on metrics plane cannot afford"
    ),
}

# Files allowed to define/reference the compile-time hook gates directly:
# the hook headers themselves plus the scheduler machinery implementing
# detail::point_impl (always compiled; see schedpoint.hpp).
GATE_EXEMPT = (
    "src/util/trace.hpp",
    "src/util/trace.cpp",
    "src/sched/schedpoint.hpp",
    "src/sched/scheduler.hpp",
    "src/sched/scheduler.cpp",
    "src/util/tsan.hpp",
)

GATE_TOKENS = re.compile(
    r"HOHTM_TRACE_ENABLED|HOHTM_SCHED_ENABLED|HOHTM_TSAN_ENABLED"
    r"|__tsan_\w+|detail::point_impl"
)

ALLOW_RE = re.compile(r"hohtm-lint:\s*allow\(([^)]*)\)")

RAW_ALLOC_RE = re.compile(
    r"(?<![\w_])(new\b(?!\s*\()|delete\b|malloc\s*\(|calloc\s*\(|"
    r"realloc\s*\(|free\s*\()"
)
# `new` followed by `(` is placement new — still a raw allocation spelling,
# so match it separately rather than letting (?!\s*\() hide it.
PLACEMENT_NEW_RE = re.compile(r"(?<![\w_])new\s*\(")

ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)

SLEEP_RE = re.compile(
    r"(?<![\w_])(sleep_for|sleep_until|usleep|nanosleep)\s*\("
    r"|this_thread::yield\s*\(\)"
)

SPIN_PARK_TOKENS = re.compile(
    r"backoff|\.pause\s*\(|spin_wait|cpu_relax|\.wait\s*\(|->wait\s*\(|"
    r"wait_even|wait_until|wait_all_inactive|yield"
)

USING_NAMESPACE_RE = re.compile(r"(?<![\w_])using\s+namespace\b")

KMAX_ARRAY_RE = re.compile(r"\[\s*(?:util::)?kMaxThreads\s*\]")

KMAX_METRICS_ARRAY_RE = re.compile(r"\[\s*(?:\w+::)*kMaxMetrics\s*\]")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def human(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


# --------------------------------------------------------------------------
# The linter proper. (The lexer and balanced-delimiter helpers live in
# tools/hohtm_cpp.py, shared with tools/hohtm_analyze.py.)
# --------------------------------------------------------------------------

class Linter:
    def __init__(self, root: str):
        self.root = root
        self.findings: list[Finding] = []

    def lint_file(self, path: str) -> None:
        rel = os.path.relpath(path, self.root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"hohtm-lint: cannot read {rel}: {e}", file=sys.stderr)
            return
        code, comments = lex(text)
        lines = code.split("\n")
        line_starts = [0]
        for ln in lines[:-1]:
            line_starts.append(line_starts[-1] + len(ln) + 1)
        is_header = rel.endswith((".hpp", ".h"))
        raw_lines = text.split("\n")

        found: list[Finding] = []

        def add(line: int, rule: str, message: str) -> None:
            found.append(Finding(rel, line, rule, message))

        self._check_tx_raw_alloc(rel, code, line_starts, add)
        self._check_atomic_order(rel, code, line_starts, add)
        self._check_sleep_sync(rel, code, line_starts, lines, add)
        self._check_spin_park(rel, code, line_starts, add)
        self._check_gated_hooks(rel, code, lines, add)
        if is_header:
            self._check_pragma_once(rel, raw_lines, add)
            self._check_using_namespace(rel, lines, add)
            self._check_padded_array(rel, code, line_starts, add)
            self._check_padded_metric_slots(rel, code, line_starts, add)

        # Apply allow-pragmas: same line or the line directly above.
        def allowed(f: Finding) -> bool:
            for ln in (f.line, f.line - 1):
                m = ALLOW_RE.search(comments.get(ln, ""))
                if m and f.rule in [r.strip() for r in m.group(1).split(",")]:
                    return True
            return False

        self.findings.extend(f for f in found if not allowed(f))

    # -- rule 1 ------------------------------------------------------------
    def _check_tx_raw_alloc(self, rel, code, line_starts, add):
        spans = tx_body_spans(code)
        if not spans:
            return
        for pattern in (RAW_ALLOC_RE, PLACEMENT_NEW_RE):
            for m in pattern.finditer(code):
                if not any(a <= m.start() < b for a, b in spans):
                    continue
                token = m.group(0).strip().rstrip("(").strip()
                # `= delete` / `operator delete` declarations are not frees.
                before = code[max(0, m.start() - 16):m.start()]
                if token == "delete" and (
                    before.rstrip().endswith("=") or "operator" in before
                ):
                    continue
                add(
                    line_of(m.start(), line_starts),
                    "tx-raw-alloc",
                    f"raw `{token}` inside a transaction body; use "
                    "tx.alloc<T>(...)/tx.dealloc(p) so the allocation "
                    "rolls back on abort and the free waits for quiescence",
                )

    # -- rule 2 ------------------------------------------------------------
    ATOMIC_ORDER_DIRS = ("src/tm/", "src/core/", "src/ds/", "src/kv/",
                         "src/reclaim/", "src/sched/")

    def _check_atomic_order(self, rel, code, line_starts, add):
        if not rel.startswith(self.ATOMIC_ORDER_DIRS):
            return
        for m in ATOMIC_CALL_RE.finditer(code):
            paren = code.index("(", m.end() - 1)
            args = code[paren:match_balanced(code, paren, "(", ")")]
            if "memory_order" not in args:
                add(
                    line_of(m.start(), line_starts),
                    "atomic-order",
                    f"`{m.group(1)}` without an explicit std::memory_order; "
                    "the TM core documents every ordering decision at the "
                    "call site (seq_cst-by-default hides the protocol)",
                )

    # -- rule 3 ------------------------------------------------------------
    def _check_sleep_sync(self, rel, code, line_starts, lines, add):
        for m in SLEEP_RE.finditer(code):
            token = (m.group(1) or "this_thread::yield").strip()
            add(
                line_of(m.start(), line_starts),
                "no-sleep-sync",
                f"`{token}` used for synchronization; on the single-core CI "
                "box timed sleeps serialize the schedule and starve the "
                "peer — use a condition_variable deadline wait or "
                "std::atomic wait/notify",
            )

    # -- rule 4 ------------------------------------------------------------
    def _check_spin_park(self, rel, code, line_starts, add):
        for m in re.finditer(r"(?<![\w_])while\s*\(", code):
            paren = code.index("(", m.end() - 1)
            cond_end = match_balanced(code, paren, "(", ")")
            cond = code[paren:cond_end]
            if ".load(" not in cond and "->load(" not in cond and \
               "load_acquire" not in cond:
                continue
            # Loop statement: either `{...}` or a single statement up to `;`.
            rest = code[cond_end:]
            stripped = rest.lstrip()
            if stripped.startswith("{"):
                brace = cond_end + (len(rest) - len(stripped))
                body = code[brace:match_balanced(code, brace, "{", "}")]
            else:
                semi = rest.find(";")
                body = rest[: semi + 1 if semi != -1 else len(rest)]
            if SPIN_PARK_TOKENS.search(body) or SPIN_PARK_TOKENS.search(cond):
                continue
            if "break" in body or "return" in body:
                continue  # bounded by control flow; not a blind spin
            # A loop that does real work (any call in its body) is a worker
            # loop polling a stop flag, not a busy-wait; only pure spins —
            # empty bodies or callless statements — are findings.
            if re.search(r"[\w_]\s*\(", body):
                continue
            add(
                line_of(m.start(), line_starts),
                "spin-park",
                "spin loop on an atomic with no park (Backoff::pause, "
                "sched::spin_wait, cpu_relax, or atomic wait): burns the "
                "single CPU and makes HOHTM_SCHED exploration trees "
                "infinite",
            )

    # -- rule 5 ------------------------------------------------------------
    def _check_gated_hooks(self, rel, code, lines, add):
        if rel in GATE_EXEMPT or not rel.startswith(("src/", "tests/", "bench/")):
            return
        for i, ln in enumerate(lines, start=1):
            m = GATE_TOKENS.search(ln)
            if m:
                add(
                    i,
                    "gated-hooks",
                    f"`{m.group(0)}` outside the hook headers; call the "
                    "always-compiled wrappers (util::trace_event, "
                    "sched::point, hohtm::tsan::acquire/release) so "
                    "default builds stay hook-free by construction",
                )

    # -- rules 6-8 ---------------------------------------------------------
    def _check_pragma_once(self, rel, raw_lines, add):
        for i, ln in enumerate(raw_lines, start=1):
            s = ln.strip()
            if not s or s.startswith("//") or s.startswith("/*") or \
               s.startswith("*"):
                continue
            if s != "#pragma once":
                add(i, "pragma-once",
                    "first non-comment line of a header must be "
                    "`#pragma once`")
            return
        add(1, "pragma-once", "header is missing `#pragma once`")

    def _check_using_namespace(self, rel, lines, add):
        for i, ln in enumerate(lines, start=1):
            if USING_NAMESPACE_RE.search(ln):
                add(i, "no-using-namespace",
                    "`using namespace` in a header leaks into every "
                    "includer; qualify names instead")

    def _check_padded_array(self, rel, code, line_starts, add):
        if not rel.startswith("src/"):
            return
        for m in KMAX_ARRAY_RE.finditer(code):
            stmt_start = code.rfind(";", 0, m.start())
            stmt_start = max(stmt_start, code.rfind("{", 0, m.start()),
                             code.rfind("}", 0, m.start())) + 1
            stmt = code[stmt_start:m.end()]
            if "CachePadded" in stmt or "constexpr" in stmt or \
               "kMaxThreads]" not in stmt.replace(" ", ""):
                continue
            add(
                line_of(m.start(), line_starts),
                "padded-shared-array",
                "per-thread array sized by kMaxThreads without "
                "util::CachePadded elements: neighbouring threads' slots "
                "share a cache line (paper §3.1 assumes they do not)",
            )

    def _check_padded_metric_slots(self, rel, code, line_starts, add):
        if not rel.startswith("src/"):
            return
        for m in KMAX_METRICS_ARRAY_RE.finditer(code):
            stmt_start = code.rfind(";", 0, m.start())
            stmt_start = max(stmt_start, code.rfind("{", 0, m.start()),
                             code.rfind("}", 0, m.start())) + 1
            stmt = code[stmt_start:m.end()]
            # Only *shared* slot storage is a finding: a static array of
            # raw atomics. Non-static members (the per-thread cell block
            # that lives inside a CachePadded<> wrapper, as in
            # util::MetricsRegistry::Slots), CachePadded declarations,
            # and constexpr tables are all fine.
            if "static" not in stmt or "atomic" not in stmt:
                continue
            if "CachePadded" in stmt or "constexpr" in stmt:
                continue
            add(
                line_of(m.start(), line_starts),
                "padded-metric-slots",
                "static metric-slot array of raw atomics: every thread's "
                "counter bumps false-share with its neighbours; keep the "
                "slots inside per-thread util::CachePadded<> blocks "
                "(util::MetricsRegistry is the reference layout)",
            )


# --------------------------------------------------------------------------

DEFAULT_DIRS = ("src", "tests", "bench", "examples")


def collect(root: str, paths: list[str]) -> list[str]:
    return hohtm_cpp.collect(root, paths, "hohtm-lint")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="hohtm-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint "
                    "(default: src tests bench examples)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULES.items():
            print(f"{rule}\n    {doc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [d for d in DEFAULT_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    linter = Linter(root)
    for f in collect(root, paths):
        linter.lint_file(f)

    linter.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps([f.as_json() for f in linter.findings], indent=2))
    else:
        for f in linter.findings:
            print(f.human())
        if linter.findings:
            print(f"hohtm-lint: {len(linter.findings)} finding(s)",
                  file=sys.stderr)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
