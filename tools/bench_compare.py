#!/usr/bin/env python3
"""Build and gate the perf-smoke artifact (BENCH_N.json).

Two subcommands:

  emit   — combine a kv_ycsb --smoke CSV capture and a metrics-plane
           snapshot (the $HOHTM_METRICS_FILE dump) into one artifact:

               python3 tools/bench_compare.py emit \\
                   build/kv_smoke.txt build/metrics.json -o BENCH_9.json

  check  — compare an artifact against the checked-in baseline
           (bench/baselines/BENCH_9.baseline.json by default). When the
           baseline does not exist yet, the artifact SEEDS it (first CI
           run on a branch that adds the gate) and the check passes:

               python3 tools/bench_compare.py check BENCH_9.json

Structural regressions hard-fail regardless of tolerance:

  * a (figure, panel, series, threads) row present in the baseline but
    missing from the artifact;
  * the attribution invariant broken in the artifact's metrics snapshot
    (delegated to tools/metrics_report.py `check`);
  * an empty contention heatmap or missing watchdog section when the
    baseline had them.

Throughput is gated loosely — CI machines are noisy and the smoke runs
are tiny — by HOHTM_BENCH_TOLERANCE (default 0.60: a row fails only when
it drops below 40% of the baseline's Mops). Set it to 0 to disable the
throughput gate entirely while keeping the structural checks.
"""

import argparse
import json
import os
import sys

import metrics_report

DEFAULT_BASELINE = os.path.join("bench", "baselines",
                                "BENCH_9.baseline.json")
SCHEMA = 1


def load_rows(csv_path):
    """kv_ycsb --smoke CSV -> [{figure,panel,series,threads,mops}]."""
    rows = []
    with open(csv_path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) < 6 or parts[0] == "timeline":
                continue
            try:
                rows.append({
                    "figure": parts[0],
                    "panel": parts[1],
                    "series": parts[2],
                    "threads": int(parts[3]),
                    "mops": float(parts[4]),
                })
            except ValueError:
                continue
    return rows


def emit(args):
    rows = load_rows(args.csv)
    if not rows:
        print(f"no bench rows in {args.csv}", file=sys.stderr)
        return 1
    metrics = metrics_report.load(args.metrics)
    artifact = {"schema": SCHEMA, "rows": rows, "metrics": metrics}
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}: {len(rows)} rows, "
          f"{len(metrics.get('counters', {}))} counters")
    return 0


def row_key(row):
    return (row["figure"], row["panel"], row["series"], row["threads"])


def structural_problems(artifact, baseline):
    problems = []
    current = {row_key(r): r for r in artifact.get("rows", [])}
    for row in baseline.get("rows", []):
        if row_key(row) not in current:
            problems.append(f"row missing from artifact: {row_key(row)}")
    problems.extend(metrics_report.check(artifact.get("metrics", {})))
    base_sections = baseline.get("metrics", {}).get("sections", {})
    cur_sections = artifact.get("metrics", {}).get("sections", {})
    if base_sections.get("kv_heatmap") and not cur_sections.get("kv_heatmap"):
        problems.append("contention heatmap is empty (baseline had cells)")
    if "watchdog" in base_sections and "watchdog" not in cur_sections:
        problems.append("watchdog section missing")
    return problems


def throughput_problems(artifact, baseline, tolerance):
    if tolerance <= 0:
        return []
    problems = []
    current = {row_key(r): r for r in artifact.get("rows", [])}
    for row in baseline.get("rows", []):
        match = current.get(row_key(row))
        if match is None:
            continue  # already a structural failure
        floor = row["mops"] * (1.0 - tolerance)
        if match["mops"] < floor:
            problems.append(
                f"{row_key(row)}: {match['mops']:.3f} Mops < floor "
                f"{floor:.3f} (baseline {row['mops']:.3f}, "
                f"tolerance {tolerance:.0%})")
    return problems


def check(args):
    with open(args.artifact) as handle:
        artifact = json.load(handle)
    # The artifact must be internally coherent even on the seeding run —
    # never enshrine a broken snapshot as the baseline.
    own_problems = metrics_report.check(artifact.get("metrics", {}))
    if own_problems:
        for p in own_problems:
            print(f"FAIL (artifact): {p}", file=sys.stderr)
        return 1
    if not os.path.exists(args.baseline):
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as handle:
            json.dump(artifact, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"seeded baseline {args.baseline} from {args.artifact} "
              f"({len(artifact.get('rows', []))} rows); commit it")
        return 0
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    tolerance = float(os.environ.get("HOHTM_BENCH_TOLERANCE", "0.60"))
    problems = structural_problems(artifact, baseline)
    problems += throughput_problems(artifact, baseline, tolerance)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"bench compare ok: {len(baseline.get('rows', []))} baseline "
          f"rows held (tolerance {tolerance:.0%})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    emit_cmd = sub.add_parser("emit", help="build the artifact")
    emit_cmd.add_argument("csv", help="kv_ycsb --smoke output")
    emit_cmd.add_argument("metrics", help="metrics snapshot JSON")
    emit_cmd.add_argument("-o", "--output", default="BENCH_9.json")
    emit_cmd.set_defaults(func=emit)
    check_cmd = sub.add_parser("check", help="gate against the baseline")
    check_cmd.add_argument("artifact", help="BENCH_N.json from `emit`")
    check_cmd.add_argument("--baseline", default=DEFAULT_BASELINE)
    check_cmd.set_defaults(func=check)
    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
