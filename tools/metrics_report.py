#!/usr/bin/env python3
"""Render (and check) a hohtm metrics-plane snapshot.

Usage:
    python3 tools/metrics_report.py metrics.json [--check] [--top N]

The input is the JSON document written by util::MetricsRegistry — either
the `$HOHTM_METRICS_FILE` atexit dump that every bench and serving
binary honours, or the body of kv::Service::stats_snapshot() (whose
wrapper object {"service":...,"metrics":{...}} is accepted too).

Renders the always-on counters and gauges, the causal abort attribution
("who aborted whom": per-aborter-slot and per-site loss buckets), the kv
contention heatmap, and the reclamation-stall watchdog state.

With --check, additionally verifies the attribution invariants the
metrics plane guarantees by construction and exits nonzero when any is
violated (scripts/check.sh --metrics and the CI perf-smoke job run
this):

  * losses_attributed + losses_unknown == tm.res_lost   (exactly)
  * sum(loss_by_aborter) == tm.res_lost                 (exactly)
  * sum(loss_by_site)    == tm.res_lost                 (exactly)
  * sum(aborted_by)      <= tm.aborts
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    if "metrics" in doc and "counters" not in doc:
        doc = doc["metrics"]  # unwrap a Service::stats_snapshot() document
    return doc


def emit_scalars(title, table):
    if not table:
        return
    print(f"\n## {title}")
    width = max(len(k) for k in table)
    for name in sorted(table):
        print(f"  {name.ljust(width)}  {table[name]}")


def emit_attribution(tm, top_n):
    attr = tm.get("attribution")
    if attr is None:
        return
    print("\n## causal abort attribution")
    print(f"  losses: {tm.get('res_lost', 0)} total = "
          f"{attr.get('losses_attributed', 0)} attributed + "
          f"{attr.get('losses_unknown', 0)} unknown")
    print(f"  conflict aborts attributed: {attr.get('aborts_attributed', 0)} "
          f"(+{attr.get('aborts_unknown', 0)} unknown) of "
          f"{tm.get('aborts', 0)} total")
    print(f"  fusion fallbacks: {attr.get('fusion_fb_attributed', 0)} "
          f"attributed, {attr.get('fusion_fb_unknown', 0)} unknown")
    sites = attr.get("loss_by_site", {})
    nonzero = {k: v for k, v in sites.items() if v}
    if nonzero:
        print("  losses by revoke site:")
        width = max(len(k) for k in nonzero)
        for name, count in sorted(nonzero.items(), key=lambda kv: -kv[1]):
            print(f"    {name.ljust(width)}  {count}")
    by_aborter = attr.get("loss_by_aborter", [])
    slots = [(slot, n) for slot, n in enumerate(by_aborter[:-1]) if n]
    if slots:
        slots.sort(key=lambda pair: -pair[1])
        print(f"  top aborter slots (of {len(slots)} active):")
        for slot, count in slots[:top_n]:
            print(f"    slot {slot:2d}  {count}")


def emit_heatmap(cells):
    if not cells:
        return
    print("\n## kv contention heatmap (hottest cells)")
    peak = max(c["weight"] for c in cells)
    for c in cells:
        bar = "#" * max(1, round(20 * c["weight"] / peak))
        print(f"  shard {c['shard']:2d} cell {c['cell']:5d}  "
              f"{str(c['weight']).rjust(8)}  {bar}")


def emit_net(counters):
    """Serving-tier counters (PR 10): pipeline batches through the ring,
    ops committed inside fused groups (with the per-batch fusion yield),
    and raw wire traffic — registered by net::Server as net.* counters."""
    batches = counters.get("net.batches", 0)
    fused = counters.get("net.fused_ops", 0)
    if not batches and not fused:
        return
    print("\n## serving tier")
    print(f"  batches: {batches}, fused ops: {fused} "
          f"({fused / max(batches, 1):.2f} per batch)")
    print(f"  wire: {counters.get('net.bytes_in', 0)} bytes in, "
          f"{counters.get('net.bytes_out', 0)} bytes out")


def emit_watchdog(wd):
    if not wd:
        return
    print("\n## reclamation-stall watchdog")
    state = ("STALLED" if wd.get("stalled_threads", 0) > 0 else "ok")
    print(f"  {state}: {wd.get('stalled_threads', 0)} stalled of "
          f"{wd.get('active_threads', 0)} active threads "
          f"(threshold {wd.get('threshold_ns', 0)} ns, "
          f"max stall {wd.get('max_stall_ns', 0)} ns, "
          f"{wd.get('stall_events', 0)} lifetime events)")


def check(doc):
    """Attribution-sum invariants; returns a list of violation strings."""
    problems = []
    tm = doc.get("sections", {}).get("tm")
    if tm is None:
        return ["no tm section in snapshot"]
    attr = tm.get("attribution", {})
    losses = tm.get("res_lost", 0)
    attributed = attr.get("losses_attributed", 0)
    unknown = attr.get("losses_unknown", 0)
    if attributed + unknown != losses:
        problems.append(f"losses_attributed({attributed}) + "
                        f"losses_unknown({unknown}) != res_lost({losses})")
    by_aborter = sum(attr.get("loss_by_aborter", []))
    if by_aborter != losses:
        problems.append(f"sum(loss_by_aborter)={by_aborter} != "
                        f"res_lost({losses})")
    by_site = sum(attr.get("loss_by_site", {}).values())
    if by_site != losses:
        problems.append(f"sum(loss_by_site)={by_site} != res_lost({losses})")
    aborted_by = sum(attr.get("aborted_by", []))
    if aborted_by > tm.get("aborts", 0):
        problems.append(f"sum(aborted_by)={aborted_by} > "
                        f"aborts({tm.get('aborts', 0)})")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="metrics snapshot JSON")
    parser.add_argument("--check", action="store_true",
                        help="verify attribution invariants; nonzero exit "
                             "on violation")
    parser.add_argument("--top", type=int, default=8,
                        help="aborter slots to list")
    args = parser.parse_args()
    doc = load(args.path)
    emit_scalars("counters", doc.get("counters", {}))
    emit_scalars("gauges", doc.get("gauges", {}))
    sections = doc.get("sections", {})
    if "tm" in sections:
        tm = sections["tm"]
        emit_scalars("tm", {k: v for k, v in tm.items()
                            if isinstance(v, int)})
        emit_attribution(tm, args.top)
    emit_net(doc.get("counters", {}))
    emit_heatmap(sections.get("kv_heatmap", []))
    emit_watchdog(sections.get("watchdog", {}))
    if args.check:
        problems = check(doc)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print("\nattribution invariants ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
