#!/usr/bin/env python3
"""Render latency histograms and reclamation-footprint timelines from
hohtm bench output — the companion to summarize_bench.py (which renders
the throughput tables).

Usage:
    python3 tools/trace_report.py bench_output.txt [--figure figN]
                                  [--trace trace.json] [--width 60]

Reads the same CSV the bench binaries print and renders:

  * one commit-latency table per figure/panel (p50/p95/p99/max in
    microseconds, per series and thread count) from the observability
    columns. The latency block is located by name from the bench's
    `# columns:` header line, so appended columns never shift it; for
    headerless captures the column count falls back to the historical
    layouts (20/24 pre-fusion, 22/26 fusion-era, 31 scan-era kv).
    All-zero unless the bench was built with HOHTM_TRACE=ON;

  * one footprint chart per figure/panel from the `timeline,...` rows
    (emitted under HOH_BENCH_FOOTPRINT_MS, or always by the
    mem_pressure example): each series becomes a block-character curve
    of live objects over time, so RR's flat line and the deferred
    schemes' backlog growth are visible in a terminal.

With --trace, also summarizes a Chrome/Perfetto trace-event JSON file
(written by a HOHTM_TRACE=ON binary when HOHTM_TRACE_FILE is set):
events per kind, per-thread counts, and the covered time span. The same
file loads directly in chrome://tracing or ui.perfetto.dev.
"""

import argparse
import collections
import json
import os
import sys

LATENCY_COLS = ("commit_p50_ns", "commit_p95_ns", "commit_p99_ns",
                "commit_max_ns")
SPARK = "▁▂▃▄▅▆▇█"


def load(path):
    """Returns (latency_rows, timelines).

    latency_rows: list of (figure, panel, series, threads, {col: ns})
    timelines: {(figure, panel): {(series, threads): [(t, live), ...]}}
    """
    latency_rows = []
    timelines = collections.defaultdict(lambda: collections.defaultdict(list))
    headers = {}  # column count -> column names, from `# columns:` lines
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("# columns:"):
                names = [n.strip() for n in line.split(":", 1)[1].split(",")
                         if n.strip()]
                if len(names) >= 6:
                    headers[len(names)] = names
                continue
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if parts[0] == "timeline" and len(parts) >= 7:
                _, figure, panel, series, threads, t, live = parts[:7]
                try:
                    timelines[(figure, panel)][(series, int(threads))].append(
                        (float(t), int(live)))
                except ValueError:
                    continue
                continue
            # Locate the latency block by name when the capture carried a
            # header for this width; otherwise fall back to the
            # historical count-based layouts (the fusion-era 22/26-column
            # rows carry two extra telemetry columns ahead of it, and the
            # 31-column scan-era kv rows and the serving-era 25/32/36
            # rows only append after live_peak; see summarize_bench.py
            # CAUSE_FIELDS_V2 / SCAN_ERA_KV_FIELDS / SERVING_ERA_*).
            names = headers.get(len(parts))
            if names is not None and LATENCY_COLS[0] in names:
                lat_start = names.index(LATENCY_COLS[0])
                peak_at = (names.index("live_peak")
                           if "live_peak" in names else lat_start + 4)
            elif len(parts) in (22, 26, 31, 25, 32, 36):
                lat_start, peak_at = 17, 21
            elif len(parts) in (20, 24):
                lat_start, peak_at = 15, 19
            else:
                continue
            if len(parts) <= max(lat_start + 3, peak_at):
                continue
            figure, panel, series, threads = parts[:4]
            try:
                threads = int(threads)
                values = dict(zip(LATENCY_COLS,
                                  (int(v) for v in
                                   parts[lat_start:lat_start + 4])))
                live_peak = int(parts[peak_at])
            except ValueError:
                continue
            values["live_peak"] = live_peak
            latency_rows.append((figure, panel, series, threads, values))
    return latency_rows, timelines


def us(ns):
    return ns / 1000.0


def emit_latency_tables(latency_rows, only_figure=None):
    panels = collections.defaultdict(list)
    for figure, panel, series, threads, values in latency_rows:
        if only_figure and figure != only_figure:
            continue
        panels[(figure, panel)].append((series, threads, values))
    for (figure, panel) in sorted(panels):
        rows = panels[(figure, panel)]
        if all(v["commit_max_ns"] == 0 for _, _, v in rows):
            print(f"\n## {figure} / {panel}  commit latency: all zero "
                  "(bench not built with HOHTM_TRACE=ON)")
            continue
        print(f"\n## {figure} / {panel}  commit latency (us)")
        header = ("series".ljust(14) + f"{'threads':>8}" +
                  f"{'p50':>10}{'p95':>10}{'p99':>10}{'max':>12}" +
                  f"{'live_peak':>11}")
        print(header)
        print("-" * len(header))
        for series, threads, v in rows:
            print(series.ljust(14) + f"{threads:>8}" +
                  f"{us(v['commit_p50_ns']):>10.2f}" +
                  f"{us(v['commit_p95_ns']):>10.2f}" +
                  f"{us(v['commit_p99_ns']):>10.2f}" +
                  f"{us(v['commit_max_ns']):>12.2f}" +
                  f"{v['live_peak']:>11}")


def sparkline(samples, width, lo, hi):
    """Resample `samples` ([(t, live)]) into `width` buckets by time and
    render one block character per bucket, scaled to [lo, hi]."""
    if not samples:
        return ""
    t0 = samples[0][0]
    t1 = samples[-1][0]
    span = (t1 - t0) or 1.0
    buckets = [[] for _ in range(width)]
    for t, live in samples:
        index = min(width - 1, int((t - t0) / span * width))
        buckets[index].append(live)
    scale = (hi - lo) or 1
    out = []
    last = samples[0][1]
    for bucket in buckets:
        value = max(bucket) if bucket else last
        if bucket:
            last = bucket[-1]
        level = (value - lo) / scale
        out.append(SPARK[max(0, min(len(SPARK) - 1,
                                    int(level * (len(SPARK) - 1) + 0.5)))])
    return "".join(out)


def emit_footprint_charts(timelines, only_figure=None, width=60):
    for (figure, panel) in sorted(timelines):
        if only_figure and figure != only_figure:
            continue
        series_map = timelines[(figure, panel)]
        all_live = [live for samples in series_map.values()
                    for _, live in samples]
        lo, hi = min(all_live), max(all_live)
        print(f"\n## {figure} / {panel}  footprint timeline "
              f"(live objects, scale {lo}..{hi})")
        label_width = max(len(f"{s}@{t}") for s, t in series_map) + 2
        for (series, threads) in sorted(series_map):
            samples = sorted(series_map[(series, threads)])
            peak = max(live for _, live in samples)
            final = samples[-1][1]
            label = f"{series}@{threads}".ljust(label_width)
            print(f"{label}{sparkline(samples, width, lo, hi)}  "
                  f"peak={peak} final={final} n={len(samples)}")


def emit_trace_summary(path):
    with open(path) as handle:
        events = json.load(handle)
    if not events:
        print("\n## trace: empty")
        return
    by_name = collections.Counter(e["name"] for e in events)
    by_tid = collections.Counter(e["tid"] for e in events)
    ts = [e["ts"] for e in events]
    print(f"\n## trace: {len(events)} events over "
          f"{(max(ts) - min(ts)) / 1000.0:.3f} ms "
          f"({len(by_tid)} threads)")
    width = max(len(n) for n in by_name)
    for name, count in by_name.most_common():
        print(f"  {name.ljust(width)}  {count}")
    emit_kv_trace_summary(events)
    emit_fusion_trace_summary(events)


KV_OPCODES = ("get", "put", "del", "scan")


def emit_kv_trace_summary(events):
    """KV-specific digest of a trace: completed ops by opcode (from the
    kv_op_done args), migration-window and resize activity, and the
    range-scan window/resume traffic. Silent when the trace has no kv
    events (non-KV benches)."""
    ops = collections.Counter()
    started = 0
    migrations = 0
    swaps = 0
    frees = 0
    freed_buckets = 0
    scan_windows = 0
    scan_entries = 0
    scan_resumes = 0
    for e in events:
        name = e.get("name", "")
        arg = e.get("args", {}).get("v", 0)
        if name == "kv_op_start":
            started += 1
        elif name == "kv_op_done":
            code = int(arg)
            label = (KV_OPCODES[code] if code < len(KV_OPCODES)
                     else f"op{code}")
            ops[label] += 1
        elif name == "kv_migrate":
            migrations += 1
        elif name == "kv_table_swap":
            swaps += 1
        elif name == "kv_table_free":
            frees += 1
            freed_buckets += int(arg)
        elif name == "kv_scan_window":
            scan_windows += 1
            scan_entries += int(arg)
        elif name == "kv_scan_resume":
            scan_resumes += 1
    if not (started or ops or migrations or swaps or frees or scan_windows
            or scan_resumes):
        return
    print("\n## kv activity")
    done = sum(ops.values())
    breakdown = " ".join(f"{label}={ops[label]}" for label in KV_OPCODES
                         if ops[label])
    print(f"  ops: {done} completed of {started} started  ({breakdown})")
    print(f"  resize: {swaps} table swaps, {migrations} bucket migrations, "
          f"{frees} old tables freed ({freed_buckets} buckets)")
    if frees < swaps:
        print(f"  note: {swaps - frees} swap(s) still mid-migration when "
              "the trace ended")
    if scan_windows or scan_resumes:
        print(f"  scans: {scan_windows} window transactions delivered "
              f"{scan_entries} entries; {scan_resumes} cursor resumes "
              "after a revoked handover")


def emit_fusion_trace_summary(events):
    """Window-fusion digest: committed fused traversals (with the total
    boundaries they elided, from the fused_window args) versus fallbacks
    to the small-window protocol. Silent when the trace predates fusion
    or no traversal fused."""
    fused_txs = 0
    elided = 0
    fallbacks = 0
    for e in events:
        name = e.get("name", "")
        if name == "fused_window":
            fused_txs += 1
            elided += int(e.get("args", {}).get("v", 0))
        elif name == "fusion_fallback":
            fallbacks += 1
    if not (fused_txs or fallbacks):
        return
    print("\n## window fusion")
    print(f"  {fused_txs} fused commits elided {elided} window "
          f"boundaries; {fallbacks} fallbacks to the small-window "
          "protocol")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="bench output (CSV rows on stdout)")
    parser.add_argument("--figure", default=None)
    parser.add_argument("--trace", default=None,
                        help="Chrome trace-event JSON from HOHTM_TRACE_FILE")
    parser.add_argument("--width", type=int, default=60,
                        help="footprint chart width in characters")
    args = parser.parse_args()
    latency_rows, timelines = load(args.path)
    if not latency_rows and not timelines and not args.trace:
        print("no observability rows found (need the 20/22-column schema "
              "or timeline rows)", file=sys.stderr)
        return 1
    emit_latency_tables(latency_rows, args.figure)
    emit_footprint_charts(timelines, args.figure, args.width)
    if args.trace:
        emit_trace_summary(args.trace)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # downstream closed early (e.g. | head)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
