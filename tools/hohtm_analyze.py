#!/usr/bin/env python3
"""hohtm-analyze: path-sensitive transactional-effect analyzer.

Where tools/hohtm_lint.py checks tokens, this tool checks *paths*: it
parses every function and lambda body into a statement tree (branches,
loops, switches, early returns, throw edges), then runs a forward
abstract interpretation over the transactional effects the paper's
precise-reclamation argument depends on.  The abstract state per path is

    fresh    : tx.alloc results not yet published/consumed (var -> line)
    revoked  : pointers revoked from the reservation on *every* path in
    boundary : the window-boundary protocol position
               ('none' | 'released' | 'reserved' | 'mixed')

Joins take the union of `fresh` (may-be-leaked), the intersection of
`revoked` (must-be-revoked), and collapse disagreeing boundary states to
'mixed' (no findings are derived from 'mixed').  `throw` is an abort
edge: the TM rolls the transaction back (LifecycleLog undoes tx.alloc,
deferred deallocs are dropped), so abort exits are never checked.
Commit exits -- `return` and fall-through -- are.

Rules (suppress with `// hohtm-analyze: allow(<rule>)` on the finding's
line or the line above):

  alloc-escape            a tx.alloc result must reach a publish/link,
                          an escape, or tx.dealloc on every commit path
  unlink-without-revoke   tx.dealloc of a non-fresh pointer requires a
                          revoke on every path leading to the dealloc --
                          the precise-reclamation invariant itself
  boundary-pairing        reserve while already reserved (a leaked
                          window slot) and resume after release (using
                          a boundary this transaction already settled)
  atomic-protocol         cross-file: a field stored with release (or
                          stronger) semantics anywhere must not be
                          loaded relaxed elsewhere
  gated-hook-reachability sched/trace/tsan hook internals may only be
                          reached under their compile gate (#ifdef or
                          `if constexpr (k*Build)`)

Stdlib-only by design; shares the position-preserving lexer with the
linter via tools/hohtm_cpp.py.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from hohtm_cpp import (  # noqa: E402
    allow_re,
    allowed,
    collect,
    lex,
    line_of,
    line_starts_of,
    match_balanced,
)

TOOL = "hohtm-analyze"
ALLOW_RE = allow_re(TOOL)

RULES = {
    "alloc-escape": (
        "every tx.alloc/tx.alloc_flex result must be published (written "
        "into the structure / passed on / returned) or tx.dealloc'd on "
        "every commit path; a branch that returns while the node is "
        "still private leaks it, because commit makes the allocation "
        "permanent"
    ),
    "unlink-without-revoke": (
        "tx.dealloc of a pointer that this transaction did not allocate "
        "requires reservation .revoke(tx, p) on every path reaching the "
        "dealloc: remove = unlink + revoke + dealloc in one transaction "
        "is the paper's precise-reclamation discipline"
    ),
    "boundary-pairing": (
        "window-boundary protocol violations: a reserve while the "
        "boundary is already reserved leaks the previous slot, and a "
        "resume/get after release uses a boundary this transaction "
        "already settled"
    ),
    "atomic-protocol": (
        "per-field memory-order consistency across files: a field "
        "stored with release/acq_rel/seq_cst semantics anywhere must "
        "not be loaded memory_order_relaxed elsewhere, or the intended "
        "happens-before edge silently vanishes"
    ),
    "gated-hook-reachability": (
        "sched/trace/tsan hook internals (detail::point_impl, "
        "detail::managed_impl, detail::spin_wait_impl, "
        "detail::g_mutation, __tsan_*) must be unreachable unless the "
        "matching compile gate is active: inside #ifdef "
        "HOHTM_*_ENABLED or an `if constexpr (k*Build)` branch"
    ),
}

# Files allowed to reference hook internals directly (they define them);
# mirrors tools/hohtm_lint.py GATE_EXEMPT.
GATE_EXEMPT = (
    "src/util/trace.hpp",
    "src/util/trace.cpp",
    "src/sched/schedpoint.hpp",
    "src/sched/scheduler.hpp",
    "src/sched/scheduler.cpp",
    "src/util/tsan.hpp",
)

# Gated symbol -> (preprocessor macro, if-constexpr gate constant).
GATED_SYMBOLS = [
    (re.compile(r"\bdetail\s*::\s*point_impl\b"),
     "HOHTM_SCHED_ENABLED", "kSchedBuild"),
    (re.compile(r"\bdetail\s*::\s*spin_wait_impl\b"),
     "HOHTM_SCHED_ENABLED", "kSchedBuild"),
    (re.compile(r"\bdetail\s*::\s*managed_impl\b"),
     "HOHTM_SCHED_ENABLED", "kSchedBuild"),
    (re.compile(r"\bdetail\s*::\s*g_mutation\b"),
     "HOHTM_SCHED_ENABLED", "kSchedBuild"),
    (re.compile(r"\b__tsan_\w+"),
     "HOHTM_TSAN_ENABLED", "kTsanBuild"),
]

GATE_CONSTANTS = ("kSchedBuild", "kTraceBuild", "kTsanBuild")

DEFAULT_PATHS = ["src"]


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str


# --------------------------------------------------------------------------
# Statement tree.
# --------------------------------------------------------------------------

@dataclass
class Simple:
    text: str
    start: int  # absolute offset into the file's blanked code


@dataclass
class Block:
    stmts: list


@dataclass
class If:
    cond: Simple
    then: object
    els: object  # may be None
    constexpr: bool


@dataclass
class Loop:
    cond: Simple  # may have empty text (for(;;))
    body: object


@dataclass
class Switch:
    cond: Simple
    branches: list  # list[Block]
    has_default: bool


@dataclass
class Return:
    expr: Simple


@dataclass
class Throw:
    start: int


@dataclass
class Jump:
    kind: str  # 'break' | 'continue'


_WS_RE = re.compile(r"\s+")
_STMT_KW_RE = re.compile(
    r"(if|while|for|do|switch|return|throw|break|continue|else|try|catch)\b")
_CASE_LABEL_RE = re.compile(r"\bcase\b(?:[^:;{}]|::)*:|\bdefault\s*:")


def _skip_ws(code: str, i: int, end: int) -> int:
    while i < end and code[i].isspace():
        i += 1
    return i


def parse_block(code: str, i: int, end: int) -> list:
    stmts = []
    while True:
        i = _skip_ws(code, i, end)
        if i >= end:
            break
        stmt, j = parse_stmt(code, i, end)
        if stmt is not None:
            stmts.append(stmt)
        if j <= i:  # parser must always make progress
            j = i + 1
        i = j
    return stmts


def _parse_paren(code: str, i: int, end: int) -> tuple[Simple, int]:
    """Parse a parenthesized condition/header starting at or after i."""
    i = _skip_ws(code, i, end)
    if i >= end or code[i] != "(":
        return Simple("", i), i
    j = min(match_balanced(code, i, "(", ")"), end)
    return Simple(code[i + 1:j - 1], i + 1), j


def _consume_simple(code: str, i: int, end: int) -> int:
    """Index just past the `;` ending the simple statement at i (or the
    enclosing-block `}` / end if none)."""
    depth = 0
    j = i
    while j < end:
        c = code[j]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            if depth == 0:
                return j  # stray closer: end of enclosing block
            depth -= 1
        elif c == ";" and depth == 0:
            return j + 1
        j += 1
    return end


def parse_stmt(code: str, i: int, end: int):
    c = code[i]
    if c == ";":
        return None, i + 1
    if c == "{":
        j = min(match_balanced(code, i, "{", "}"), end)
        return Block(parse_block(code, i + 1, max(i + 1, j - 1))), j
    if c == "#":  # preprocessor directive inside a body: skip the line(s)
        j = i
        while j < end:
            nl = code.find("\n", j)
            if nl == -1:
                return None, end
            if code[nl - 1] == "\\":
                j = nl + 1
                continue
            return None, nl + 1
        return None, end
    m = _STMT_KW_RE.match(code, i)
    kw = m.group(1) if m else None
    if kw == "if":
        j = _skip_ws(code, m.end(), end)
        constexpr = code.startswith("constexpr", j)
        if constexpr:
            j += len("constexpr")
        cond, j = _parse_paren(code, j, end)
        j = _skip_ws(code, j, end)
        then, j = parse_stmt(code, j, end)
        k = _skip_ws(code, j, end)
        els = None
        if code.startswith("else", k) and not (
                k + 4 < end and (code[k + 4].isalnum() or code[k + 4] == "_")):
            k = _skip_ws(code, k + 4, end)
            els, j = parse_stmt(code, k, end)
        return If(cond, then, els, constexpr), j
    if kw in ("while", "for"):
        cond, j = _parse_paren(code, m.end(), end)
        j = _skip_ws(code, j, end)
        body, j = parse_stmt(code, j, end)
        return Loop(cond, body), j
    if kw == "do":
        j = _skip_ws(code, m.end(), end)
        body, j = parse_stmt(code, j, end)
        j = _skip_ws(code, j, end)
        if code.startswith("while", j):
            cond, j = _parse_paren(code, j + 5, end)
            j = _skip_ws(code, j, end)
            if j < end and code[j] == ";":
                j += 1
            return Loop(cond, body), j
        return Loop(Simple("", i), body), j
    if kw == "switch":
        cond, j = _parse_paren(code, m.end(), end)
        j = _skip_ws(code, j, end)
        if j >= end or code[j] != "{":
            body, j = parse_stmt(code, j, end)
            return Switch(cond, [Block([body] if body else [])], False), j
        close = min(match_balanced(code, j, "{", "}"), end)
        inner_lo, inner_hi = j + 1, max(j + 1, close - 1)
        # Split the switch body at top-level case/default labels.
        cuts, has_default = [], False
        depth = 0
        k = inner_lo
        while k < inner_hi:
            ch = code[k]
            if ch in "({[":
                depth += 1
            elif ch in ")}]":
                depth -= 1
            elif depth == 0 and (ch == "c" or ch == "d"):
                lm = _CASE_LABEL_RE.match(code, k, inner_hi)
                if lm:
                    cuts.append((k, lm.end()))
                    has_default = has_default or code.startswith("default", k)
                    k = lm.end()
                    continue
            k += 1
        branches = []
        for idx, (lo, label_end) in enumerate(cuts):
            seg_end = cuts[idx + 1][0] if idx + 1 < len(cuts) else inner_hi
            branches.append(Block(parse_block(code, label_end, seg_end)))
        if not branches:
            branches = [Block(parse_block(code, inner_lo, inner_hi))]
        return Switch(cond, branches, has_default), close
    if kw == "return":
        j = _consume_simple(code, m.end(), end)
        stop = j - 1 if j > m.end() and code[j - 1] == ";" else j
        return Return(Simple(code[m.end():stop], m.end())), j
    if kw == "throw":
        j = _consume_simple(code, m.end(), end)
        return Throw(i), j
    if kw in ("break", "continue"):
        j = _consume_simple(code, m.end(), end)
        return Jump(kw), j
    if kw == "try":
        j = _skip_ws(code, m.end(), end)
        body, j = parse_stmt(code, j, end)
        return body, j
    if kw == "catch":
        cond, j = _parse_paren(code, m.end(), end)
        j = _skip_ws(code, j, end)
        body, j = parse_stmt(code, j, end)
        # A handler runs on some paths only: model as a one-armed branch.
        return If(Simple("", i), body, None, False), j
    if kw == "else":  # stray else (shouldn't happen): treat as block
        j = _skip_ws(code, m.end(), end)
        return parse_stmt(code, j, end)
    j = _consume_simple(code, i, end)
    stop = j - 1 if j > i and code[j - 1] == ";" else j
    return Simple(code[i:stop], i), j


# --------------------------------------------------------------------------
# Unit discovery: function and lambda bodies.
# --------------------------------------------------------------------------

_FN_TAIL_RE = re.compile(
    r"\)\s*(?:(?:const|noexcept|override|final|mutable|&&|&)\s*)*"
    r"(?:->\s*[\w:&*<>,\s]*?)?\s*$")
_CONTROL_KW = ("if", "for", "while", "switch", "catch", "return",
               "constexpr", "sizeof", "alignof", "decltype", "assert",
               "requires")


def _ident_before(code: str, i: int) -> str:
    """The identifier ending at (exclusive) position i, skipping spaces."""
    while i > 0 and code[i - 1].isspace():
        i -= 1
    j = i
    while j > 0 and (code[j - 1].isalnum() or code[j - 1] == "_"):
        j -= 1
    return code[j:i]


def _matching_open(code: str, close_idx: int, open_ch: str,
                   close_ch: str) -> int:
    depth = 0
    for i in range(close_idx, -1, -1):
        if code[i] == close_ch:
            depth += 1
        elif code[i] == open_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def find_units(code: str) -> list[tuple[int, int]]:
    """Spans (open_brace, end) of every function and lambda body."""
    units = []
    i = code.find("{")
    while i != -1:
        k = i - 1
        while k >= 0 and code[k].isspace():
            k -= 1
        if k >= 0 and code[k] == "]":
            units.append((i, match_balanced(code, i, "{", "}")))
        else:
            tail = code[max(0, i - 400):i]
            m = _FN_TAIL_RE.search(tail)
            if m:
                close = max(0, i - 400) + m.start()
                popen = _matching_open(code, close, "(", ")")
                if popen > 0:
                    before = _ident_before(code, popen)
                    kb = popen - 1
                    while kb >= 0 and code[kb].isspace():
                        kb -= 1
                    if kb >= 0 and code[kb] == "]":
                        units.append((i, match_balanced(code, i, "{", "}")))
                    elif before and before not in _CONTROL_KW:
                        units.append((i, match_balanced(code, i, "{", "}")))
        i = code.find("{", i + 1)
    return units


def excise_nested(code: str, span: tuple[int, int],
                  units: list[tuple[int, int]]) -> str:
    """The body text of `span` with any nested unit bodies blanked (their
    newlines kept, so offsets stay file-absolute)."""
    lo, hi = span[0] + 1, span[1] - 1
    body = list(code[lo:hi])
    for u_lo, u_hi in units:
        if u_lo > span[0] and u_hi <= span[1] and (u_lo, u_hi) != span:
            for k in range(max(u_lo + 1, lo), min(u_hi - 1, hi)):
                if body[k - lo] != "\n":
                    body[k - lo] = " "
    return "".join(body)


# --------------------------------------------------------------------------
# Abstract state.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class State:
    fresh: tuple       # sorted tuple of (var, alloc_line)
    revoked: frozenset
    boundary: str      # 'none' | 'released' | 'reserved' | 'mixed'

    @staticmethod
    def initial() -> "State":
        return State((), frozenset(), "none")

    def fresh_map(self) -> dict:
        return dict(self.fresh)


def _mk_state(fresh: dict, revoked: frozenset, boundary: str) -> State:
    return State(tuple(sorted(fresh.items())), revoked, boundary)


def join_states(states: list[State]) -> State:
    if len(states) == 1:
        return states[0]
    fresh: dict = {}
    for s in states:
        for v, line in s.fresh:
            fresh[v] = min(line, fresh.get(v, line))
    revoked = frozenset.intersection(*[s.revoked for s in states])
    bounds = {s.boundary for s in states}
    boundary = bounds.pop() if len(bounds) == 1 else "mixed"
    return _mk_state(fresh, revoked, boundary)


# --------------------------------------------------------------------------
# Effect extraction from a simple statement / condition.
# --------------------------------------------------------------------------

_ALLOC_RE = re.compile(
    r"\b(\w+)\s*=\s*tx\s*\.\s*(?:template\s+)?alloc(?:_flex)?\s*<")
_DEALLOC_RE = re.compile(r"\btx\s*\.\s*dealloc\s*\(")
_REVOKE_RE = re.compile(r"(?:\.|->)\s*revoke\s*\(")
_RELEASE_RE = re.compile(r"(?:\.|->)\s*(release_all|release)\s*\(")
_RESERVE_RE = re.compile(r"(?:\.|->)\s*reserve\s*\(")
_PARK_RE = re.compile(
    r"(?:(?:\.|->)\s*park(?:_anchor|_cursor)?|\bpark_anchor"
    r"|\bpark_scan_cursor)\s*\(")
_RESUME_RE = re.compile(
    r"(?:(?:\.|->)\s*(?:resume(?:_anchor|_cursor)?|get)|\bresume_anchor"
    r"|\bresume_scan_cursor)\s*\(")
_ASSIGN_RE = re.compile(r"\b(\w+)\s*=(?![=<>])")
_ROOT_VAR_RE = re.compile(r"[\s*&(]*([A-Za-z_]\w*)")


def split_args(s: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for ch in s:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return parts


def _root_var(arg: str) -> str | None:
    m = _ROOT_VAR_RE.match(arg)
    return m.group(1) if m else None


def _args_at(text: str, call_end: int) -> tuple[str, int, int]:
    """(args_text, lo, hi) for the call whose `(` is at call_end - 1."""
    popen = call_end - 1
    pclose = match_balanced(text, popen, "(", ")")
    return text[popen + 1:pclose - 1], popen + 1, pclose - 1


class UnitAnalysis:
    """Forward dataflow over one function/lambda body."""

    MAX_LOOP_ITER = 6

    def __init__(self, path: str, body: str, base: int,
                 line_starts: list[int], pp_gates: dict,
                 gate_exempt: bool, sink):
        self.path = path
        self.body = body          # file-absolute offsets: body[i] is
        self.base = base          # code[base + i]
        self.line_starts = line_starts
        self.pp_gates = pp_gates  # line -> frozenset of active macros
        self.gate_exempt = gate_exempt
        self.sink = sink          # set of (line, rule, message)

    def line(self, body_off: int) -> int:
        return line_of(self.base + body_off, self.line_starts)

    def report(self, body_off: int, rule: str, message: str) -> None:
        self.sink.add((self.line(body_off), rule, message))

    def run(self) -> list[tuple[str, State]]:
        stmts = parse_block(self.body, 0, len(self.body))
        exits = self.exec_block(stmts, State.initial(), frozenset())
        for kind, st in exits:
            if kind in ("fall", "return", "break", "continue"):
                for var, line in st.fresh:
                    self.sink.add((
                        line, "alloc-escape",
                        f"tx.alloc result '{var}' neither published nor "
                        f"deallocated on some commit path"))
        return exits

    # -- statement execution ------------------------------------------------

    def exec_block(self, stmts: list, st: State,
                   gates: frozenset) -> list[tuple[str, State]]:
        exits: list[tuple[str, State]] = []
        falls = [st]
        for s in stmts:
            if not falls:
                break
            cur = join_states(falls)
            falls = []
            for kind, s2 in self.exec_stmt(s, cur, gates):
                if kind == "fall":
                    falls.append(s2)
                else:
                    exits.append((kind, s2))
        if falls:
            exits.append(("fall", join_states(falls)))
        return exits

    def _exec_one(self, stmt, st: State,
                  gates: frozenset) -> list[tuple[str, State]]:
        if stmt is None:
            return [("fall", st)]
        if isinstance(stmt, Block):
            return self.exec_block(stmt.stmts, st, gates)
        return self.exec_stmt(stmt, st, gates)

    def exec_stmt(self, stmt, st: State,
                  gates: frozenset) -> list[tuple[str, State]]:
        if stmt is None:
            return [("fall", st)]
        if isinstance(stmt, Simple):
            return [("fall", self.exec_simple(stmt, st, gates, False))]
        if isinstance(stmt, Block):
            return self.exec_block(stmt.stmts, st, gates)
        if isinstance(stmt, Return):
            st2 = self.exec_simple(stmt.expr, st, gates, False)
            return [("return", st2)]
        if isinstance(stmt, Throw):
            return [("throw", st)]
        if isinstance(stmt, Jump):
            return [(stmt.kind, st)]
        if isinstance(stmt, If):
            st2 = self.exec_simple(stmt.cond, st, gates, True)
            g_then, g_else = gates, gates
            if stmt.constexpr:
                for const in GATE_CONSTANTS:
                    if re.search(r"!\s*" + const + r"\b", stmt.cond.text):
                        g_else = g_else | {const}
                    elif re.search(r"\b" + const + r"\b", stmt.cond.text):
                        g_then = g_then | {const}
            exits = self._exec_one(stmt.then, st2, g_then)
            if stmt.els is not None:
                exits = exits + self._exec_one(stmt.els, st2, g_else)
            else:
                exits = exits + [("fall", st2)]
            return exits
        if isinstance(stmt, Loop):
            return self.exec_loop(stmt, st, gates)
        if isinstance(stmt, Switch):
            st2 = self.exec_simple(stmt.cond, st, gates, True)
            exits: list[tuple[str, State]] = []
            for br in stmt.branches:
                for kind, s2 in self._exec_one(br, st2, gates):
                    if kind == "break":
                        kind = "fall"
                    exits.append((kind, s2))
            if not stmt.has_default:
                exits.append(("fall", st2))
            return exits
        return [("fall", st)]

    def exec_loop(self, stmt: Loop, st: State,
                  gates: frozenset) -> list[tuple[str, State]]:
        head = st
        exits: set[tuple[str, State]] = set()
        back: list[State] = []
        for _ in range(self.MAX_LOOP_ITER):
            st_c = self.exec_simple(stmt.cond, head, gates, True)
            back = []
            for kind, s2 in self._exec_one(stmt.body, st_c, gates):
                if kind in ("fall", "continue"):
                    back.append(s2)
                elif kind == "break":
                    exits.add(("fall", s2))
                else:
                    exits.add((kind, s2))
            new_head = join_states([head] + back) if back else head
            if new_head == head:
                break
            head = new_head
        # Normal exit: condition evaluates false at the head.  For escape
        # tracking, assume the body ran at least once: a publish inside
        # the loop (skiplist tower linking) clears freshness at the exit,
        # while revoked/boundary facts keep the conservative head join.
        normal = self.exec_simple(stmt.cond, head, gates, True)
        if back:
            normal = State(join_states(back).fresh, normal.revoked,
                           normal.boundary)
        exits.add(("fall", normal))
        return list(exits)

    # -- effect interpretation ----------------------------------------------

    def exec_simple(self, stmt: Simple, st: State, gates: frozenset,
                    is_cond: bool) -> State:
        text = stmt.text
        if not text:
            return st
        base_off = stmt.start
        fresh = st.fresh_map()
        revoked = set(st.revoked)
        boundary = st.boundary
        since: dict[str, int] = {}     # var -> offset it became fresh here
        consumed: list[tuple[int, int]] = []  # spans that are not escapes

        events: list[tuple[int, int, object]] = []  # (offset, prio, action)
        for m in _ASSIGN_RE.finditer(text):
            events.append((m.start(1), 0, ("assign", m.group(1))))
        for m in _ALLOC_RE.finditer(text):
            events.append((m.start(1), 1, ("alloc", m.group(1))))
        for m in _DEALLOC_RE.finditer(text):
            args, lo, hi = _args_at(text, m.end())
            events.append((m.start(), 1, ("dealloc", _root_var(args))))
            consumed.append((lo, hi))
        for m in _REVOKE_RE.finditer(text):
            args, lo, hi = _args_at(text, m.end())
            parts = split_args(args)
            target = parts[1] if len(parts) > 1 and \
                parts[0].strip() == "tx" else parts[0] if parts else ""
            events.append((m.start(), 1, ("revoke", _root_var(target))))
            consumed.append((lo, hi))
        for m in _RELEASE_RE.finditer(text):
            args, _, _ = _args_at(text, m.end())
            parts = [p.strip() for p in split_args(args)]
            if not parts or _root_var(parts[0]) != "tx":
                continue  # std::vector::reserve-style false friends
            if m.group(1) == "release" and len(parts) > 1:
                continue  # targeted multi-slot release: protocol-neutral
            events.append((m.start(), 1, ("settle", None)))
        for m in _RESERVE_RE.finditer(text):
            args, _, _ = _args_at(text, m.end())
            parts = [p.strip() for p in split_args(args)]
            if not parts or _root_var(parts[0]) != "tx":
                continue
            events.append((m.start(), 1, ("reserve", None)))
        for m in _PARK_RE.finditer(text):
            args, _, _ = _args_at(text, m.end())
            parts = [p.strip() for p in split_args(args)]
            if not parts or _root_var(parts[0]) != "tx":
                continue
            events.append((m.start(), 1, ("park", None)))
        for m in _RESUME_RE.finditer(text):
            args, _, _ = _args_at(text, m.end())
            parts = [p.strip() for p in split_args(args)]
            if not parts or _root_var(parts[0]) != "tx":
                continue
            events.append((m.start(), 1, ("resume", None)))
        if not self.gate_exempt:
            for pat, macro, const in GATED_SYMBOLS:
                for m in pat.finditer(text):
                    events.append(
                        (m.start(), 1, ("gated", (macro, const, m.group(0)))))

        for off, _, (op, arg) in sorted(events, key=lambda e: (e[0], e[1])):
            abs_off = base_off + off
            if op == "assign":
                # Reassignment kills both freshness and revoked facts for
                # the old value the name no longer denotes.
                fresh.pop(arg, None)
                revoked.discard(arg)
            elif op == "alloc":
                fresh[arg] = self.line(abs_off)
                since[arg] = off
            elif op == "dealloc":
                if arg in fresh:
                    del fresh[arg]  # alloc'd and freed in-tx: fine
                elif arg is not None and arg not in revoked:
                    self.report(
                        abs_off, "unlink-without-revoke",
                        f"tx.dealloc('{arg}') without a reservation revoke "
                        f"on some path: unlinked nodes must be revoked "
                        f"before they are freed")
                else:
                    revoked.discard(arg)
            elif op == "revoke":
                if arg is not None:
                    revoked.add(arg)
            elif op == "settle":
                boundary = "released"
            elif op == "reserve":
                if boundary == "reserved":
                    self.report(
                        abs_off, "boundary-pairing",
                        "reserve while the boundary is already reserved "
                        "(missing release: the previous window slot leaks)")
                boundary = "reserved"
            elif op == "park":
                boundary = "reserved"  # park = release + reserve atomically
            elif op == "resume":
                if boundary == "released":
                    self.report(
                        abs_off, "boundary-pairing",
                        "resume/get after release: this transaction "
                        "already settled the boundary it is resuming")
            elif op == "gated":
                macro, const, sym = arg
                line = self.line(abs_off)
                if macro not in self.pp_gates.get(line, frozenset()) and \
                        const not in gates:
                    self.report(
                        abs_off, "gated-hook-reachability",
                        f"'{sym}' reachable without its compile gate "
                        f"(#ifdef {macro} or if constexpr ({const}))")

        if not is_cond:
            for var in [v for v in fresh]:
                for m in re.finditer(r"\b%s\b" % re.escape(var), text):
                    off = m.start()
                    if off <= since.get(var, -1):
                        continue
                    if any(lo <= off < hi for lo, hi in consumed):
                        continue
                    del fresh[var]  # published / escaped
                    break
        return _mk_state(fresh, frozenset(revoked), boundary)


# --------------------------------------------------------------------------
# Preprocessor gate regions.
# --------------------------------------------------------------------------

_PP_RE = re.compile(r"^\s*#\s*(ifdef|ifndef|if|elif|else|endif)\b(.*)$")
_PP_MACRO_RE = re.compile(r"\bHOHTM_\w+_ENABLED\b")


def preprocessor_gates(text: str) -> dict[int, frozenset]:
    """Map 1-based line -> frozenset of HOHTM_*_ENABLED macros whose
    #if/#ifdef region encloses that line."""
    gates: dict[int, frozenset] = {}
    stack: list[tuple[str, frozenset]] = []  # (directive, macros)
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = _PP_RE.match(line)
        if m:
            kind, rest = m.group(1), m.group(2)
            macros = frozenset(_PP_MACRO_RE.findall(rest))
            if kind in ("ifdef", "if"):
                stack.append((kind, macros))
            elif kind == "ifndef":
                stack.append((kind, frozenset()))
            elif kind == "elif" and stack:
                stack[-1] = ("if", macros)
            elif kind == "else" and stack:
                prev_kind, _ = stack[-1]
                if prev_kind == "ifndef":
                    # #ifndef X ... #else: the else-branch has X defined
                    # only if the guard names a gate macro.
                    stack[-1] = ("if", frozenset())
                else:
                    stack[-1] = ("if", frozenset())
            elif kind == "endif" and stack:
                stack.pop()
        active = frozenset().union(*[s[1] for s in stack]) if stack \
            else frozenset()
        gates[lineno] = active
    return gates


# --------------------------------------------------------------------------
# Cross-file atomic-protocol rule.
# --------------------------------------------------------------------------

_ATOMIC_WRITE_RE = re.compile(
    r"(\w+)\s*(?:\.|->)\s*(store|exchange|fetch_add|fetch_sub|fetch_or"
    r"|fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(")
_ATOMIC_LOAD_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*load\s*\(")
_RELEASE_ORDERS = ("memory_order_release", "memory_order_acq_rel",
                   "memory_order_seq_cst")


def atomic_release_sites(rel: str, code: str,
                         line_starts: list[int]) -> dict[str, str]:
    """field -> '<file>:<line>' of one release-or-stronger write."""
    sites: dict[str, str] = {}
    for m in _ATOMIC_WRITE_RE.finditer(code):
        args, _, _ = _args_at(code, m.end())
        if any(order in args for order in _RELEASE_ORDERS):
            sites.setdefault(
                m.group(1), f"{rel}:{line_of(m.start(), line_starts)}")
    return sites


def atomic_relaxed_loads(code: str,
                         line_starts: list[int]) -> list[tuple[str, int]]:
    loads = []
    for m in _ATOMIC_LOAD_RE.finditer(code):
        args, _, _ = _args_at(code, m.end())
        if "memory_order_relaxed" in args:
            loads.append((m.group(1), line_of(m.start(), line_starts)))
    return loads


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

class FileData:
    def __init__(self, path: str, rel: str):
        self.path = path
        self.rel = rel
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        self.code, self.comments = lex(text)
        self.line_starts = line_starts_of(self.code)
        self.pp_gates = preprocessor_gates(text)


def analyze_file(fd: FileData) -> list[Finding]:
    sink: set[tuple[int, str, str]] = set()
    units = find_units(fd.code)
    exempt = fd.rel in GATE_EXEMPT
    interesting = re.compile(
        r"\btx\s*\.|revoke|release|reserve|park|resume|detail\s*::"
        r"|__tsan_|\.get\s*\(")
    for span in units:
        body = excise_nested(fd.code, span, units)
        if not interesting.search(body):
            continue
        UnitAnalysis(fd.rel, body, span[0] + 1, fd.line_starts,
                     fd.pp_gates, exempt, sink).run()
    findings = []
    for line, rule, message in sorted(sink):
        if not allowed(fd.comments, ALLOW_RE, line, rule):
            findings.append(Finding(fd.rel, line, rule, message))
    return findings


def analyze_tree(root: str, paths: list[str]) -> list[Finding]:
    files = collect(root, paths, TOOL)
    data = [FileData(p, os.path.relpath(p, root).replace(os.sep, "/"))
            for p in files]
    findings: list[Finding] = []
    for fd in data:
        findings.extend(analyze_file(fd))
    # Cross-file pass: release sites anywhere vs relaxed loads *elsewhere*.
    # A file that itself release-writes the field owns a single-file
    # protocol for it (the token-level atomic-order rule's domain), so its
    # own relaxed loads are not flagged here.
    release_sites: dict[str, str] = {}
    release_files: dict[str, set] = {}
    for fd in data:
        for field, site in atomic_release_sites(
                fd.rel, fd.code, fd.line_starts).items():
            release_sites.setdefault(field, site)
            release_files.setdefault(field, set()).add(fd.rel)
    for fd in data:
        for field, line in atomic_relaxed_loads(fd.code, fd.line_starts):
            if field in release_sites and \
                    fd.rel not in release_files[field]:
                if not allowed(fd.comments, ALLOW_RE, line,
                               "atomic-protocol"):
                    findings.append(Finding(
                        fd.rel, line, "atomic-protocol",
                        f"relaxed load of '{field}', which is written "
                        f"with release-or-stronger order at "
                        f"{release_sites[field]}; the happens-before "
                        f"edge does not reach this read"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog=TOOL,
        description="path-sensitive transactional-effect analyzer for the "
                    "hand-over-hand TM tree")
    ap.add_argument("paths", nargs="*", default=None,
                    help=f"files or directories (default: {DEFAULT_PATHS})")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, text in RULES.items():
            print(f"{rule}\n    {text}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or DEFAULT_PATHS
    findings = analyze_tree(root, paths)

    if args.json:
        print(json.dumps([{"path": f.path, "line": f.line, "rule": f.rule,
                           "message": f.message} for f in findings],
                         indent=2))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    print(f"{TOOL}: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
