file(REMOVE_RECURSE
  "CMakeFiles/mem_pressure.dir/mem_pressure.cpp.o"
  "CMakeFiles/mem_pressure.dir/mem_pressure.cpp.o.d"
  "mem_pressure"
  "mem_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
