# Empty compiler generated dependencies file for mem_pressure.
# This may be replaced when dependencies are built.
