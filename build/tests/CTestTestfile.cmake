# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/tm_tests[1]_include.cmake")
include("/root/repo/build/tests/rr_tests[1]_include.cmake")
include("/root/repo/build/tests/ds_sll_tests[1]_include.cmake")
include("/root/repo/build/tests/ds_dll_tests[1]_include.cmake")
include("/root/repo/build/tests/ds_bst_tests[1]_include.cmake")
include("/root/repo/build/tests/alloc_tests[1]_include.cmake")
include("/root/repo/build/tests/reclaim_tests[1]_include.cmake")
include("/root/repo/build/tests/ds_baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/harness_tests[1]_include.cmake")
include("/root/repo/build/tests/linearizability_ds_tests[1]_include.cmake")
include("/root/repo/build/tests/ds_extension_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
