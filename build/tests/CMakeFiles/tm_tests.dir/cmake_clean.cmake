file(REMOVE_RECURSE
  "CMakeFiles/tm_tests.dir/tm/global_clocks_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/global_clocks_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/quiescence_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/quiescence_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_alloc_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_alloc_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_atomicity_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_atomicity_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_basic_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_basic_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_opacity_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_opacity_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_property_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_property_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/tm_serial_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/tm_serial_test.cpp.o.d"
  "CMakeFiles/tm_tests.dir/tm/txsets_test.cpp.o"
  "CMakeFiles/tm_tests.dir/tm/txsets_test.cpp.o.d"
  "tm_tests"
  "tm_tests.pdb"
  "tm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
