# Empty dependencies file for tm_tests.
# This may be replaced when dependencies are built.
