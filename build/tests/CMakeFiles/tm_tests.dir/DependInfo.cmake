
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tm/global_clocks_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/global_clocks_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/global_clocks_test.cpp.o.d"
  "/root/repo/tests/tm/quiescence_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/quiescence_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/quiescence_test.cpp.o.d"
  "/root/repo/tests/tm/tm_alloc_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_alloc_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_alloc_test.cpp.o.d"
  "/root/repo/tests/tm/tm_atomicity_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_atomicity_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_atomicity_test.cpp.o.d"
  "/root/repo/tests/tm/tm_basic_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_basic_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_basic_test.cpp.o.d"
  "/root/repo/tests/tm/tm_opacity_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_opacity_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_opacity_test.cpp.o.d"
  "/root/repo/tests/tm/tm_property_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_property_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_property_test.cpp.o.d"
  "/root/repo/tests/tm/tm_serial_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/tm_serial_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/tm_serial_test.cpp.o.d"
  "/root/repo/tests/tm/txsets_test.cpp" "tests/CMakeFiles/tm_tests.dir/tm/txsets_test.cpp.o" "gcc" "tests/CMakeFiles/tm_tests.dir/tm/txsets_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hohtm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
