# Empty compiler generated dependencies file for ds_baseline_tests.
# This may be replaced when dependencies are built.
