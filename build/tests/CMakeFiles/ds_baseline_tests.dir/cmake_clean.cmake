file(REMOVE_RECURSE
  "CMakeFiles/ds_baseline_tests.dir/ds/lf_list_test.cpp.o"
  "CMakeFiles/ds_baseline_tests.dir/ds/lf_list_test.cpp.o.d"
  "CMakeFiles/ds_baseline_tests.dir/ds/nm_tree_test.cpp.o"
  "CMakeFiles/ds_baseline_tests.dir/ds/nm_tree_test.cpp.o.d"
  "CMakeFiles/ds_baseline_tests.dir/ds/tmhp_ref_test.cpp.o"
  "CMakeFiles/ds_baseline_tests.dir/ds/tmhp_ref_test.cpp.o.d"
  "ds_baseline_tests"
  "ds_baseline_tests.pdb"
  "ds_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
