# Empty compiler generated dependencies file for linearizability_ds_tests.
# This may be replaced when dependencies are built.
