file(REMOVE_RECURSE
  "CMakeFiles/linearizability_ds_tests.dir/ds/linearizability_ds_test.cpp.o"
  "CMakeFiles/linearizability_ds_tests.dir/ds/linearizability_ds_test.cpp.o.d"
  "linearizability_ds_tests"
  "linearizability_ds_tests.pdb"
  "linearizability_ds_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearizability_ds_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
