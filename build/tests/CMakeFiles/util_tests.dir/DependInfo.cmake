
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/backoff_test.cpp" "tests/CMakeFiles/util_tests.dir/util/backoff_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/backoff_test.cpp.o.d"
  "/root/repo/tests/util/barrier_test.cpp" "tests/CMakeFiles/util_tests.dir/util/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/barrier_test.cpp.o.d"
  "/root/repo/tests/util/cacheline_test.cpp" "tests/CMakeFiles/util_tests.dir/util/cacheline_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/cacheline_test.cpp.o.d"
  "/root/repo/tests/util/random_test.cpp" "tests/CMakeFiles/util_tests.dir/util/random_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/random_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/thread_registry_test.cpp" "tests/CMakeFiles/util_tests.dir/util/thread_registry_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_registry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hohtm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
