# Empty compiler generated dependencies file for rr_tests.
# This may be replaced when dependencies are built.
