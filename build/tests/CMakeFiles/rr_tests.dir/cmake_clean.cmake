file(REMOVE_RECURSE
  "CMakeFiles/rr_tests.dir/core/multi_rr_test.cpp.o"
  "CMakeFiles/rr_tests.dir/core/multi_rr_test.cpp.o.d"
  "CMakeFiles/rr_tests.dir/core/rr_concurrent_test.cpp.o"
  "CMakeFiles/rr_tests.dir/core/rr_concurrent_test.cpp.o.d"
  "CMakeFiles/rr_tests.dir/core/rr_impl_test.cpp.o"
  "CMakeFiles/rr_tests.dir/core/rr_impl_test.cpp.o.d"
  "CMakeFiles/rr_tests.dir/core/rr_spec_test.cpp.o"
  "CMakeFiles/rr_tests.dir/core/rr_spec_test.cpp.o.d"
  "rr_tests"
  "rr_tests.pdb"
  "rr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
