# Empty compiler generated dependencies file for reclaim_tests.
# This may be replaced when dependencies are built.
