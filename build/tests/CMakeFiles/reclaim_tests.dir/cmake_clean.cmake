file(REMOVE_RECURSE
  "CMakeFiles/reclaim_tests.dir/reclaim/epoch_test.cpp.o"
  "CMakeFiles/reclaim_tests.dir/reclaim/epoch_test.cpp.o.d"
  "CMakeFiles/reclaim_tests.dir/reclaim/hazard_test.cpp.o"
  "CMakeFiles/reclaim_tests.dir/reclaim/hazard_test.cpp.o.d"
  "reclaim_tests"
  "reclaim_tests.pdb"
  "reclaim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
