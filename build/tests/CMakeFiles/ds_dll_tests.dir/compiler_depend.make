# Empty compiler generated dependencies file for ds_dll_tests.
# This may be replaced when dependencies are built.
