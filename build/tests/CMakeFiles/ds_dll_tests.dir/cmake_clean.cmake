file(REMOVE_RECURSE
  "CMakeFiles/ds_dll_tests.dir/ds/dll_hoh_test.cpp.o"
  "CMakeFiles/ds_dll_tests.dir/ds/dll_hoh_test.cpp.o.d"
  "ds_dll_tests"
  "ds_dll_tests.pdb"
  "ds_dll_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_dll_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
