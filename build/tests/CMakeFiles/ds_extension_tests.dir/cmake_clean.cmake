file(REMOVE_RECURSE
  "CMakeFiles/ds_extension_tests.dir/ds/hash_set_test.cpp.o"
  "CMakeFiles/ds_extension_tests.dir/ds/hash_set_test.cpp.o.d"
  "CMakeFiles/ds_extension_tests.dir/ds/skiplist_test.cpp.o"
  "CMakeFiles/ds_extension_tests.dir/ds/skiplist_test.cpp.o.d"
  "CMakeFiles/ds_extension_tests.dir/ds/sll_move_test.cpp.o"
  "CMakeFiles/ds_extension_tests.dir/ds/sll_move_test.cpp.o.d"
  "CMakeFiles/ds_extension_tests.dir/ds/window_tuner_test.cpp.o"
  "CMakeFiles/ds_extension_tests.dir/ds/window_tuner_test.cpp.o.d"
  "ds_extension_tests"
  "ds_extension_tests.pdb"
  "ds_extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
