# Empty compiler generated dependencies file for ds_extension_tests.
# This may be replaced when dependencies are built.
