file(REMOVE_RECURSE
  "CMakeFiles/ds_bst_tests.dir/ds/bst_external_test.cpp.o"
  "CMakeFiles/ds_bst_tests.dir/ds/bst_external_test.cpp.o.d"
  "CMakeFiles/ds_bst_tests.dir/ds/bst_internal_test.cpp.o"
  "CMakeFiles/ds_bst_tests.dir/ds/bst_internal_test.cpp.o.d"
  "ds_bst_tests"
  "ds_bst_tests.pdb"
  "ds_bst_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_bst_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
