# Empty dependencies file for ds_bst_tests.
# This may be replaced when dependencies are built.
