file(REMOVE_RECURSE
  "CMakeFiles/ds_sll_tests.dir/ds/sll_hoh_test.cpp.o"
  "CMakeFiles/ds_sll_tests.dir/ds/sll_hoh_test.cpp.o.d"
  "ds_sll_tests"
  "ds_sll_tests.pdb"
  "ds_sll_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sll_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
