# Empty compiler generated dependencies file for ds_sll_tests.
# This may be replaced when dependencies are built.
