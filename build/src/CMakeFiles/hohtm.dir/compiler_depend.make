# Empty compiler generated dependencies file for hohtm.
# This may be replaced when dependencies are built.
