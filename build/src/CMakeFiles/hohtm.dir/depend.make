# Empty dependencies file for hohtm.
# This may be replaced when dependencies are built.
