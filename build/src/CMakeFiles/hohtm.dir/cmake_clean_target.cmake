file(REMOVE_RECURSE
  "libhohtm.a"
)
