
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/pool.cpp" "src/CMakeFiles/hohtm.dir/alloc/pool.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/alloc/pool.cpp.o.d"
  "/root/repo/src/harness/driver.cpp" "src/CMakeFiles/hohtm.dir/harness/driver.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/harness/driver.cpp.o.d"
  "/root/repo/src/harness/linearizability.cpp" "src/CMakeFiles/hohtm.dir/harness/linearizability.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/harness/linearizability.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/hohtm.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/hohtm.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/harness/workload.cpp.o.d"
  "/root/repo/src/reclaim/epoch.cpp" "src/CMakeFiles/hohtm.dir/reclaim/epoch.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/reclaim/epoch.cpp.o.d"
  "/root/repo/src/reclaim/gauge.cpp" "src/CMakeFiles/hohtm.dir/reclaim/gauge.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/reclaim/gauge.cpp.o.d"
  "/root/repo/src/reclaim/hazard_pointers.cpp" "src/CMakeFiles/hohtm.dir/reclaim/hazard_pointers.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/reclaim/hazard_pointers.cpp.o.d"
  "/root/repo/src/tm/global_clocks.cpp" "src/CMakeFiles/hohtm.dir/tm/global_clocks.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/global_clocks.cpp.o.d"
  "/root/repo/src/tm/glock.cpp" "src/CMakeFiles/hohtm.dir/tm/glock.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/glock.cpp.o.d"
  "/root/repo/src/tm/norec.cpp" "src/CMakeFiles/hohtm.dir/tm/norec.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/norec.cpp.o.d"
  "/root/repo/src/tm/quiescence.cpp" "src/CMakeFiles/hohtm.dir/tm/quiescence.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/quiescence.cpp.o.d"
  "/root/repo/src/tm/tl2.cpp" "src/CMakeFiles/hohtm.dir/tm/tl2.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/tl2.cpp.o.d"
  "/root/repo/src/tm/tleager.cpp" "src/CMakeFiles/hohtm.dir/tm/tleager.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/tleager.cpp.o.d"
  "/root/repo/src/tm/tml.cpp" "src/CMakeFiles/hohtm.dir/tm/tml.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/tm/tml.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/hohtm.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_registry.cpp" "src/CMakeFiles/hohtm.dir/util/thread_registry.cpp.o" "gcc" "src/CMakeFiles/hohtm.dir/util/thread_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
