# Empty dependencies file for fig6_internal_tree.
# This may be replaced when dependencies are built.
