file(REMOVE_RECURSE
  "CMakeFiles/fig6_internal_tree.dir/fig6_internal_tree.cpp.o"
  "CMakeFiles/fig6_internal_tree.dir/fig6_internal_tree.cpp.o.d"
  "fig6_internal_tree"
  "fig6_internal_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_internal_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
