# Empty dependencies file for ext_skiplist.
# This may be replaced when dependencies are built.
