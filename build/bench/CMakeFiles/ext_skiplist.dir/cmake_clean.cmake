file(REMOVE_RECURSE
  "CMakeFiles/ext_skiplist.dir/ext_skiplist.cpp.o"
  "CMakeFiles/ext_skiplist.dir/ext_skiplist.cpp.o.d"
  "ext_skiplist"
  "ext_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
