file(REMOVE_RECURSE
  "CMakeFiles/abl_quiescence.dir/abl_quiescence.cpp.o"
  "CMakeFiles/abl_quiescence.dir/abl_quiescence.cpp.o.d"
  "abl_quiescence"
  "abl_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
