# Empty compiler generated dependencies file for abl_quiescence.
# This may be replaced when dependencies are built.
