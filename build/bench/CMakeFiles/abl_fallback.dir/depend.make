# Empty dependencies file for abl_fallback.
# This may be replaced when dependencies are built.
