file(REMOVE_RECURSE
  "CMakeFiles/abl_fallback.dir/abl_fallback.cpp.o"
  "CMakeFiles/abl_fallback.dir/abl_fallback.cpp.o.d"
  "abl_fallback"
  "abl_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
