file(REMOVE_RECURSE
  "CMakeFiles/abl_tm_backends.dir/abl_tm_backends.cpp.o"
  "CMakeFiles/abl_tm_backends.dir/abl_tm_backends.cpp.o.d"
  "abl_tm_backends"
  "abl_tm_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tm_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
