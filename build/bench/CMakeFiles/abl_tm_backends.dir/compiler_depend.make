# Empty compiler generated dependencies file for abl_tm_backends.
# This may be replaced when dependencies are built.
