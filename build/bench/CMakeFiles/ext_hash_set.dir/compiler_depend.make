# Empty compiler generated dependencies file for ext_hash_set.
# This may be replaced when dependencies are built.
