file(REMOVE_RECURSE
  "CMakeFiles/ext_hash_set.dir/ext_hash_set.cpp.o"
  "CMakeFiles/ext_hash_set.dir/ext_hash_set.cpp.o.d"
  "ext_hash_set"
  "ext_hash_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hash_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
