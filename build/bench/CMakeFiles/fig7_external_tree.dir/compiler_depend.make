# Empty compiler generated dependencies file for fig7_external_tree.
# This may be replaced when dependencies are built.
