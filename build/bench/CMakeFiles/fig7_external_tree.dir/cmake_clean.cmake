file(REMOVE_RECURSE
  "CMakeFiles/fig7_external_tree.dir/fig7_external_tree.cpp.o"
  "CMakeFiles/fig7_external_tree.dir/fig7_external_tree.cpp.o.d"
  "fig7_external_tree"
  "fig7_external_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_external_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
