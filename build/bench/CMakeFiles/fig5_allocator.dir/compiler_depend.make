# Empty compiler generated dependencies file for fig5_allocator.
# This may be replaced when dependencies are built.
