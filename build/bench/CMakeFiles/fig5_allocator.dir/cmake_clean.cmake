file(REMOVE_RECURSE
  "CMakeFiles/fig5_allocator.dir/fig5_allocator.cpp.o"
  "CMakeFiles/fig5_allocator.dir/fig5_allocator.cpp.o.d"
  "fig5_allocator"
  "fig5_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
