file(REMOVE_RECURSE
  "CMakeFiles/fig4_window.dir/fig4_window.cpp.o"
  "CMakeFiles/fig4_window.dir/fig4_window.cpp.o.d"
  "fig4_window"
  "fig4_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
