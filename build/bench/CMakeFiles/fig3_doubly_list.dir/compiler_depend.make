# Empty compiler generated dependencies file for fig3_doubly_list.
# This may be replaced when dependencies are built.
