file(REMOVE_RECURSE
  "CMakeFiles/fig3_doubly_list.dir/fig3_doubly_list.cpp.o"
  "CMakeFiles/fig3_doubly_list.dir/fig3_doubly_list.cpp.o.d"
  "fig3_doubly_list"
  "fig3_doubly_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_doubly_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
