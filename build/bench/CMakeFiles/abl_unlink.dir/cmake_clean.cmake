file(REMOVE_RECURSE
  "CMakeFiles/abl_unlink.dir/abl_unlink.cpp.o"
  "CMakeFiles/abl_unlink.dir/abl_unlink.cpp.o.d"
  "abl_unlink"
  "abl_unlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_unlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
