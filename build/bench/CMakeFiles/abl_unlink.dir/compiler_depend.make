# Empty compiler generated dependencies file for abl_unlink.
# This may be replaced when dependencies are built.
