file(REMOVE_RECURSE
  "CMakeFiles/abl_scatter.dir/abl_scatter.cpp.o"
  "CMakeFiles/abl_scatter.dir/abl_scatter.cpp.o.d"
  "abl_scatter"
  "abl_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
