# Empty dependencies file for abl_scatter.
# This may be replaced when dependencies are built.
