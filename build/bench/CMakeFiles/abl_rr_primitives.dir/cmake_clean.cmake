file(REMOVE_RECURSE
  "CMakeFiles/abl_rr_primitives.dir/abl_rr_primitives.cpp.o"
  "CMakeFiles/abl_rr_primitives.dir/abl_rr_primitives.cpp.o.d"
  "abl_rr_primitives"
  "abl_rr_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rr_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
