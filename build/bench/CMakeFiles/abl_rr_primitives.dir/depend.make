# Empty dependencies file for abl_rr_primitives.
# This may be replaced when dependencies are built.
