// Ablation A3 — the cost of precision.
//
// The quiescence fence is what lets this library free memory at commit
// (DESIGN.md Section 3). This bench measures it two ways:
//
//  1. commit latency of a remove-heavy list workload (every remove pays
//     one quiescence wait) vs an insert/lookup-only workload (none), and
//  2. the live-memory gauge over a churn phase for precise (RR-V) vs
//     deferred (TMHP, threshold 64) reclamation — the backlog the paper's
//     mechanism eliminates.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"
#include "ds/sll_tmhp.hpp"
#include "reclaim/gauge.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

void throughput_vs_free_rate(const BenchEnv& env) {
  // lookup_pct sweeps the fraction of commits that carry deferred frees:
  // 0% lookups => ~50% of ops are removes (max quiescence traffic).
  for (int lookup_pct : {0, 50, 98}) {
    const std::string panel = "freerate-" + std::to_string(lookup_pct) + "pct";
    WorkloadConfig base;
    base.key_bits = 10;
    base.lookup_pct = lookup_pct;
    run_series("ablA3", panel, "RR-V-precise", base, env,
               [](const WorkloadConfig& c) {
                 using List = ds::SllHoh<TM, rr::RrV<TM>>;
                 return std::make_unique<List>(c.window);
               });
    run_series("ablA3", panel, "TMHP-deferred", base, env,
               [](const WorkloadConfig& c) {
                 return std::make_unique<ds::SllTmhp<TM>>(c.window, true, 64);
               });
  }
}

void backlog_comparison() {
  // Churn a list and sample the live-object gauge: precise reclamation
  // tracks the logical size; deferred reclamation rides above it.
  constexpr int kChurn = 20000;
  constexpr long kRange = 256;

  std::printf("# ablA3 backlog: live objects after churn (logical size %ld)\n",
              kRange / 2);
  {
    ds::SllHoh<TM, rr::RrV<TM>> list(8);
    hohtm::util::Xoshiro256 rng(11);
    const auto before = hohtm::reclaim::Gauge::live();
    for (long k = 0; k < kRange; k += 2) list.insert(k);
    for (int i = 0; i < kChurn; ++i) {
      const long key = static_cast<long>(rng.next_below(kRange));
      if (rng.next() & 1)
        list.insert(key);
      else
        list.remove(key);
    }
    std::printf("ablA3,backlog,RR-V,0,%ld,0\n",
                static_cast<long>(hohtm::reclaim::Gauge::live() - before -
                                  static_cast<long>(list.size())));
  }
  {
    ds::SllTmhp<TM> list(8, true, /*scan_threshold=*/256);
    hohtm::util::Xoshiro256 rng(11);
    const auto before = hohtm::reclaim::Gauge::live();
    for (long k = 0; k < kRange; k += 2) list.insert(k);
    for (int i = 0; i < kChurn; ++i) {
      const long key = static_cast<long>(rng.next_below(kRange));
      if (rng.next() & 1)
        list.insert(key);
      else
        list.remove(key);
    }
    std::printf("ablA3,backlog,TMHP,0,%ld,0\n",
                static_cast<long>(hohtm::reclaim::Gauge::live() - before -
                                  static_cast<long>(list.size())));
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA3",
      "quiescence/precision ablation: throughput under free-heavy mixes, "
      "plus live-object backlog (precise vs deferred)");
  throughput_vs_free_rate(env);
  backlog_comparison();
  return 0;
}
