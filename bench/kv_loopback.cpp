// Serving-tier loopback bench (docs/SERVING.md): the full network path —
// client sockets, the pipelined binary protocol, the epoll event loop,
// kv::Service workers, and batch-boundary window fusion — driven by a
// YCSB A–E load generator over real 127.0.0.1 TCP connections. Panels
// are the five mixes; series sweep the client pipeline depth, which is
// the fusion opportunity: every pipeline read becomes one kBatch request
// whose consecutive same-shard ops share a single fused window
// transaction.
//
// Rows use the 36-column net layout (emit_net_row): the 32 kv columns
// plus net_batches,net_fused_ops,net_bytes_in,net_bytes_out. The
// telling ratio is commits/op and quiescence_waits/op versus pipeline
// depth: depth 16 should pay ~1 commit and ~1 reclamation fence where
// depth 1 pays 16 of each.
//
// check.sh --net smoke: --smoke runs YCSB A at depth 1 and depth 16 on
// a frozen single-shard store and exits nonzero unless depth 16 shows
// strictly fewer commits per op AND strictly fewer quiescence waits per
// op with nonzero fused ops (the ISSUE 10 acceptance gate), then runs
// the stalled-client scenario: a connection parked mid-pipeline while
// other clients churn node-freeing updates must leave the reclamation
// watchdog with zero alerts and the final footprint Gauge-exact.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rr.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "kv/workload.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/watchdog.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"
#include "util/zipfian.hpp"

namespace {

using TM = hohtm::tm::Norec;
using RR = hohtm::rr::RrV<TM>;
using Store = hohtm::kv::Store<TM, RR>;
using Service = hohtm::kv::Service<TM, RR>;
using Server = hohtm::net::Server<TM, RR>;
using hohtm::harness::BenchEnv;
using hohtm::kv::Mix;
namespace kv = hohtm::kv;
namespace net = hohtm::net;

struct NetCellConfig {
  Mix mix = Mix::kA;
  std::size_t records = 2048;
  int connections = 1;          // concurrent client sockets
  std::uint64_t ops_per_conn = 20000;
  int pipeline = 16;            // ops queued per flush on each connection
  int trials = 2;
  int workers = 2;              // kv::Service worker threads
  bool frozen_single_shard = false;  // smoke: maximize fusion opportunity
};

struct NetCellResult {
  hohtm::harness::CellResult base;
  hohtm::harness::KvRowExtra kv;
  hohtm::harness::NetRowExtra net;
  std::uint64_t total_ops = 0;
};

std::unique_ptr<Store> make_store(const NetCellConfig& cfg) {
  Store::Options opt;
  opt.window = 16;
  opt.fusion_cap = 16;
  if (cfg.frozen_single_shard) {
    // One shard, frozen table: every batch is one fuseable run and the
    // commit count is not diluted by migration transactions.
    opt.log2_shards = 0;
    opt.log2_buckets = 6;
    opt.max_log2_buckets = opt.log2_buckets;
  }
  return std::make_unique<Store>(opt);
}

/// One client connection's worth of the given mix: queue `pipeline` ops,
/// flush, drain the responses, repeat. Returns {hits, misses} seen.
void run_client(const NetCellConfig& cfg, std::uint16_t port, int conn_id,
                int trial, std::uint64_t* hits_out,
                std::uint64_t* misses_out) {
  net::Client client;
  if (!client.connect(port)) return;
  hohtm::util::Zipfian zipf(
      cfg.records, 0.99,
      0x9e3779b9ULL * static_cast<std::uint64_t>(conn_id + 1) + trial);
  hohtm::util::Xoshiro256 rng(0xc0ffee00ULL + conn_id * 131 + trial);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserted = 0;
  const std::uint64_t insert_base =
      cfg.records + static_cast<std::uint64_t>(conn_id) * cfg.ops_per_conn;
  std::uint64_t done = 0;
  while (done < cfg.ops_per_conn) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(cfg.pipeline, cfg.ops_per_conn - done);
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t dice = rng.next_below(100);
      const std::uint64_t rank = zipf.next();
      switch (cfg.mix) {
        case Mix::kA:
          if (dice < 50)
            client.queue_get(kv::make_key(rank));
          else
            client.queue_put(kv::make_key(rank),
                             kv::make_value(rank, done + i));
          break;
        case Mix::kB:
          if (dice < 95)
            client.queue_get(kv::make_key(rank));
          else
            client.queue_put(kv::make_key(rank),
                             kv::make_value(rank, done + i));
          break;
        case Mix::kC:
          client.queue_get(kv::make_key(rank));
          break;
        case Mix::kD:
          // Read-latest/insert: reads chase this connection's freshest
          // inserts; 5% of ops append a brand-new key.
          if (dice < 95 && inserted > 0) {
            const std::uint64_t back = zipf.next() % inserted;
            client.queue_get(kv::make_key(insert_base + inserted - 1 - back));
          } else {
            client.queue_put(kv::make_key(insert_base + inserted),
                             kv::make_value(insert_base + inserted, 0));
            ++inserted;
          }
          break;
        case Mix::kE:
          if (dice < 95) {
            client.queue_scan(kv::make_key(rank), 16);
          } else {
            client.queue_put(kv::make_key(insert_base + inserted),
                             kv::make_value(insert_base + inserted, 0));
            ++inserted;
          }
          break;
      }
    }
    if (client.flush() == 0) break;
    bool dead = false;
    for (std::uint64_t i = 0; i < batch; ++i) {
      net::NetResponse r;
      if (!client.recv(r)) {
        dead = true;
        break;
      }
      if (r.status == net::WireStatus::kOk)
        ++hits;
      else
        ++misses;
    }
    if (dead) break;
    done += batch;
  }
  client.close();
  *hits_out = hits;
  *misses_out = misses;
}

NetCellResult run_net_cell(const NetCellConfig& cfg) {
  NetCellResult cell;
  std::vector<double> mops_samples;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    const long long live_baseline = hohtm::reclaim::Gauge::live();
    auto store = make_store(cfg);
    for (std::size_t r = 0; r < cfg.records; ++r)
      store->put(kv::make_key(r), kv::make_value(r, 0));
    store->finish_migration();
    const std::uint64_t migrate_baseline = store->migrated_buckets();
    const std::uint64_t resize_baseline = store->tables_swapped();
    const std::uint64_t scan_baseline = store->scans();
    const std::uint64_t scan_window_baseline = store->scan_windows();
    const std::uint64_t scan_resume_baseline = store->scan_resumes();
    // Reset telemetry before the service spins up its workers: the cell
    // then measures exactly the socket-driven phase.
    hohtm::tm::Stats::reset();
    hohtm::util::Metrics::reset();
    Service svc(*store, cfg.workers);
    Server server(svc, Server::Options{});
    if (!server.ok()) {
      std::fprintf(stderr, "kv_loopback: failed to bind loopback server\n");
      std::exit(1);
    }

    std::vector<std::uint64_t> hits(cfg.connections, 0);
    std::vector<std::uint64_t> misses(cfg.connections, 0);
    hohtm::util::SpinBarrier barrier(
        static_cast<std::size_t>(cfg.connections) + 1);
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(cfg.connections));
    for (int c = 0; c < cfg.connections; ++c) {
      clients.emplace_back([&, c, trial] {
        barrier.arrive_and_wait();
        run_client(cfg, server.port(), c, trial, &hits[c], &misses[c]);
        barrier.arrive_and_wait();
      });
    }
    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    barrier.arrive_and_wait();
    const auto stop = std::chrono::steady_clock::now();
    for (auto& th : clients) th.join();
    server.stop();
    svc.stop();

    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double total_ops =
        static_cast<double>(cfg.ops_per_conn) * cfg.connections;
    mops_samples.push_back(total_ops / seconds / 1e6);
    cell.total_ops +=
        cfg.ops_per_conn * static_cast<std::uint64_t>(cfg.connections);
    cell.base.counters.accumulate(hohtm::tm::Stats::total());
    cell.base.latency.merge(hohtm::util::Metrics::total());
    for (int c = 0; c < cfg.connections; ++c) {
      cell.kv.hits += hits[static_cast<std::size_t>(c)];
      cell.kv.misses += misses[static_cast<std::size_t>(c)];
    }
    cell.kv.migrations += store->migrated_buckets() - migrate_baseline;
    cell.kv.resizes += store->tables_swapped() - resize_baseline;
    cell.kv.scans += store->scans() - scan_baseline;
    cell.kv.scan_windows += store->scan_windows() - scan_window_baseline;
    cell.kv.scan_resumes += store->scan_resumes() - scan_resume_baseline;
    const Server::Counters sc = server.counters();
    cell.net.batches += sc.batches;
    cell.net.fused_ops += sc.fused_ops;
    cell.net.bytes_in += sc.bytes_in;
    cell.net.bytes_out += sc.bytes_out;

    const long long end_live = hohtm::reclaim::Gauge::live() - live_baseline;
    if (end_live > cell.base.live_peak) cell.base.live_peak = end_live;
  }
  cell.base.mops = hohtm::util::summarize(mops_samples);
  return cell;
}

void run_panel(const BenchEnv& env, Mix mix) {
  const std::string panel = kv::mix_name(mix);
  hohtm::harness::emit_panel_note("net", panel);
  for (int depth : {1, 4, 16}) {
    const std::string series = "depth-" + std::to_string(depth);
    for (int conns : env.thread_counts) {
      NetCellConfig cfg;
      cfg.mix = mix;
      cfg.connections = conns;
      cfg.ops_per_conn = env.ops_per_thread;
      cfg.pipeline = depth;
      cfg.trials = env.trials;
      const NetCellResult cell = run_net_cell(cfg);
      hohtm::harness::emit_net_row("net", panel, series, conns, cell.base,
                                   cell.kv, cell.net);
    }
  }
}

/// The fusion acceptance gate (ISSUE 10): YCSB A over real sockets at
/// pipeline depth 16 must pay strictly fewer commits per op AND strictly
/// fewer quiescence waits per op than depth 1, with nonzero fused ops.
int run_fusion_gate() {
  NetCellConfig cfg;
  cfg.mix = Mix::kA;
  cfg.records = 512;
  cfg.connections = 1;
  cfg.ops_per_conn = 4000;
  cfg.trials = 1;
  cfg.workers = 2;
  cfg.frozen_single_shard = true;

  cfg.pipeline = 1;
  const NetCellResult d1 = run_net_cell(cfg);
  hohtm::harness::emit_net_row("net", "smoke-A", "depth-1", 1, d1.base,
                               d1.kv, d1.net);
  cfg.pipeline = 16;
  const NetCellResult d16 = run_net_cell(cfg);
  hohtm::harness::emit_net_row("net", "smoke-A", "depth-16", 1, d16.base,
                               d16.kv, d16.net);

  const double ops1 = static_cast<double>(d1.total_ops);
  const double ops16 = static_cast<double>(d16.total_ops);
  const double commits1 = static_cast<double>(d1.base.counters.commits) / ops1;
  const double commits16 =
      static_cast<double>(d16.base.counters.commits) / ops16;
  const double qwaits1 =
      static_cast<double>(d1.base.counters.quiescence_waits) / ops1;
  const double qwaits16 =
      static_cast<double>(d16.base.counters.quiescence_waits) / ops16;
  if (d1.base.mops.mean <= 0.0 || d16.base.mops.mean <= 0.0) {
    std::fprintf(stderr, "net smoke: zero throughput\n");
    return 1;
  }
  if (d16.net.fused_ops == 0) {
    std::fprintf(stderr,
                 "net smoke: depth-16 pipeline recorded no fused ops\n");
    return 1;
  }
  if (commits16 >= commits1) {
    std::fprintf(stderr,
                 "net smoke: commits/op did not drop with pipeline depth "
                 "(%.3f at depth 16 vs %.3f at depth 1)\n",
                 commits16, commits1);
    return 1;
  }
  if (qwaits16 >= qwaits1) {
    std::fprintf(stderr,
                 "net smoke: quiescence waits/op did not drop with pipeline "
                 "depth (%.4f at depth 16 vs %.4f at depth 1)\n",
                 qwaits16, qwaits1);
    return 1;
  }
  std::printf(
      "# net smoke ok: commits/op %.3f -> %.3f, qwaits/op %.4f -> %.4f, "
      "%llu ops fused across %llu batches\n",
      commits1, commits16, qwaits1, qwaits16,
      static_cast<unsigned long long>(d16.net.fused_ops),
      static_cast<unsigned long long>(d16.net.batches));
  return 0;
}

/// The serving-robustness gate: a connection parked mid-pipeline while a
/// healthy one churns node-freeing updates. Workers never touch sockets
/// and the event loop never joins a transaction, so the parked client
/// can hold neither a reservation nor a quiescence slot: the watchdog
/// must stay silent and teardown must be Gauge-exact.
int run_stalled_client_gate() {
  using hohtm::reclaim::Watchdog;
  Watchdog::reset_for_testing();
  const long long baseline = hohtm::reclaim::Gauge::live();
  {
    NetCellConfig cfg;
    cfg.frozen_single_shard = true;
    auto store = make_store(cfg);
    Service svc(*store, 2);
    Server server(svc, Server::Options{});
    if (!server.ok()) {
      std::fprintf(stderr, "net stalled smoke: bind failed\n");
      return 1;
    }

    net::Client stalled;
    if (!stalled.connect(server.port())) return 1;
    std::string wire;
    net::encode_put(wire, 1, "stalled-key", "v");
    wire.append("\x30\x00\x00\x00\x02", 5);  // torn frame: parks forever
    if (!stalled.send_raw(wire)) return 1;
    net::NetResponse r;
    if (!stalled.recv(r) || r.status != net::WireStatus::kOk) return 1;

    const std::uint64_t t0 = 1;  // explicit clock: deterministic check
    Watchdog::check(t0);
    net::Client healthy;
    if (!healthy.connect(server.port())) return 1;
    healthy.queue_stats();
    for (int round = 0; round < 16; ++round) {
      for (int i = 0; i < 16; ++i) {
        const std::string key = "churn" + std::to_string(i);
        healthy.queue_put(key, "v" + std::to_string(round));
        healthy.queue_del(key);  // every delete defers a free
      }
    }
    if (healthy.flush() == 0) return 1;
    if (!healthy.recv(r) || r.value.find("\"service\"") == std::string::npos) {
      std::fprintf(stderr, "net stalled smoke: STATS frame came back dead\n");
      return 1;
    }
    for (int i = 0; i < 16 * 32; ++i)
      if (!healthy.recv(r)) {
        std::fprintf(stderr, "net stalled smoke: churn connection died\n");
        return 1;
      }
    const Watchdog::Report report =
        Watchdog::check(t0 + Watchdog::threshold_ns() + 1);
    if (report.stalled_threads != 0 || Watchdog::stall_events() != 0) {
      std::fprintf(stderr,
                   "net stalled smoke: parked client registered as a "
                   "reclamation stall (%d stalled, %llu events)\n",
                   report.stalled_threads,
                   static_cast<unsigned long long>(Watchdog::stall_events()));
      return 1;
    }
    server.stop();
    svc.stop();
    store->finish_migration();
    // One tracked node per live entry plus the single shard's table.
    const long long expect =
        baseline + static_cast<long long>(store->size()) + 1;
    if (hohtm::reclaim::Gauge::live() != expect) {
      std::fprintf(stderr,
                   "net stalled smoke: footprint not Gauge-exact before "
                   "teardown (%lld vs %lld)\n",
                   static_cast<long long>(hohtm::reclaim::Gauge::live()),
                   expect);
      return 1;
    }
  }
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (leaked != 0) {
    std::fprintf(stderr, "net stalled smoke: %lld objects leaked\n", leaked);
    return 1;
  }
  std::printf(
      "# net stalled-client smoke ok: watchdog clean, footprint exact\n");
  return 0;
}

int run_smoke() {
  hohtm::harness::emit_net_header(
      "net", "smoke: loopback YCSB-A, depth 1 vs 16, frozen single shard");
  if (int rc = run_fusion_gate(); rc != 0) return rc;
  return run_stalled_client_gate();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: kv_loopback [--smoke]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_net_header(
      "net",
      "loopback serving tier: 2048 records, zipfian(0.99); panels = YCSB "
      "A/B/C/D/E over real sockets; series = client pipeline depth");
  for (Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE})
    run_panel(env, mix);
  return 0;
}
