// Ablation A2 — choice of TM backend.
//
// The paper ran on Intel TSX; this reproduction substitutes four software
// TMs (DESIGN.md Section 1.4). This bench quantifies how much of the data
// structure results depends on that substitution: the singly-linked-list
// workload (10-bit keys, 33% lookups, RR-V) under each backend.
//
// Expected shape: GLock flat-lines (serial); TML scales for read-heavy
// mixes only (single writer); NOrec and TL2 scale and track each other,
// which is why NOrec is the default for the figure benches.
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;
namespace tm = hohtm::tm;

template <class TM>
void backend_series(const BenchEnv& env, int lookup_pct) {
  const std::string panel = "10bit-" + std::to_string(lookup_pct) + "pct";
  WorkloadConfig base;
  base.key_bits = 10;
  base.lookup_pct = lookup_pct;
  run_series("ablA2", panel, TM::name(), base, env,
             [](const WorkloadConfig& c) {
               using List = ds::SllHoh<TM, rr::RrV<TM>>;
               return std::make_unique<List>(c.window);
             });
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA2",
      "TM backend ablation: singly list, RR-V, 10-bit keys; backends "
      "glock/tml/norec/tl2/tleager (tleager = encounter-time conflicts, "
      "the closest software analog of HTM's immediate aborts)");
  for (int lookup_pct : {33, 80}) {
    backend_series<tm::GLock>(env, lookup_pct);
    backend_series<tm::Tml>(env, lookup_pct);
    backend_series<tm::Norec>(env, lookup_pct);
    backend_series<tm::Tl2>(env, lookup_pct);
    backend_series<tm::TlEager>(env, lookup_pct);
  }
  return 0;
}
