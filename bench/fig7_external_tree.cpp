// Figure 7 — external unbalanced binary search tree.
//
// Panels as Figure 6 (the paper shows 8-bit and 21-bit mixes). Series:
// single-transaction baseline, the best reservation algorithms (RR-XO,
// RR-V) plus the strict ones, TMHP, and the lock-free Natarajan–Mittal
// tree that leaks memory (LFLeak).
//
// Expected shape (paper Section 5.4): LFLeak wins at every thread count
// and scales best; TMHP is nearly indistinguishable from RR-XO/RR-V;
// the strict algorithms recover relative to the internal tree because
// external-tree removals revoke only two nodes (no key swaps).
#include <memory>

#include "bench_common.hpp"
#include "ds/bst_external.hpp"
#include "ds/bst_external_tmhp.hpp"
#include "ds/nm_tree.hpp"
#include "tm/config.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

void run_panel(const BenchEnv& env, int key_bits, int lookup_pct) {
  const std::string panel =
      std::to_string(key_bits) + "bit-" + std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("fig7", panel);
  WorkloadConfig base;
  base.key_bits = key_bits;
  base.lookup_pct = lookup_pct;

  run_series("fig7", panel, "HTM", base, env, [](const WorkloadConfig&) {
    using Tree = ds::BstExternal<TM, rr::RrNull<TM>>;
    return std::make_unique<Tree>(Tree::kUnbounded);
  });
  run_series("fig7", panel, "RR-XO", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstExternal<TM, rr::RrXo<TM>>>(c.window);
  });
  run_series("fig7", panel, "RR-V", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstExternal<TM, rr::RrV<TM>>>(c.window);
  });
  run_series("fig7", panel, "RR-FA", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstExternal<TM, rr::RrFa<TM>>>(c.window);
  });
  run_series("fig7", panel, "RR-SA", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstExternal<TM, rr::RrSa<TM, 8>>>(c.window);
  });
  run_series("fig7", panel, "TMHP", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstExternalTmhp<TM>>(c.window, true, 64);
  });
  run_series("fig7", panel, "LFLeak", base, env, [](const WorkloadConfig&) {
    return std::make_unique<ds::NmTree<>>();
  });
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::tm::Config::set_serial_threshold(8);
  hohtm::harness::emit_header(
      "fig7",
      "external unbalanced BST, 50% prefill; panels {8,BIG}-bit x "
      "{0,50,80}% lookups (paper: BIG=21, default 16 — set "
      "HOH_BENCH_BIGBITS=21 for paper scale); Mops/s vs threads");
  for (int key_bits : {8, env.big_key_bits})
    for (int lookup_pct : {0, 50, 80}) run_panel(env, key_bits, lookup_pct);
  return 0;
}
