// Figure 6 — internal unbalanced binary search tree.
//
// Panels: {8-bit, 21-bit} key ranges x {0, 50, 80}% lookups; 50%
// prefill with random keys. Series: the single-transaction baseline and
// the six reservation algorithms (no external comparators exist for
// internal trees, as the paper notes).
//
// Expected shape (paper Section 5.4): at 8-bit the whole operation fits
// in one window, so the gap to HTM at 1 thread is pure reservation
// overhead; at 21-bit only RR-XO and RR-V scale — the others pay for
// multi-reference Revoke along the successor path in removals.
//
// The paper raises the serial-fallback threshold from 2 to 8 for trees;
// so does this bench.
#include <memory>

#include "bench_common.hpp"
#include "ds/bst_internal.hpp"
#include "tm/config.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void reservation_series(const std::string& panel, const char* name,
                        const WorkloadConfig& base, const BenchEnv& env) {
  run_series("fig6", panel, name, base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::BstInternal<TM, RR>>(c.window);
  });
}

void run_panel(const BenchEnv& env, int key_bits, int lookup_pct) {
  const std::string panel =
      std::to_string(key_bits) + "bit-" + std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("fig6", panel);
  WorkloadConfig base;
  base.key_bits = key_bits;
  base.lookup_pct = lookup_pct;

  run_series("fig6", panel, "HTM", base, env, [](const WorkloadConfig&) {
    using Tree = ds::BstInternal<TM, rr::RrNull<TM>>;
    return std::make_unique<Tree>(Tree::kUnbounded);
  });
  reservation_series<rr::RrFa<TM>>(panel, "RR-FA", base, env);
  reservation_series<rr::RrDm<TM>>(panel, "RR-DM", base, env);
  reservation_series<rr::RrSa<TM, 8>>(panel, "RR-SA", base, env);
  reservation_series<rr::RrXo<TM>>(panel, "RR-XO", base, env);
  reservation_series<rr::RrSo<TM, 8>>(panel, "RR-SO", base, env);
  reservation_series<rr::RrV<TM>>(panel, "RR-V", base, env);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::tm::Config::set_serial_threshold(8);  // the paper's tree setting
  hohtm::harness::emit_header(
      "fig6",
      "internal unbalanced BST, 50% prefill; panels {8,BIG}-bit x "
      "{0,50,80}% lookups (paper: BIG=21, default 16 for laptop runs — "
      "set HOH_BENCH_BIGBITS=21 for paper scale); Mops/s vs threads");
  for (int key_bits : {8, env.big_key_bits})
    for (int lookup_pct : {0, 50, 80}) run_panel(env, key_bits, lookup_pct);
  return 0;
}
