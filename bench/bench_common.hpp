#pragma once

#include <memory>
#include <string>

#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace hohtm::bench {

/// Window size heuristic from the paper's Figure 4 study: "Up to 4
/// threads, a window size of 16 is best. At 8 threads, the balance tips
/// in favor of a window size of 8."
inline int tuned_window(int threads) noexcept { return threads > 4 ? 8 : 16; }

/// Sweep one series (one curve of a figure panel) across thread counts.
/// MakeSet: (const harness::WorkloadConfig&) -> std::unique_ptr<Set>.
template <class MakeSet>
void run_series(const std::string& figure, const std::string& panel,
                const std::string& series, harness::WorkloadConfig config,
                const harness::BenchEnv& env, MakeSet&& make_set) {
  for (int threads : env.thread_counts) {
    config.threads = threads;
    config.window = tuned_window(threads);
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    config.footprint_ms = env.footprint_ms;
    const harness::CellResult cell =
        harness::run_cell(config, [&] { return make_set(config); });
    harness::emit_row(figure, panel, series, threads, cell);
  }
}

}  // namespace hohtm::bench
