// Ablation A7 — RR-DM's delayed-unlink optimization.
//
// The paper, on RR-DM Release: the thread "should remove its node from
// the list. As a contention-avoiding optimization ... a thread can delay
// removing the node from its list until a subsequent transaction." This
// bench runs the singly linked list over RR-DM both ways.
//
// Expected shape: delayed unlink trims two shared-list writes from every
// Release at the cost of longer bucket scans for Revoke; under mixed
// workloads (Release outnumbers Revoke) delayed should win or tie.
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
using List = hohtm::ds::SllHoh<TM, hohtm::rr::RrDm<TM>>;

void run_variant(const BenchEnv& env, bool delayed, int lookup_pct) {
  const std::string panel = "10bit-" + std::to_string(lookup_pct) + "pct";
  const char* series = delayed ? "RR-DM-delayed" : "RR-DM-eager";
  for (int threads : env.thread_counts) {
    WorkloadConfig config;
    config.key_bits = 10;
    config.lookup_pct = lookup_pct;
    config.threads = threads;
    config.window = hohtm::bench::tuned_window(threads);
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    const auto cell = hohtm::harness::run_cell(config, [&] {
      // SllHoh forwards trailing args to the reservation constructor.
      return std::make_unique<List>(config.window, true,
                                    /*log2_buckets=*/6, delayed);
    });
    hohtm::harness::emit_row("ablA7", panel, series, threads, cell);
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA7",
      "RR-DM delayed vs eager node unlink on Release; singly list, "
      "10-bit keys");
  for (int lookup_pct : {0, 33, 80}) {
    run_variant(env, /*delayed=*/true, lookup_pct);
    run_variant(env, /*delayed=*/false, lookup_pct);
  }
  return 0;
}
