// Figure 5 — impact of the memory allocator.
//
// Doubly linked list, 9-bit keys, 0% and 98% lookup ratios; TMHP vs
// RR-XO. The paper contrasts jemalloc ("J-") and Hoard ("H-"); neither
// ships here, so the substitution (DESIGN.md Section 1.4) contrasts the
// system allocator ("M-") with this library's thread-caching pool
// allocator ("P-") — the same axis: thread-local caching and
// cross-thread-free handling vs a general-purpose heap.
//
// Expected shape: allocator choice moves TMHP (which batches frees and
// stresses allocator metadata locality) more than RR-XO, and the effect
// persists even at 98% lookups, echoing the paper's observation that the
// pathology is not just allocation volume.
#include <memory>

#include "alloc/pool.hpp"
#include "bench_common.hpp"
#include "ds/dll_hoh.hpp"
#include "ds/dll_tmhp.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

void run_backend(const BenchEnv& env, bool pool, int lookup_pct) {
  hohtm::alloc::use_pool(pool);
  const std::string prefix = pool ? "P-" : "M-";
  const std::string panel = "9bit-" + std::to_string(lookup_pct) + "pct";
  WorkloadConfig base;
  base.key_bits = 9;
  base.lookup_pct = lookup_pct;

  run_series("fig5", panel, prefix + "RR-XO", base, env,
             [](const WorkloadConfig& c) {
               return std::make_unique<ds::DllHoh<TM, rr::RrXo<TM>>>(c.window);
             });
  run_series("fig5", panel, prefix + "TMHP", base, env,
             [](const WorkloadConfig& c) {
               return std::make_unique<ds::DllTmhp<TM>>(c.window, true, 64);
             });
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "fig5",
      "allocator impact, doubly list, 9-bit keys, {0,98}% lookups; M- = "
      "system malloc, P- = hohtm pool (paper: J- jemalloc, H- Hoard)");
  for (int lookup_pct : {0, 98}) {
    run_backend(env, /*pool=*/false, lookup_pct);
    run_backend(env, /*pool=*/true, lookup_pct);
  }
  hohtm::alloc::use_pool(false);
  return 0;
}
