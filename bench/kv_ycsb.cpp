// KV extension — the sharded transactional store under the five YCSB
// mixes (A 50/50, B 95/5, C read-only, D read-latest/insert, E
// scan/insert), one panel per mix, with the single-transaction baseline
// (RrNull, unbounded window) against representative reservation
// algorithms. --workload=X restricts the run to one mix.
//
// Rows use the 32-column KV layout (emit_kv_row): the standard cell
// columns plus kv_hits,kv_misses,kv_migrations,kv_resizes and the scan
// triple kv_scans,kv_scan_windows,kv_scan_resumes, so the resize
// traffic the D mix generates and the cursor handovers the E mix
// exercises are attributable per series.
//
// Doubles as the check.sh smoke stage: --smoke runs a single 1-thread
// YCSB-C cell and exits nonzero unless throughput is positive and every
// node the store allocated was freed (reclaim::Gauge back to baseline
// after the store dies) — the precise-reclamation end-to-end check —
// then re-runs the cell unfused vs fused (Options::fusion_cap) and
// requires fusion to measurably cut commits per op without recording a
// single extra abort. --workload=E --smoke runs the range-scan smoke
// instead: every scan result must be sorted and duplicate-free in
// canonical (hash, key) order, and kv_scan_resumes must be nonzero
// under a resize forced mid-scan (docs/KV.md, "Range scans").
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kv/contention.hpp"
#include "kv/workload.hpp"
#include "core/rr.hpp"
#include "reclaim/watchdog.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::kv::KvCellResult;
using hohtm::kv::KvWorkloadConfig;
using hohtm::kv::Mix;
using TM = hohtm::tm::Norec;
namespace kv = hohtm::kv;
namespace rr = hohtm::rr;

template <class RR>
std::unique_ptr<kv::Store<TM, RR>> make_store(int window,
                                              int fusion_cap = 0) {
  typename kv::Store<TM, RR>::Options opt;
  opt.window = window;
  opt.fusion_cap = fusion_cap;
  return std::make_unique<kv::Store<TM, RR>>(opt);
}

hohtm::harness::KvRowExtra extra(const KvCellResult& cell) {
  return hohtm::harness::KvRowExtra{cell.hits,       cell.misses,
                                    cell.migrations, cell.resizes,
                                    cell.scans,      cell.scan_windows,
                                    cell.scan_resumes};
}

template <class RR>
void series(const std::string& panel, const char* name,
            KvWorkloadConfig config, const BenchEnv& env, int window,
            int fusion_cap = 0) {
  for (int threads : env.thread_counts) {
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    config.footprint_ms = env.footprint_ms;
    const KvCellResult cell = hohtm::kv::run_kv_cell(
        config, [&] { return make_store<RR>(window, fusion_cap); });
    hohtm::harness::emit_kv_row("kv", panel, name, threads, cell.base,
                                extra(cell));
  }
}

void run_panel(const BenchEnv& env, Mix mix) {
  const std::string panel = kv::mix_name(mix);
  hohtm::harness::emit_panel_note("kv", panel);
  KvWorkloadConfig config;
  config.mix = mix;
  config.records = 2048;

  // Single-transaction baseline: no reservations, unbounded window.
  series<rr::RrNull<TM>>(panel, "HTM", config, env,
                         kv::Store<TM, rr::RrNull<TM>>::kUnbounded);
  series<rr::RrV<TM>>(panel, "RR-V", config, env, 16);
  // Same algorithm with the contention-gated fusion budget: quiet
  // threads merge adjacent windows (fused_windows column), contended
  // ones fall back to the small-window protocol (fusion_fallbacks).
  series<rr::RrV<TM>>(panel, "RR-V+fuse", config, env, 16,
                      /*fusion_cap=*/16);
  series<rr::RrXo<TM>>(panel, "RR-XO", config, env, 16);
  series<rr::RrFa<TM>>(panel, "RR-FA", config, env, 16);
}

/// Window-fusion smoke (PR 6 acceptance): the same low-contention
/// YCSB-C cell run unfused and then with a fusion budget. The table is
/// frozen at its initial size so chains are long enough that the
/// 4-node window actually hands over; fusion must then measurably cut
/// commits per op (boundary transactions elided), record fused windows
/// in tm::Stats, and add zero aborts (single-threaded: any abort would
/// be fusion's own fault).
int run_fusion_smoke() {
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  auto frozen_store = [&](int fusion_cap) {
    kv::Store<TM, rr::RrV<TM>>::Options opt;
    opt.window = 4;
    opt.max_log2_buckets = opt.log2_buckets;  // no growth: long chains
    opt.fusion_cap = fusion_cap;
    return std::make_unique<kv::Store<TM, rr::RrV<TM>>>(opt);
  };
  const KvCellResult unfused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(0); });
  hohtm::harness::emit_kv_row("kv", "fusion-smoke", "RR-V", 1,
                              unfused.base, extra(unfused));
  const KvCellResult fused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(16); });
  hohtm::harness::emit_kv_row("kv", "fusion-smoke", "RR-V+fuse", 1,
                              fused.base, extra(fused));
  const auto& uc = unfused.base.counters;
  const auto& fc = fused.base.counters;
  if (fc.commits >= uc.commits) {
    std::fprintf(stderr,
                 "kv fusion smoke: fused run committed %llu txs vs %llu "
                 "unfused — fusion elided nothing\n",
                 static_cast<unsigned long long>(fc.commits),
                 static_cast<unsigned long long>(uc.commits));
    return 1;
  }
  if (fc.fused_windows == 0) {
    std::fprintf(stderr, "kv fusion smoke: no fused windows recorded\n");
    return 1;
  }
  if (fc.aborts > uc.aborts) {
    std::fprintf(stderr,
                 "kv fusion smoke: fusion added aborts (%llu vs %llu)\n",
                 static_cast<unsigned long long>(fc.aborts),
                 static_cast<unsigned long long>(uc.aborts));
    return 1;
  }
  std::printf(
      "# kv fusion smoke ok: %llu commits fused vs %llu unfused, "
      "%llu boundaries elided, aborts %llu vs %llu\n",
      static_cast<unsigned long long>(fc.commits),
      static_cast<unsigned long long>(uc.commits),
      static_cast<unsigned long long>(fc.fused_windows),
      static_cast<unsigned long long>(fc.aborts),
      static_cast<unsigned long long>(uc.aborts));
  return 0;
}

/// Attribution smoke (PR 7 acceptance): a contended zipfian YCSB-A cell
/// whose updates overwrite (and therefore revoke) hot keys out from
/// under concurrent hand-over-hand readers. Asserts the causal-
/// attribution invariant — every reservation loss lands in exactly one
/// aborter bucket and one site bucket, so the buckets sum to res_lost
/// *exactly* — and that the contention heatmap names a hot cell.
int run_attribution_smoke() {
  hohtm::kv::ContentionMap::reset();
  KvWorkloadConfig config;
  config.mix = Mix::kA;
  config.records = 256;
  config.threads = 4;
  config.ops_per_thread = 4000;
  config.trials = 1;
  // Window of 4 on a frozen single-shard, single-bucket table: every op
  // traverses one long chain through many handovers, so overwrites
  // actually revoke parked positions.
  auto contended_store = [&] {
    kv::Store<TM, rr::RrV<TM>>::Options opt;
    opt.log2_shards = 0;
    opt.log2_buckets = 0;
    opt.max_log2_buckets = opt.log2_buckets;
    opt.window = 4;
    return std::make_unique<kv::Store<TM, rr::RrV<TM>>>(opt);
  };
  const KvCellResult cell = hohtm::kv::run_kv_cell(config, contended_store);
  hohtm::harness::emit_kv_row("kv", "attr-smoke", "RR-V", config.threads,
                              cell.base, extra(cell));
  const auto& c = cell.base.counters;
  const unsigned long long losses = c.reservation_losses;
  const unsigned long long attributed = c.attributed_losses();
  const unsigned long long unknown = c.unknown_losses();
  if (attributed + unknown != losses) {
    std::fprintf(stderr,
                 "kv attribution smoke: aborter buckets sum to %llu but "
                 "res_lost is %llu\n",
                 attributed + unknown, losses);
    return 1;
  }
  unsigned long long site_sum = 0;
  for (std::size_t i = 0; i < hohtm::tm::kRevokeSiteCount; ++i)
    site_sum += c.loss_by_site[i];
  if (site_sum != losses) {
    std::fprintf(stderr,
                 "kv attribution smoke: site buckets sum to %llu but "
                 "res_lost is %llu\n",
                 site_sum, losses);
    return 1;
  }
  const auto hot = hohtm::kv::ContentionMap::top(1);
  if (hot.empty() || hot[0].weight == 0) {
    std::fprintf(stderr, "kv attribution smoke: heatmap is empty\n");
    return 1;
  }
  std::printf(
      "# kv attribution smoke ok: %llu losses (%llu attributed, %llu "
      "unknown), hottest cell shard=%u cell=%u weight=%llu\n",
      losses, attributed, unknown, hot[0].shard, hot[0].cell,
      static_cast<unsigned long long>(hot[0].weight));
  return 0;
}

/// Watchdog smoke (PR 7 acceptance): park a thread *inside* a published
/// transaction window and drive Watchdog::check with explicit
/// timestamps — the second check must report the stall deterministically
/// (no sleeps, no wall-clock dependence).
int run_watchdog_smoke() {
  using hohtm::reclaim::Watchdog;
  Watchdog::reset_for_testing();
  std::atomic<int> entered{0};
  std::atomic<int> release{0};
  std::thread parked([&] {
    TM::atomically([&](auto&) {
      // begin() already published this thread's quiescence slot; block
      // mid-window until the checks below have run.
      entered.store(1, std::memory_order_release);
      entered.notify_all();
      release.wait(0);
    });
  });
  while (entered.load(std::memory_order_acquire) == 0) entered.wait(0);
  const std::uint64_t t0 = 1;  // explicit clock: deterministic detection
  Watchdog::check(t0);         // arm baselines
  const Watchdog::Report report =
      Watchdog::check(t0 + Watchdog::threshold_ns() + 1);
  release.store(1, std::memory_order_release);
  release.notify_all();
  parked.join();
  if (report.stalled_threads < 1 || Watchdog::stall_events() == 0) {
    std::fprintf(stderr,
                 "kv watchdog smoke: parked thread not reported (active=%d "
                 "stalled=%d events=%llu)\n",
                 report.active_threads, report.stalled_threads,
                 static_cast<unsigned long long>(Watchdog::stall_events()));
    return 1;
  }
  std::printf(
      "# kv watchdog smoke ok: %d active, %d stalled, %llu stall events\n",
      report.active_threads, report.stalled_threads,
      static_cast<unsigned long long>(Watchdog::stall_events()));
  return 0;
}

/// check.sh smoke: one small single-thread YCSB-C cell; asserts work got
/// done and that destroying the store returns the gauge to baseline.
int run_smoke() {
  const long long baseline = hohtm::reclaim::Gauge::live();
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  hohtm::harness::emit_kv_header("kv", "smoke: 1-thread YCSB-C, RR-V");
  const KvCellResult cell = hohtm::kv::run_kv_cell(
      config, [&] { return make_store<rr::RrV<TM>>(16); });
  hohtm::harness::emit_kv_row("kv", "smoke", "RR-V", 1, cell.base,
                              extra(cell));
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (cell.base.mops.mean <= 0.0) {
    std::fprintf(stderr, "kv smoke: zero throughput\n");
    return 1;
  }
  if (cell.hits == 0) {
    std::fprintf(stderr, "kv smoke: no read ever hit\n");
    return 1;
  }
  if (leaked != 0) {
    std::fprintf(stderr, "kv smoke: %lld objects leaked past store teardown\n",
                 leaked);
    return 1;
  }
  std::printf("# kv smoke ok: %llu hits, %llu buckets migrated, 0 leaks\n",
              static_cast<unsigned long long>(cell.hits),
              static_cast<unsigned long long>(cell.migrations));
  if (int rc = run_fusion_smoke(); rc != 0) return rc;
  if (int rc = run_attribution_smoke(); rc != 0) return rc;
  return run_watchdog_smoke();
}

/// Canonical scan order: (hash_bytes(key), key), the total order every
/// scan result must be strictly ascending in (docs/KV.md, "Range
/// scans").
bool canon_less(const std::string& a, const std::string& b) {
  const std::uint64_t ha = kv::detail::hash_bytes(a);
  const std::uint64_t hb = kv::detail::hash_bytes(b);
  if (ha != hb) return ha < hb;
  return a < b;
}

/// Range-scan smoke (--workload=E --smoke, PR 8 acceptance). All
/// single-threaded and deterministic:
///  1. a bounded scan_from at a mid-canonical-order key must return
///     exactly the expected slice of the prefill, in order;
///  2. a whole-store scan whose visitor re-enters the store mid-scan
///     with a 512-key insert burst — forcing table grows underneath the
///     parked cursor — must stay strictly sorted and duplicate-free,
///     must still deliver every prefill key, must observe no phantoms,
///     and must record kv_scan_resumes > 0 (the reseeks really ran);
///  3. the store must tear down with zero leaked objects;
///  4. a YCSB-E cell through the harness must emit a CSV row whose scan
///     columns are live (kv_scans > 0, windows >= scans).
int run_scan_smoke() {
  using ScanStore = kv::Store<TM, rr::RrV<TM>>;
  hohtm::harness::emit_kv_header("kv", "smoke: YCSB-E range scans, RR-V");
  const long long baseline = hohtm::reclaim::Gauge::live();
  {
    ScanStore::Options opt;
    opt.window = 4;  // small windows: many handovers per bucket
    ScanStore store(opt);
    const std::size_t kPrefill = 256;
    std::vector<std::string> prefill;
    prefill.reserve(kPrefill);
    for (std::size_t r = 0; r < kPrefill; ++r) {
      prefill.push_back(kv::make_key(r));
      store.put(prefill.back(), kv::make_value(r, 0));
    }
    store.finish_migration();
    std::sort(prefill.begin(), prefill.end(), canon_less);

    // 1. Bounded scan_from: exactly the canonical slice.
    const std::size_t at = kPrefill / 2;
    const std::size_t want = 10;
    std::vector<std::string> slice;
    store.scan_from(prefill[at], want,
                    [&](const std::string& k, const std::string&) {
                      slice.push_back(k);
                    });
    if (slice.size() != want ||
        !std::equal(slice.begin(), slice.end(), prefill.begin() + at)) {
      std::fprintf(stderr,
                   "kv scan smoke: scan_from returned %zu keys, not the "
                   "expected canonical slice\n",
                   slice.size());
      return 1;
    }

    // 2. Full scan with a re-entrant visitor that grows the table
    //    mid-scan: the cursor handover must absorb both the visitor's
    //    reservation reuse and the resize.
    const std::uint64_t swaps_before = store.tables_swapped();
    const std::uint64_t resumes_before = store.scan_resumes();
    std::vector<std::string> seen;
    std::set<std::string> burst;
    store.scan(std::numeric_limits<std::size_t>::max(),
               [&](const std::string& k, const std::string&) {
                 seen.push_back(k);
                 if (seen.size() == 64 && burst.empty())
                   for (std::uint64_t r = 0; r < 512; ++r) {
                     const std::uint64_t rank = 100000 + r;
                     burst.insert(kv::make_key(rank));
                     store.put(kv::make_key(rank), kv::make_value(rank, 0));
                   }
               });
    for (std::size_t i = 1; i < seen.size(); ++i)
      if (!canon_less(seen[i - 1], seen[i])) {
        std::fprintf(stderr,
                     "kv scan smoke: result out of canonical order (or "
                     "duplicated) at index %zu\n",
                     i);
        return 1;
      }
    std::set<std::string> seen_set(seen.begin(), seen.end());
    for (const std::string& k : prefill)
      if (seen_set.count(k) == 0) {
        std::fprintf(stderr,
                     "kv scan smoke: prefill key missing from full scan\n");
        return 1;
      }
    for (const std::string& k : seen)
      if (burst.count(k) == 0 &&
          !std::binary_search(prefill.begin(), prefill.end(), k,
                              canon_less)) {
        std::fprintf(stderr, "kv scan smoke: phantom key in scan result\n");
        return 1;
      }
    if (store.tables_swapped() == swaps_before) {
      std::fprintf(stderr,
                   "kv scan smoke: the insert burst forced no resize — the "
                   "scenario lost its adversary\n");
      return 1;
    }
    if (store.scan_resumes() == resumes_before) {
      std::fprintf(stderr,
                   "kv scan smoke: no cursor resume recorded under forced "
                   "resize\n");
      return 1;
    }
    std::printf(
        "# kv scan smoke ok: %zu keys in canonical order, %llu resumes, "
        "%llu tables swapped mid-scan\n",
        seen.size(),
        static_cast<unsigned long long>(store.scan_resumes() -
                                        resumes_before),
        static_cast<unsigned long long>(store.tables_swapped() -
                                        swaps_before));
  }
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (leaked != 0) {
    std::fprintf(stderr,
                 "kv scan smoke: %lld objects leaked past store teardown\n",
                 leaked);
    return 1;
  }

  // 4. One YCSB-E cell through the harness, so the CSV pipeline carries
  //    live scan columns end to end.
  KvWorkloadConfig config;
  config.mix = Mix::kE;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 500;
  config.trials = 1;
  config.max_scan_len = 32;
  const KvCellResult cell = hohtm::kv::run_kv_cell(
      config, [&] { return make_store<rr::RrV<TM>>(8); });
  hohtm::harness::emit_kv_row("kv", "scan-smoke", "RR-V", 1, cell.base,
                              extra(cell));
  if (cell.scans == 0 || cell.scan_windows < cell.scans) {
    std::fprintf(stderr,
                 "kv scan smoke: E cell scan counters dead (scans=%llu "
                 "windows=%llu)\n",
                 static_cast<unsigned long long>(cell.scans),
                 static_cast<unsigned long long>(cell.scan_windows));
    return 1;
  }
  std::printf("# kv scan smoke ok: E cell ran %llu scans over %llu windows "
              "(%llu resumes)\n",
              static_cast<unsigned long long>(cell.scans),
              static_cast<unsigned long long>(cell.scan_windows),
              static_cast<unsigned long long>(cell.scan_resumes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool have_mix = false;
  Mix only_mix = Mix::kA;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--workload=", 11) == 0 &&
               argv[i][11] != '\0' && argv[i][12] == '\0') {
      switch (argv[i][11]) {
        case 'A': only_mix = Mix::kA; break;
        case 'B': only_mix = Mix::kB; break;
        case 'C': only_mix = Mix::kC; break;
        case 'D': only_mix = Mix::kD; break;
        case 'E': only_mix = Mix::kE; break;
        default:
          std::fprintf(stderr, "unknown workload: %s (want A..E)\n", argv[i]);
          return 2;
      }
      have_mix = true;
    } else {
      std::fprintf(stderr, "usage: kv_ycsb [--workload=A..E] [--smoke]\n");
      return 2;
    }
  }
  if (smoke) {
    if (have_mix && only_mix == Mix::kE) return run_scan_smoke();
    return run_smoke();
  }
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_kv_header(
      "kv", "sharded KV store: 2048 records, zipfian(0.99); panels = YCSB "
            "A/B/C/D/E mixes");
  if (have_mix) {
    run_panel(env, only_mix);
    return 0;
  }
  for (Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD, Mix::kE})
    run_panel(env, mix);
  return 0;
}
