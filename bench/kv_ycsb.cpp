// KV extension — the sharded transactional store under the four core
// YCSB mixes (A 50/50, B 95/5, C read-only, D read-latest/insert), one
// panel per mix, with the single-transaction baseline (RrNull, unbounded
// window) against representative reservation algorithms.
//
// Rows use the 24-column KV layout (emit_kv_row): the standard cell
// columns plus kv_hits,kv_misses,kv_migrations,kv_resizes, so the
// resize traffic the D mix generates is attributable per series.
//
// Doubles as the check.sh smoke stage: --smoke runs a single 1-thread
// YCSB-C cell and exits nonzero unless throughput is positive and every
// node the store allocated was freed (reclaim::Gauge back to baseline
// after the store dies) — the precise-reclamation end-to-end check.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "kv/workload.hpp"
#include "core/rr.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::kv::KvCellResult;
using hohtm::kv::KvWorkloadConfig;
using hohtm::kv::Mix;
using TM = hohtm::tm::Norec;
namespace kv = hohtm::kv;
namespace rr = hohtm::rr;

template <class RR>
std::unique_ptr<kv::Store<TM, RR>> make_store(int window) {
  typename kv::Store<TM, RR>::Options opt;
  opt.window = window;
  return std::make_unique<kv::Store<TM, RR>>(opt);
}

template <class RR>
void series(const std::string& panel, const char* name,
            KvWorkloadConfig config, const BenchEnv& env, int window) {
  for (int threads : env.thread_counts) {
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    config.footprint_ms = env.footprint_ms;
    const KvCellResult cell = hohtm::kv::run_kv_cell(
        config, [&] { return make_store<RR>(window); });
    hohtm::harness::emit_kv_row(
        "kv", panel, name, threads, cell.base,
        hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                   cell.resizes});
  }
}

void run_panel(const BenchEnv& env, Mix mix) {
  const std::string panel = kv::mix_name(mix);
  hohtm::harness::emit_panel_note("kv", panel);
  KvWorkloadConfig config;
  config.mix = mix;
  config.records = 2048;

  // Single-transaction baseline: no reservations, unbounded window.
  series<rr::RrNull<TM>>(panel, "HTM", config, env,
                         kv::Store<TM, rr::RrNull<TM>>::kUnbounded);
  series<rr::RrV<TM>>(panel, "RR-V", config, env, 16);
  series<rr::RrXo<TM>>(panel, "RR-XO", config, env, 16);
  series<rr::RrFa<TM>>(panel, "RR-FA", config, env, 16);
}

/// check.sh smoke: one small single-thread YCSB-C cell; asserts work got
/// done and that destroying the store returns the gauge to baseline.
int run_smoke() {
  const long long baseline = hohtm::reclaim::Gauge::live();
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  hohtm::harness::emit_kv_header("kv", "smoke: 1-thread YCSB-C, RR-V");
  const KvCellResult cell = hohtm::kv::run_kv_cell(
      config, [&] { return make_store<rr::RrV<TM>>(16); });
  hohtm::harness::emit_kv_row(
      "kv", "smoke", "RR-V", 1, cell.base,
      hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                 cell.resizes});
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (cell.base.mops.mean <= 0.0) {
    std::fprintf(stderr, "kv smoke: zero throughput\n");
    return 1;
  }
  if (cell.hits == 0) {
    std::fprintf(stderr, "kv smoke: no read ever hit\n");
    return 1;
  }
  if (leaked != 0) {
    std::fprintf(stderr, "kv smoke: %lld objects leaked past store teardown\n",
                 leaked);
    return 1;
  }
  std::printf("# kv smoke ok: %llu hits, %llu buckets migrated, 0 leaks\n",
              static_cast<unsigned long long>(cell.hits),
              static_cast<unsigned long long>(cell.migrations));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_kv_header(
      "kv", "sharded KV store: 2048 records, zipfian(0.99); panels = YCSB "
            "A/B/C/D mixes");
  for (Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD}) run_panel(env, mix);
  return 0;
}
