// KV extension — the sharded transactional store under the four core
// YCSB mixes (A 50/50, B 95/5, C read-only, D read-latest/insert), one
// panel per mix, with the single-transaction baseline (RrNull, unbounded
// window) against representative reservation algorithms.
//
// Rows use the 26-column KV layout (emit_kv_row): the standard cell
// columns plus kv_hits,kv_misses,kv_migrations,kv_resizes, so the
// resize traffic the D mix generates is attributable per series.
//
// Doubles as the check.sh smoke stage: --smoke runs a single 1-thread
// YCSB-C cell and exits nonzero unless throughput is positive and every
// node the store allocated was freed (reclaim::Gauge back to baseline
// after the store dies) — the precise-reclamation end-to-end check —
// then re-runs the cell unfused vs fused (Options::fusion_cap) and
// requires fusion to measurably cut commits per op without recording a
// single extra abort.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "kv/workload.hpp"
#include "core/rr.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::kv::KvCellResult;
using hohtm::kv::KvWorkloadConfig;
using hohtm::kv::Mix;
using TM = hohtm::tm::Norec;
namespace kv = hohtm::kv;
namespace rr = hohtm::rr;

template <class RR>
std::unique_ptr<kv::Store<TM, RR>> make_store(int window,
                                              int fusion_cap = 0) {
  typename kv::Store<TM, RR>::Options opt;
  opt.window = window;
  opt.fusion_cap = fusion_cap;
  return std::make_unique<kv::Store<TM, RR>>(opt);
}

template <class RR>
void series(const std::string& panel, const char* name,
            KvWorkloadConfig config, const BenchEnv& env, int window,
            int fusion_cap = 0) {
  for (int threads : env.thread_counts) {
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    config.footprint_ms = env.footprint_ms;
    const KvCellResult cell = hohtm::kv::run_kv_cell(
        config, [&] { return make_store<RR>(window, fusion_cap); });
    hohtm::harness::emit_kv_row(
        "kv", panel, name, threads, cell.base,
        hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                   cell.resizes});
  }
}

void run_panel(const BenchEnv& env, Mix mix) {
  const std::string panel = kv::mix_name(mix);
  hohtm::harness::emit_panel_note("kv", panel);
  KvWorkloadConfig config;
  config.mix = mix;
  config.records = 2048;

  // Single-transaction baseline: no reservations, unbounded window.
  series<rr::RrNull<TM>>(panel, "HTM", config, env,
                         kv::Store<TM, rr::RrNull<TM>>::kUnbounded);
  series<rr::RrV<TM>>(panel, "RR-V", config, env, 16);
  // Same algorithm with the contention-gated fusion budget: quiet
  // threads merge adjacent windows (fused_windows column), contended
  // ones fall back to the small-window protocol (fusion_fallbacks).
  series<rr::RrV<TM>>(panel, "RR-V+fuse", config, env, 16,
                      /*fusion_cap=*/16);
  series<rr::RrXo<TM>>(panel, "RR-XO", config, env, 16);
  series<rr::RrFa<TM>>(panel, "RR-FA", config, env, 16);
}

/// Window-fusion smoke (PR 6 acceptance): the same low-contention
/// YCSB-C cell run unfused and then with a fusion budget. The table is
/// frozen at its initial size so chains are long enough that the
/// 4-node window actually hands over; fusion must then measurably cut
/// commits per op (boundary transactions elided), record fused windows
/// in tm::Stats, and add zero aborts (single-threaded: any abort would
/// be fusion's own fault).
int run_fusion_smoke() {
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  auto frozen_store = [&](int fusion_cap) {
    kv::Store<TM, rr::RrV<TM>>::Options opt;
    opt.window = 4;
    opt.max_log2_buckets = opt.log2_buckets;  // no growth: long chains
    opt.fusion_cap = fusion_cap;
    return std::make_unique<kv::Store<TM, rr::RrV<TM>>>(opt);
  };
  const KvCellResult unfused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(0); });
  hohtm::harness::emit_kv_row(
      "kv", "fusion-smoke", "RR-V", 1, unfused.base,
      hohtm::harness::KvRowExtra{unfused.hits, unfused.misses,
                                 unfused.migrations, unfused.resizes});
  const KvCellResult fused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(16); });
  hohtm::harness::emit_kv_row(
      "kv", "fusion-smoke", "RR-V+fuse", 1, fused.base,
      hohtm::harness::KvRowExtra{fused.hits, fused.misses, fused.migrations,
                                 fused.resizes});
  const auto& uc = unfused.base.counters;
  const auto& fc = fused.base.counters;
  if (fc.commits >= uc.commits) {
    std::fprintf(stderr,
                 "kv fusion smoke: fused run committed %llu txs vs %llu "
                 "unfused — fusion elided nothing\n",
                 static_cast<unsigned long long>(fc.commits),
                 static_cast<unsigned long long>(uc.commits));
    return 1;
  }
  if (fc.fused_windows == 0) {
    std::fprintf(stderr, "kv fusion smoke: no fused windows recorded\n");
    return 1;
  }
  if (fc.aborts > uc.aborts) {
    std::fprintf(stderr,
                 "kv fusion smoke: fusion added aborts (%llu vs %llu)\n",
                 static_cast<unsigned long long>(fc.aborts),
                 static_cast<unsigned long long>(uc.aborts));
    return 1;
  }
  std::printf(
      "# kv fusion smoke ok: %llu commits fused vs %llu unfused, "
      "%llu boundaries elided, aborts %llu vs %llu\n",
      static_cast<unsigned long long>(fc.commits),
      static_cast<unsigned long long>(uc.commits),
      static_cast<unsigned long long>(fc.fused_windows),
      static_cast<unsigned long long>(fc.aborts),
      static_cast<unsigned long long>(uc.aborts));
  return 0;
}

/// check.sh smoke: one small single-thread YCSB-C cell; asserts work got
/// done and that destroying the store returns the gauge to baseline.
int run_smoke() {
  const long long baseline = hohtm::reclaim::Gauge::live();
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  hohtm::harness::emit_kv_header("kv", "smoke: 1-thread YCSB-C, RR-V");
  const KvCellResult cell = hohtm::kv::run_kv_cell(
      config, [&] { return make_store<rr::RrV<TM>>(16); });
  hohtm::harness::emit_kv_row(
      "kv", "smoke", "RR-V", 1, cell.base,
      hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                 cell.resizes});
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (cell.base.mops.mean <= 0.0) {
    std::fprintf(stderr, "kv smoke: zero throughput\n");
    return 1;
  }
  if (cell.hits == 0) {
    std::fprintf(stderr, "kv smoke: no read ever hit\n");
    return 1;
  }
  if (leaked != 0) {
    std::fprintf(stderr, "kv smoke: %lld objects leaked past store teardown\n",
                 leaked);
    return 1;
  }
  std::printf("# kv smoke ok: %llu hits, %llu buckets migrated, 0 leaks\n",
              static_cast<unsigned long long>(cell.hits),
              static_cast<unsigned long long>(cell.migrations));
  return run_fusion_smoke();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_kv_header(
      "kv", "sharded KV store: 2048 records, zipfian(0.99); panels = YCSB "
            "A/B/C/D mixes");
  for (Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD}) run_panel(env, mix);
  return 0;
}
