// KV extension — the sharded transactional store under the four core
// YCSB mixes (A 50/50, B 95/5, C read-only, D read-latest/insert), one
// panel per mix, with the single-transaction baseline (RrNull, unbounded
// window) against representative reservation algorithms.
//
// Rows use the 26-column KV layout (emit_kv_row): the standard cell
// columns plus kv_hits,kv_misses,kv_migrations,kv_resizes, so the
// resize traffic the D mix generates is attributable per series.
//
// Doubles as the check.sh smoke stage: --smoke runs a single 1-thread
// YCSB-C cell and exits nonzero unless throughput is positive and every
// node the store allocated was freed (reclaim::Gauge back to baseline
// after the store dies) — the precise-reclamation end-to-end check —
// then re-runs the cell unfused vs fused (Options::fusion_cap) and
// requires fusion to measurably cut commits per op without recording a
// single extra abort.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "kv/contention.hpp"
#include "kv/workload.hpp"
#include "core/rr.hpp"
#include "reclaim/watchdog.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::kv::KvCellResult;
using hohtm::kv::KvWorkloadConfig;
using hohtm::kv::Mix;
using TM = hohtm::tm::Norec;
namespace kv = hohtm::kv;
namespace rr = hohtm::rr;

template <class RR>
std::unique_ptr<kv::Store<TM, RR>> make_store(int window,
                                              int fusion_cap = 0) {
  typename kv::Store<TM, RR>::Options opt;
  opt.window = window;
  opt.fusion_cap = fusion_cap;
  return std::make_unique<kv::Store<TM, RR>>(opt);
}

template <class RR>
void series(const std::string& panel, const char* name,
            KvWorkloadConfig config, const BenchEnv& env, int window,
            int fusion_cap = 0) {
  for (int threads : env.thread_counts) {
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    config.footprint_ms = env.footprint_ms;
    const KvCellResult cell = hohtm::kv::run_kv_cell(
        config, [&] { return make_store<RR>(window, fusion_cap); });
    hohtm::harness::emit_kv_row(
        "kv", panel, name, threads, cell.base,
        hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                   cell.resizes});
  }
}

void run_panel(const BenchEnv& env, Mix mix) {
  const std::string panel = kv::mix_name(mix);
  hohtm::harness::emit_panel_note("kv", panel);
  KvWorkloadConfig config;
  config.mix = mix;
  config.records = 2048;

  // Single-transaction baseline: no reservations, unbounded window.
  series<rr::RrNull<TM>>(panel, "HTM", config, env,
                         kv::Store<TM, rr::RrNull<TM>>::kUnbounded);
  series<rr::RrV<TM>>(panel, "RR-V", config, env, 16);
  // Same algorithm with the contention-gated fusion budget: quiet
  // threads merge adjacent windows (fused_windows column), contended
  // ones fall back to the small-window protocol (fusion_fallbacks).
  series<rr::RrV<TM>>(panel, "RR-V+fuse", config, env, 16,
                      /*fusion_cap=*/16);
  series<rr::RrXo<TM>>(panel, "RR-XO", config, env, 16);
  series<rr::RrFa<TM>>(panel, "RR-FA", config, env, 16);
}

/// Window-fusion smoke (PR 6 acceptance): the same low-contention
/// YCSB-C cell run unfused and then with a fusion budget. The table is
/// frozen at its initial size so chains are long enough that the
/// 4-node window actually hands over; fusion must then measurably cut
/// commits per op (boundary transactions elided), record fused windows
/// in tm::Stats, and add zero aborts (single-threaded: any abort would
/// be fusion's own fault).
int run_fusion_smoke() {
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  auto frozen_store = [&](int fusion_cap) {
    kv::Store<TM, rr::RrV<TM>>::Options opt;
    opt.window = 4;
    opt.max_log2_buckets = opt.log2_buckets;  // no growth: long chains
    opt.fusion_cap = fusion_cap;
    return std::make_unique<kv::Store<TM, rr::RrV<TM>>>(opt);
  };
  const KvCellResult unfused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(0); });
  hohtm::harness::emit_kv_row(
      "kv", "fusion-smoke", "RR-V", 1, unfused.base,
      hohtm::harness::KvRowExtra{unfused.hits, unfused.misses,
                                 unfused.migrations, unfused.resizes});
  const KvCellResult fused = hohtm::kv::run_kv_cell(
      config, [&] { return frozen_store(16); });
  hohtm::harness::emit_kv_row(
      "kv", "fusion-smoke", "RR-V+fuse", 1, fused.base,
      hohtm::harness::KvRowExtra{fused.hits, fused.misses, fused.migrations,
                                 fused.resizes});
  const auto& uc = unfused.base.counters;
  const auto& fc = fused.base.counters;
  if (fc.commits >= uc.commits) {
    std::fprintf(stderr,
                 "kv fusion smoke: fused run committed %llu txs vs %llu "
                 "unfused — fusion elided nothing\n",
                 static_cast<unsigned long long>(fc.commits),
                 static_cast<unsigned long long>(uc.commits));
    return 1;
  }
  if (fc.fused_windows == 0) {
    std::fprintf(stderr, "kv fusion smoke: no fused windows recorded\n");
    return 1;
  }
  if (fc.aborts > uc.aborts) {
    std::fprintf(stderr,
                 "kv fusion smoke: fusion added aborts (%llu vs %llu)\n",
                 static_cast<unsigned long long>(fc.aborts),
                 static_cast<unsigned long long>(uc.aborts));
    return 1;
  }
  std::printf(
      "# kv fusion smoke ok: %llu commits fused vs %llu unfused, "
      "%llu boundaries elided, aborts %llu vs %llu\n",
      static_cast<unsigned long long>(fc.commits),
      static_cast<unsigned long long>(uc.commits),
      static_cast<unsigned long long>(fc.fused_windows),
      static_cast<unsigned long long>(fc.aborts),
      static_cast<unsigned long long>(uc.aborts));
  return 0;
}

/// Attribution smoke (PR 7 acceptance): a contended zipfian YCSB-A cell
/// whose updates overwrite (and therefore revoke) hot keys out from
/// under concurrent hand-over-hand readers. Asserts the causal-
/// attribution invariant — every reservation loss lands in exactly one
/// aborter bucket and one site bucket, so the buckets sum to res_lost
/// *exactly* — and that the contention heatmap names a hot cell.
int run_attribution_smoke() {
  hohtm::kv::ContentionMap::reset();
  KvWorkloadConfig config;
  config.mix = Mix::kA;
  config.records = 256;
  config.threads = 4;
  config.ops_per_thread = 4000;
  config.trials = 1;
  // Window of 4 on a frozen single-shard, single-bucket table: every op
  // traverses one long chain through many handovers, so overwrites
  // actually revoke parked positions.
  auto contended_store = [&] {
    kv::Store<TM, rr::RrV<TM>>::Options opt;
    opt.log2_shards = 0;
    opt.log2_buckets = 0;
    opt.max_log2_buckets = opt.log2_buckets;
    opt.window = 4;
    return std::make_unique<kv::Store<TM, rr::RrV<TM>>>(opt);
  };
  const KvCellResult cell = hohtm::kv::run_kv_cell(config, contended_store);
  hohtm::harness::emit_kv_row(
      "kv", "attr-smoke", "RR-V", config.threads, cell.base,
      hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                 cell.resizes});
  const auto& c = cell.base.counters;
  const unsigned long long losses = c.reservation_losses;
  const unsigned long long attributed = c.attributed_losses();
  const unsigned long long unknown = c.unknown_losses();
  if (attributed + unknown != losses) {
    std::fprintf(stderr,
                 "kv attribution smoke: aborter buckets sum to %llu but "
                 "res_lost is %llu\n",
                 attributed + unknown, losses);
    return 1;
  }
  unsigned long long site_sum = 0;
  for (std::size_t i = 0; i < hohtm::tm::kRevokeSiteCount; ++i)
    site_sum += c.loss_by_site[i];
  if (site_sum != losses) {
    std::fprintf(stderr,
                 "kv attribution smoke: site buckets sum to %llu but "
                 "res_lost is %llu\n",
                 site_sum, losses);
    return 1;
  }
  const auto hot = hohtm::kv::ContentionMap::top(1);
  if (hot.empty() || hot[0].weight == 0) {
    std::fprintf(stderr, "kv attribution smoke: heatmap is empty\n");
    return 1;
  }
  std::printf(
      "# kv attribution smoke ok: %llu losses (%llu attributed, %llu "
      "unknown), hottest cell shard=%u cell=%u weight=%llu\n",
      losses, attributed, unknown, hot[0].shard, hot[0].cell,
      static_cast<unsigned long long>(hot[0].weight));
  return 0;
}

/// Watchdog smoke (PR 7 acceptance): park a thread *inside* a published
/// transaction window and drive Watchdog::check with explicit
/// timestamps — the second check must report the stall deterministically
/// (no sleeps, no wall-clock dependence).
int run_watchdog_smoke() {
  using hohtm::reclaim::Watchdog;
  Watchdog::reset_for_testing();
  std::atomic<int> entered{0};
  std::atomic<int> release{0};
  std::thread parked([&] {
    TM::atomically([&](auto&) {
      // begin() already published this thread's quiescence slot; block
      // mid-window until the checks below have run.
      entered.store(1, std::memory_order_release);
      entered.notify_all();
      release.wait(0);
    });
  });
  while (entered.load(std::memory_order_acquire) == 0) entered.wait(0);
  const std::uint64_t t0 = 1;  // explicit clock: deterministic detection
  Watchdog::check(t0);         // arm baselines
  const Watchdog::Report report =
      Watchdog::check(t0 + Watchdog::threshold_ns() + 1);
  release.store(1, std::memory_order_release);
  release.notify_all();
  parked.join();
  if (report.stalled_threads < 1 || Watchdog::stall_events() == 0) {
    std::fprintf(stderr,
                 "kv watchdog smoke: parked thread not reported (active=%d "
                 "stalled=%d events=%llu)\n",
                 report.active_threads, report.stalled_threads,
                 static_cast<unsigned long long>(Watchdog::stall_events()));
    return 1;
  }
  std::printf(
      "# kv watchdog smoke ok: %d active, %d stalled, %llu stall events\n",
      report.active_threads, report.stalled_threads,
      static_cast<unsigned long long>(Watchdog::stall_events()));
  return 0;
}

/// check.sh smoke: one small single-thread YCSB-C cell; asserts work got
/// done and that destroying the store returns the gauge to baseline.
int run_smoke() {
  const long long baseline = hohtm::reclaim::Gauge::live();
  KvWorkloadConfig config;
  config.mix = Mix::kC;
  config.records = 512;
  config.threads = 1;
  config.ops_per_thread = 2000;
  config.trials = 1;
  hohtm::harness::emit_kv_header("kv", "smoke: 1-thread YCSB-C, RR-V");
  const KvCellResult cell = hohtm::kv::run_kv_cell(
      config, [&] { return make_store<rr::RrV<TM>>(16); });
  hohtm::harness::emit_kv_row(
      "kv", "smoke", "RR-V", 1, cell.base,
      hohtm::harness::KvRowExtra{cell.hits, cell.misses, cell.migrations,
                                 cell.resizes});
  const long long leaked = hohtm::reclaim::Gauge::live() - baseline;
  if (cell.base.mops.mean <= 0.0) {
    std::fprintf(stderr, "kv smoke: zero throughput\n");
    return 1;
  }
  if (cell.hits == 0) {
    std::fprintf(stderr, "kv smoke: no read ever hit\n");
    return 1;
  }
  if (leaked != 0) {
    std::fprintf(stderr, "kv smoke: %lld objects leaked past store teardown\n",
                 leaked);
    return 1;
  }
  std::printf("# kv smoke ok: %llu hits, %llu buckets migrated, 0 leaks\n",
              static_cast<unsigned long long>(cell.hits),
              static_cast<unsigned long long>(cell.migrations));
  if (int rc = run_fusion_smoke(); rc != 0) return rc;
  if (int rc = run_attribution_smoke(); rc != 0) return rc;
  return run_watchdog_smoke();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_kv_header(
      "kv", "sharded KV store: 2048 records, zipfian(0.99); panels = YCSB "
            "A/B/C/D mixes");
  for (Mix mix : {Mix::kA, Mix::kB, Mix::kC, Mix::kD}) run_panel(env, mix);
  return 0;
}
