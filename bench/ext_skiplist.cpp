// Extension E2 — skip list ("balanced trees" future work).
//
// Lookups are hand-over-hand (reservation-resumed); updates are single
// short transactions. Compares the reservation variants against the
// all-single-transaction baseline at lookup-heavy mixes, where the HOH
// lookups are the differentiator, and at write-heavy mixes, where the
// identical update paths should converge.
//
// Expected shape: at 80–98% lookups the HOH variants degrade less as
// threads rise (lookup transactions stay small and restart cheaply);
// at 0% lookups all variants — sharing the same update path — bunch up.
#include <memory>

#include "bench_common.hpp"
#include "ds/skiplist.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void reservation_series(const std::string& panel, const char* name,
                        const WorkloadConfig& base, const BenchEnv& env) {
  run_series("extE2", panel, name, base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::SkipList<TM, RR>>(c.window);
  });
}

void run_panel(const BenchEnv& env, int key_bits, int lookup_pct) {
  const std::string panel =
      std::to_string(key_bits) + "bit-" + std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("extE2", panel);
  WorkloadConfig base;
  base.key_bits = key_bits;
  base.lookup_pct = lookup_pct;

  run_series("extE2", panel, "HTM", base, env, [](const WorkloadConfig&) {
    using List = ds::SkipList<TM, rr::RrNull<TM>>;
    return std::make_unique<List>(List::kUnbounded);
  });
  reservation_series<rr::RrV<TM>>(panel, "RR-V", base, env);
  reservation_series<rr::RrXo<TM>>(panel, "RR-XO", base, env);
  reservation_series<rr::RrFa<TM>>(panel, "RR-FA", base, env);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "extE2",
      "skip list extension: panels {10,14}-bit x {0,80,98}% lookups");
  for (int key_bits : {10, 14})
    for (int lookup_pct : {0, 80, 98}) run_panel(env, key_bits, lookup_pct);
  return 0;
}
