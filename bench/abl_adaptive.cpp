// Ablation A5 — adaptive window tuning (implemented future work).
//
// The paper tuned W per (structure, thread count) by hand and proposed
// contention-driven tuning as future work (Section 5.2). This bench pits
// fixed windows {2, 8, 16, 32} against the WindowTuner's dynamic policy
// on the singly linked list, 10-bit keys, 33% lookups.
//
// Expected shape: each fixed window wins somewhere (large at 1 thread,
// small at 8); adaptive tracks within a modest margin of the best fixed
// choice at every thread count — the point of the feature is removing
// the per-deployment tuning table, not beating it.
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
using List = hohtm::ds::SllHoh<TM, hohtm::rr::RrV<TM>>;

void run_fixed(const BenchEnv& env, int window) {
  for (int threads : env.thread_counts) {
    WorkloadConfig config;
    config.key_bits = 10;
    config.lookup_pct = 33;
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    const auto cell = hohtm::harness::run_cell(
        config, [&] { return std::make_unique<List>(window); });
    hohtm::harness::emit_row("ablA5", "fixed-W" + std::to_string(window),
                             "RR-V", threads, cell);
  }
}

void run_adaptive(const BenchEnv& env) {
  for (int threads : env.thread_counts) {
    WorkloadConfig config;
    config.key_bits = 10;
    config.lookup_pct = 33;
    config.threads = threads;
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    const auto cell = hohtm::harness::run_cell(config, [&] {
      auto list = std::make_unique<List>(8);
      list->enable_adaptive_window(2, 32);
      return list;
    });
    hohtm::harness::emit_row("ablA5", "adaptive-2..32", "RR-V", threads, cell);
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA5",
      "adaptive vs fixed window, singly list, RR-V, 10-bit keys, 33% "
      "lookups");
  for (int window : {2, 8, 16, 32}) run_fixed(env, window);
  run_adaptive(env);
  return 0;
}
