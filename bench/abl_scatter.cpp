// Ablation A6 — the scatter optimization.
//
// Listing 5's `scatter` randomizes the length of each operation's first
// window so threads do not pause (and reserve) on the same nodes in lock
// step. The paper: "for RR-XO, scattering the initial window size is an
// important optimization, since threads will otherwise conflict when
// reserving nodes" (Section 5.2; RR-XO's Reserve *writes* the ownership
// slot, so colliding reservations abort each other).
//
// Expected shape: scatter on/off is near-noise for RR-V (Reserve writes
// nothing shared) but visibly helps RR-XO at higher thread counts.
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void scatter_series(const char* name, bool scatter, const BenchEnv& env) {
  const std::string panel = scatter ? "scatter-on" : "scatter-off";
  for (int threads : env.thread_counts) {
    WorkloadConfig config;
    config.key_bits = 10;
    config.lookup_pct = 33;
    config.threads = threads;
    config.window = hohtm::bench::tuned_window(threads);
    config.ops_per_thread = env.ops_per_thread;
    config.trials = env.trials;
    const auto cell = hohtm::harness::run_cell(config, [&] {
      return std::make_unique<ds::SllHoh<TM, RR>>(config.window, scatter);
    });
    hohtm::harness::emit_row("ablA6", panel, name, threads, cell);
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA6",
      "scatter optimization on/off, singly list, 10-bit keys, 33% "
      "lookups; RR-XO (write-on-reserve) vs RR-V (read-only reserve)");
  scatter_series<rr::RrXo<TM>>("RR-XO", true, env);
  scatter_series<rr::RrXo<TM>>("RR-XO", false, env);
  scatter_series<rr::RrV<TM>>("RR-V", true, env);
  scatter_series<rr::RrV<TM>>("RR-V", false, env);
  return 0;
}
