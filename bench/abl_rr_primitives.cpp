// Ablation A1 — latency of the reservation primitives themselves.
//
// google-benchmark microbenchmarks of Reserve / Get / Release / Revoke
// for each implementation (single transaction around each op, NOrec
// backend). Quantifies the per-operation constants behind DESIGN.md's
// complexity table: Revoke is O(T) for RR-FA, bucket-scan for RR-DM/SA,
// and one word write / increment for RR-XO / RR-V.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/rr.hpp"
#include "util/barrier.hpp"

namespace {

using TM = hohtm::tm::Norec;
using Tx = TM::Tx;
namespace rr = hohtm::rr;
using RrSa8 = rr::RrSa<TM, 8>;
using RrSo8 = rr::RrSo<TM, 8>;

long g_targets[64];

template <class RR>
void BM_ReserveRelease(benchmark::State& state) {
  RR res;
  TM::atomically([&](Tx& tx) { res.register_thread(tx); });
  std::size_t i = 0;
  for (auto _ : state) {
    TM::atomically([&](Tx& tx) {
      res.reserve(tx, &g_targets[i % 64]);
      res.release(tx);
    });
    ++i;
  }
}

template <class RR>
void BM_ReserveGetRelease(benchmark::State& state) {
  RR res;
  TM::atomically([&](Tx& tx) { res.register_thread(tx); });
  std::size_t i = 0;
  for (auto _ : state) {
    TM::atomically([&](Tx& tx) { res.reserve(tx, &g_targets[i % 64]); });
    const void* got = TM::atomically([&](Tx& tx) { return res.get(tx); });
    benchmark::DoNotOptimize(got);
    TM::atomically([&](Tx& tx) { res.release(tx); });
    ++i;
  }
}

template <class RR>
void BM_Revoke(benchmark::State& state) {
  RR res;
  TM::atomically([&](Tx& tx) { res.register_thread(tx); });
  std::size_t i = 0;
  for (auto _ : state) {
    TM::atomically([&](Tx& tx) { res.revoke(tx, &g_targets[i % 64]); });
    ++i;
  }
}

template <class RR>
void BM_RevokeWithHolders(benchmark::State& state) {
  // Revoke while `holders` other registered threads have live (other)
  // reservations: the strict algorithms must scan past them.
  RR res;
  const int holders = static_cast<int>(state.range(0));
  std::vector<std::thread> threads;
  hohtm::util::SpinBarrier ready(static_cast<std::size_t>(holders) + 1);
  std::atomic<bool> stop{false};
  for (int t = 0; t < holders; ++t) {
    threads.emplace_back([&, t] {
      TM::atomically([&](Tx& tx) {
        res.register_thread(tx);
        res.reserve(tx, &g_targets[t]);
      });
      ready.arrive_and_wait();
      stop.wait(false, std::memory_order_acquire);
    });
  }
  ready.arrive_and_wait();
  TM::atomically([&](Tx& tx) { res.register_thread(tx); });
  for (auto _ : state) {
    TM::atomically([&](Tx& tx) { res.revoke(tx, &g_targets[63]); });
  }
  stop.store(true, std::memory_order_release);
  stop.notify_all();
  for (auto& th : threads) th.join();
}

#define RR_BENCH(NAME, TYPE)                                       \
  BENCHMARK(BM_ReserveRelease<TYPE>)->Name("ReserveRelease/" NAME); \
  BENCHMARK(BM_ReserveGetRelease<TYPE>)                            \
      ->Name("ReserveGetRelease/" NAME);                           \
  BENCHMARK(BM_Revoke<TYPE>)->Name("Revoke/" NAME);                \
  BENCHMARK(BM_RevokeWithHolders<TYPE>)                            \
      ->Name("RevokeWithHolders/" NAME)                            \
      ->Arg(1)                                                     \
      ->Arg(4)

RR_BENCH("RR-FA", rr::RrFa<TM>);
RR_BENCH("RR-DM", rr::RrDm<TM>);
RR_BENCH("RR-SA", RrSa8);
RR_BENCH("RR-XO", rr::RrXo<TM>);
RR_BENCH("RR-SO", RrSo8);
RR_BENCH("RR-V", rr::RrV<TM>);

}  // namespace

BENCHMARK_MAIN();
