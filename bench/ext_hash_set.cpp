// Extension E1 — hash table with revocable reservations.
//
// The paper's conclusion: "we believe they will be a valuable technique
// for other concurrent data structures, such as ... hash tables, for
// which existing scalable algorithms rely on deferred memory
// reclamation." This bench measures the chained hash set at two load
// factors: log2_buckets=2 (4 buckets, long chains — hand-over-hand
// matters) and log2_buckets=8 (256 buckets, chains ~1 — per-op overhead
// dominates). Series: the single-transaction baseline and three
// representative reservation algorithms.
//
// Expected shape: with long chains the reservation algorithms track the
// Figure 2 list results (relaxed > strict > single-tx under writes);
// with short chains every transactional variant converges — the
// reservations cost nothing when traversals fit one window, matching
// the paper's 8-bit tree observation.
#include <memory>

#include "bench_common.hpp"
#include "ds/hash_set.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void reservation_series(const std::string& panel, const char* name,
                        std::size_t log2_buckets, const WorkloadConfig& base,
                        const BenchEnv& env) {
  run_series("extE1", panel, name, base, env,
             [log2_buckets](const WorkloadConfig& c) {
               return std::make_unique<ds::HashSet<TM, RR>>(log2_buckets,
                                                            c.window);
             });
}

void run_panel(const BenchEnv& env, std::size_t log2_buckets,
               int lookup_pct) {
  const std::string panel = std::to_string(1u << log2_buckets) + "buckets-" +
                            std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("extE1", panel);
  WorkloadConfig base;
  base.key_bits = 10;
  base.lookup_pct = lookup_pct;

  run_series("extE1", panel, "HTM", base, env,
             [log2_buckets](const WorkloadConfig&) {
               using Set = ds::HashSet<TM, rr::RrNull<TM>>;
               return std::make_unique<Set>(log2_buckets, Set::kUnbounded);
             });
  reservation_series<rr::RrV<TM>>(panel, "RR-V", log2_buckets, base, env);
  reservation_series<rr::RrXo<TM>>(panel, "RR-XO", log2_buckets, base, env);
  reservation_series<rr::RrFa<TM>>(panel, "RR-FA", log2_buckets, base, env);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "extE1",
      "hash set extension: 10-bit keys; panels {4,256} buckets x {33,80}% "
      "lookups");
  for (std::size_t log2_buckets : {std::size_t{2}, std::size_t{8}})
    for (int lookup_pct : {33, 80}) run_panel(env, log2_buckets, lookup_pct);
  return 0;
}
