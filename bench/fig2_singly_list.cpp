// Figure 2 — singly linked list microbenchmark.
//
// Panels: {6-bit, 10-bit} key ranges x {0, 33, 80}% lookups (remaining
// ops split evenly between inserts and removes); structures pre-filled to
// 50%. Series: the single-transaction baseline (HTM in the paper, here
// one NOrec transaction per operation), the six revocable-reservation
// algorithms, the lock-free list with no reclamation (LFLeak) and with
// hazard pointers (LFHP, 10-bit panels only as in the paper), the
// transactional hazard-pointer list (TMHP), and the reference-counted
// list (REF).
//
// Expected shape (paper Section 5.1): O(1)-Revoke algorithms (RR-XO,
// RR-SO, RR-V) beat the O(T) ones (RR-FA, RR-DM, RR-SA) at small key
// ranges; hand-over-hand beats the single-transaction baseline when
// lookups do not dominate; LFLeak upper-bounds everything; REF performs
// poorly throughout.
#include <memory>

#include "bench_common.hpp"
#include "ds/lf_list.hpp"
#include "ds/sll_hoh.hpp"
#include "ds/sll_ref.hpp"
#include "ds/sll_tmhp.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void reservation_series(const std::string& panel, const char* name,
                        const WorkloadConfig& base, const BenchEnv& env) {
  run_series("fig2", panel, name, base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::SllHoh<TM, RR>>(c.window);
  });
}

void run_panel(const BenchEnv& env, int key_bits, int lookup_pct) {
  const std::string panel =
      std::to_string(key_bits) + "bit-" + std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("fig2", panel);
  WorkloadConfig base;
  base.key_bits = key_bits;
  base.lookup_pct = lookup_pct;

  // Single-big-transaction baseline ("HTM" in the paper).
  run_series("fig2", panel, "HTM", base, env, [](const WorkloadConfig&) {
    using List = ds::SllHoh<TM, rr::RrNull<TM>>;
    return std::make_unique<List>(List::kUnbounded);
  });

  reservation_series<rr::RrFa<TM>>(panel, "RR-FA", base, env);
  reservation_series<rr::RrDm<TM>>(panel, "RR-DM", base, env);
  reservation_series<rr::RrSa<TM, 8>>(panel, "RR-SA", base, env);
  reservation_series<rr::RrXo<TM>>(panel, "RR-XO", base, env);
  reservation_series<rr::RrSo<TM, 8>>(panel, "RR-SO", base, env);
  reservation_series<rr::RrV<TM>>(panel, "RR-V", base, env);

  run_series("fig2", panel, "LFLeak", base, env, [](const WorkloadConfig&) {
    return std::make_unique<ds::LfList<ds::LeakyReclaimer>>();
  });
  if (key_bits >= 10) {  // the paper omits LFHP from the 6-bit panels
    run_series("fig2", panel, "LFHP", base, env, [](const WorkloadConfig&) {
      return std::make_unique<ds::LfList<ds::HazardReclaimer>>(64);
    });
  }
  run_series("fig2", panel, "TMHP", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::SllTmhp<TM>>(c.window, true, 64);
  });
  run_series("fig2", panel, "REF", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::SllRef<TM>>(c.window);
  });
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "fig2",
      "singly linked list, 50% prefill; panels {6,10}-bit x {0,33,80}% "
      "lookups; Mops/s vs threads");
  for (int key_bits : {6, 10})
    for (int lookup_pct : {0, 33, 80}) run_panel(env, key_bits, lookup_pct);
  return 0;
}
