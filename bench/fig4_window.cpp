// Figure 4 — impact of the transaction window size W.
//
// Singly linked list, 10-bit keys, 33% lookups; RR-FA (strict
// representative) and RR-XO (relaxed representative); W in {1..32}.
//
// Expected shape (paper Section 5.2): at 1 thread large windows win (no
// conflicts, fewer transaction boundaries); as threads rise the optimum
// shrinks — 16 is best up to 4 threads, 8 wins at 8 threads — and RR-FA
// degrades faster with large windows because its Revoke conflicts with
// in-window Reserve/Release traffic.
#include <memory>

#include "bench_common.hpp"
#include "ds/sll_hoh.hpp"

namespace {

using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void window_series(const char* name, const BenchEnv& env) {
  for (int window : {1, 2, 4, 8, 16, 32}) {
    const std::string panel = "W" + std::to_string(window);
    for (int threads : env.thread_counts) {
      WorkloadConfig config;
      config.key_bits = 10;
      config.lookup_pct = 33;
      config.threads = threads;
      config.window = window;
      config.ops_per_thread = env.ops_per_thread;
      config.trials = env.trials;
      const auto cell = hohtm::harness::run_cell(config, [&] {
        return std::make_unique<ds::SllHoh<TM, RR>>(window);
      });
      hohtm::harness::emit_row("fig4", panel, name, threads, cell);
    }
  }
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "fig4",
      "window size sweep, singly list, 10-bit keys, 33% lookups; series "
      "RR-FA and RR-XO; panel = window size");
  window_series<rr::RrFa<TM>>("RR-FA", env);
  window_series<rr::RrXo<TM>>("RR-XO", env);
  return 0;
}
