// Figure 3 — doubly linked list microbenchmark.
//
// Same panels as Figure 2. Series: the single-transaction baseline, the
// six reservation algorithms (strict ones use the separate
// unlink-and-revoke transaction of Section 4.2), and TMHP. As in the
// paper, REF and lock-free doubly linked lists are omitted.
//
// Expected shape: trends follow the singly linked list with a slightly
// smaller gap between the reservation algorithms and TMHP, because the
// small second transaction reduces conflicts inside the reservation
// mechanism.
#include <memory>

#include "bench_common.hpp"
#include "ds/dll_hoh.hpp"
#include "ds/dll_tmhp.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

template <class RR>
void reservation_series(const std::string& panel, const char* name,
                        const WorkloadConfig& base, const BenchEnv& env) {
  run_series("fig3", panel, name, base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::DllHoh<TM, RR>>(c.window);
  });
}

void run_panel(const BenchEnv& env, int key_bits, int lookup_pct) {
  const std::string panel =
      std::to_string(key_bits) + "bit-" + std::to_string(lookup_pct) + "pct";
  hohtm::harness::emit_panel_note("fig3", panel);
  WorkloadConfig base;
  base.key_bits = key_bits;
  base.lookup_pct = lookup_pct;

  run_series("fig3", panel, "HTM", base, env, [](const WorkloadConfig&) {
    using List = ds::DllHoh<TM, rr::RrNull<TM>>;
    return std::make_unique<List>(List::kUnbounded);
  });
  reservation_series<rr::RrFa<TM>>(panel, "RR-FA", base, env);
  reservation_series<rr::RrDm<TM>>(panel, "RR-DM", base, env);
  reservation_series<rr::RrSa<TM, 8>>(panel, "RR-SA", base, env);
  reservation_series<rr::RrXo<TM>>(panel, "RR-XO", base, env);
  reservation_series<rr::RrSo<TM, 8>>(panel, "RR-SO", base, env);
  reservation_series<rr::RrV<TM>>(panel, "RR-V", base, env);
  run_series("fig3", panel, "TMHP", base, env, [](const WorkloadConfig& c) {
    return std::make_unique<ds::DllTmhp<TM>>(c.window, true, 64);
  });
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "fig3",
      "doubly linked list, 50% prefill; panels {6,10}-bit x {0,33,80}% "
      "lookups; Mops/s vs threads");
  for (int key_bits : {6, 10})
    for (int lookup_pct : {0, 33, 80}) run_panel(env, key_bits, lookup_pct);
  return 0;
}
