// Ablation A4 — serial-fallback threshold (the paper's GCC retry knob).
//
// "GCC's language-level support for HTM falls back to a serial mode
// after hardware transactions fail twice. For the lists, this policy is
// adequate, but for the trees, we changed the number to 8" (Section 5).
// This bench sweeps the threshold for both a list and an internal tree.
//
// Expected shape: lists are insensitive (2 is adequate); trees lose
// throughput at low thresholds because long traversals that abort once
// or twice get serialized even though a retry would have committed.
#include <memory>

#include "bench_common.hpp"
#include "ds/bst_internal.hpp"
#include "ds/sll_hoh.hpp"
#include "tm/config.hpp"

namespace {

using hohtm::bench::run_series;
using hohtm::harness::BenchEnv;
using hohtm::harness::WorkloadConfig;
using TM = hohtm::tm::Norec;
namespace ds = hohtm::ds;
namespace rr = hohtm::rr;

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::from_environment();
  hohtm::harness::emit_header(
      "ablA4",
      "serial fallback threshold sweep {0,1,2,8,32}: list vs internal "
      "tree, RR-V, 33/50% lookups");
  for (std::uint32_t threshold : {0u, 1u, 2u, 8u, 32u}) {
    hohtm::tm::Config::set_serial_threshold(threshold);
    const std::string suffix = "thresh" + std::to_string(threshold);
    {
      WorkloadConfig base;
      base.key_bits = 10;
      base.lookup_pct = 33;
      run_series("ablA4", "list-" + suffix, "RR-V", base, env,
                 [](const WorkloadConfig& c) {
                   using List = ds::SllHoh<TM, rr::RrV<TM>>;
                   return std::make_unique<List>(c.window);
                 });
    }
    {
      WorkloadConfig base;
      base.key_bits = 16;
      base.lookup_pct = 50;
      run_series("ablA4", "tree-" + suffix, "RR-V", base, env,
                 [](const WorkloadConfig& c) {
                   using Tree = ds::BstInternal<TM, rr::RrV<TM>>;
                   return std::make_unique<Tree>(c.window);
                 });
    }
  }
  hohtm::tm::Config::set_serial_threshold(8);
  return 0;
}
