#!/usr/bin/env bash
# One-command verification: configure, build, test, smoke the examples,
# and run a fast benchmark pass. Mirrors what a CI pipeline would do.
#
# Usage: scripts/check.sh [--lint] [--analyze] [--tsan] [--asan] [--ubsan]
#                         [--sched] [--metrics] [--net] [--full-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZE=""
TSAN=0
ASAN=0
UBSAN=0
SCHED=0
LINT=0
ANALYZE=0
METRICS=0
NET=0
FULL_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --lint)
      # Static analysis only: hohtm-lint + hohtm-analyze
      # (docs/STATIC_ANALYSIS.md) plus clang-tidy when available. No
      # compile step.
      LINT=1
      ;;
    --analyze)
      # The path-sensitive effect analyzer alone (tools/hohtm_analyze.py):
      # precise-reclamation, boundary-pairing, cross-file atomic
      # protocol, and gate reachability over src/. No compile step.
      ANALYZE=1
      ;;
    --tsan)
      # Rebuild under ThreadSanitizer and run the FULL suite with no
      # suppression file: the happens-before edges the backends establish
      # through fences are mirrored explicitly via src/util/tsan.hpp, so
      # a tsan report anywhere — including the single-threaded and tools
      # suites — is a bug, not noise (docs/STATIC_ANALYSIS.md).
      BUILD_DIR=build-tsan
      SANITIZE="-DHOHTM_SANITIZE=thread"
      TSAN=1
      ;;
    --asan)
      # Rebuild under AddressSanitizer + UBSan and run the full suite:
      # precise reclamation is the point of the paper, so a use-after-free
      # or leak anywhere is a correctness bug, not noise.
      BUILD_DIR=build-asan
      SANITIZE="-DHOHTM_SANITIZE=address,undefined"
      ASAN=1
      ;;
    --ubsan)
      # Rebuild under UndefinedBehaviorSanitizer alone and run the full
      # suite. --asan already folds UBSan in; this mode isolates UB
      # reports from ASan's shadow-memory slowdown and interceptors, so
      # an alignment/overflow/vptr report names itself directly.
      BUILD_DIR=build-ubsan
      SANITIZE="-DHOHTM_SANITIZE=undefined"
      UBSAN=1
      ;;
    --sched)
      # Rebuild with the virtual-scheduler hooks compiled in and run the
      # schedule-exploration + differential suites only (docs/TESTING.md).
      # Scale exploration budgets with HOH_SCHED_DEPTH=<n>.
      BUILD_DIR=build-sched
      SANITIZE="-DHOHTM_SCHED=ON"
      SCHED=1
      ;;
    --metrics)
      # Metrics-plane stage (docs/OBSERVABILITY.md): the `metrics`-labeled
      # unit tests, a kv_ycsb --smoke run with $HOHTM_METRICS_FILE set,
      # the attribution-invariant check over the resulting snapshot, and
      # the perf-smoke artifact gate (tools/bench_compare.py against
      # bench/baselines/BENCH_9.baseline.json — seeds it when absent).
      METRICS=1
      ;;
    --net)
      # Serving-tier stage (docs/SERVING.md): the `net`-labeled unit
      # tests (frame codec fuzzing, loopback differential oracle,
      # backpressure, stalled-client reclamation), then the
      # kv_loopback --smoke gate — pipelined clients over real sockets,
      # self-asserting that depth-16 pipelines fuse into fewer commits
      # AND fewer quiescence waits per op than depth-1, and that a
      # stalled client leaves the watchdog clean with a Gauge-exact
      # footprint — and finally summarize_bench.py rendering the
      # serving-tier table from the 36-column rows.
      NET=1
      ;;
    --full-bench) FULL_BENCH=1 ;;
    *)
      echo "unknown option: $arg" >&2
      exit 2
      ;;
  esac
done

run_analyze() {
  echo "== analyze (tools/hohtm_analyze.py)"
  python3 tools/hohtm_analyze.py
}

run_lint() {
  echo "== lint (tools/hohtm_lint.py)"
  python3 tools/hohtm_lint.py
  run_analyze
  # clang-tidy is advisory depth on top of hohtm-lint: run it when the
  # toolchain provides it (CI's lint job does; the dev box may not).
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint (clang-tidy)"
    cmake -B build-tidy -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # Headers are covered transitively via the .cpp that includes them.
    find src -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p build-tidy --quiet --warnings-as-errors='*'
  else
    echo "-- clang-tidy not on PATH; skipping (hohtm-lint is the gate)"
  fi
}

if [ "$LINT" -eq 1 ]; then
  run_lint
  echo "LINT CHECKS PASSED"
  exit 0
fi

if [ "$ANALYZE" -eq 1 ]; then
  run_analyze
  echo "ANALYZE CHECKS PASSED"
  exit 0
fi

echo "== configure (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -G Ninja $SANITIZE

echo "== build"
cmake --build "$BUILD_DIR"

if [ "$TSAN" -eq 1 ]; then
  echo "== tests (tsan, full suite, no suppressions)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure; then
    echo "FAIL: test suite under ThreadSanitizer" >&2
    exit 1
  fi
  echo "TSAN CHECKS PASSED"
  exit 0
fi

if [ "$ASAN" -eq 1 ]; then
  echo "== tests (asan+ubsan, full suite)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure; then
    echo "FAIL: test suite under AddressSanitizer" >&2
    exit 1
  fi
  echo "ASAN CHECKS PASSED"
  exit 0
fi

if [ "$UBSAN" -eq 1 ]; then
  echo "== tests (ubsan, full suite)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure; then
    echo "FAIL: test suite under UndefinedBehaviorSanitizer" >&2
    exit 1
  fi
  echo "UBSAN CHECKS PASSED"
  exit 0
fi

if [ "$SCHED" -eq 1 ]; then
  echo "== tests (window-fusion exploration)"
  echo "   HOH_SCHED_DEPTH=${HOH_SCHED_DEPTH:-1}"
  # Fusion first, as its own stage: the fused-traversal-vs-revoke race,
  # the fallback bookkeeping invariant (fused_aborts ==
  # fusion_fallbacks), and the kFusionNeverFallback mutant with its
  # byte-identical replay (tests/sched/sched_fusion_test.cpp). A fusion
  # regression should name itself, not hide inside the generic sweep.
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'SchedFusion'; then
    echo "FAIL: window-fusion schedule-exploration tests" >&2
    exit 1
  fi
  echo "== tests (schedule exploration + differential oracle)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'sched|differential' -E 'SchedFusion'; then
    echo "FAIL: schedule-exploration tests" >&2
    exit 1
  fi
  echo "SCHED CHECKS PASSED"
  exit 0
fi

if [ "$METRICS" -eq 1 ]; then
  echo "== tests (metrics plane: ctest -L metrics)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure -L metrics; then
    echo "FAIL: metrics-plane tests" >&2
    exit 1
  fi
  echo "== kv smoke with metrics snapshot"
  KV_OUT="$BUILD_DIR/kv_smoke.txt"
  METRICS_OUT="$BUILD_DIR/metrics.json"
  HOHTM_METRICS_FILE="$METRICS_OUT" \
    "./$BUILD_DIR/bench/kv_ycsb" --smoke > "$KV_OUT"
  echo "== attribution invariants (tools/metrics_report.py --check)"
  python3 tools/metrics_report.py "$METRICS_OUT" --check
  echo "== perf-smoke gate (tools/bench_compare.py)"
  python3 tools/bench_compare.py emit "$KV_OUT" "$METRICS_OUT" \
    -o "$BUILD_DIR/BENCH_9.json"
  python3 tools/bench_compare.py check "$BUILD_DIR/BENCH_9.json"
  echo "METRICS CHECKS PASSED"
  exit 0
fi

if [ "$NET" -eq 1 ]; then
  echo "== tests (serving tier: ctest -L net)"
  if ! ctest --test-dir "$BUILD_DIR" --output-on-failure -L net; then
    echo "FAIL: serving-tier tests" >&2
    exit 1
  fi
  echo "== loopback smoke (bench/kv_loopback --smoke)"
  NET_OUT="$BUILD_DIR/net_smoke.txt"
  "./$BUILD_DIR/bench/kv_loopback" --smoke > "$NET_OUT"
  if ! grep -q "serving tier" \
      <(python3 tools/summarize_bench.py "$NET_OUT"); then
    echo "FAIL: loopback smoke produced no serving-tier table" >&2
    exit 1
  fi
  echo "-- kv_loopback (smoke) ok"
  echo "NET CHECKS PASSED"
  exit 0
fi

echo "== tsan-annotation smoke (default build must be hook-free)"
# src/util/tsan.hpp compiles to nothing outside tsan builds; a __tsan_*
# reference in the default archive would mean the gate leaked.
if nm -u "$BUILD_DIR/src/libhohtm.a" | grep -q '__tsan_'; then
  echo "FAIL: default build references __tsan_* symbols" >&2
  exit 1
fi
echo "-- libhohtm.a carries no __tsan_* references"

run_lint

echo "== tests"
# Tier-1 gate: any ctest failure fails the whole check, explicitly.
if ! ctest --test-dir "$BUILD_DIR" --output-on-failure; then
  echo "FAIL: tier-1 test suite" >&2
  exit 1
fi

echo "== examples"
for example in quickstart bank mem_pressure task_queue backend_tour; do
  echo "-- $example"
  "./$BUILD_DIR/examples/$example" > /dev/null
done

echo "== benches"
if [ "$FULL_BENCH" -eq 1 ]; then
  for bench in "$BUILD_DIR"/bench/*; do
    echo "-- $bench"
    "$bench"
  done
else
  # Quick smoke: tiny op counts, two thread points, one short bench.
  HOH_BENCH_OPS=2000 HOH_BENCH_TRIALS=1 HOH_BENCH_THREADS=1,2 \
    "./$BUILD_DIR/bench/fig4_window" > /dev/null
  echo "-- fig4_window (smoke) ok"
fi

echo "== kv smoke (bench/kv_ycsb --smoke)"
# Tiny single-run pass over the kv store (src/kv/, docs/KV.md): the
# binary self-asserts consistency, settled migration, and Gauge-precise
# reclamation, then re-runs the cell unfused vs fused and requires
# window fusion to cut commits per op with zero added aborts (PR 6),
# printing 32-column rows. summarize_bench.py must render the kv
# workload table from them.
KV_OUT="$BUILD_DIR/kv_smoke.txt"
"./$BUILD_DIR/bench/kv_ycsb" --smoke > "$KV_OUT"
if ! grep -q "kv workload" <(python3 tools/summarize_bench.py "$KV_OUT"); then
  echo "FAIL: kv smoke produced no kv workload table" >&2
  exit 1
fi
echo "-- kv_ycsb (smoke) ok"

echo "== kv range-scan smoke (bench/kv_ycsb --workload=E --smoke)"
# The multi-window range-scan path (docs/KV.md, "Range scans"): the
# binary self-asserts canonical sorted duplicate-free scan results
# against a model, nonzero cursor resumes under a resize forced
# mid-scan, and Gauge-precise reclamation, then prints the YCSB E cell.
SCAN_OUT="$BUILD_DIR/kv_scan_smoke.txt"
"./$BUILD_DIR/bench/kv_ycsb" --workload=E --smoke > "$SCAN_OUT"
if ! grep -q "kv workload" <(python3 tools/summarize_bench.py "$SCAN_OUT"); then
  echo "FAIL: kv scan smoke produced no kv workload table" >&2
  exit 1
fi
echo "-- kv_ycsb (E scan smoke) ok"

echo "== trace build (observability smoke)"
# Separate tree with the hot-path instrumentation compiled in
# (HOHTM_TRACE=ON; see docs/OBSERVABILITY.md). Building just one bench
# target keeps this cheap. The run must produce a Chrome trace JSON, a
# footprint timeline, and non-zero latency percentiles — all three are
# checked by piping the output through tools/trace_report.py.
cmake -B build-trace -G Ninja -DHOHTM_TRACE=ON
cmake --build build-trace --target fig5_allocator
TRACE_OUT=build-trace/trace_smoke.txt
HOH_BENCH_OPS=2000 HOH_BENCH_TRIALS=1 HOH_BENCH_THREADS=1,2 \
HOH_BENCH_FOOTPRINT_MS=5 HOHTM_TRACE_FILE=build-trace/trace.json \
  ./build-trace/bench/fig5_allocator > "$TRACE_OUT"
python3 tools/trace_report.py "$TRACE_OUT" --trace build-trace/trace.json
if grep -q "all zero" <(python3 tools/trace_report.py "$TRACE_OUT"); then
  echo "FAIL: trace build produced zero latency percentiles" >&2
  exit 1
fi
python3 tools/summarize_bench.py "$TRACE_OUT" > /dev/null
echo "-- fig5_allocator (trace smoke) ok"

echo "ALL CHECKS PASSED"
