// mem_pressure: the memory-footprint argument of the paper, live.
//
// Three identical churn workloads run on three lists that differ only in
// how removed nodes are reclaimed:
//
//   precise   — revocable reservations (RR-V): freed inside the remove
//   hazard    — TMHP: retired, freed by batched hazard scans
//   stalled   — TMHP whose scan threshold is effectively infinite while
//               one reader parks a hazard pointer: the unbounded backlog
//               the paper's introduction warns about
//
// After each phase the live-object gauge is compared with the logical
// set size; the difference is unreclaimed garbage.
//
// Build & run:   ./build/examples/mem_pressure
#include <cstdio>

#include "ds/sll_hoh.hpp"
#include "ds/sll_tmhp.hpp"
#include "reclaim/gauge.hpp"
#include "util/random.hpp"

namespace {

using TM = hohtm::tm::Norec;

template <class List>
long churn_and_measure(List& list, const char* label) {
  const auto live_before = hohtm::reclaim::Gauge::live();
  hohtm::util::Xoshiro256 rng(7);
  constexpr long kRange = 512;
  for (long k = 0; k < kRange; k += 2) list.insert(k);
  for (int i = 0; i < 30000; ++i) {
    const long key = static_cast<long>(rng.next_below(kRange));
    if (rng.next() & 1)
      list.insert(key);
    else
      list.remove(key);
  }
  const long logical = static_cast<long>(list.size());
  const long live = hohtm::reclaim::Gauge::live() - live_before;
  const long garbage = live - logical;
  std::printf("%-10s live=%5ld  logical=%5ld  unreclaimed=%5ld\n", label,
              live, logical, garbage);
  return garbage;
}

}  // namespace

int main() {
  std::printf("churn: 30k mixed ops over 512-key range, then measure\n\n");

  long precise_garbage;
  {
    hohtm::ds::SllHoh<TM, hohtm::rr::RrV<TM>> list(8);
    precise_garbage = churn_and_measure(list, "precise");
  }
  {
    hohtm::ds::SllTmhp<TM> list(8, true, /*scan_threshold=*/64);
    churn_and_measure(list, "hazard");
  }
  {
    // A "stalled" deployment: scans so rare they never trigger during
    // the phase. Every removed node is still resident.
    hohtm::ds::SllTmhp<TM> list(8, true, /*scan_threshold=*/1 << 30);
    churn_and_measure(list, "stalled");
  }

  std::printf(
      "\nprecise reclamation leaves %ld unreclaimed nodes (the paper's "
      "claim: zero,\nalways, with no tuning); deferred schemes leave a "
      "threshold- and luck-dependent\nbacklog and are unbounded if scans "
      "stall.\n",
      precise_garbage);
  return precise_garbage == 0 ? 0 : 1;
}
