// mem_pressure: the memory-footprint argument of the paper, live.
//
// Four identical churn workloads run on four sets that differ only in
// how removed nodes are reclaimed:
//
//   precise   — revocable reservations (RR-V): freed inside the remove
//   hazard    — TMHP: retired, freed by batched hazard scans
//   epoch     — epoch-based reclamation: retired, freed two epoch
//               advances later (Fraser-style three-generation)
//   stalled   — TMHP whose scan threshold is effectively infinite while
//               one reader parks a hazard pointer: the unbounded backlog
//               the paper's introduction warns about
//
// After each phase the live-object gauge is compared with the logical
// set size; the difference is unreclaimed garbage. Alongside the final
// tallies, each phase emits a reclamation-footprint *timeline* (one
// `timeline,...` CSV row per 1000 ops, same schema as the bench
// harness but with operation count on the x-axis so the curve is
// deterministic on any machine) — feed the output to
// tools/trace_report.py to see RR's flat curve against the deferred
// schemes' backlog.
//
// Build & run:   ./build/examples/mem_pressure
//                ./build/examples/mem_pressure | python3 tools/trace_report.py /dev/stdin
#include <array>
#include <cstdio>

#include "alloc/object.hpp"
#include "ds/sll_hoh.hpp"
#include "ds/sll_tmhp.hpp"
#include "harness/report.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/gauge.hpp"
#include "util/random.hpp"

namespace {

using TM = hohtm::tm::Norec;

constexpr long kRange = 512;
constexpr int kOps = 30000;
constexpr int kSampleEvery = 1000;

/// Minimal epoch-reclaimed "set" over the dense key range: the paper's
/// deferred-reclamation comparison needs epoch *semantics* (retire now,
/// free two generations later), not list traversal, so presence is an
/// array and every remove routes through the EpochDomain.
class EpochSet {
 public:
  explicit EpochSet(std::size_t advance_threshold = 64)
      : epochs_(advance_threshold) {}

  ~EpochSet() {
    for (Node*& n : slots_) {
      if (n != nullptr) {
        hohtm::alloc::destroy(n);
        hohtm::reclaim::Gauge::on_free();
        n = nullptr;
      }
    }
    // Retired-but-unreclaimed nodes are freed by the domain destructor;
    // their Gauge frees happen in the deleter below.
  }

  bool insert(long key) {
    hohtm::reclaim::EpochDomain::Pin pin(epochs_);
    Node*& slot = slots_[static_cast<std::size_t>(key)];
    if (slot != nullptr) return false;
    slot = hohtm::alloc::create<Node>(key);
    hohtm::reclaim::Gauge::on_alloc();
    return true;
  }

  bool remove(long key) {
    hohtm::reclaim::EpochDomain::Pin pin(epochs_);
    Node*& slot = slots_[static_cast<std::size_t>(key)];
    if (slot == nullptr) return false;
    epochs_.retire(slot, &delete_node);
    slot = nullptr;
    return true;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Node* node : slots_) n += node != nullptr ? 1 : 0;
    return n;
  }

 private:
  struct Node {
    explicit Node(long k) : key(k) {}
    long key;
  };

  static void delete_node(void* p) noexcept {
    hohtm::alloc::destroy(static_cast<Node*>(p));
    hohtm::reclaim::Gauge::on_free();
  }

  hohtm::reclaim::EpochDomain epochs_;
  std::array<Node*, kRange> slots_{};
};

template <class List>
long churn_and_measure(List& list, const char* label) {
  const auto live_before = hohtm::reclaim::Gauge::live();
  hohtm::util::Xoshiro256 rng(7);
  for (long k = 0; k < kRange; k += 2) list.insert(k);
  for (int i = 0; i < kOps; ++i) {
    const long key = static_cast<long>(rng.next_below(kRange));
    if (rng.next() & 1)
      list.insert(key);
    else
      list.remove(key);
    if (i % kSampleEvery == 0) {
      hohtm::harness::emit_timeline_row(
          "mem_pressure", "churn", label, 1, static_cast<double>(i),
          hohtm::reclaim::Gauge::live() - live_before);
    }
  }
  const long logical = static_cast<long>(list.size());
  const long live = hohtm::reclaim::Gauge::live() - live_before;
  hohtm::harness::emit_timeline_row("mem_pressure", "churn", label, 1,
                                    static_cast<double>(kOps), live);
  const long garbage = live - logical;
  std::printf("%-10s live=%5ld  logical=%5ld  unreclaimed=%5ld\n", label,
              live, logical, garbage);
  return garbage;
}

}  // namespace

int main() {
  std::printf("churn: 30k mixed ops over 512-key range, then measure\n");
  std::printf("# timeline x-axis is operation count (deterministic)\n\n");

  long precise_garbage;
  {
    hohtm::ds::SllHoh<TM, hohtm::rr::RrV<TM>> list(8);
    precise_garbage = churn_and_measure(list, "precise");
  }
  {
    hohtm::ds::SllTmhp<TM> list(8, true, /*scan_threshold=*/64);
    churn_and_measure(list, "hazard");
  }
  {
    EpochSet set(/*advance_threshold=*/64);
    churn_and_measure(set, "epoch");
  }
  {
    // A "stalled" deployment: scans so rare they never trigger during
    // the phase. Every removed node is still resident.
    hohtm::ds::SllTmhp<TM> list(8, true, /*scan_threshold=*/1 << 30);
    churn_and_measure(list, "stalled");
  }

  std::printf(
      "\nprecise reclamation leaves %ld unreclaimed nodes (the paper's "
      "claim: zero,\nalways, with no tuning); deferred schemes leave a "
      "threshold- and luck-dependent\nbacklog and are unbounded if scans "
      "stall.\n",
      precise_garbage);
  return precise_garbage == 0 ? 0 : 1;
}
