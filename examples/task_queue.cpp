// task_queue: a priority work queue built directly on the public API —
// the kind of "other concurrent data structure" the paper's conclusion
// suggests revocable reservations generalize to.
//
// Producers insert (priority-encoded) task keys into an external BST;
// consumers repeatedly *claim the minimum*: a hand-over-hand descent
// down the left spine, then a remove of the found key. Because remove
// frees the leaf and its router immediately, a long-running queue never
// accumulates tombstones — its footprint is exactly its backlog.
//
// Build & run:   ./build/examples/task_queue
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/bst_external.hpp"
#include "reclaim/gauge.hpp"
#include "util/backoff.hpp"
#include "util/random.hpp"

namespace {

using TM = hohtm::tm::Norec;
using Queue = hohtm::ds::BstExternal<TM, hohtm::rr::RrV<TM>>;

constexpr int kProducers = 2;
constexpr int kConsumers = 2;
constexpr long kTasksPerProducer = 5000;

}  // namespace

int main() {
  Queue queue(/*window=*/8);
  std::atomic<long> produced{0};
  std::atomic<long> consumed{0};
  // Consumers draw tickets in priority order; each waits for its task to
  // appear and then removes it. Every remove that returns true claimed
  // the task exclusively, and frees its two tree nodes on the spot.
  std::atomic<long> next_ticket{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (long i = 0; i < kTasksPerProducer; ++i) {
        queue.insert(i * kProducers + p);
        produced.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      constexpr long kBound = kTasksPerProducer * kProducers;
      for (;;) {
        const long task = next_ticket.fetch_add(1);
        if (task >= kBound) return;
        hohtm::util::Backoff backoff;
        while (!queue.remove(task)) backoff.pause();
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::printf("produced = %ld, consumed = %ld (must match)\n",
              produced.load(), consumed.load());
  std::printf("queue size after drain = %zu (must be 0)\n", queue.size());
  return produced.load() == consumed.load() && queue.size() == 0 ? 0 : 1;
}
