// Quickstart: a concurrent sorted set with hand-over-hand transactions
// and revocable reservations, in under a minute.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/sll_hoh.hpp"

int main() {
  // Pick a TM backend and a reservation algorithm. NOrec + RR-V is the
  // configuration the paper's evaluation crowns for lists.
  using TM = hohtm::tm::Norec;
  using Set = hohtm::ds::SllHoh<TM, hohtm::rr::RrV<TM>>;

  // Traverse at most 8 nodes per transaction (the hand-over-hand window).
  Set set(/*window=*/8);

  // Plain calls — every operation is internally a chain of small
  // transactions linked by reservations.
  set.insert(30);
  set.insert(10);
  set.insert(20);
  std::printf("contains(20) = %s\n", set.contains(20) ? "yes" : "no");

  // Concurrent use needs no extra setup: 4 threads hammer the set.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&set, t] {
      for (long i = 0; i < 1000; ++i) {
        const long key = i * 4 + t;  // disjoint key stripes
        set.insert(key);
        if (i % 3 == 0) set.remove(key);
      }
    });
  }
  for (auto& th : threads) th.join();

  // remove() unlinked, revoked, and *freed* every node inside its own
  // transaction — no epochs, no deferred scans, no leaked zombies.
  // The three seed keys fall inside the threads' stripes, so the final
  // count is exactly the stripes' net: 4 * (1000 inserts - 334 removes).
  std::printf("final size = %zu (expect 2664 = 4*(1000-334))\n", set.size());
  std::printf("sorted invariant holds = %s\n",
              set.is_sorted() ? "yes" : "no");
  return 0;
}
