// bank: composing the TM substrate with a reservation-based index.
//
// A toy payment system: account balances live in a flat array guarded by
// the TM; the set of *open* account ids lives in a hand-over-hand BST.
// Transfer transactions move money between open accounts; auditors sum
// every balance inside one transaction and must always see the invariant
// total; churn threads open and close accounts, and closing an account
// frees its index node immediately (precise reclamation).
//
// Demonstrates: TM::atomically as a general atomic block, flat nesting
// (set operations inside a user transaction), and invariant auditing.
//
// Build & run:   ./build/examples/bank
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/bst_internal.hpp"
#include "util/random.hpp"

namespace {

using TM = hohtm::tm::Norec;
using Tx = TM::Tx;
using Index = hohtm::ds::BstInternal<TM, hohtm::rr::RrV<TM>>;

constexpr int kAccounts = 64;
constexpr long kInitialBalance = 1000;
constexpr long kExpectedTotal = kAccounts * kInitialBalance;

struct Bank {
  long balances[kAccounts] = {};
  long open[kAccounts] = {};  // 1 if the account is open
  Index open_index{/*window=*/8};
};

void transfer(Bank& bank, int from, int to, long amount) {
  TM::atomically([&](Tx& tx) {
    if (tx.read(bank.open[from]) == 0 || tx.read(bank.open[to]) == 0)
      return;  // closed accounts do not move money
    const long available = tx.read(bank.balances[from]);
    const long moved = amount < available ? amount : available;
    tx.write(bank.balances[from], available - moved);
    tx.write(bank.balances[to], tx.read(bank.balances[to]) + moved);
  });
}

long audit(Bank& bank) {
  return TM::atomically([&](Tx& tx) {
    long total = 0;
    for (const long& balance : bank.balances) total += tx.read(balance);
    return total;
  });
}

void toggle_account(Bank& bank, int id) {
  // Close: drain the balance to a neighbour, drop from the index (the
  // index node is revoked and freed inside the remove), mark closed.
  // Open: the reverse. All inside one transaction — the index operation
  // nests flat within it.
  TM::atomically([&](Tx& tx) {
    const int neighbour = (id + 1) % kAccounts;
    if (tx.read(bank.open[id]) != 0 && tx.read(bank.open[neighbour]) != 0) {
      tx.write(bank.balances[neighbour], tx.read(bank.balances[neighbour]) +
                                             tx.read(bank.balances[id]));
      tx.write(bank.balances[id], 0L);
      tx.write(bank.open[id], 0L);
      bank.open_index.remove(id);
    } else if (tx.read(bank.open[id]) == 0) {
      tx.write(bank.open[id], 1L);
      bank.open_index.insert(id);
    }
  });
}

}  // namespace

int main() {
  Bank bank;
  for (int i = 0; i < kAccounts; ++i) {
    bank.balances[i] = kInitialBalance;
    bank.open[i] = 1;
    bank.open_index.insert(i);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_audits{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {  // transfer threads
    threads.emplace_back([&, t] {
      hohtm::util::Xoshiro256 rng(t + 1);
      for (int i = 0; i < 20000; ++i) {
        transfer(bank, static_cast<int>(rng.next_below(kAccounts)),
                 static_cast<int>(rng.next_below(kAccounts)),
                 static_cast<long>(rng.next_below(100)));
      }
    });
  }
  threads.emplace_back([&] {  // churn thread: open/close accounts
    hohtm::util::Xoshiro256 rng(99);
    for (int i = 0; i < 4000; ++i)
      toggle_account(bank, static_cast<int>(rng.next_below(kAccounts)));
  });
  threads.emplace_back([&] {  // auditor
    while (!stop.load(std::memory_order_acquire)) {
      if (audit(bank) != kExpectedTotal) bad_audits.fetch_add(1);
    }
  });

  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads.back().join();

  std::printf("final total       = %ld (expected %ld)\n", audit(bank),
              kExpectedTotal);
  std::printf("inconsistent audits seen = %d (expected 0)\n",
              bad_audits.load());
  std::printf("open accounts in index   = %zu\n", bank.open_index.size());
  return bad_audits.load() == 0 ? 0 : 1;
}
