// backend_tour: the same data structure on all four TM backends.
//
// Demonstrates the static-polymorphic TM interface: data structures are
// templates over the backend, so swapping GLock / TML / NOrec / TL2 is a
// one-line change, and all of them provide the same semantics (this
// program checks that) at different scalability points (the ablA2 bench
// quantifies those).
//
// Build & run:   ./build/examples/backend_tour
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/sll_hoh.hpp"

namespace {

template <class TM>
void tour() {
  using Set = hohtm::ds::SllHoh<TM, hohtm::rr::RrV<TM>>;
  Set set(/*window=*/8);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&set, t] {
      for (long i = 0; i < 2000; ++i) {
        const long key = i * 4 + t;
        set.insert(key);
        if (i % 2 == 0) set.remove(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  const std::size_t size = set.size();
  const auto stats = hohtm::tm::Stats::total();
  std::printf("%-6s  size=%zu (expect 4000)  %7.1f ms  commits=%llu aborts=%llu serial=%llu\n",
              TM::name(), size, ms,
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              static_cast<unsigned long long>(stats.serial_commits));
}

}  // namespace

int main() {
  std::printf("4 threads x 2000 disjoint-stripe inserts (every other one "
              "removed)\n\n");
  tour<hohtm::tm::GLock>();
  tour<hohtm::tm::Tml>();
  tour<hohtm::tm::Norec>();
  tour<hohtm::tm::Tl2>();
  tour<hohtm::tm::TlEager>();
  std::printf("\n(stats are cumulative across backends; deltas per row "
              "reflect that backend's run)\n");
  return 0;
}
