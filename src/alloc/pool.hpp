#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hohtm::alloc {

/// Allocation backend selector.
///
/// The paper found "the choice of memory allocator had a significant
/// impact on scalability" (Figure 5, Hoard vs jemalloc). We cannot ship
/// those allocators, so the experiment contrasts the system allocator
/// with this thread-caching pool allocator — the same axis (thread-local
/// caching + cross-thread free handling vs a general-purpose heap).
///
/// All transactional allocations (`tx.alloc` / `tx.dealloc`) route through
/// `allocate`/`deallocate`; `use_pool` flips the backend between benchmark
/// phases (never mid-workload). Every block carries a one-word header
/// recording its origin, so frees are always routed correctly even across
/// a switch.
void* allocate(std::size_t bytes);
void deallocate(void* p) noexcept;

void use_pool(bool enabled) noexcept;
bool pool_enabled() noexcept;
const char* backend_name() noexcept;

/// Pool internals exposed for tests/diagnostics.
struct PoolStats {
  std::uint64_t slabs_created = 0;
  std::uint64_t local_hits = 0;     // served from the thread's free list
  std::uint64_t remote_reclaims = 0;  // batches pulled back from other threads
  std::uint64_t carve_allocs = 0;   // served by carving a fresh slab region
};
PoolStats pool_stats() noexcept;

}  // namespace hohtm::alloc
