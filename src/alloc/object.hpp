#pragma once

#include <new>
#include <utility>

#include "alloc/pool.hpp"

namespace hohtm::alloc {

/// Typed construct/destroy on the switchable allocation backend. Every
/// object that may ever be freed by `destroy` (or by `tx.dealloc`) must
/// be created by `create` (or `tx.alloc`) — mixing in plain new/delete
/// would corrupt whichever heap did not issue the block.
template <class T, class... Args>
T* create(Args&&... args) {
  void* mem = allocate(sizeof(T));
  try {
    return new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    deallocate(mem);
    throw;
  }
}

/// `create` with `extra` trailing bytes in the same block, for objects
/// that carry a variable-length payload after the struct (kv nodes and
/// bucket-slot tables). The pool's block header records the full size, so
/// `destroy` / `tx.dealloc` free the whole block with no extra metadata.
/// T must be trivially destructible or ignore the tail in its destructor;
/// the tail bytes start at `this + 1` and are uninitialized.
template <class T, class... Args>
T* create_flex(std::size_t extra, Args&&... args) {
  void* mem = allocate(sizeof(T) + extra);
  try {
    return new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    deallocate(mem);
    throw;
  }
}

template <class T>
void destroy(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  deallocate(p);
}

}  // namespace hohtm::alloc
