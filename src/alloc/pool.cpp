#include "alloc/pool.hpp"

#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"
#include "util/trace.hpp"

namespace hohtm::alloc {
namespace {

// ---------------------------------------------------------------------------
// Block header: one word in front of every allocation, recording how the
// block must be freed. Kept 16 bytes to preserve 16-byte user alignment.
// ---------------------------------------------------------------------------
constexpr std::uint64_t kBackendMalloc = 0;
constexpr std::uint64_t kBackendPool = 1;

struct alignas(16) Header {
  std::uint64_t backend;  // kBackendMalloc / kBackendPool
  std::uint32_t size_class;
  std::uint32_t owner_slot;
};
static_assert(sizeof(Header) == 16);

// ---------------------------------------------------------------------------
// Size classes: 32, 64, 128, ..., 4096 payload bytes (header included in
// the carved block). Larger requests fall back to malloc.
// ---------------------------------------------------------------------------
constexpr std::size_t kClassCount = 8;
constexpr std::size_t class_bytes(std::size_t cls) { return 32u << cls; }
constexpr std::size_t kMaxPooled = class_bytes(kClassCount - 1);
constexpr std::size_t kSlabBytes = 256 * 1024;

std::size_t class_for(std::size_t bytes) noexcept {
  std::size_t cls = 0;
  while (class_bytes(cls) < bytes + sizeof(Header)) ++cls;
  return cls;
}

/// Intrusive free-list link living in the (dead) payload.
struct FreeBlock {
  FreeBlock* next;
};

struct PerClass {
  FreeBlock* local = nullptr;             // owner-only LIFO
  std::atomic<FreeBlock*> remote{nullptr};  // Treiber stack of remote frees
  char* carve_ptr = nullptr;              // bump region of the current slab
  char* carve_end = nullptr;
};

struct ThreadCache {
  PerClass classes[kClassCount];
};

struct Shared {
  std::mutex slab_mu;
  std::vector<void*> slabs;  // every slab ever created; freed at exit
  std::atomic<std::uint64_t> slabs_created{0};
  std::atomic<std::uint64_t> local_hits{0};
  std::atomic<std::uint64_t> remote_reclaims{0};
  std::atomic<std::uint64_t> carve_allocs{0};

  ~Shared() {
    for (void* s : slabs) std::free(s);
  }
};

Shared& shared() {
  static Shared s;
  return s;
}

util::CachePadded<ThreadCache>& cache_of(std::size_t slot) {
  static util::CachePadded<ThreadCache> caches[util::kMaxThreads];
  return caches[slot];
}

std::atomic<bool> g_use_pool{false};

Header* header_of(void* user) noexcept {
  return reinterpret_cast<Header*>(static_cast<char*>(user) - sizeof(Header));
}

void* pool_allocate(std::size_t bytes) {
  const std::size_t slot = util::ThreadRegistry::slot();
  const std::size_t cls = class_for(bytes);
  PerClass& pc = cache_of(slot)->classes[cls];
  Shared& sh = shared();

  // 1. Local free list.
  if (pc.local != nullptr) {
    FreeBlock* block = pc.local;
    pc.local = block->next;
    sh.local_hits.fetch_add(1, std::memory_order_relaxed);
    Header* h = reinterpret_cast<Header*>(block);
    h->backend = kBackendPool;
    h->size_class = static_cast<std::uint32_t>(cls);
    h->owner_slot = static_cast<std::uint32_t>(slot);
    return reinterpret_cast<char*>(h) + sizeof(Header);
  }
  // 2. Reclaim blocks other threads freed back to us.
  if (FreeBlock* batch =
          pc.remote.exchange(nullptr, std::memory_order_acquire)) {
    pc.local = batch;
    sh.remote_reclaims.fetch_add(1, std::memory_order_relaxed);
    return pool_allocate(bytes);
  }
  // 3. Carve from the current slab, creating one if needed.
  const std::size_t block_bytes = class_bytes(cls);
  if (pc.carve_ptr == nullptr ||
      pc.carve_ptr + block_bytes > pc.carve_end) {
    void* slab = std::aligned_alloc(util::kCacheLineSize, kSlabBytes);
    if (slab == nullptr) throw std::bad_alloc();
    {
      std::lock_guard<std::mutex> lock(sh.slab_mu);
      sh.slabs.push_back(slab);
    }
    sh.slabs_created.fetch_add(1, std::memory_order_relaxed);
    pc.carve_ptr = static_cast<char*>(slab);
    pc.carve_end = pc.carve_ptr + kSlabBytes;
  }
  Header* h = reinterpret_cast<Header*>(pc.carve_ptr);
  pc.carve_ptr += block_bytes;
  sh.carve_allocs.fetch_add(1, std::memory_order_relaxed);
  h->backend = kBackendPool;
  h->size_class = static_cast<std::uint32_t>(cls);
  h->owner_slot = static_cast<std::uint32_t>(slot);
  return reinterpret_cast<char*>(h) + sizeof(Header);
}

void pool_deallocate(Header* h) noexcept {
  const std::size_t slot = util::ThreadRegistry::slot();
  PerClass& owner_pc = cache_of(h->owner_slot)->classes[h->size_class];
  auto* block = reinterpret_cast<FreeBlock*>(h);
  if (h->owner_slot == slot) {
    block->next = owner_pc.local;
    owner_pc.local = block;
    return;
  }
  // Remote free: push onto the owner's Treiber stack.
  FreeBlock* head = owner_pc.remote.load(std::memory_order_relaxed);
  do {
    block->next = head;
  } while (!owner_pc.remote.compare_exchange_weak(
      head, block, std::memory_order_release, std::memory_order_relaxed));
}

}  // namespace

void* allocate(std::size_t bytes) {
  util::trace_event(util::Ev::kAlloc, bytes);
  if (g_use_pool.load(std::memory_order_relaxed) &&
      bytes + sizeof(Header) <= kMaxPooled) {
    return pool_allocate(bytes);
  }
  void* raw = std::malloc(bytes + sizeof(Header));
  if (raw == nullptr) throw std::bad_alloc();
  Header* h = static_cast<Header*>(raw);
  h->backend = kBackendMalloc;
  h->size_class = 0;
  h->owner_slot = 0;
  return static_cast<char*>(raw) + sizeof(Header);
}

void deallocate(void* p) noexcept {
  if (p == nullptr) return;
  util::trace_event(util::Ev::kFree, reinterpret_cast<std::uintptr_t>(p));
  Header* h = header_of(p);
  if (h->backend == kBackendPool)
    pool_deallocate(h);
  else
    std::free(h);
}

void use_pool(bool enabled) noexcept {
  g_use_pool.store(enabled, std::memory_order_relaxed);
}

bool pool_enabled() noexcept {
  return g_use_pool.load(std::memory_order_relaxed);
}

const char* backend_name() noexcept {
  return pool_enabled() ? "pool" : "malloc";
}

PoolStats pool_stats() noexcept {
  Shared& sh = shared();
  PoolStats stats;
  stats.slabs_created = sh.slabs_created.load(std::memory_order_relaxed);
  stats.local_hits = sh.local_hits.load(std::memory_order_relaxed);
  stats.remote_reclaims = sh.remote_reclaims.load(std::memory_order_relaxed);
  stats.carve_allocs = sh.carve_allocs.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hohtm::alloc
