#pragma once

/// hohtm — Hand-Over-Hand Transactions with Precise Memory Reclamation.
///
/// Single-include convenience header for the whole public API. Larger
/// builds should include the specific module headers instead (each
/// data-structure template instantiation is nontrivial to compile).
///
///   TM backends        tm/tm.hpp        (GLock, Tml, Norec, Tl2)
///   Reservations       core/rr.hpp      (RrFa/Dm/Sa, RrXo/So/V, RrNull)
///   Multi-reservations core/multi_rr.hpp
///   Data structures    ds/*.hpp
///   Reclamation        reclaim/*.hpp    (hazard pointers, epochs, gauge)
///   Allocation         alloc/*.hpp      (switchable malloc/pool)
///   Benchmark harness  harness/*.hpp
///
/// See README.md for a quickstart and DESIGN.md for the architecture.

#include "alloc/object.hpp"
#include "alloc/pool.hpp"
#include "core/multi_rr.hpp"
#include "core/rr.hpp"
#include "ds/bst_external.hpp"
#include "ds/bst_external_tmhp.hpp"
#include "ds/bst_internal.hpp"
#include "ds/dll_hoh.hpp"
#include "ds/dll_tmhp.hpp"
#include "ds/hash_set.hpp"
#include "ds/lf_list.hpp"
#include "ds/nm_tree.hpp"
#include "ds/skiplist.hpp"
#include "ds/sll_hoh.hpp"
#include "ds/sll_move.hpp"
#include "ds/sll_ref.hpp"
#include "ds/sll_tmhp.hpp"
#include "ds/window_tuner.hpp"
#include "harness/driver.hpp"
#include "harness/linearizability.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "tm/tm.hpp"
