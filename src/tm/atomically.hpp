#pragma once

#include <type_traits>
#include <utility>

#include "tm/abort.hpp"
#include "tm/config.hpp"
#include "util/backoff.hpp"
#include "util/trace.hpp"

namespace hohtm::tm {

/// Shared retry harness used by every backend's `atomically`.
///
/// Semantics:
///  - Nesting is flattened: an `atomically` inside a running transaction
///    simply runs in the enclosing transaction (composability without
///    closed nesting).
///  - A `Conflict` unwinds to this loop; the transaction backs off and
///    retries. After `Config::serial_threshold()` aborts it re-executes in
///    the backend's serial-irrevocable mode, which cannot abort — this is
///    the analog of the GCC HTM fallback policy the paper tunes (2 retries
///    for lists, 8 for trees).
///  - Any other exception aborts the transaction (rolling back its writes
///    and allocations) and propagates to the caller.
template <class TM, class F>
decltype(auto) run_transaction(F&& f) {
  using Tx = typename TM::Tx;
  if (Tx* enclosing = TM::current()) return f(*enclosing);

  using R = std::invoke_result_t<F&, Tx&>;
  util::Backoff backoff;
  for (std::uint32_t attempts = 0;; ++attempts) {
    if (attempts >= Config::serial_threshold()) {
      Stats::mine().record(AbortCause::kSerialEscalation);
      util::trace_event(util::Ev::kTxSerial, attempts);
      return TM::run_serial(std::forward<F>(f));
    }
    Tx& tx = TM::tls_tx();
    TM::set_current(&tx);
    struct ClearCurrent {
      ~ClearCurrent() { TM::set_current(nullptr); }
    } clear_guard;
    try {
      util::trace_event(util::Ev::kTxBegin);
      const std::uint64_t tx_start = util::trace_clock();
      tx.begin();
      if constexpr (std::is_void_v<R>) {
        f(tx);
        tx.commit();
        Stats::mine().commits += 1;
        util::trace_tx_commit(tx_start);
        return;
      } else {
        R result = f(tx);
        tx.commit();
        Stats::mine().commits += 1;
        util::trace_tx_commit(tx_start);
        return result;
      }
    } catch (const Conflict& conflict) {
      tx.on_abort();
      Stats::mine().aborts += 1;
      util::trace_event(util::Ev::kTxAbort,
                        static_cast<std::uint64_t>(conflict.cause));
      const std::uint64_t pause_start = util::trace_clock();
      backoff.pause();
      util::trace_tx_retry_pause(pause_start);
    } catch (...) {
      tx.on_abort();
      throw;
    }
  }
}

/// Serial-mode retry loop: serial transactions cannot conflict, but user
/// code may still call `tx.retry()`; the backend's serial runner wraps the
/// body with this helper so a retry rolls back and re-executes in place.
template <class TM, class Tx, class F>
decltype(auto) run_serial_body(Tx& tx, F&& f) {
  using R = std::invoke_result_t<F&, Tx&>;
  for (;;) {
    try {
      util::trace_event(util::Ev::kTxBegin, 1);
      const std::uint64_t tx_start = util::trace_clock();
      tx.begin_serial();
      if constexpr (std::is_void_v<R>) {
        f(tx);
        tx.commit_serial();
        Stats::mine().serial_commits += 1;
        util::trace_tx_commit(tx_start);
        return;
      } else {
        R result = f(tx);
        tx.commit_serial();
        Stats::mine().serial_commits += 1;
        util::trace_tx_commit(tx_start);
        return result;
      }
    } catch (const Conflict& conflict) {
      tx.abort_serial();
      Stats::mine().aborts += 1;
      util::trace_event(util::Ev::kTxAbort,
                        static_cast<std::uint64_t>(conflict.cause));
    } catch (...) {
      tx.abort_serial();
      throw;
    }
  }
}

}  // namespace hohtm::tm
