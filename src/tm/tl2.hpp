#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "tm/abort.hpp"
#include "tm/atomically.hpp"
#include "tm/global_clocks.hpp"
#include "tm/quiescence.hpp"
#include "tm/tx_alloc.hpp"
#include "tm/txsets.hpp"
#include "tm/word.hpp"
#include "util/backoff.hpp"
#include "util/tsan.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::tm {

/// TL2 (Dice, Shalev, Shavit, DISC 2006): per-location ownership records
/// (orecs) versioned by a global clock; lazy write-back with commit-time
/// locking. The paper cites TL2's ownership records as the inspiration for
/// the RR-V reservation algorithm, so having the real thing as a backend
/// makes that lineage testable.
///
///  - Read: check the orec (unlocked, version <= rv), load, re-check.
///    A newer version aborts immediately — opacity without value logging.
///  - Commit: lock the write orecs, fetch a new version from the global
///    clock, validate the read set, write back, release at the new version.
///  - Serial-irrevocable mode is stop-the-world: set a flag that parks new
///    transactions at begin, quiesce all in-flight transactions, then run
///    uninstrumented. This is the strongest analog of the paper's GCC
///    serial fallback.
///  - Precise reclamation: frees run post-commit behind the quiescence
///    fence (readers with rv < wv must finish or abort first).
class Tl2 {
 public:
  class Tx : public TxLifecycle {
   public:
    template <TxWord T>
    T read(const T& loc) {
      if (serial_) return atomic_load(loc);
      if (const ErasedWord* buffered = writes_.find(&loc))
        return restore_word<T>(*buffered);
      std::atomic<std::uint64_t>& orec = orecs().orec_for(&loc);
      sched::point(sched::Op::kOrecRead, &orec);
      const std::uint64_t before = orec.load(std::memory_order_acquire);
      if (OrecTable::is_locked(before))
        // Exact attribution: a locked orec word carries the owner's slot.
        abort_tx(AbortCause::kLockConflict,
                 static_cast<int>(OrecTable::version_of(before)));
      if (OrecTable::version_of(before) > rv_)
        abort_tx(AbortCause::kReadValidation);
      const T val = atomic_load(loc);
      std::atomic_thread_fence(std::memory_order_acquire);
      sched::point(sched::Op::kOrecRead, &orec);
      if (!sched::mutate(sched::Mutation::kSkipReadValidation)) {
        const std::uint64_t after = orec.load(std::memory_order_acquire);
        if (after != before) {
          if (OrecTable::is_locked(after))
            abort_tx(AbortCause::kReadValidation,
                     static_cast<int>(OrecTable::version_of(after)));
          abort_tx(AbortCause::kReadValidation);
        }
      }
      // Re-check passed: the version this read ran at was published by a
      // committer's release store on this orec (mirrored for TSan; the
      // data load orders against the re-check via a fence TSan ignores).
      tsan::acquire(&orec);
      reads_.push_back(&orec);
      return val;
    }

    template <TxWord T>
    void write(T& loc, T val) {
      if (serial_) {
        undo_.record(&loc, erase_word(atomic_load(loc)));
        atomic_store(loc, val);
        return;
      }
      writes_.put(&loc, erase_word(val));
    }

    [[noreturn]] void retry() { user_retry(); }

    // -- harness hooks ----------------------------------------------------
    void begin() {
      serial_ = false;
      reads_.clear();
      writes_.clear();
      for (;;) {
        rv_ = orecs().clock();
        quiescence().publish(rv_);
        if (!serial_flag().load(std::memory_order_seq_cst)) break;
        // A serial transaction is starting (or running): get out of its
        // way, then re-sample the clock.
        quiescence().deactivate();
        sched::spin_wait(sched::Op::kLockAcquire, [] {
          return !serial_flag().load(std::memory_order_acquire);
        });
        util::Backoff backoff;
        while (serial_flag().load(std::memory_order_acquire)) backoff.pause();
      }
    }

    void commit() {
      if (writes_.empty()) {
        finish_with_frees(rv_);
        return;
      }
      lock_write_orecs();
      const std::uint64_t wv = orecs().advance_clock();
      if (rv_ + 1 != wv) validate_reads();
      writes_.write_back();
      for (const LockedOrec& lo : locked_) {
        sched::point(sched::Op::kOrecRelease, lo.orec);
        tsan::release(lo.orec);  // publishes the write-back at version wv
        lo.orec->store(OrecTable::unlocked(wv), std::memory_order_release);
      }
      locked_.clear();
      finish_with_frees(wv);
    }

    void on_abort() noexcept {
      release_locked();
      life_.abort();
      quiescence().deactivate();
    }

    // Serial mode body hooks. The world is already stopped (run_serial
    // set the flag and quiesced) before begin_serial runs.
    void begin_serial() {
      serial_ = true;
      undo_.clear();
    }

    void commit_serial() {
      undo_.clear();
      // World is stopped: frees are safe immediately, and no concurrent
      // snapshot can observe a half-applied state.
      life_.commit();
      serial_ = false;
    }

    void abort_serial() noexcept {
      undo_.roll_back();
      life_.abort();
      serial_ = false;
    }

   private:
    struct LockedOrec {
      std::atomic<std::uint64_t>* orec;
      std::uint64_t previous;
    };

    void lock_write_orecs() {
      const std::uint64_t mine =
          OrecTable::locked_by(util::ThreadRegistry::slot());
      for (const WriteSet::Entry& e : writes_.entries()) {
        auto& orec = orecs().orec_for(reinterpret_cast<void*>(e.addr));
        util::Backoff backoff;
        for (std::uint32_t spins = 0;; ++spins) {
          sched::point(sched::Op::kOrecRead, &orec);
          std::uint64_t seen = orec.load(std::memory_order_acquire);
          if (seen == mine) break;  // already locked by this commit
          if (OrecTable::is_locked(seen)) {
            if (spins >= kLockSpinBudget) {
              release_locked();
              abort_tx(AbortCause::kLockConflict,
                       static_cast<int>(OrecTable::version_of(seen)));
            }
            backoff.pause();
            continue;
          }
          if (OrecTable::version_of(seen) > rv_) {
            release_locked();
            abort_tx(AbortCause::kLockConflict);
          }
          sched::point(sched::Op::kOrecCas, &orec);
          if (orec.compare_exchange_weak(seen, mine,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
            tsan::acquire(&orec);  // synchronizes with the prior release
            locked_.push_back(LockedOrec{&orec, seen});
            break;
          }
        }
      }
    }

    void validate_reads() {
      const std::uint64_t mine =
          OrecTable::locked_by(util::ThreadRegistry::slot());
      for (std::atomic<std::uint64_t>* orec : reads_) {
        sched::point(sched::Op::kOrecRead, orec);
        const std::uint64_t seen = orec->load(std::memory_order_acquire);
        if (seen == mine) continue;
        if (OrecTable::is_locked(seen)) {
          release_locked();
          abort_tx(AbortCause::kReadValidation,
                   static_cast<int>(OrecTable::version_of(seen)));
        }
        if (OrecTable::version_of(seen) > rv_) {
          release_locked();
          abort_tx(AbortCause::kReadValidation);
        }
      }
    }

    void release_locked() noexcept {
      for (const LockedOrec& lo : locked_) {
        sched::point(sched::Op::kOrecRelease, lo.orec);
        lo.orec->store(lo.previous, std::memory_order_release);
      }
      locked_.clear();
    }

    void finish_with_frees(std::uint64_t ts) {
      if (life_.has_pending_frees()) {
        quiescence().deactivate();
        quiescence().wait_until(ts);
        life_.commit();
      } else {
        life_.commit();
        quiescence().deactivate();
      }
    }

    static constexpr std::uint32_t kLockSpinBudget = 64;

    std::uint64_t rv_ = 0;
    bool serial_ = false;
    std::vector<std::atomic<std::uint64_t>*> reads_;
    WriteSet writes_;
    std::vector<LockedOrec> locked_;
    UndoLog undo_;
  };

  template <class F>
  static decltype(auto) atomically(F&& f) {
    return run_transaction<Tl2>(std::forward<F>(f));
  }

  /// Stop-the-world serial execution. Unlike the seqlock backends, a user
  /// `retry()` here must *resume* the world between attempts (another
  /// thread — necessarily parked at begin while the flag is up — may be
  /// the one that will change the condition being retried on), so the
  /// stop/quiesce/run/resume cycle is per attempt.
  template <class F>
  static decltype(auto) run_serial(F&& f) {
    using R = std::invoke_result_t<F&, Tx&>;
    std::lock_guard<std::mutex> serial_lock(serial_mutex());
    Tx& tx = tls_tx();
    set_current(&tx);
    struct Clear {
      ~Clear() { set_current(nullptr); }
    } guard;

    util::Backoff backoff;
    for (;;) {
      {
        serial_flag().store(true, std::memory_order_seq_cst);
        struct WorldResume {
          ~WorldResume() {
            Tl2::serial_flag().store(false, std::memory_order_seq_cst);
          }
        } resume_guard;
        quiescence().wait_all_inactive();  // caller aborted before fallback
        try {
          tx.begin_serial();
          if constexpr (std::is_void_v<R>) {
            f(tx);
            tx.commit_serial();
            Stats::mine().serial_commits += 1;
            return;
          } else {
            R result = f(tx);
            tx.commit_serial();
            Stats::mine().serial_commits += 1;
            return result;
          }
        } catch (const Conflict&) {
          tx.abort_serial();
          Stats::mine().aborts += 1;
        } catch (...) {
          tx.abort_serial();
          throw;
        }
      }
      // World runs again here, so the retried-on condition can change.
      backoff.pause();
    }
  }

  static Tx* current() noexcept { return current_; }
  static void set_current(Tx* tx) noexcept { current_ = tx; }
  static Tx& tls_tx() {
    static thread_local Tx tx;
    return tx;
  }
  static constexpr const char* name() noexcept { return "tl2"; }

  /// Fence for non-TM reclaimers (hazard pointers): wait until every
  /// transaction that began before now has finished (TL2 readers never
  /// advance their snapshot mid-transaction).
  static void quiesce_before_free() noexcept {
    quiescence_.wait_until(orecs().clock());
  }

 private:
  static OrecTable& orecs() noexcept {
    static OrecTable table;  // 2 MiB; function-local to avoid bss bloat
    return table;
  }
  static Quiescence& quiescence() noexcept { return quiescence_; }
  static std::atomic<bool>& serial_flag() noexcept { return serial_flag_; }
  static std::mutex& serial_mutex() {
    static std::mutex mu;
    return mu;
  }

  static inline Quiescence quiescence_;
  static inline std::atomic<bool> serial_flag_{false};
  static inline thread_local Tx* current_ = nullptr;
};

}  // namespace hohtm::tm
