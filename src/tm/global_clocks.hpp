#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sched/schedpoint.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"
#include "util/tsan.hpp"

namespace hohtm::tm {

/// Global sequence lock shared by the NOrec and TML backends (each backend
/// has its own instance). Even values mean "no writer"; a writer commits by
/// moving the clock from even to odd and back. Padded so the clock never
/// shares a line with neighbouring globals.
class SeqLock {
 public:
  std::uint64_t load_acquire() const noexcept {
    sched::point(sched::Op::kClockRead, this);
    const std::uint64_t v = clock_->load(std::memory_order_acquire);
    // Happens-before: the last unlock_to's release (or its release
    // sequence through a writer's CAS) is what this load synchronizes
    // with; mirrored for TSan because the backends' data accesses order
    // themselves against this check with fences TSan cannot model.
    tsan::acquire(this);
    return v;
  }

  /// Spin until the clock is even, return its value.
  std::uint64_t wait_even() const noexcept;

  /// Try to move even `expected` to odd; true on success. The caller's
  /// registry slot is stamped into the owner cell *before* the CAS so a
  /// reader that aborts against this writer generation can name the
  /// writer (causal abort attribution). The pre-CAS stamp means a CAS
  /// that loses leaves a transiently wrong owner — attribution through a
  /// single global seqlock is best-effort by nature (documented in
  /// docs/OBSERVABILITY.md), unlike the per-orec owner words of TL2.
  bool try_lock_from(std::uint64_t expected) noexcept {
    owner_->store(static_cast<std::int64_t>(util::ThreadRegistry::slot()),
                  std::memory_order_relaxed);
    sched::point(sched::Op::kLockAcquire, this);
    const bool won = clock_->compare_exchange_strong(
        expected, expected + 1, std::memory_order_acquire,
        std::memory_order_relaxed);
    if (won) tsan::acquire(this);  // synchronizes with the prior unlock_to
    return won;
  }

  /// Release a held (odd) lock, completing one writer generation.
  void unlock_to(std::uint64_t next_even) noexcept {
    sched::point(sched::Op::kLockRelease, this);
    tsan::release(this);  // publishes this writer generation's write-back
    clock_->store(next_even, std::memory_order_release);
  }

  /// Registry slot of the last thread that (tried to) acquire the write
  /// lock; -1 before any writer. Best-effort attribution input for the
  /// value- and clock-validating backends (NOrec, TML).
  int owner() const noexcept {
    return static_cast<int>(owner_->load(std::memory_order_relaxed));
  }

 private:
  util::CachePadded<std::atomic<std::uint64_t>> clock_{0};
  util::CachePadded<std::atomic<std::int64_t>> owner_{-1};
};

/// Global version clock + ownership-record (orec) table for TL2.
/// The table maps word addresses many-to-one onto versioned locks:
///   unlocked: (version << 1)      locked: (owner_slot << 1) | 1
class OrecTable {
 public:
  static constexpr std::size_t kOrecCount = std::size_t{1} << 18;

  static bool is_locked(std::uint64_t word) noexcept { return word & 1; }
  static std::uint64_t version_of(std::uint64_t word) noexcept { return word >> 1; }
  static std::uint64_t locked_by(std::size_t slot) noexcept {
    return (static_cast<std::uint64_t>(slot) << 1) | 1;
  }
  static std::uint64_t unlocked(std::uint64_t version) noexcept {
    return version << 1;
  }

  std::atomic<std::uint64_t>& orec_for(const void* addr) noexcept {
    // Group by 16-byte granule: adjacent fields of a node share one orec,
    // which reduces per-read overhead without inflating false conflicts
    // between distinct nodes (nodes are allocated on separate granules).
    auto key = reinterpret_cast<std::uintptr_t>(addr) >> 4;
    key *= 0x9E3779B97F4A7C15ULL;
    return orecs_[(key >> 40) & (kOrecCount - 1)];
  }

  std::uint64_t clock() const noexcept {
    sched::point(sched::Op::kClockRead, this);
    const std::uint64_t v = gvc_->load(std::memory_order_acquire);
    tsan::acquire(this);  // synchronizes with the last advance_clock
    return v;
  }

  std::uint64_t advance_clock() noexcept {
    sched::point(sched::Op::kClockAdvance, this);
    tsan::release(this);  // acq_rel RMW: both edges, mirrored for TSan
    const std::uint64_t v = gvc_->fetch_add(1, std::memory_order_acq_rel) + 1;
    tsan::acquire(this);
    return v;
  }

 private:
  util::CachePadded<std::atomic<std::uint64_t>> gvc_{0};
  std::atomic<std::uint64_t> orecs_[kOrecCount] = {};
};

}  // namespace hohtm::tm
