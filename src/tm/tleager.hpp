#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "tm/abort.hpp"
#include "tm/atomically.hpp"
#include "tm/global_clocks.hpp"
#include "tm/quiescence.hpp"
#include "tm/tx_alloc.hpp"
#include "tm/txsets.hpp"
#include "tm/word.hpp"
#include "util/backoff.hpp"
#include "util/tsan.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::tm {

/// TLEager: orec-based STM with *encounter-time* locking and undo
/// logging — writes acquire ownership at the access and store in place.
///
/// Why it exists in this reproduction: the paper leans on HTM's
/// *immediacy* — a conflicting access kills the other transaction right
/// away. Lazy STMs (NOrec, TL2) only surface write conflicts at commit.
/// Eager acquisition is the closest software analog: a second writer (or
/// any reader) of a locked location aborts at the access, so conflict
/// timing — and therefore the contention behaviour of the reservation
/// algorithms — is closer to the paper's substrate. The A2 backend
/// ablation quantifies the difference against the lazy backends.
///
///  - Read: orec must be unlocked with version <= rv (or owned by this
///    transaction); check / load / re-check, as in TL2.
///  - Write: CAS the orec from unlocked to owned (abort if another owner
///    holds it — self-abort rather than wait, with the usual serial
///    fallback providing progress), log the old value, store in place.
///  - Commit: draw a new version, validate the read set, release the
///    write orecs at the new version. Abort: roll the undo log back,
///    release orecs at their *old* versions (values are restored, so
///    the old versions are again truthful).
///  - Precise reclamation: quiescence fence before deferred frees, and
///    the same stop-the-world serial-irrevocable mode as TL2.
class TlEager {
 public:
  class Tx : public TxLifecycle {
   public:
    template <TxWord T>
    T read(const T& loc) {
      if (serial_) return atomic_load(loc);
      std::atomic<std::uint64_t>& orec = orecs().orec_for(&loc);
      sched::point(sched::Op::kOrecRead, &orec);
      const std::uint64_t before = orec.load(std::memory_order_acquire);
      if (before == my_lock_word()) return atomic_load(loc);  // mine
      if (OrecTable::is_locked(before))
        // Exact attribution: a locked orec word carries the owner's slot.
        abort_tx(AbortCause::kLockConflict,
                 static_cast<int>(OrecTable::version_of(before)));
      if (OrecTable::version_of(before) > rv_)
        abort_tx(AbortCause::kReadValidation);
      const T val = atomic_load(loc);
      std::atomic_thread_fence(std::memory_order_acquire);
      sched::point(sched::Op::kOrecRead, &orec);
      if (!sched::mutate(sched::Mutation::kSkipReadValidation)) {
        const std::uint64_t after = orec.load(std::memory_order_acquire);
        if (after != before) {
          if (OrecTable::is_locked(after))
            abort_tx(AbortCause::kReadValidation,
                     static_cast<int>(OrecTable::version_of(after)));
          abort_tx(AbortCause::kReadValidation);
        }
      }
      tsan::acquire(&orec);  // see Tl2::Tx::read
      reads_.push_back(&orec);
      return val;
    }

    template <TxWord T>
    void write(T& loc, T val) {
      if (serial_) {
        undo_.record(&loc, erase_word(atomic_load(loc)));
        atomic_store(loc, val);
        return;
      }
      acquire(&loc);
      undo_.record(&loc, erase_word(atomic_load(loc)));
      atomic_store(loc, val);
    }

    [[noreturn]] void retry() { user_retry(); }

    // -- harness hooks ----------------------------------------------------
    void begin() {
      serial_ = false;
      reads_.clear();
      undo_.clear();
      locked_.clear();
      for (;;) {
        rv_ = orecs().clock();
        quiescence().publish(rv_);
        if (!serial_flag().load(std::memory_order_seq_cst)) break;
        quiescence().deactivate();
        sched::spin_wait(sched::Op::kLockAcquire, [] {
          return !serial_flag().load(std::memory_order_acquire);
        });
        util::Backoff backoff;
        while (serial_flag().load(std::memory_order_acquire)) backoff.pause();
      }
    }

    void commit() {
      if (locked_.empty()) {  // read-only
        undo_.clear();
        finish_with_frees(rv_);
        return;
      }
      const std::uint64_t wv = orecs().advance_clock();
      if (rv_ + 1 != wv) validate_reads();
      undo_.clear();  // writes are already in place and now permanent
      for (const LockedOrec& lo : locked_) {
        sched::point(sched::Op::kOrecRelease, lo.orec);
        tsan::release(lo.orec);  // publishes the in-place writes at wv
        lo.orec->store(OrecTable::unlocked(wv), std::memory_order_release);
      }
      locked_.clear();
      finish_with_frees(wv);
    }

    void on_abort() noexcept {
      undo_.roll_back();  // restore values BEFORE re-exposing old versions
      for (const LockedOrec& lo : locked_) {
        sched::point(sched::Op::kOrecRelease, lo.orec);
        tsan::release(lo.orec);  // publishes the undo-log restoration
        lo.orec->store(lo.previous, std::memory_order_release);
      }
      locked_.clear();
      life_.abort();
      quiescence().deactivate();
    }

    // Stop-the-world serial mode (world already stopped by run_serial).
    void begin_serial() {
      serial_ = true;
      undo_.clear();
    }

    void commit_serial() {
      undo_.clear();
      life_.commit();
      serial_ = false;
    }

    void abort_serial() noexcept {
      undo_.roll_back();
      life_.abort();
      serial_ = false;
    }

   private:
    struct LockedOrec {
      std::atomic<std::uint64_t>* orec;
      std::uint64_t previous;
    };

    std::uint64_t my_lock_word() const noexcept {
      return OrecTable::locked_by(util::ThreadRegistry::slot());
    }

    void acquire(const void* addr) {
      std::atomic<std::uint64_t>& orec = orecs().orec_for(addr);
      sched::point(sched::Op::kOrecRead, &orec);
      std::uint64_t seen = orec.load(std::memory_order_acquire);
      if (seen == my_lock_word()) return;  // already own it
      if (OrecTable::is_locked(seen))
        abort_tx(AbortCause::kLockConflict,
                 static_cast<int>(OrecTable::version_of(seen)));
      if (OrecTable::version_of(seen) > rv_)
        abort_tx(AbortCause::kLockConflict);
      sched::point(sched::Op::kOrecCas, &orec);
      if (!orec.compare_exchange_strong(seen, my_lock_word(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        // The CAS failure wrote the winner's word into `seen`.
        abort_tx(AbortCause::kLockConflict,
                 OrecTable::is_locked(seen)
                     ? static_cast<int>(OrecTable::version_of(seen))
                     : -1);
      tsan::acquire(&orec);  // synchronizes with the prior release
      locked_.push_back(LockedOrec{&orec, seen});
    }

    void validate_reads() {
      for (std::atomic<std::uint64_t>* orec : reads_) {
        sched::point(sched::Op::kOrecRead, orec);
        const std::uint64_t seen = orec->load(std::memory_order_acquire);
        if (seen == my_lock_word()) continue;
        if (OrecTable::is_locked(seen))
          abort_tx(AbortCause::kReadValidation,  // on_abort rolls back
                   static_cast<int>(OrecTable::version_of(seen)));
        if (OrecTable::version_of(seen) > rv_)
          abort_tx(AbortCause::kReadValidation);
      }
    }

    void finish_with_frees(std::uint64_t ts) {
      if (life_.has_pending_frees()) {
        quiescence().deactivate();
        quiescence().wait_until(ts);
        life_.commit();
      } else {
        life_.commit();
        quiescence().deactivate();
      }
    }

    std::uint64_t rv_ = 0;
    bool serial_ = false;
    std::vector<std::atomic<std::uint64_t>*> reads_;
    UndoLog undo_;
    std::vector<LockedOrec> locked_;
  };

  template <class F>
  static decltype(auto) atomically(F&& f) {
    return run_transaction<TlEager>(std::forward<F>(f));
  }

  /// Stop-the-world serial execution (mirrors Tl2::run_serial; see the
  /// retry-resume discussion there).
  template <class F>
  static decltype(auto) run_serial(F&& f) {
    using R = std::invoke_result_t<F&, Tx&>;
    std::lock_guard<std::mutex> serial_lock(serial_mutex());
    Tx& tx = tls_tx();
    set_current(&tx);
    struct Clear {
      ~Clear() { set_current(nullptr); }
    } guard;

    util::Backoff backoff;
    for (;;) {
      {
        serial_flag().store(true, std::memory_order_seq_cst);
        struct WorldResume {
          ~WorldResume() {
            TlEager::serial_flag().store(false, std::memory_order_seq_cst);
          }
        } resume_guard;
        quiescence().wait_all_inactive();
        try {
          tx.begin_serial();
          if constexpr (std::is_void_v<R>) {
            f(tx);
            tx.commit_serial();
            Stats::mine().serial_commits += 1;
            return;
          } else {
            R result = f(tx);
            tx.commit_serial();
            Stats::mine().serial_commits += 1;
            return result;
          }
        } catch (const Conflict&) {
          tx.abort_serial();
          Stats::mine().aborts += 1;
        } catch (...) {
          tx.abort_serial();
          throw;
        }
      }
      backoff.pause();
    }
  }

  static Tx* current() noexcept { return current_; }
  static void set_current(Tx* tx) noexcept { current_ = tx; }
  static Tx& tls_tx() {
    static thread_local Tx tx;
    return tx;
  }
  static constexpr const char* name() noexcept { return "tleager"; }

  static void quiesce_before_free() noexcept {
    quiescence().wait_until(orecs().clock());
  }

 private:
  static OrecTable& orecs() noexcept {
    static OrecTable table;  // separate domain from Tl2's
    return table;
  }
  static Quiescence& quiescence() noexcept { return quiescence_; }
  static std::atomic<bool>& serial_flag() noexcept { return serial_flag_; }
  static std::mutex& serial_mutex() {
    static std::mutex mu;
    return mu;
  }

  static inline Quiescence quiescence_;
  static inline std::atomic<bool> serial_flag_{false};
  static inline thread_local Tx* current_ = nullptr;
};

}  // namespace hohtm::tm
