#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::tm {

/// Runtime-tunable knobs for the TM runtime.
///
/// `serial_threshold` mirrors the GCC TM policy the paper relies on: a
/// transaction that aborts this many times re-executes in a serial
/// (irrevocable) mode that is guaranteed to commit. The paper used the
/// default of 2 for lists and raised it to 8 for trees (Section 5); the
/// Figure-A4 ablation bench sweeps this knob.
struct Config {
  static std::uint32_t serial_threshold() noexcept {
    return threshold_.load(std::memory_order_relaxed);
  }
  static void set_serial_threshold(std::uint32_t n) noexcept {
    threshold_.store(n, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint32_t> threshold_{8};
};

/// Why a transaction aborted — or, for the last two entries, why a
/// hand-over-hand *operation* lost ground without any transaction
/// aborting. GCC TM hides both facts from the programmer (the paper's
/// stated obstacle to adaptive windows, §5.2); this taxonomy is the
/// library-owned answer.
enum class AbortCause : unsigned {
  kReadValidation = 0,   // read-set / value / orec-version validation failed
  kLockConflict,         // seqlock or orec acquisition lost to another owner
  kUserAbort,            // explicit tx.retry() from user code
  kSerialEscalation,     // retry budget exhausted; fell back to serial mode
  kRrRevocation,         // a Revoke(ref) was issued by this thread
  kHohRetry,             // a HOH op abandoned its position and restarted
  kFusionFallback,       // a fused (window-merged) attempt aborted and the
                         // op retreated to the small-window protocol
};
inline constexpr std::size_t kAbortCauseCount = 7;

/// Short stable identifiers, indexable by AbortCause; used verbatim as
/// bench CSV column names (see harness/report.cpp).
inline constexpr const char* kAbortCauseNames[kAbortCauseCount] = {
    "validation",  "lock",        "user", "serial_esc", "revocations",
    "hoh_retries", "fusion_fallbacks"};

/// Where a revocation was issued from — the "site" half of causal abort
/// attribution (the other half is the aborter's thread-registry slot).
/// Stamped into the RevocationBoard by `rr::note_revocation` from a
/// thread-local set by `rr::SiteScope` around each revoking operation,
/// and read back by the victim when it observes the loss.
enum class RevokeSite : unsigned {
  kUnknown = 0,  // no SiteScope active (or attribution unavailable)
  kListRemove,   // ds:: list Remove unlink-revoke-free
  kKvReplace,    // kv::Store put over an existing key
  kKvDelete,     // kv::Store del
  kMigration,    // kv::Store bucket migration window
};
inline constexpr std::size_t kRevokeSiteCount = 5;
inline constexpr const char* kRevokeSiteNames[kRevokeSiteCount] = {
    "unknown", "list_remove", "kv_replace", "kv_delete", "migration"};

/// Per-thread transaction counters, padded to avoid false sharing; each
/// slot is written only by its owning thread, so plain relaxed loads
/// suffice to aggregate.
struct StatCounters {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t user_retries = 0;
  /// Times this thread's own reservation was observed revoked (by a
  /// concurrent remover) when resuming a hand-over-hand operation. The
  /// flip side of by_cause[kRrRevocation], which counts revocations this
  /// thread *performed*.
  std::uint64_t reservation_losses = 0;
  /// Window boundaries elided by committed fused transactions (see
  /// ds::FusionState): each one is a release/reserve/commit/begin
  /// sequence that never ran. Only committed fusions count.
  std::uint64_t fused_windows = 0;
  /// Aborts suffered by attempts that were speculating past a window
  /// boundary. Under correct fallback behaviour this equals
  /// by_cause[kFusionFallback]; the sched mutant tests lean on that.
  std::uint64_t fused_aborts = 0;
  /// Quiescence fences executed by this thread (Quiescence::wait_until /
  /// wait_all_inactive entries). Backends only fence commits that carry
  /// deferred frees, so this counts the precise-reclamation synchrony an
  /// operation mix actually pays — the denominator the serving tier's
  /// batch fusion drives down (quiescence-waits/op, docs/SERVING.md).
  std::uint64_t quiescence_waits = 0;
  std::uint64_t by_cause[kAbortCauseCount] = {};

  /// Causal attribution ("who aborted whom"): one bucket per possible
  /// aborter thread-registry slot plus a final *unknown* bucket. Every
  /// attributed event increments exactly one bucket, so the buckets sum
  /// to the corresponding event total by construction — the invariant
  /// the kv_ycsb smoke and the sched attribution tests assert.
  static constexpr std::size_t kAttrSlots = util::kMaxThreads + 1;
  static constexpr std::size_t kAttrUnknown = util::kMaxThreads;
  /// Reservation losses by the revoker's slot; sums to
  /// `reservation_losses` exactly (see WindowBoundary::note_position_lost).
  std::uint64_t loss_by_aborter[kAttrSlots] = {};
  /// Reservation losses by the revoker's site (kv delete vs. migration
  /// vs. list remove ...); same total as loss_by_aborter.
  std::uint64_t loss_by_site[kRevokeSiteCount] = {};
  /// Conflict aborts (lock / validation) by the owning writer's slot.
  /// Only attribution-bearing abort sites tick these (abort_tx with an
  /// aborter), so the buckets sum to ≤ `aborts`.
  std::uint64_t aborted_by[kAttrSlots] = {};
  /// kFusionFallback records that carried / lacked a known aborter id
  /// (the identity of the conflict that killed the fused attempt).
  std::uint64_t fusion_fb_attributed = 0;
  std::uint64_t fusion_fb_unknown = 0;

  void record(AbortCause cause) noexcept {
    by_cause[static_cast<unsigned>(cause)] += 1;
  }

  /// Attribute one reservation loss: `slot` is the revoker's registry
  /// slot (out-of-range means unknown), `site` indexes RevokeSite.
  void note_loss_attribution(int slot, unsigned site) noexcept {
    const std::size_t bucket =
        (slot >= 0 && slot < static_cast<int>(util::kMaxThreads))
            ? static_cast<std::size_t>(slot)
            : kAttrUnknown;
    loss_by_aborter[bucket] += 1;
    loss_by_site[site < kRevokeSiteCount ? site : 0] += 1;
  }

  /// Attribute one conflict abort to the owning writer's slot.
  void note_conflict_attribution(int slot) noexcept {
    const std::size_t bucket =
        (slot >= 0 && slot < static_cast<int>(util::kMaxThreads))
            ? static_cast<std::size_t>(slot)
            : kAttrUnknown;
    aborted_by[bucket] += 1;
  }

  /// Losses / conflict aborts whose aborter slot is known.
  std::uint64_t attributed_losses() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kAttrUnknown; ++i) sum += loss_by_aborter[i];
    return sum;
  }
  std::uint64_t unknown_losses() const noexcept {
    return loss_by_aborter[kAttrUnknown];
  }
  std::uint64_t attributed_aborts() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kAttrUnknown; ++i) sum += aborted_by[i];
    return sum;
  }

  std::uint64_t cause(AbortCause c) const noexcept {
    return by_cause[static_cast<unsigned>(c)];
  }

  /// The combined contention signal the adaptive-window tuner diffs
  /// across an operation (see ds::WindowTuner). Raw `aborts` alone is
  /// blind to hand-over-hand contention: a revoked reservation makes the
  /// operation restart from the head with every transaction *committing*,
  /// so the two operation-level counters must be folded in. Revocations
  /// *performed* are deliberately excluded — a remover revoking its
  /// victim is normal work, not back-pressure against the remover.
  std::uint64_t contention_signal() const noexcept {
    return aborts + reservation_losses + cause(AbortCause::kHohRetry);
  }

  void accumulate(const StatCounters& other) noexcept {
    commits += other.commits;
    aborts += other.aborts;
    serial_commits += other.serial_commits;
    user_retries += other.user_retries;
    reservation_losses += other.reservation_losses;
    fused_windows += other.fused_windows;
    fused_aborts += other.fused_aborts;
    quiescence_waits += other.quiescence_waits;
    for (std::size_t i = 0; i < kAbortCauseCount; ++i)
      by_cause[i] += other.by_cause[i];
    for (std::size_t i = 0; i < kAttrSlots; ++i) {
      loss_by_aborter[i] += other.loss_by_aborter[i];
      aborted_by[i] += other.aborted_by[i];
    }
    for (std::size_t i = 0; i < kRevokeSiteCount; ++i)
      loss_by_site[i] += other.loss_by_site[i];
    fusion_fb_attributed += other.fusion_fb_attributed;
    fusion_fb_unknown += other.fusion_fb_unknown;
  }
};

class Stats {
 public:
  static StatCounters& mine() noexcept {
    return slots_[util::ThreadRegistry::slot()].value;
  }

  static StatCounters total() noexcept {
    StatCounters sum;
    const std::size_t n = util::ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i) sum.accumulate(slots_[i].value);
    return sum;
  }

  static void reset() noexcept {
    for (auto& s : slots_) s.value = StatCounters{};
  }

 private:
  static inline util::CachePadded<StatCounters> slots_[util::kMaxThreads];
};

}  // namespace hohtm::tm
