#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::tm {

/// Runtime-tunable knobs for the TM runtime.
///
/// `serial_threshold` mirrors the GCC TM policy the paper relies on: a
/// transaction that aborts this many times re-executes in a serial
/// (irrevocable) mode that is guaranteed to commit. The paper used the
/// default of 2 for lists and raised it to 8 for trees (Section 5); the
/// Figure-A4 ablation bench sweeps this knob.
struct Config {
  static std::uint32_t serial_threshold() noexcept {
    return threshold_.load(std::memory_order_relaxed);
  }
  static void set_serial_threshold(std::uint32_t n) noexcept {
    threshold_.store(n, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint32_t> threshold_{8};
};

/// Per-thread transaction counters, padded to avoid false sharing; each
/// slot is written only by its owning thread, so plain relaxed loads
/// suffice to aggregate.
struct StatCounters {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t user_retries = 0;
};

class Stats {
 public:
  static StatCounters& mine() noexcept {
    return slots_[util::ThreadRegistry::slot()].value;
  }

  static StatCounters total() noexcept {
    StatCounters sum;
    const std::size_t n = util::ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i) {
      const StatCounters& c = slots_[i].value;
      sum.commits += c.commits;
      sum.aborts += c.aborts;
      sum.serial_commits += c.serial_commits;
      sum.user_retries += c.user_retries;
    }
    return sum;
  }

  static void reset() noexcept {
    for (auto& s : slots_) s.value = StatCounters{};
  }

 private:
  static inline util::CachePadded<StatCounters> slots_[util::kMaxThreads];
};

}  // namespace hohtm::tm
