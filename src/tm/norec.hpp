#pragma once

#include <atomic>
#include <vector>

#include "tm/abort.hpp"
#include "tm/atomically.hpp"
#include "tm/global_clocks.hpp"
#include "tm/quiescence.hpp"
#include "tm/tx_alloc.hpp"
#include "tm/txsets.hpp"
#include "tm/word.hpp"

namespace hohtm::tm {

/// NOrec (Dalessandro, Spear, Scott, PPoPP 2010): value-based validation
/// with a single global sequence lock and lazy write-back.
///
///  - Readers log (address, value) pairs; whenever the global clock moves
///    they re-check every logged value and either adopt the new snapshot
///    or abort. This gives opacity without per-location metadata.
///  - Writers buffer updates in a redo log; commit acquires the sequence
///    lock, re-validates, writes back, and releases.
///  - Precise reclamation: deferred frees run after the unlock plus a
///    quiescence fence over transactions whose snapshot predates the
///    commit. Combined with value-based validation this is privatization
///    safe: a doomed reader re-validates (and aborts) before it can act on
///    any value the committer changed, and cannot reach memory the
///    committer freed without having read something the committer wrote.
///
/// This is the default backend for the paper-reproduction benchmarks: like
/// the paper's HTM it has no per-access metadata writes for readers, and
/// its commit-time serialization models HTM's cache-based conflict
/// resolution more closely than an orec STM does.
class Norec {
 public:
  class Tx : public TxLifecycle {
   public:
    template <TxWord T>
    T read(const T& loc) {
      if (serial_) return atomic_load(loc);
      if (const ErasedWord* buffered = writes_.find(&loc))
        return restore_word<T>(*buffered);
      ErasedWord seen = erased_load(&loc, sizeof(T));
      for (;;) {
        std::atomic_thread_fence(std::memory_order_acquire);
        if (seqlock().load_acquire() == snapshot_ ||
            sched::mutate(sched::Mutation::kSkipReadValidation))
          break;
        snapshot_ = validate();
        seen = erased_load(&loc, sizeof(T));
      }
      reads_.push_back(ReadEntry{&loc, seen});
      return restore_word<T>(seen);
    }

    template <TxWord T>
    void write(T& loc, T val) {
      if (serial_) {
        undo_.record(&loc, erase_word(atomic_load(loc)));
        atomic_store(loc, val);
        return;
      }
      writes_.put(&loc, erase_word(val));
    }

    [[noreturn]] void retry() { user_retry(); }

    // -- harness hooks ----------------------------------------------------
    void begin() {
      serial_ = false;
      reads_.clear();
      writes_.clear();
      snapshot_ = seqlock().wait_even();
      quiescence().publish(snapshot_);
    }

    void commit() {
      if (writes_.empty()) {
        finish_with_frees(snapshot_);
        return;
      }
      while (!seqlock().try_lock_from(snapshot_)) snapshot_ = validate();
      writes_.write_back();
      seqlock().unlock_to(snapshot_ + 2);
      finish_with_frees(snapshot_ + 2);
    }

    void on_abort() noexcept {
      life_.abort();
      quiescence().deactivate();
    }

    /// Serial mode: hold the sequence lock for the whole transaction and
    /// execute in place (undo-logged so a user retry can roll back).
    /// Concurrent readers block in wait_even/validate until release, then
    /// re-validate — they can never adopt a half-done serial state.
    void begin_serial() {
      serial_ = true;
      undo_.clear();
      for (;;) {
        const std::uint64_t even = seqlock().wait_even();
        if (seqlock().try_lock_from(even)) {
          snapshot_ = even;
          break;
        }
      }
    }

    void commit_serial() {
      undo_.clear();
      seqlock().unlock_to(snapshot_ + 2);
      if (life_.has_pending_frees()) quiescence().wait_until(snapshot_ + 2);
      life_.commit();
      serial_ = false;
    }

    void abort_serial() noexcept {
      undo_.roll_back();
      seqlock().unlock_to(snapshot_ + 2);
      life_.abort();
      serial_ = false;
    }

    bool in_serial_mode() const noexcept { return serial_; }

   private:
    struct ReadEntry {
      const void* addr;
      ErasedWord word;
    };

    /// Wait for a stable even clock, re-check every logged read, and
    /// return the snapshot the read set is now known to be valid at.
    std::uint64_t validate() {
      for (;;) {
        const std::uint64_t even = seqlock().wait_even();
        for (const ReadEntry& r : reads_) {
          if (erased_load(r.addr, r.word.width).bits != r.word.bits)
            // A committed writer changed a value under us; the last lock
            // acquirer is that writer (best-effort; see SeqLock::owner).
            abort_tx(AbortCause::kReadValidation, seqlock().owner());
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (seqlock().load_acquire() == even) {
          quiescence().publish(even);
          return even;
        }
      }
    }

    void finish_with_frees(std::uint64_t ts) {
      if (life_.has_pending_frees()) {
        quiescence().deactivate();
        quiescence().wait_until(ts);
        life_.commit();
      } else {
        life_.commit();
        quiescence().deactivate();
      }
    }

    std::uint64_t snapshot_ = 0;
    bool serial_ = false;
    std::vector<ReadEntry> reads_;
    WriteSet writes_;
    UndoLog undo_;
  };

  template <class F>
  static decltype(auto) atomically(F&& f) {
    return run_transaction<Norec>(std::forward<F>(f));
  }

  template <class F>
  static decltype(auto) run_serial(F&& f) {
    Tx& tx = tls_tx();
    set_current(&tx);
    struct Clear {
      ~Clear() { set_current(nullptr); }
    } guard;
    return run_serial_body<Norec>(tx, std::forward<F>(f));
  }

  static Tx* current() noexcept { return current_; }
  static void set_current(Tx* tx) noexcept { current_ = tx; }
  static Tx& tls_tx() {
    static thread_local Tx tx;
    return tx;
  }
  static constexpr const char* name() noexcept { return "norec"; }

  /// Fence for non-TM reclaimers (hazard pointers): wait until every
  /// in-flight transaction has validated at or past the current clock;
  /// after that no read set can still reference an unlinked node, so its
  /// memory cannot be touched by value-based re-validation.
  static void quiesce_before_free() noexcept {
    quiescence_.wait_until(seqlock_.wait_even());
  }

 private:
  static SeqLock& seqlock() noexcept { return seqlock_; }
  static Quiescence& quiescence() noexcept { return quiescence_; }

  static inline SeqLock seqlock_;
  static inline Quiescence quiescence_;
  static inline thread_local Tx* current_ = nullptr;
};

}  // namespace hohtm::tm
