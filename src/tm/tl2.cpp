#include "tm/tl2.hpp"

// TL2 is fully inline; anchor TU.
namespace hohtm::tm {}
