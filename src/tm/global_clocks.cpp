#include "tm/global_clocks.hpp"

#include "util/backoff.hpp"

namespace hohtm::tm {

std::uint64_t SeqLock::wait_even() const noexcept {
  // Under the virtual scheduler a spinning reader must be *disabled*
  // (not a scheduling choice) until the writer releases, or exhaustive
  // exploration would branch on every futile spin. Managed threads park
  // here; everyone else falls through to the real spin loop, whose
  // first iteration then succeeds immediately for the managed case.
  sched::spin_wait(sched::Op::kClockRead, [this] {
    return (clock_->load(std::memory_order_acquire) & 1) == 0;
  });
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t v = clock_->load(std::memory_order_acquire);
    if ((v & 1) == 0) {
      tsan::acquire(this);  // even clock: the last writer's unlock is seen
      return v;
    }
    backoff.pause();
  }
}

}  // namespace hohtm::tm
