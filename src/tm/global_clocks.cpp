#include "tm/global_clocks.hpp"

#include "util/backoff.hpp"

namespace hohtm::tm {

std::uint64_t SeqLock::wait_even() const noexcept {
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t v = clock_->load(std::memory_order_acquire);
    if ((v & 1) == 0) return v;
    backoff.pause();
  }
}

}  // namespace hohtm::tm
