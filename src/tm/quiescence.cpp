#include "tm/quiescence.hpp"

#include "tm/config.hpp"
#include "util/backoff.hpp"
#include "util/trace.hpp"

namespace hohtm::tm {

void Quiescence::wait_until(std::uint64_t ts) const noexcept {
  // Bug-injection mutant for the schedule explorer: skipping the fence
  // must let it catch a use-after-free ordering within a bounded search.
  if (sched::mutate(sched::Mutation::kSkipQuiescenceWait)) return;
  Stats::mine().quiescence_waits += 1;
  const std::uint64_t stall_start = util::trace_quiesce_enter();
  // Under the virtual scheduler, block on the whole-fence predicate so
  // the wait is a single disabled-until-true step whose enabledness does
  // not depend on registry slot-scan order (keeps replays exact).
  sched::spin_wait(sched::Op::kQuiesceWait,
                   [this, ts] { return settled_at(ts); });
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t published =
          slots_[i]->load(std::memory_order_acquire);
      if (published == 0 || published >= ts + 1) {
        // The slot owner's accesses up to its publish/deactivate now
        // happen-before the deferred frees that follow this fence.
        tsan::acquire(&*slots_[i]);
        break;
      }
      backoff.pause();
    }
  }
  util::trace_quiesce_exit(stall_start);
}

void Quiescence::wait_all_inactive() const noexcept {
  Stats::mine().quiescence_waits += 1;
  const std::uint64_t stall_start = util::trace_quiesce_enter();
  sched::spin_wait(sched::Op::kQuiesceWait, [this] { return all_inactive(); });
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    util::Backoff backoff;
    while (slots_[i]->load(std::memory_order_acquire) != 0) backoff.pause();
    tsan::acquire(&*slots_[i]);  // see wait_until
  }
  util::trace_quiesce_exit(stall_start);
}

}  // namespace hohtm::tm
