#include "tm/quiescence.hpp"

#include "util/backoff.hpp"
#include "util/trace.hpp"

namespace hohtm::tm {

void Quiescence::wait_until(std::uint64_t ts) const noexcept {
  const std::uint64_t stall_start = util::trace_quiesce_enter();
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t published =
          slots_[i]->load(std::memory_order_acquire);
      if (published == 0 || published >= ts + 1) break;
      backoff.pause();
    }
  }
  util::trace_quiesce_exit(stall_start);
}

void Quiescence::wait_all_inactive() const noexcept {
  const std::uint64_t stall_start = util::trace_quiesce_enter();
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    util::Backoff backoff;
    while (slots_[i]->load(std::memory_order_acquire) != 0) backoff.pause();
  }
  util::trace_quiesce_exit(stall_start);
}

}  // namespace hohtm::tm
