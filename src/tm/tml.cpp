#include "tm/tml.hpp"

// TML is fully inline; anchor TU.
namespace hohtm::tm {}
