#pragma once

namespace hohtm::tm {

/// Control-flow exception thrown when a transaction observes a conflict
/// (or the user requests a retry). It unwinds to the retry loop in
/// `atomically`; it never escapes to user code.
struct Conflict {};

}  // namespace hohtm::tm
