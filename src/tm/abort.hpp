#pragma once

#include "tm/config.hpp"

namespace hohtm::tm {

/// Control-flow exception thrown when a transaction observes a conflict
/// (or the user requests a retry). It unwinds to the retry loop in
/// `atomically`; it never escapes to user code. Carries the cause so
/// diagnostics can see *why* the attempt died, not just that it did.
struct Conflict {
  AbortCause cause = AbortCause::kReadValidation;
};

/// The one way to abort a transaction attempt: records the per-cause
/// counter on the calling thread, then unwinds. Every conflict site in
/// the backends goes through here — a bare `throw Conflict{}` is a bug
/// (the telemetry audit greps for it).
[[noreturn]] inline void abort_tx(AbortCause cause) {
  Stats::mine().record(cause);
  throw Conflict{cause};
}

/// Shared body of every backend's `tx.retry()`: one user-retry tally,
/// one cause tally, one unwind.
[[noreturn]] inline void user_retry() {
  Stats::mine().user_retries += 1;
  abort_tx(AbortCause::kUserAbort);
}

}  // namespace hohtm::tm
