#pragma once

#include "sched/schedpoint.hpp"
#include "tm/config.hpp"

namespace hohtm::tm {

/// Control-flow exception thrown when a transaction observes a conflict
/// (or the user requests a retry). It unwinds to the retry loop in
/// `atomically`; it never escapes to user code. Carries the cause so
/// diagnostics can see *why* the attempt died, not just that it did.
struct Conflict {
  AbortCause cause = AbortCause::kReadValidation;
};

/// The one way to abort a transaction attempt: records the per-cause
/// counter on the calling thread, then unwinds. Every conflict site in
/// the backends goes through here — a bare `throw Conflict{}` is a bug
/// (the telemetry audit greps for it).
/// The calling thread's most recent conflict attribution: the registry
/// slot of the transaction that owned the lock/orec this thread lost to
/// (-1 when the last abort carried no attribution). Consumed by
/// ds::FusionState to attribute kFusionFallback records and cleared at
/// the start of each attributed abort.
inline int& last_aborter_slot() noexcept {
  thread_local int slot = -1;
  return slot;
}

[[noreturn]] inline void abort_tx(AbortCause cause) {
  last_aborter_slot() = -1;
  Stats::mine().record(cause);
  throw Conflict{cause};
}

/// Attribution-bearing abort: `aborter_slot` names the thread-registry
/// slot of the transaction that caused this conflict (the orec/seqlock
/// owner). Exact for the orec backends — the owner's slot is recoverable
/// from the lock word — and best-effort (last lock holder) for the
/// single-seqlock backends. The kDropAborterId mutant erases the id so
/// the sched attribution tests can prove the invariant checkers notice.
[[noreturn]] inline void abort_tx(AbortCause cause, int aborter_slot) {
  if (sched::mutate(sched::Mutation::kDropAborterId)) aborter_slot = -1;
  // A transaction never legitimately conflicts with itself; a self id is
  // a stale best-effort owner stamp, so fold it into "unknown".
  if (aborter_slot == static_cast<int>(util::ThreadRegistry::slot()))
    aborter_slot = -1;
  last_aborter_slot() = aborter_slot;
  StatCounters& counters = Stats::mine();
  counters.record(cause);
  counters.note_conflict_attribution(aborter_slot);
  throw Conflict{cause};
}

/// Shared body of every backend's `tx.retry()`: one user-retry tally,
/// one cause tally, one unwind.
[[noreturn]] inline void user_retry() {
  Stats::mine().user_retries += 1;
  abort_tx(AbortCause::kUserAbort);
}

}  // namespace hohtm::tm
