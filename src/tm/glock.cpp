#include "tm/glock.hpp"

// GLock is fully inline (header-only); this TU anchors the module in the
// library so link order and future non-inline helpers have a home.
namespace hohtm::tm {}
