#pragma once

/// Umbrella header for the hohtm transactional-memory substrate.
///
/// Four backends share one static-polymorphic interface:
///
///   using TM = hohtm::tm::Norec;                  // pick a backend
///   int v = TM::atomically([&](TM::Tx& tx) {      // run a transaction
///     int x = tx.read(shared.field);              // word read
///     tx.write(shared.field, x + 1);              // word write (buffered
///     Node* n = tx.alloc<Node>(args);             //  or undo-logged)
///     tx.dealloc(old);                            // freed at commit,
///     return x;                                   //  after quiescence
///   });
///
/// See DESIGN.md section 1.1 for the backend comparison and section 3 for
/// why deferred-free-at-commit plus quiescence reproduces the reclamation
/// guarantee the paper obtains from HTM's immediate aborts.

#include <concepts>

#include "tm/glock.hpp"
#include "tm/norec.hpp"
#include "tm/tl2.hpp"
#include "tm/tleager.hpp"
#include "tm/tml.hpp"

namespace hohtm::tm {

/// Compile-time contract every backend satisfies. Data structures and
/// reservation implementations are templated over a TMBackend.
template <class TM>
concept TMBackend = requires(typename TM::Tx& tx, int& loc, int val) {
  { tx.read(loc) } -> std::same_as<int>;
  { tx.write(loc, val) };
  { tx.template alloc<int>(0) } -> std::same_as<int*>;
  { tx.dealloc(static_cast<int*>(nullptr)) };
  { TM::atomically([](typename TM::Tx&) {}) };
  { TM::name() } -> std::convertible_to<const char*>;
};

static_assert(TMBackend<GLock>);
static_assert(TMBackend<Tml>);
static_assert(TMBackend<Norec>);
static_assert(TMBackend<Tl2>);
static_assert(TMBackend<TlEager>);

}  // namespace hohtm::tm
