#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "sched/schedpoint.hpp"

namespace hohtm::tm {

/// Transactional locations must be word-sized (or smaller), trivially
/// copyable objects: pointers, integers, bools, enums. Larger objects are
/// accessed field-by-field, exactly as in the paper's node-based structures.
template <class T>
concept TxWord = std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                 (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                  sizeof(T) == 8);

/// All shared-memory accesses that can race with a committing writer go
/// through std::atomic_ref so that zombie readers never execute a C++-level
/// data race (CP.2). Memory ordering is acquire/release: the TM metadata
/// (seqlock / orecs) carries the synchronizes-with edges; the data accesses
/// only need to not tear and to not be reordered around the metadata checks.
template <TxWord T>
inline T atomic_load(const T& loc) noexcept {
  sched::point(sched::Op::kTmLoad, &loc);
  return std::atomic_ref<const T>(loc).load(std::memory_order_acquire);
}

template <TxWord T>
inline void atomic_store(T& loc, T val) noexcept {
  sched::point(sched::Op::kTmStore, &loc);
  std::atomic_ref<T>(loc).store(val, std::memory_order_release);
}

/// Type-erased word value: the write set and undo log store bit patterns
/// plus the access width, and replay them with the same width.
struct ErasedWord {
  std::uint64_t bits = 0;
  std::uint8_t width = 0;  // 1, 2, 4, or 8 bytes
};

template <TxWord T>
inline ErasedWord erase_word(T val) noexcept {
  ErasedWord w;
  w.width = sizeof(T);
  std::memcpy(&w.bits, &val, sizeof(T));
  return w;
}

template <TxWord T>
inline T restore_word(ErasedWord w) noexcept {
  T val;
  std::memcpy(&val, &w.bits, sizeof(T));
  return val;
}

/// Store an erased word to `addr` with the width it was captured at.
inline void erased_store(void* addr, ErasedWord w) noexcept {
  switch (w.width) {
    case 1:
      atomic_store(*static_cast<std::uint8_t*>(addr),
                   static_cast<std::uint8_t>(w.bits));
      break;
    case 2:
      atomic_store(*static_cast<std::uint16_t*>(addr),
                   static_cast<std::uint16_t>(w.bits));
      break;
    case 4:
      atomic_store(*static_cast<std::uint32_t*>(addr),
                   static_cast<std::uint32_t>(w.bits));
      break;
    default:
      atomic_store(*static_cast<std::uint64_t*>(addr), w.bits);
      break;
  }
}

/// Load an erased word from `addr` at the given width.
inline ErasedWord erased_load(const void* addr, std::uint8_t width) noexcept {
  ErasedWord w;
  w.width = width;
  switch (width) {
    case 1:
      w.bits = atomic_load(*static_cast<const std::uint8_t*>(addr));
      break;
    case 2:
      w.bits = atomic_load(*static_cast<const std::uint16_t*>(addr));
      break;
    case 4:
      w.bits = atomic_load(*static_cast<const std::uint32_t*>(addr));
      break;
    default:
      w.bits = atomic_load(*static_cast<const std::uint64_t*>(addr));
      break;
  }
  return w;
}

}  // namespace hohtm::tm
