#include "tm/tleager.hpp"

// TLEager is fully inline; anchor TU.
namespace hohtm::tm {}
