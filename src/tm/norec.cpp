#include "tm/norec.hpp"

// NOrec is fully inline; anchor TU.
namespace hohtm::tm {}
