#pragma once

#include <atomic>

#include "tm/abort.hpp"
#include "tm/atomically.hpp"
#include "tm/global_clocks.hpp"
#include "tm/quiescence.hpp"
#include "tm/tx_alloc.hpp"
#include "tm/txsets.hpp"
#include "tm/word.hpp"

namespace hohtm::tm {

/// TML (Transactional Mutex Lock, Dalessandro et al. style): a global
/// sequence lock admits any number of concurrent readers and at most one
/// writer. Readers validate the clock after every read and abort on any
/// change; the first transactional write upgrades the transaction to the
/// (unique) writer, which then reads and writes in place, keeping an undo
/// log only for user-requested retries.
///
/// Opacity: readers abort at the first read that observes a clock change,
/// so they never see a mix of two writers' states. Precise reclamation:
/// deferred frees run after commit plus a quiescence fence over readers
/// that started before the writer's unlock.
class Tml {
 public:
  class Tx : public TxLifecycle {
   public:
    template <TxWord T>
    T read(const T& loc) {
      const T val = atomic_load(loc);
      if (!writer_ && !serial_ &&
          !sched::mutate(sched::Mutation::kSkipReadValidation)) {
        std::atomic_thread_fence(std::memory_order_acquire);
        if (seqlock().load_acquire() != snapshot_)
          // The clock moved: some writer invalidated us. Attribute the
          // abort to the last lock acquirer (best-effort; see SeqLock).
          abort_tx(AbortCause::kReadValidation, seqlock().owner());
      }
      return val;
    }

    template <TxWord T>
    void write(T& loc, T val) {
      if (!writer_ && !serial_) become_writer();
      undo_.record(&loc, erase_word(atomic_load(loc)));
      atomic_store(loc, val);
    }

    [[noreturn]] void retry() { user_retry(); }

    // -- harness hooks ----------------------------------------------------
    void begin() {
      writer_ = false;
      serial_ = false;
      undo_.clear();
      snapshot_ = seqlock().wait_even();
      quiescence().publish(snapshot_);
    }

    void commit() {
      if (writer_) {
        undo_.clear();
        seqlock().unlock_to(snapshot_ + 2);
        finish_with_frees(snapshot_ + 2);
      } else {
        finish_with_frees(snapshot_);
      }
    }

    void on_abort() noexcept {
      if (writer_) {
        undo_.roll_back();
        seqlock().unlock_to(snapshot_ + 2);
        writer_ = false;
      }
      life_.abort();
      quiescence().deactivate();
    }

    /// Serial mode: acquire the writer lock unconditionally up front; the
    /// transaction then cannot abort (TML writers are irrevocable).
    void begin_serial() {
      serial_ = true;
      writer_ = true;
      undo_.clear();
      for (;;) {
        const std::uint64_t even = seqlock().wait_even();
        if (seqlock().try_lock_from(even)) {
          snapshot_ = even;
          break;
        }
      }
    }

    void commit_serial() {
      undo_.clear();
      seqlock().unlock_to(snapshot_ + 2);
      // Serial transactions never publish (they cannot be invalidated),
      // so the quiescence fence below only waits for doomed readers.
      if (life_.has_pending_frees()) quiescence().wait_until(snapshot_ + 2);
      life_.commit();
      serial_ = false;
      writer_ = false;
    }

    void abort_serial() noexcept {
      undo_.roll_back();
      seqlock().unlock_to(snapshot_ + 2);
      life_.abort();
      serial_ = false;
      writer_ = false;
    }

   private:
    void become_writer() {
      // Capture the contending acquirer *before* our own attempt stamps
      // the owner cell (try_lock_from stamps pre-CAS).
      const int contender = seqlock().owner();
      if (!seqlock().try_lock_from(snapshot_))
        abort_tx(AbortCause::kLockConflict, contender);
      writer_ = true;
    }

    /// Common commit epilogue: if the transaction deferred any frees, it
    /// must deactivate first (so it does not wait on itself) and then wait
    /// for concurrent transactions that began before `ts`.
    void finish_with_frees(std::uint64_t ts) {
      if (life_.has_pending_frees()) {
        quiescence().deactivate();
        quiescence().wait_until(ts);
        life_.commit();
      } else {
        life_.commit();
        quiescence().deactivate();
      }
    }

    std::uint64_t snapshot_ = 0;
    bool writer_ = false;
    bool serial_ = false;
    UndoLog undo_;
  };

  template <class F>
  static decltype(auto) atomically(F&& f) {
    return run_transaction<Tml>(std::forward<F>(f));
  }

  template <class F>
  static decltype(auto) run_serial(F&& f) {
    Tx& tx = tls_tx();
    set_current(&tx);
    struct Clear {
      ~Clear() { set_current(nullptr); }
    } guard;
    return run_serial_body<Tml>(tx, std::forward<F>(f));
  }

  static Tx* current() noexcept { return current_; }
  static void set_current(Tx* tx) noexcept { current_ = tx; }
  static Tx& tls_tx() {
    static thread_local Tx tx;
    return tx;
  }
  static constexpr const char* name() noexcept { return "tml"; }

  /// Fence for non-TM reclaimers (hazard pointers): wait until every
  /// in-flight transaction has a snapshot at or past the current clock,
  /// so none can still hold (and re-validate) reads of an unlinked node.
  static void quiesce_before_free() noexcept {
    quiescence_.wait_until(seqlock_.wait_even());
  }

 private:
  friend class Tx;
  static SeqLock& seqlock() noexcept { return seqlock_; }
  static Quiescence& quiescence() noexcept { return quiescence_; }

  static inline SeqLock seqlock_;
  static inline Quiescence quiescence_;
  static inline thread_local Tx* current_ = nullptr;
};

}  // namespace hohtm::tm
