#pragma once

#include <utility>

#include "alloc/object.hpp"
#include "reclaim/gauge.hpp"
#include "tm/txsets.hpp"

namespace hohtm::tm {

/// Transactional allocation mixin shared by every backend's Tx type.
///
///  - `alloc<T>(args...)` constructs T now; if the transaction aborts, the
///    object is destroyed and its memory released (the allocation "never
///    happened").
///  - `dealloc(p)` defers destruction to commit time. Concurrent backends
///    run the deferred frees only after their quiescence fence, so the
///    free is precise (it happens as part of the committing operation, not
///    epochs later) yet can never be observed by a doomed reader.
///
/// Per the paper's evaluation note that performance improves when
/// allocation happens outside transactions, the mixin keeps the actual
/// `new` outside any TM instrumentation — only the rollback bookkeeping is
/// transactional.
class TxLifecycle {
 public:
  template <class T, class... Args>
  T* alloc(Args&&... args) {
    T* p = hohtm::alloc::create<T>(std::forward<Args>(args)...);
    reclaim::Gauge::on_alloc();
    life_.on_abort(p, &destroy_thunk<T>);
    return p;
  }

  /// `alloc` with `extra` trailing payload bytes in the same block (see
  /// alloc::create_flex). Same rollback contract: the whole block — struct
  /// and tail — vanishes if the transaction aborts.
  template <class T, class... Args>
  T* alloc_flex(std::size_t extra, Args&&... args) {
    T* p = hohtm::alloc::create_flex<T>(extra, std::forward<Args>(args)...);
    reclaim::Gauge::on_alloc();
    life_.on_abort(p, &destroy_thunk<T>);
    return p;
  }

  template <class T>
  void dealloc(T* p) {
    if (p != nullptr) life_.on_commit(const_cast<std::remove_const_t<T>*>(p), &destroy_thunk<std::remove_const_t<T>>);
  }

 protected:
  template <class T>
  static void destroy_thunk(void* p) noexcept {
    hohtm::alloc::destroy(static_cast<T*>(p));
    reclaim::Gauge::on_free();
  }

  LifecycleLog life_;
};

}  // namespace hohtm::tm
