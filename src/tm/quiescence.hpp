#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::tm {

/// Privatization / reclamation fence.
///
/// The paper leans on HTM's *immediacy of aborts*: once a Revoke commits,
/// no doomed hardware transaction can still be running, so the revoker may
/// free the node at once. Our STM substitute is a quiescence fence: every
/// transaction publishes the timestamp its snapshot is valid at; a
/// committer that has deferred frees waits, after its commit is visible,
/// until every in-flight transaction has either finished or (re)validated
/// at a timestamp at or past the commit. Doomed "zombie" readers therefore
/// drain before the memory they might still dereference is returned to the
/// allocator — frees stay *precise* (they happen at commit, not epochs
/// later) yet are safe.
///
/// Each TM backend owns one Quiescence instance (its timestamp domain).
/// Slots store (timestamp + 1); zero means inactive, so the object is
/// usable from zero-initialized static storage (no init-order hazards).
class Quiescence {
 public:
  /// Calling thread begins (or revalidates) a transaction at `ts`.
  /// seq_cst: pairs with the scans in wait_* and with serial-mode flags
  /// (Dekker-style publish-then-check / set-then-scan).
  void publish(std::uint64_t ts) noexcept {
    slots_[util::ThreadRegistry::slot()]->store(ts + 1,
                                                std::memory_order_seq_cst);
  }

  /// Calling thread has no transaction in flight.
  void deactivate() noexcept {
    slots_[util::ThreadRegistry::slot()]->store(0, std::memory_order_release);
  }

  bool active() const noexcept {
    return slots_[util::ThreadRegistry::slot()]->load(
               std::memory_order_relaxed) != 0;
  }

  /// Block until every thread is inactive or published a timestamp >= ts.
  /// The caller must have deactivated itself first.
  void wait_until(std::uint64_t ts) const noexcept;

  /// Block until every thread is inactive (stop-the-world; used by the
  /// TL2 serial-irrevocable mode). Caller must be inactive.
  void wait_all_inactive() const noexcept;

 private:
  util::CachePadded<std::atomic<std::uint64_t>> slots_[util::kMaxThreads];
};

}  // namespace hohtm::tm
