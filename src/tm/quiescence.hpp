#pragma once

#include <atomic>
#include <cstdint>

#include "reclaim/watchdog.hpp"
#include "sched/schedpoint.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"
#include "util/tsan.hpp"

namespace hohtm::tm {

/// Privatization / reclamation fence.
///
/// The paper leans on HTM's *immediacy of aborts*: once a Revoke commits,
/// no doomed hardware transaction can still be running, so the revoker may
/// free the node at once. Our STM substitute is a quiescence fence: every
/// transaction publishes the timestamp its snapshot is valid at; a
/// committer that has deferred frees waits, after its commit is visible,
/// until every in-flight transaction has either finished or (re)validated
/// at a timestamp at or past the commit. Doomed "zombie" readers therefore
/// drain before the memory they might still dereference is returned to the
/// allocator — frees stay *precise* (they happen at commit, not epochs
/// later) yet are safe.
///
/// Each TM backend owns one Quiescence instance (its timestamp domain).
/// Slots store (timestamp + 1); zero means inactive, so the object is
/// usable from zero-initialized static storage (no init-order hazards).
class Quiescence {
 public:
  /// Calling thread begins (or revalidates) a transaction at `ts`.
  /// seq_cst: pairs with the scans in wait_* and with serial-mode flags
  /// (Dekker-style publish-then-check / set-then-scan).
  void publish(std::uint64_t ts) noexcept {
    sched::point(sched::Op::kQuiescePublish, this);
    reclaim::Watchdog::on_publish();
    auto& slot = *slots_[util::ThreadRegistry::slot()];
    // Everything this thread read before (re)validating at ts must
    // happen-before any free gated on wait_until(<= ts) observing it.
    tsan::release(&slot);
    slot.store(ts + 1, std::memory_order_seq_cst);
  }

  /// Calling thread has no transaction in flight.
  void deactivate() noexcept {
    sched::point(sched::Op::kQuiesceDeactivate, this);
    reclaim::Watchdog::on_deactivate();
    auto& slot = *slots_[util::ThreadRegistry::slot()];
    tsan::release(&slot);  // all of this thread's transactional accesses
    slot.store(0, std::memory_order_release);
  }

  bool active() const noexcept {
    return slots_[util::ThreadRegistry::slot()]->load(
               std::memory_order_relaxed) != 0;
  }

  /// Block until every thread is inactive or published a timestamp >= ts.
  /// The caller must have deactivated itself first.
  void wait_until(std::uint64_t ts) const noexcept;

  /// Block until every thread is inactive (stop-the-world; used by the
  /// TL2 serial-irrevocable mode). Caller must be inactive.
  void wait_all_inactive() const noexcept;

  /// True when every slot is inactive or published at a timestamp >= ts —
  /// i.e. wait_until(ts) would return without blocking. A single whole-
  /// fence predicate (rather than a per-slot scan) so that tests and the
  /// virtual scheduler observe settledness independently of slot order.
  bool settled_at(std::uint64_t ts) const noexcept {
    const std::size_t n = util::ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t published =
          slots_[i]->load(std::memory_order_acquire);
      if (published != 0 && published < ts + 1) return false;
    }
    return true;
  }

  /// True when every slot is inactive — wait_all_inactive() would not block.
  bool all_inactive() const noexcept {
    const std::size_t n = util::ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i)
      if (slots_[i]->load(std::memory_order_acquire) != 0) return false;
    return true;
  }

 private:
  util::CachePadded<std::atomic<std::uint64_t>> slots_[util::kMaxThreads];
};

}  // namespace hohtm::tm
