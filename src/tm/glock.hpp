#pragma once

#include <mutex>

#include "tm/abort.hpp"
#include "tm/atomically.hpp"
#include "tm/tx_alloc.hpp"
#include "tm/txsets.hpp"
#include "tm/word.hpp"

namespace hohtm::tm {

/// GLock: every transaction runs under one global mutex.
///
/// Zero speculation, zero instrumentation on reads — this is the
/// correctness oracle for the test suite and the lower-bound baseline for
/// the TM-backend ablation. Writes keep an undo log solely so that a
/// user-requested `retry()` (or an exception) can roll the body back.
/// Because transactions are fully serialized, deferred frees are safe to
/// run at commit with no quiescence fence.
class GLock {
 public:
  class Tx : public TxLifecycle {
   public:
    template <TxWord T>
    T read(const T& loc) noexcept {
      return loc;
    }

    template <TxWord T>
    void write(T& loc, T val) {
      undo_.record(&loc, erase_word(loc));
      loc = val;
    }

    [[noreturn]] void retry() { user_retry(); }

    // -- harness hooks ----------------------------------------------------
    void begin() { mutex().lock(); }

    void commit() {
      undo_.clear();
      life_.commit();
      mutex().unlock();
    }

    void on_abort() noexcept {
      undo_.roll_back();
      life_.abort();
      mutex().unlock();
    }

    // Serial mode is identical to the normal mode (already irrevocable in
    // the absence of user retries, which run_serial_body handles).
    void begin_serial() { begin(); }
    void commit_serial() { commit(); }
    void abort_serial() noexcept { on_abort(); }

   private:
    UndoLog undo_;
  };

  template <class F>
  static decltype(auto) atomically(F&& f) {
    return run_transaction<GLock>(std::forward<F>(f));
  }

  template <class F>
  static decltype(auto) run_serial(F&& f) {
    Tx& tx = tls_tx();
    set_current(&tx);
    struct Clear {
      ~Clear() { set_current(nullptr); }
    } guard;
    return run_serial_body<GLock>(tx, std::forward<F>(f));
  }

  static Tx* current() noexcept { return current_; }
  static void set_current(Tx* tx) noexcept { current_ = tx; }
  static Tx& tls_tx() {
    static thread_local Tx tx;
    return tx;
  }
  static constexpr const char* name() noexcept { return "glock"; }

  /// Fence for non-TM reclaimers (hazard pointers) freeing memory that
  /// transactions may have read: GLock transactions only ever read
  /// reachable nodes while holding the global mutex, so no wait is
  /// needed before freeing unlinked ones.
  static void quiesce_before_free() noexcept {}

 private:
  static std::mutex& mutex() {
    static std::mutex mu;
    return mu;
  }
  static inline thread_local Tx* current_ = nullptr;
};

}  // namespace hohtm::tm
