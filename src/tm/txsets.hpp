#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tm/word.hpp"
#include "util/tsan.hpp"

namespace hohtm::tm {

/// Redo-log write set for lazy (write-back) backends: NOrec and TL2.
///
/// Lookup must be fast because every transactional read probes it
/// (read-after-write). We keep an append-only log (preserving program
/// order for write-back) plus an open-addressed index from address to log
/// position. Capacities are powers of two; the index is rebuilt on growth.
/// The transaction object is reused across retries, so `clear()` keeps the
/// capacity and only resets the fill.
class WriteSet {
 public:
  struct Entry {
    std::uintptr_t addr = 0;
    ErasedWord word;
  };

  WriteSet() { rebuild_index(16); }

  bool empty() const noexcept { return log_.empty(); }
  std::size_t size() const noexcept { return log_.size(); }

  /// Insert or overwrite the buffered value for `addr`.
  void put(void* addr, ErasedWord w) {
    const auto key = reinterpret_cast<std::uintptr_t>(addr);
    std::size_t pos = probe(key);
    if (index_[pos] != kEmpty) {
      log_[index_[pos]].word = w;
      return;
    }
    index_[pos] = static_cast<std::uint32_t>(log_.size());
    log_.push_back(Entry{key, w});
    if (log_.size() * 2 > index_.size()) rebuild_index(index_.size() * 2);
  }

  /// Return the buffered value for `addr`, or nullptr if absent.
  const ErasedWord* find(const void* addr) const noexcept {
    const auto key = reinterpret_cast<std::uintptr_t>(addr);
    const std::size_t pos = probe(key);
    if (index_[pos] == kEmpty) return nullptr;
    return &log_[index_[pos]].word;
  }

  /// Apply every buffered write to memory, in program order.
  void write_back() const noexcept {
    for (const Entry& e : log_)
      erased_store(reinterpret_cast<void*>(e.addr), e.word);
  }

  const std::vector<Entry>& entries() const noexcept { return log_; }

  void clear() noexcept {
    log_.clear();
    std::fill(index_.begin(), index_.end(), kEmpty);
  }

 private:
  static constexpr std::uint32_t kEmpty = ~0u;

  std::size_t probe(std::uintptr_t key) const noexcept {
    // Fibonacci hashing on the word address; linear probing.
    std::size_t mask = index_.size() - 1;
    std::size_t pos = (key * 0x9E3779B97F4A7C15ULL) >> shift_ & mask;
    while (index_[pos] != kEmpty && log_[index_[pos]].addr != key)
      pos = (pos + 1) & mask;
    return pos;
  }

  void rebuild_index(std::size_t capacity) {
    index_.assign(capacity, kEmpty);
    shift_ = 64 - static_cast<unsigned>(__builtin_ctzll(capacity));
    for (std::size_t i = 0; i < log_.size(); ++i) {
      std::size_t mask = capacity - 1;
      std::size_t pos = (log_[i].addr * 0x9E3779B97F4A7C15ULL) >> shift_ & mask;
      while (index_[pos] != kEmpty) pos = (pos + 1) & mask;
      index_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<Entry> log_;
  std::vector<std::uint32_t> index_;
  unsigned shift_ = 60;
};

/// Undo log for eager (write-through) execution: TML writers and the
/// serial-irrevocable modes. Records the previous value before each
/// in-place store, replayed in reverse on a user-requested retry.
class UndoLog {
 public:
  void record(void* addr, ErasedWord old_value) {
    log_.push_back({reinterpret_cast<std::uintptr_t>(addr), old_value});
  }

  void roll_back() noexcept {
    for (auto it = log_.rbegin(); it != log_.rend(); ++it)
      erased_store(reinterpret_cast<void*>(it->addr), it->word);
    log_.clear();
  }

  void clear() noexcept { log_.clear(); }
  bool empty() const noexcept { return log_.empty(); }

 private:
  struct Entry {
    std::uintptr_t addr;
    ErasedWord word;
  };
  std::vector<Entry> log_;
};

/// Lifecycle log for transactional allocation. `alloc` registers a
/// destroy-and-free thunk to run if the transaction aborts; `dealloc`
/// registers one to run after the transaction commits (and, in concurrent
/// backends, after the quiescence fence — this is what makes reclamation
/// precise yet safe).
class LifecycleLog {
 public:
  using Thunk = void (*)(void*) noexcept;

  void on_abort(void* p, Thunk destroy) { allocs_.push_back({p, destroy}); }
  void on_commit(void* p, Thunk destroy) { frees_.push_back({p, destroy}); }

  bool has_pending_frees() const noexcept { return !frees_.empty(); }

  /// Transaction committed: allocations become permanent, deferred frees run.
  void commit() noexcept {
    allocs_.clear();
    for (const Record& r : frees_) {
      // Pairs with tsan::release(ref) in rr::note_reserve/note_revocation:
      // every annotated reservation of this node happens-before its free.
      tsan::acquire(r.ptr);
      r.destroy(r.ptr);
    }
    frees_.clear();
  }

  /// Transaction aborted: deferred frees are discarded, allocations undone.
  void abort() noexcept {
    frees_.clear();
    for (auto it = allocs_.rbegin(); it != allocs_.rend(); ++it)
      it->destroy(it->ptr);
    allocs_.clear();
  }

 private:
  struct Record {
    void* ptr;
    Thunk destroy;
  };
  std::vector<Record> allocs_;
  std::vector<Record> frees_;
};

}  // namespace hohtm::tm
