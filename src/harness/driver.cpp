#include "harness/driver.hpp"

// run_cell is a template; this TU anchors the module.
namespace hohtm::harness {}
