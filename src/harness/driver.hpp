#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "reclaim/gauge.hpp"
#include "tm/config.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace hohtm::harness {

/// One trial's outcome.
struct TrialResult {
  double seconds = 0.0;
  double mops = 0.0;
};

/// One point of the reclamation-footprint timeline: live objects (net of
/// the cell's baseline) `t_ms` milliseconds into the timed phase.
struct FootprintSample {
  double t_ms = 0.0;
  long long live = 0;
};

/// Aggregate over trials; the paper reports the mean of 5 trials and a
/// variance below 3% — cv_percent lets the harness print the same check.
/// `counters` carries the TM/RR/HOH telemetry (commits, aborts by cause,
/// revocations, reservation losses) summed over all trials' timed phases
/// — the per-cause accounting that makes contention attributable per
/// bench cell rather than guessed from throughput dips.
///
/// `latency` merges the per-thread latency histograms (commit,
/// abort-to-retry, quiescence stall; util::Metrics) over the same scope.
/// Populated only in HOHTM_TRACE builds — all-zero otherwise, and the
/// CSV percentile columns print 0.
///
/// `footprint` is the live-object timeline of the *last* trial, sampled
/// every config.footprint_ms milliseconds (empty when 0). `live_peak` is
/// the maximum live-object count (net of each trial's baseline) observed
/// across all trials — from the sampler when it runs, and always from
/// the end-of-timed-phase snapshot.
struct CellResult {
  util::Summary mops;
  tm::StatCounters counters;
  util::LatencyHistograms latency;
  std::vector<FootprintSample> footprint;
  long long live_peak = 0;
};

/// Run `config.trials` trials of the standard mixed workload against a
/// freshly built set per trial.
///
/// SetFactory: () -> std::unique_ptr<Set>, with Set providing
/// insert/remove/contains(long). The set is pre-filled to 50% of the key
/// range before timing starts (as in the paper), and timed threads run
/// ops_per_thread operations each, started simultaneously via a spin
/// barrier.
template <class SetFactory>
CellResult run_cell(const WorkloadConfig& config, SetFactory&& make_set) {
  CellResult cell;
  std::vector<double> mops_samples;
  for (int trial = 0; trial < config.trials; ++trial) {
    const long long live_baseline = reclaim::Gauge::live();
    auto set = make_set();
    for (long key : prefill_keys(config)) set->insert(key);
    // Scope the telemetry to the timed phase: prefill commits (and the
    // revocations of any prior cell in this process) must not pollute
    // this cell's per-cause columns. No worker threads are alive here,
    // so the reset does not race with counter owners.
    tm::Stats::reset();
    util::Metrics::reset();

    util::SpinBarrier barrier(static_cast<std::size_t>(config.threads) + 1);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t) {
      threads.emplace_back([&, t] {
        util::Xoshiro256 rng(config.seed + 0x1000u * (trial + 1) + t);
        const long range = config.key_range();
        barrier.arrive_and_wait();  // line up the start
        for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
          const long key = static_cast<long>(rng.next_below(range));
          const int dice = static_cast<int>(rng.next_below(100));
          if (dice < config.lookup_pct) {
            set->contains(key);
          } else if ((dice - config.lookup_pct) % 2 == 0) {
            set->insert(key);
          } else {
            set->remove(key);
          }
        }
        barrier.arrive_and_wait();  // line up the finish
      });
    }
    // Footprint sampler: a side thread reading the live-object gauge on
    // a wall-clock cadence while the workers run. Bench-only (enabled by
    // HOH_BENCH_FOOTPRINT_MS); tests keep it off, so no test depends on
    // timing. It waits on a condition variable with an absolute deadline
    // rather than sleeping: shutdown interrupts the wait immediately (no
    // stale trailing sample, no up-to-one-period join stall), and between
    // samples the thread is truly blocked instead of burning the single
    // CPU the workers need.
    std::mutex sampler_mu;
    std::condition_variable sampler_cv;
    bool stop_sampler = false;
    std::vector<FootprintSample> samples;
    std::thread sampler;
    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    if (config.footprint_ms > 0) {
      sampler = std::thread([&] {
        const auto period = std::chrono::milliseconds(config.footprint_ms);
        auto deadline = start + period;
        std::unique_lock<std::mutex> lock(sampler_mu);
        for (;;) {
          const double t_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          samples.push_back(
              FootprintSample{t_ms, reclaim::Gauge::live() - live_baseline});
          if (sampler_cv.wait_until(lock, deadline,
                                    [&] { return stop_sampler; }))
            return;
          deadline += period;
        }
      });
    }
    barrier.arrive_and_wait();
    const auto stop = std::chrono::steady_clock::now();
    for (auto& th : threads) th.join();
    if (sampler.joinable()) {
      {
        std::lock_guard<std::mutex> lock(sampler_mu);
        stop_sampler = true;
      }
      sampler_cv.notify_one();
      sampler.join();
    }

    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double total_ops =
        static_cast<double>(config.ops_per_thread) * config.threads;
    mops_samples.push_back(total_ops / seconds / 1e6);
    cell.counters.accumulate(tm::Stats::total());
    cell.latency.merge(util::Metrics::total());

    const long long end_live = reclaim::Gauge::live() - live_baseline;
    if (end_live > cell.live_peak) cell.live_peak = end_live;
    for (const FootprintSample& s : samples)
      if (s.live > cell.live_peak) cell.live_peak = s.live;
    if (!samples.empty()) cell.footprint = std::move(samples);
  }
  cell.mops = util::summarize(mops_samples);
  return cell;
}

}  // namespace hohtm::harness
