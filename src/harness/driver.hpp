#pragma once

#include <chrono>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "tm/config.hpp"
#include "util/barrier.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace hohtm::harness {

/// One trial's outcome.
struct TrialResult {
  double seconds = 0.0;
  double mops = 0.0;
};

/// Aggregate over trials; the paper reports the mean of 5 trials and a
/// variance below 3% — cv_percent lets the harness print the same check.
/// `counters` carries the TM/RR/HOH telemetry (commits, aborts by cause,
/// revocations, reservation losses) summed over all trials' timed phases
/// — the per-cause accounting that makes contention attributable per
/// bench cell rather than guessed from throughput dips.
struct CellResult {
  util::Summary mops;
  tm::StatCounters counters;
};

/// Run `config.trials` trials of the standard mixed workload against a
/// freshly built set per trial.
///
/// SetFactory: () -> std::unique_ptr<Set>, with Set providing
/// insert/remove/contains(long). The set is pre-filled to 50% of the key
/// range before timing starts (as in the paper), and timed threads run
/// ops_per_thread operations each, started simultaneously via a spin
/// barrier.
template <class SetFactory>
CellResult run_cell(const WorkloadConfig& config, SetFactory&& make_set) {
  std::vector<double> mops_samples;
  tm::StatCounters counters;
  for (int trial = 0; trial < config.trials; ++trial) {
    auto set = make_set();
    for (long key : prefill_keys(config)) set->insert(key);
    // Scope the telemetry to the timed phase: prefill commits (and the
    // revocations of any prior cell in this process) must not pollute
    // this cell's per-cause columns. No worker threads are alive here,
    // so the reset does not race with counter owners.
    tm::Stats::reset();

    util::SpinBarrier barrier(static_cast<std::size_t>(config.threads) + 1);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t) {
      threads.emplace_back([&, t] {
        util::Xoshiro256 rng(config.seed + 0x1000u * (trial + 1) + t);
        const long range = config.key_range();
        barrier.arrive_and_wait();  // line up the start
        for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
          const long key = static_cast<long>(rng.next_below(range));
          const int dice = static_cast<int>(rng.next_below(100));
          if (dice < config.lookup_pct) {
            set->contains(key);
          } else if ((dice - config.lookup_pct) % 2 == 0) {
            set->insert(key);
          } else {
            set->remove(key);
          }
        }
        barrier.arrive_and_wait();  // line up the finish
      });
    }
    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    barrier.arrive_and_wait();
    const auto stop = std::chrono::steady_clock::now();
    for (auto& th : threads) th.join();

    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double total_ops =
        static_cast<double>(config.ops_per_thread) * config.threads;
    mops_samples.push_back(total_ops / seconds / 1e6);
    counters.accumulate(tm::Stats::total());
  }
  return CellResult{util::summarize(mops_samples), counters};
}

}  // namespace hohtm::harness
