#include "harness/workload.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "util/random.hpp"

namespace hohtm::harness {

BenchEnv BenchEnv::from_environment() {
  BenchEnv env;
  if (const char* ops = std::getenv("HOH_BENCH_OPS"))
    env.ops_per_thread = std::strtoull(ops, nullptr, 10);
  if (const char* trials = std::getenv("HOH_BENCH_TRIALS"))
    env.trials = static_cast<int>(std::strtol(trials, nullptr, 10));
  if (const char* bits = std::getenv("HOH_BENCH_BIGBITS"))
    env.big_key_bits = static_cast<int>(std::strtol(bits, nullptr, 10));
  if (const char* cadence = std::getenv("HOH_BENCH_FOOTPRINT_MS"))
    env.footprint_ms = static_cast<int>(std::strtol(cadence, nullptr, 10));
  if (const char* threads = std::getenv("HOH_BENCH_THREADS")) {
    env.thread_counts.clear();
    std::stringstream stream(threads);
    std::string token;
    while (std::getline(stream, token, ','))
      env.thread_counts.push_back(static_cast<int>(std::strtol(token.c_str(), nullptr, 10)));
    if (env.thread_counts.empty()) env.thread_counts = {1, 2, 4, 8};
  }
  return env;
}

std::vector<long> prefill_keys(const WorkloadConfig& config) {
  std::vector<long> keys(static_cast<std::size_t>(config.key_range()));
  std::iota(keys.begin(), keys.end(), 0L);
  util::Xoshiro256 rng(config.seed ^ 0xC0FFEE);
  std::shuffle(keys.begin(), keys.end(), rng);
  keys.resize(keys.size() / 2);
  return keys;
}

}  // namespace hohtm::harness
