#pragma once

#include <string>

namespace hohtm::harness {

/// Wire the standard metrics-plane sections and gauges into
/// util::MetricsRegistry and arm the `$HOHTM_METRICS_FILE` atexit dump:
///
///  - "tm": tm::Stats::total() with the causal-attribution buckets
///    (loss_by_aborter / loss_by_site / aborted_by and their sums),
///  - "kv_heatmap": kv::ContentionMap's top hot cells,
///  - "watchdog": reclaim::Watchdog state sampled at snapshot time,
///  - gauges: reclaim.live / reclaim.peak and the epoch / hazard
///    unreclaimed backlogs.
///
/// Idempotent; called from every bench header emitter and from
/// kv::Service, so any binary that reports anything is snapshot-capable.
void install_standard_sections();

/// install_standard_sections() + one full snapshot document (the body
/// behind kv::Service::stats_snapshot()).
std::string metrics_snapshot_json();

}  // namespace hohtm::harness
