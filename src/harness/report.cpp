#include "harness/report.hpp"

#include <cstdio>

namespace hohtm::harness {

void emit_header(const std::string& figure, const std::string& description) {
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf("# columns: figure,panel,series,threads,mops,cv_pct\n");
  std::fflush(stdout);
}

void emit_panel_note(const std::string& figure, const std::string& panel) {
  std::printf("# %s panel=%s\n", figure.c_str(), panel.c_str());
  std::fflush(stdout);
}

void emit_row(const std::string& figure, const std::string& panel,
              const std::string& series, int threads, const CellResult& cell) {
  std::printf("%s,%s,%s,%d,%.4f,%.2f\n", figure.c_str(), panel.c_str(),
              series.c_str(), threads, cell.mops.mean,
              cell.mops.cv_percent());
  std::fflush(stdout);
}

}  // namespace hohtm::harness
