#include "harness/report.hpp"

#include <cstdio>

#include "harness/metrics.hpp"
#include "tm/config.hpp"

namespace hohtm::harness {
namespace {

std::string cause_columns() {
  std::string names;
  for (std::size_t i = 0; i < tm::kAbortCauseCount; ++i) {
    names += ',';
    names += tm::kAbortCauseNames[i];
  }
  return names;
}

// The shared 25-column cell body (everything but the trailing newline),
// so the KV variant appends its columns to an identical prefix.
void print_cell_columns(const std::string& figure, const std::string& panel,
                        const std::string& series, int threads,
                        const CellResult& cell) {
  std::printf("%s,%s,%s,%d,%.4f,%.2f", figure.c_str(), panel.c_str(),
              series.c_str(), threads, cell.mops.mean,
              cell.mops.cv_percent());
  const tm::StatCounters& c = cell.counters;
  std::printf(",%llu,%llu", static_cast<unsigned long long>(c.commits),
              static_cast<unsigned long long>(c.aborts));
  for (std::size_t i = 0; i < tm::kAbortCauseCount; ++i)
    std::printf(",%llu", static_cast<unsigned long long>(c.by_cause[i]));
  std::printf(",%llu", static_cast<unsigned long long>(c.reservation_losses));
  std::printf(",%llu", static_cast<unsigned long long>(c.fused_windows));
  const util::Histogram& commit = cell.latency.commit_ns;
  std::printf(",%llu,%llu,%llu,%llu",
              static_cast<unsigned long long>(commit.percentile(0.50)),
              static_cast<unsigned long long>(commit.percentile(0.95)),
              static_cast<unsigned long long>(commit.percentile(0.99)),
              static_cast<unsigned long long>(commit.max()));
  std::printf(",%lld", cell.live_peak);
  // Causal attribution: how many of the losses / aborts carry a known
  // aborter slot (the rest landed in the unknown buckets).
  std::printf(",%llu,%llu",
              static_cast<unsigned long long>(c.attributed_losses()),
              static_cast<unsigned long long>(c.attributed_aborts()));
  std::printf(",%llu", static_cast<unsigned long long>(c.quiescence_waits));
}

// The shared tail of every `# columns:` header line (after the abort
// causes) — kept in one place so the base/kv/net variants cannot drift.
constexpr const char* kBaseTailColumns =
    ",res_lost,fused_windows,commit_p50_ns,commit_p95_ns,commit_p99_ns"
    ",commit_max_ns,live_peak,res_lost_attr,aborts_attr,quiescence_waits";
constexpr const char* kKvColumns =
    ",kv_hits,kv_misses,kv_migrations,kv_resizes"
    ",kv_scans,kv_scan_windows,kv_scan_resumes";

}  // namespace

void emit_header(const std::string& figure, const std::string& description) {
  install_standard_sections();  // every bench is metrics-snapshot capable
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf(
      "# columns: figure,panel,series,threads,mops,cv_pct,commits,aborts%s"
      "%s\n",
      cause_columns().c_str(), kBaseTailColumns);
  std::fflush(stdout);
}

void emit_panel_note(const std::string& figure, const std::string& panel) {
  std::printf("# %s panel=%s\n", figure.c_str(), panel.c_str());
  std::fflush(stdout);
}

void emit_row(const std::string& figure, const std::string& panel,
              const std::string& series, int threads, const CellResult& cell) {
  print_cell_columns(figure, panel, series, threads, cell);
  std::printf("\n");
  for (const FootprintSample& s : cell.footprint)
    emit_timeline_row(figure, panel, series, threads, s.t_ms, s.live);
  std::fflush(stdout);
}

void emit_timeline_row(const std::string& figure, const std::string& panel,
                       const std::string& series, int threads, double t,
                       long long live) {
  std::printf("timeline,%s,%s,%s,%d,%.2f,%lld\n", figure.c_str(),
              panel.c_str(), series.c_str(), threads, t, live);
}

void emit_kv_header(const std::string& figure,
                    const std::string& description) {
  install_standard_sections();  // every bench is metrics-snapshot capable
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf(
      "# columns: figure,panel,series,threads,mops,cv_pct,commits,aborts%s"
      "%s%s\n",
      cause_columns().c_str(), kBaseTailColumns, kKvColumns);
  std::fflush(stdout);
}

void emit_kv_row(const std::string& figure, const std::string& panel,
                 const std::string& series, int threads,
                 const CellResult& cell, const KvRowExtra& kv) {
  print_cell_columns(figure, panel, series, threads, cell);
  std::printf(",%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
              static_cast<unsigned long long>(kv.hits),
              static_cast<unsigned long long>(kv.misses),
              static_cast<unsigned long long>(kv.migrations),
              static_cast<unsigned long long>(kv.resizes),
              static_cast<unsigned long long>(kv.scans),
              static_cast<unsigned long long>(kv.scan_windows),
              static_cast<unsigned long long>(kv.scan_resumes));
  for (const FootprintSample& s : cell.footprint)
    emit_timeline_row(figure, panel, series, threads, s.t_ms, s.live);
  std::fflush(stdout);
}

void emit_net_header(const std::string& figure,
                     const std::string& description) {
  install_standard_sections();  // every bench is metrics-snapshot capable
  std::printf("# %s: %s\n", figure.c_str(), description.c_str());
  std::printf(
      "# columns: figure,panel,series,threads,mops,cv_pct,commits,aborts%s"
      "%s%s,net_batches,net_fused_ops,net_bytes_in,net_bytes_out\n",
      cause_columns().c_str(), kBaseTailColumns, kKvColumns);
  std::fflush(stdout);
}

void emit_net_row(const std::string& figure, const std::string& panel,
                  const std::string& series, int threads,
                  const CellResult& cell, const KvRowExtra& kv,
                  const NetRowExtra& net) {
  print_cell_columns(figure, panel, series, threads, cell);
  std::printf(",%llu,%llu,%llu,%llu,%llu,%llu,%llu",
              static_cast<unsigned long long>(kv.hits),
              static_cast<unsigned long long>(kv.misses),
              static_cast<unsigned long long>(kv.migrations),
              static_cast<unsigned long long>(kv.resizes),
              static_cast<unsigned long long>(kv.scans),
              static_cast<unsigned long long>(kv.scan_windows),
              static_cast<unsigned long long>(kv.scan_resumes));
  std::printf(",%llu,%llu,%llu,%llu\n",
              static_cast<unsigned long long>(net.batches),
              static_cast<unsigned long long>(net.fused_ops),
              static_cast<unsigned long long>(net.bytes_in),
              static_cast<unsigned long long>(net.bytes_out));
  for (const FootprintSample& s : cell.footprint)
    emit_timeline_row(figure, panel, series, threads, s.t_ms, s.live);
  std::fflush(stdout);
}

}  // namespace hohtm::harness
