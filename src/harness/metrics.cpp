#include "harness/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "kv/contention.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/watchdog.hpp"
#include "tm/config.hpp"
#include "util/metrics.hpp"

namespace hohtm::harness {
namespace {

void write_u64_array(std::FILE* out, const std::uint64_t* vals,
                     std::size_t n) {
  std::fputc('[', out);
  for (std::size_t i = 0; i < n; ++i)
    std::fprintf(out, "%s%" PRIu64, i == 0 ? "" : ",", vals[i]);
  std::fputc(']', out);
}

void tm_section(std::FILE* out) {
  const tm::StatCounters c = tm::Stats::total();
  std::fprintf(out,
               "{\"commits\":%" PRIu64 ",\"aborts\":%" PRIu64
               ",\"serial_commits\":%" PRIu64 ",\"res_lost\":%" PRIu64
               ",\"fused_windows\":%" PRIu64 ",\"fused_aborts\":%" PRIu64,
               c.commits, c.aborts, c.serial_commits, c.reservation_losses,
               c.fused_windows, c.fused_aborts);
  std::fprintf(out, ",\"by_cause\":{");
  for (std::size_t i = 0; i < tm::kAbortCauseCount; ++i)
    std::fprintf(out, "%s\"%s\":%" PRIu64, i == 0 ? "" : ",",
                 tm::kAbortCauseNames[i], c.by_cause[i]);
  std::fputc('}', out);
  // The attribution buckets. loss_by_aborter sums to res_lost exactly;
  // aborted_by sums to aborted_attr + unknowns (<= aborts).
  std::fprintf(out,
               ",\"attribution\":{\"losses_attributed\":%" PRIu64
               ",\"losses_unknown\":%" PRIu64 ",\"aborts_attributed\":%" PRIu64
               ",\"aborts_unknown\":%" PRIu64
               ",\"fusion_fb_attributed\":%" PRIu64
               ",\"fusion_fb_unknown\":%" PRIu64,
               c.attributed_losses(), c.unknown_losses(),
               c.attributed_aborts(),
               c.aborted_by[tm::StatCounters::kAttrUnknown],
               c.fusion_fb_attributed, c.fusion_fb_unknown);
  std::fprintf(out, ",\"loss_by_site\":{");
  for (std::size_t i = 0; i < tm::kRevokeSiteCount; ++i)
    std::fprintf(out, "%s\"%s\":%" PRIu64, i == 0 ? "" : ",",
                 tm::kRevokeSiteNames[i], c.loss_by_site[i]);
  std::fputc('}', out);
  std::fprintf(out, ",\"loss_by_aborter\":");
  write_u64_array(out, c.loss_by_aborter, tm::StatCounters::kAttrSlots);
  std::fprintf(out, ",\"aborted_by\":");
  write_u64_array(out, c.aborted_by, tm::StatCounters::kAttrSlots);
  std::fputs("}}", out);
}

void heatmap_section(std::FILE* out) { kv::ContentionMap::write_json(out); }

void watchdog_section(std::FILE* out) {
  const reclaim::Watchdog::Report r = reclaim::Watchdog::check_now();
  std::fprintf(out,
               "{\"threshold_ns\":%" PRIu64 ",\"active_threads\":%d"
               ",\"stalled_threads\":%d,\"max_stall_ns\":%" PRIu64
               ",\"stall_events\":%" PRIu64 "}",
               reclaim::Watchdog::threshold_ns(), r.active_threads,
               r.stalled_threads, r.max_stall_ns,
               reclaim::Watchdog::stall_events());
}

std::int64_t live_gauge() { return reclaim::Gauge::live(); }
std::int64_t peak_gauge() { return reclaim::Gauge::peak(); }

std::int64_t backlog(const char* retired, const char* freed) {
  using Reg = util::MetricsRegistry;
  return static_cast<std::int64_t>(Reg::total(Reg::counter(retired))) -
         static_cast<std::int64_t>(Reg::total(Reg::counter(freed)));
}
std::int64_t epoch_backlog_gauge() {
  return backlog("epoch.retired", "epoch.freed");
}
std::int64_t hazard_backlog_gauge() {
  return backlog("hazard.retired", "hazard.freed");
}

}  // namespace

void install_standard_sections() {
  using Reg = util::MetricsRegistry;
  Reg::register_section("tm", &tm_section);
  Reg::register_section("kv_heatmap", &heatmap_section);
  Reg::register_section("watchdog", &watchdog_section);
  Reg::register_gauge("reclaim.live", &live_gauge);
  Reg::register_gauge("reclaim.peak", &peak_gauge);
  Reg::register_gauge("epoch.backlog", &epoch_backlog_gauge);
  Reg::register_gauge("hazard.backlog", &hazard_backlog_gauge);
  Reg::enable_env_dump();
}

std::string metrics_snapshot_json() {
  install_standard_sections();
  return util::MetricsRegistry::snapshot_json();
}

}  // namespace hohtm::harness
