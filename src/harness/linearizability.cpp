#include "harness/linearizability.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

namespace hohtm::harness {
namespace {

/// Does applying `op` to `state` produce `op.result` under the
/// sequential set specification? Mutates `state` on a match.
bool apply(const SetOp& op, std::set<long>& state) {
  switch (op.kind) {
    case SetOp::kInsert: {
      const bool inserted = state.insert(op.key).second;
      if (inserted == op.result) return true;
      if (inserted) state.erase(op.key);  // undo the speculative insert
      return false;
    }
    case SetOp::kRemove: {
      const bool removed = state.erase(op.key) == 1;
      if (removed == op.result) return true;
      if (removed) state.insert(op.key);
      return false;
    }
    case SetOp::kContains:
      return state.contains(op.key) == op.result;
  }
  return false;
}

void unapply(const SetOp& op, std::set<long>& state) {
  switch (op.kind) {
    case SetOp::kInsert:
      if (op.result) state.erase(op.key);
      break;
    case SetOp::kRemove:
      if (op.result) state.insert(op.key);
      break;
    case SetOp::kContains:
      break;
  }
}

/// FNV-style hash of the current abstract state (order-independent mix
/// would risk collisions; sorted iteration of std::set gives a canonical
/// sequence, so a sequential hash is exact up to 64-bit collisions).
std::uint64_t hash_state(const std::set<long>& state) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (long k : state) {
    h ^= static_cast<std::uint64_t>(k) + 0x9E3779B97F4A7C15ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::size_t kMaxOps = 512;

/// Search configuration shared by the recursive walk.
struct Search {
  const std::vector<SetOp>* ops;
  // Doubly linked list over op indices (+1 shift; 0 is the head
  // sentinel) giving the remaining-set in invocation order.
  std::vector<std::size_t> next;
  std::vector<std::size_t> prev;
  // Taken-set bitmap (canonical identity of a search node along with the
  // state hash — the same subset can be reached by many paths).
  std::uint64_t taken_bits[kMaxOps / 64] = {};
  std::unordered_set<std::uint64_t> visited;
  std::size_t remaining = 0;

  void unlink(std::size_t idx) {
    next[prev[idx + 1]] = next[idx + 1];
    prev[next[idx + 1]] = prev[idx + 1];
    taken_bits[idx / 64] |= 1ULL << (idx % 64);
    --remaining;
  }

  void relink(std::size_t idx) {
    next[prev[idx + 1]] = idx + 1;
    prev[next[idx + 1]] = idx + 1;
    taken_bits[idx / 64] &= ~(1ULL << (idx % 64));
    ++remaining;
  }

  std::uint64_t memo_key(std::uint64_t state_hash) const {
    std::uint64_t h = state_hash;
    const std::size_t words = (ops->size() + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      h ^= taken_bits[w] + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  bool walk(std::set<long>& state) {
    if (remaining == 0) return true;
    if (!visited.insert(memo_key(hash_state(state))).second)
      return false;  // this (subset, state) already failed
    // Candidates: remaining ops whose invocation precedes every remaining
    // response — i.e. ops that could legally linearize first. Walking the
    // list in invocation order, stop once we pass the smallest response.
    std::uint64_t response_bar = ~0ULL;
    for (std::size_t cursor = next[0]; cursor != 0; cursor = next[cursor]) {
      const std::size_t idx = cursor - 1;
      const SetOp& op = (*ops)[idx];
      if (op.invoke > response_bar) break;  // later ops can't go first
      response_bar = std::min(response_bar, op.response);
      if (!apply(op, state)) continue;  // result inconsistent here
      unlink(idx);
      if (walk(state)) {
        relink(idx);   // restore structure for the caller (result stands)
        unapply(op, state);
        return true;
      }
      relink(idx);
      unapply(op, state);
    }
    return false;
  }
};

}  // namespace

bool is_linearizable(std::vector<SetOp> history, std::set<long> initial) {
  if (history.size() > kMaxOps) return false;  // refuse oversized input
  std::sort(history.begin(), history.end(),
            [](const SetOp& a, const SetOp& b) { return a.invoke < b.invoke; });
  Search search;
  search.ops = &history;
  const std::size_t n = history.size();
  search.next.resize(n + 1);
  search.prev.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    search.next[i] = (i + 1) % (n + 1);
    search.prev[i] = (i + n) % (n + 1);
  }
  search.remaining = n;
  return search.walk(initial);
}

std::uint64_t next_history_stamp() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_seq_cst);
}

}  // namespace hohtm::harness
