#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hohtm::harness {

/// Parameters of one microbenchmark cell, mirroring the paper's setup
/// (Section 5): a key range of 2^key_bits, a structure pre-populated to
/// 50% of the range, then ops_per_thread operations per thread with the
/// given lookup percentage (the rest split evenly between inserts and
/// removes).
struct WorkloadConfig {
  int key_bits = 10;
  int lookup_pct = 33;
  int threads = 2;
  std::uint64_t ops_per_thread = 50000;
  int window = 16;
  int trials = 1;
  std::uint64_t seed = 42;
  /// Footprint-timeline sampling cadence in milliseconds; 0 (default)
  /// disables the sampler thread entirely (see run_cell).
  int footprint_ms = 0;

  long key_range() const noexcept { return 1L << key_bits; }
};

/// Environment-driven scaling so the same binaries serve quick CI runs
/// and full paper-scale reproductions:
///   HOH_BENCH_OPS      ops per thread          (default 20000; paper 1M)
///   HOH_BENCH_TRIALS   trials per cell         (default 2; paper used 5)
///   HOH_BENCH_THREADS  comma list, e.g. 1,2,4,8
///   HOH_BENCH_BIGBITS  "large" tree key bits   (default 16; paper 21)
///   HOH_BENCH_FOOTPRINT_MS  live-object sampling cadence for the
///                      footprint timeline (default 0 = off)
struct BenchEnv {
  std::uint64_t ops_per_thread = 20000;
  int trials = 2;
  std::vector<int> thread_counts{1, 2, 4, 8};
  int big_key_bits = 16;
  int footprint_ms = 0;

  static BenchEnv from_environment();
};

/// Deterministic prefill key sequence: a pseudo-random permutation of the
/// key range, of which the caller inserts the first half (50% fill).
std::vector<long> prefill_keys(const WorkloadConfig& config);

}  // namespace hohtm::harness
