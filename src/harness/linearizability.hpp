#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace hohtm::harness {

/// Linearizability checking for set histories (Wing & Gong style search
/// with Lowe-style memoization).
///
/// The concurrent tests elsewhere in this suite check *invariants*
/// (conserved sums, exclusive removals). This checker is stronger: it
/// records complete concurrent histories — invocation and response
/// timestamps per operation — and decides whether some legal sequential
/// ordering of the operations explains every result while respecting
/// real-time order. It is the ground-truth correctness notion the paper
/// implicitly claims for its structures ("The composition of these
/// linked transactions appears atomic").
///
/// Intended for small histories (a few hundred events): the problem is
/// NP-hard in general; memoization keeps the common case fast.

/// One completed operation on a set of long keys.
struct SetOp {
  enum Kind : std::uint8_t { kInsert, kRemove, kContains };
  Kind kind = kContains;
  long key = 0;
  bool result = false;
  std::uint64_t invoke = 0;    // global sequence number before the call
  std::uint64_t response = 0;  // global sequence number after the call
};

/// True iff `history` is linearizable with respect to the sequential
/// set specification, starting from `initial` contents.
bool is_linearizable(std::vector<SetOp> history, std::set<long> initial);

/// Global sequence source for recording histories. fetch_add'ed around
/// every operation; monotonic across threads.
std::uint64_t next_history_stamp();

/// Convenience recorder: wraps a set operation with stamps.
template <class F>
SetOp record_op(SetOp::Kind kind, long key, F&& call) {
  SetOp op;
  op.kind = kind;
  op.key = key;
  op.invoke = next_history_stamp();
  op.result = call();
  op.response = next_history_stamp();
  return op;
}

}  // namespace hohtm::harness
