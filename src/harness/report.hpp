#pragma once

#include <string>

#include "harness/driver.hpp"

namespace hohtm::harness {

/// Uniform reporting for the figure-reproduction benches. Each bench
/// binary prints one block per figure panel:
///
///   # fig2 panel=6bit-33pct series=RR-XO
///   fig2,6bit-33pct,RR-XO,1,1.234,0.8,123456,17,9,0,8,0,42,3,12,5
///
/// The first six columns (figure, panel, series, threads, Mops/s mean,
/// cv%) regenerate the paper's throughput-vs-threads curves. The rest
/// carry the abort-cause telemetry summed over the cell's timed trials:
/// commits, aborts, then one column per tm::AbortCause (validation,
/// lock, user, serial_esc, revocations, hoh_retries), then res_lost
/// (reservations observed revoked by their holder). tools/
/// summarize_bench.py understands both the old 6-column and this layout.
void emit_header(const std::string& figure, const std::string& description);
void emit_panel_note(const std::string& figure, const std::string& panel);
void emit_row(const std::string& figure, const std::string& panel,
              const std::string& series, int threads, const CellResult& cell);

}  // namespace hohtm::harness
