#pragma once

#include <string>

#include "harness/driver.hpp"

namespace hohtm::harness {

/// Uniform reporting for the figure-reproduction benches. Each bench
/// binary prints one block per figure panel:
///
///   # fig2 panel=6bit-33pct series=RR-XO
///   fig2,6bit-33pct,RR-XO,1,1.234,0.8
///   fig2,6bit-33pct,RR-XO,2,1.876,1.1
///
/// Columns: figure, panel, series, threads, Mops/s (mean), cv%.
/// The CSV rows regenerate the paper's throughput-vs-threads curves.
void emit_header(const std::string& figure, const std::string& description);
void emit_panel_note(const std::string& figure, const std::string& panel);
void emit_row(const std::string& figure, const std::string& panel,
              const std::string& series, int threads, const CellResult& cell);

}  // namespace hohtm::harness
