#pragma once

#include <cstdint>
#include <string>

#include "harness/driver.hpp"

namespace hohtm::harness {

/// Uniform reporting for the figure-reproduction benches. Each bench
/// binary prints one block per figure panel:
///
///   # fig2 panel=6bit-33pct series=RR-XO
///   fig2,6bit-33pct,RR-XO,1,1.234,0.8,123456,17,9,0,8,0,42,3,12,5,...
///
/// The first six columns (figure, panel, series, threads, Mops/s mean,
/// cv%) regenerate the paper's throughput-vs-threads curves. Then the
/// abort-cause telemetry summed over the cell's timed trials: commits,
/// aborts, one column per tm::AbortCause (validation, lock, user,
/// serial_esc, revocations, hoh_retries, fusion_fallbacks), then
/// res_lost (reservations observed revoked by their holder) and
/// fused_windows (window boundaries elided by committed fused
/// traversals, PR 6). PR 2 appends the latency and footprint columns:
/// commit_p50_ns, commit_p95_ns, commit_p99_ns, commit_max_ns
/// (commit-latency percentiles from the merged util::Metrics
/// histograms — zero unless built with HOHTM_TRACE=ON) and live_peak
/// (max live-object count observed during the cell). PR 7 appends the
/// attribution pair: res_lost_attr (losses whose revoker was named via
/// the RevocationBoard) and aborts_attr (conflict aborts with a known
/// aborter slot), and emit_header now prints a `# columns:` line naming
/// them all. PR 10 appends quiescence_waits (fences executed by
/// Quiescence::wait_until / wait_all_inactive during the timed phase —
/// the precise-reclamation synchrony an op mix pays) — 25 columns.
/// tools/summarize_bench.py keys on that header when present and still
/// understands every historical headerless width (6, 15, 20, 22, 24
/// columns).
///
/// When footprint sampling is on (HOH_BENCH_FOOTPRINT_MS), each cell is
/// followed by its reclamation-footprint timeline, one sample per row:
///
///   timeline,fig5,9bit-0pct,M-RR-XO,8,12.5,523
///
/// (t in ms since the timed phase started, then live objects net of the
/// cell's baseline). tools/trace_report.py renders these as curves;
/// summarize_bench.py skips them.
void emit_header(const std::string& figure, const std::string& description);
void emit_panel_note(const std::string& figure, const std::string& panel);
void emit_row(const std::string& figure, const std::string& panel,
              const std::string& series, int threads, const CellResult& cell);

/// One footprint-timeline sample row (also used directly by examples
/// whose x-axis is operation count rather than milliseconds).
void emit_timeline_row(const std::string& figure, const std::string& panel,
                       const std::string& series, int threads, double t,
                       long long live);

/// KV telemetry appended to a cell row by the kv_ycsb bench (PR 5):
/// read hits/misses, old-table buckets migrated, tables installed, and
/// the range-scan triple (ops, committed window transactions, cursor
/// resumes — see docs/KV.md, "Range scans").
struct KvRowExtra {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t migrations = 0;
  std::uint64_t resizes = 0;
  std::uint64_t scans = 0;
  std::uint64_t scan_windows = 0;
  std::uint64_t scan_resumes = 0;
};

/// 32-column variant of the bench CSV: the 25 emit_row columns plus
/// kv_hits,kv_misses,kv_migrations,kv_resizes,kv_scans,kv_scan_windows,
/// kv_scan_resumes. summarize_bench.py and trace_report.py accept both
/// layouts via the `# columns:` header (historical headerless widths
/// keep decoding by column count).
void emit_kv_header(const std::string& figure, const std::string& description);
void emit_kv_row(const std::string& figure, const std::string& panel,
                 const std::string& series, int threads,
                 const CellResult& cell, const KvRowExtra& kv);

/// Serving-tier telemetry appended by the kv_loopback bench (PR 10):
/// pipeline batches submitted through the ring as kBatch requests, ops
/// that committed inside a fused same-shard group (2+ ops in one window
/// transaction), and raw wire traffic (see docs/SERVING.md).
struct NetRowExtra {
  std::uint64_t batches = 0;
  std::uint64_t fused_ops = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// 36-column variant: the 32 emit_kv_row columns plus
/// net_batches,net_fused_ops,net_bytes_in,net_bytes_out.
void emit_net_header(const std::string& figure, const std::string& description);
void emit_net_row(const std::string& figure, const std::string& panel,
                  const std::string& series, int threads,
                  const CellResult& cell, const KvRowExtra& kv,
                  const NetRowExtra& net);

}  // namespace hohtm::harness
