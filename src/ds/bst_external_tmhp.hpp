#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "ds/window_policy.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// External unbalanced BST with hand-over-hand transactions and
/// hazard-pointer reclamation — the TMHP series of Figure 7.
///
/// Traversal mirrors BstExternal; the pause node is protected by a hazard
/// pointer instead of a reservation, and each router carries an
/// `unlinked` flag (set transactionally by the Remove that excises it) so
/// a resumed window knows whether continuing from it is meaningful.
/// Remove retires the leaf and its parent router to the hazard domain;
/// reclamation is deferred to batched scans.
template <class TM, class Key = long>
class BstExternalTmhp {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();
  static constexpr Key kInf2 = std::numeric_limits<Key>::max();
  static constexpr Key kInf1 = kInf2 - 1;

  explicit BstExternalTmhp(int window = 16, bool scatter = true,
                           std::size_t scan_threshold = 64)
      : window_(window),
        scatter_(scatter),
        hazards_(scan_threshold, &TM::quiesce_before_free) {
    Node* leaf_inf1 = make_raw(kInf1, nullptr, nullptr);
    Node* leaf_inf2a = make_raw(kInf2, nullptr, nullptr);
    Node* leaf_inf2b = make_raw(kInf2, nullptr, nullptr);
    Node* s = make_raw(kInf1, leaf_inf1, leaf_inf2a);
    root_ = make_raw(kInf2, s, leaf_inf2b);
  }

  BstExternalTmhp(const BstExternalTmhp&) = delete;
  BstExternalTmhp& operator=(const BstExternalTmhp&) = delete;

  ~BstExternalTmhp() { destroy_subtree(root_); }

  bool insert(Key key) {
    return apply<false>(
        key, [](Tx&, Node*, Node*, Node*) { return false; },
        [&](Tx& tx, Node*, Node* parent, Node* leaf) {
          const Key leaf_key = tx.read(leaf->key);
          Node* fresh_leaf = tx.template alloc<Node>(key, nullptr, nullptr);
          Node* router =
              key < leaf_key
                  ? tx.template alloc<Node>(leaf_key, fresh_leaf, leaf)
                  : tx.template alloc<Node>(key, leaf, fresh_leaf);
          replace_child(tx, parent, leaf, router);
          return true;
        });
  }

  bool contains(Key key) {
    return apply<false>(
        key, [](Tx&, Node*, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*, Node*) { return false; });
  }

  bool remove(Key key) {
    return apply<true>(
        key,
        [&](Tx& tx, Node* gparent, Node* parent, Node* leaf) {
          Node* sibling = tx.read(parent->left) == leaf
                              ? tx.read(parent->right)
                              : tx.read(parent->left);
          replace_child(tx, gparent, parent, sibling);
          tx.write(parent->unlinked, 1L);
          tx.write(leaf->unlinked, 1L);
          retired_a_ = parent;
          retired_b_ = leaf;
          return true;
        },
        [](Tx&, Node*, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      return count_real_leaves(tx, tx.read(root_->left));
    });
  }

  std::size_t reclaimer_backlog() const noexcept {
    return hazards_.total_backlog();
  }

  static constexpr const char* name() noexcept { return "TMHP"; }
  int window() const noexcept { return window_; }

  /// Allow traversals to elide up to `budget` window boundaries per
  /// operation (see FusionState; RR-agnostic, so the hazard-pointer
  /// series fuses exactly like the reservation ones). Call before
  /// sharing across threads.
  void enable_fusion(int budget) { fusion_cap_ = budget; }

 private:
  struct Node {
    Key key;
    Node* left;
    Node* right;
    long unlinked = 0;
    Node(Key k, Node* l, Node* r) : key(k), left(l), right(r) {}
  };

  static constexpr std::size_t kHoldSlot = 0;
  static constexpr std::size_t kNextSlot = 1;

  Node* make_raw(Key k, Node* l, Node* r) {
    reclaim::Gauge::on_alloc();
    return alloc::create<Node>(k, l, r);
  }

  static void delete_node(void* p) noexcept {
    alloc::destroy(static_cast<Node*>(p));
    reclaim::Gauge::on_free();
  }

  template <bool kNeedsGparent, class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    FusionState fusion(fusion_cap_);
    Node* resume = nullptr;
    for (;;) {
      retired_a_ = retired_b_ = nullptr;
      struct Step {
        std::optional<bool> result;
        Node* next_resume = nullptr;
      };
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        fusion.on_attempt_start();
        retired_a_ = retired_b_ = nullptr;
        Node* parent = resume;
        int used = 0;
        Node* gparent = nullptr;
        if (parent != nullptr && tx.read(parent->unlinked) != 0)
          parent = nullptr;
        const bool resumed = parent != nullptr;
        if (!resumed) {
          parent = root_;
          used = initial_scatter();
        }
        Node* curr = key < tx.read(parent->key) ? tx.read(parent->left)
                                                : tx.read(parent->right);
        while (tx.read(curr->left) != nullptr) {
          if (used >= window_) {
            if (!fusion.try_fuse()) break;
            used = 0;  // boundary elided: a fresh window, same tx
          }
          gparent = parent;
          parent = curr;
          curr = key < tx.read(curr->key) ? tx.read(curr->left)
                                          : tx.read(curr->right);
          ++used;
        }
        if (tx.read(curr->left) != nullptr) {
          hazards_.protect(kNextSlot, curr);
          return Step{std::nullopt, curr};
        }
        if (kNeedsGparent && gparent == nullptr && parent != root_) {
          return Step{from_root(tx, key, on_found, on_not_found), nullptr};
        }
        if (tx.read(curr->key) == key)
          return Step{on_found(tx, gparent, parent, curr), nullptr};
        return Step{on_not_found(tx, gparent, parent, curr), nullptr};
      });
      fusion.on_commit();
      if (retired_a_ != nullptr) {
        hazards_.retire(retired_a_, &delete_node);
        hazards_.retire(retired_b_, &delete_node);
        retired_a_ = retired_b_ = nullptr;
      }
      if (step.result.has_value()) {
        hazards_.clear_all();
        return *step.result;
      }
      hazards_.protect(kHoldSlot, step.next_resume);
      hazards_.clear(kNextSlot);
      resume = step.next_resume;
    }
  }

  template <class FFound, class FNotFound>
  std::optional<bool> from_root(Tx& tx, Key key, FFound&& on_found,
                                FNotFound&& on_not_found) {
    Node* gparent = nullptr;
    Node* parent = root_;
    Node* curr = tx.read(root_->left);
    while (tx.read(curr->left) != nullptr) {
      gparent = parent;
      parent = curr;
      curr = key < tx.read(curr->key) ? tx.read(curr->left)
                                      : tx.read(curr->right);
    }
    if (tx.read(curr->key) == key) return on_found(tx, gparent, parent, curr);
    return on_not_found(tx, gparent, parent, curr);
  }

  void replace_child(Tx& tx, Node* parent, Node* old_child, Node* new_child) {
    if (tx.read(parent->left) == old_child)
      tx.write(parent->left, new_child);
    else
      tx.write(parent->right, new_child);
  }

  std::size_t count_real_leaves(Tx& tx, Node* node) {
    Node* left = tx.read(node->left);
    if (left == nullptr) return tx.read(node->key) < kInf1 ? 1 : 0;
    return count_real_leaves(tx, left) +
           count_real_leaves(tx, tx.read(node->right));
  }

  void destroy_subtree(Node* node) {
    if (node == nullptr) return;
    destroy_subtree(node->left);
    destroy_subtree(node->right);
    alloc::destroy(node);
    reclaim::Gauge::on_free();
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 8);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* root_;
  int fusion_cap_ = 0;
  reclaim::HazardDomain hazards_;
  static inline thread_local Node* retired_a_ = nullptr;
  static inline thread_local Node* retired_b_ = nullptr;
};

}  // namespace hohtm::ds
