#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "ds/window_policy.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Sorted doubly-linked set with hand-over-hand transactions and revocable
/// reservations — paper Section 4.2.
///
/// Traversal is identical to the singly linked list. The difference is in
/// Remove: because a node's predecessor and successor are both reachable
/// from the node itself, a Remove can find-and-reserve the victim in one
/// transaction and unlink-revoke-free it in a *second* transaction. This
/// keeps the writing transaction small and keeps Revoke out of traversing
/// transactions.
///
/// The optimization is only sound for *strict* reservation algorithms:
/// there, "Get returned nil" proves a concurrent Remove revoked (and
/// removed) this exact node, so the operation can return false. With a
/// relaxed algorithm the nil may be spurious, so the operation must retry
/// from scratch (the paper calls this out explicitly). RrNull (the
/// single-transaction baseline) skips the second transaction entirely.
template <class TM, class RR, class Key = long>
class DllHoh {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  template <class... RrArgs>
  explicit DllHoh(int window = 16, bool scatter = true, RrArgs&&... rr_args)
      : window_(window),
        scatter_(scatter),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr,
                                nullptr);
    reclaim::Gauge::on_alloc();
  }

  DllHoh(const DllHoh&) = delete;
  DllHoh& operator=(const DllHoh&) = delete;

  ~DllHoh() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return FindOutcome::found_no_change(); },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, prev, curr);
          tx.write(prev->next, fresh);
          if (curr != nullptr) tx.write(curr->prev, fresh);
          return FindOutcome::done(true);
        }).value;
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return FindOutcome::done(true); },
        [](Tx&, Node*, Node*) { return FindOutcome::done(false); }).value;
  }

  bool remove(Key key) {
    for (;;) {
      const FindOutcome found = apply(
          key,
          [&](Tx& tx, Node* prev, Node* curr) {
            if constexpr (!RR::kReal) {
              // Single-transaction baseline: unlink right here.
              unlink_revoke_free(tx, prev, curr);
              return FindOutcome::done(true);
            } else {
              // Two-phase removal: hold the victim via the reservation
              // and finish in a dedicated small transaction.
              boundary_.park(tx, curr);
              return FindOutcome::two_phase();
            }
          },
          [](Tx&, Node*, Node*) { return FindOutcome::done(false); });
      if (!found.needs_second_phase) return found.value;

      bool victim_lost = false;
      const std::optional<bool> unlinked =
          TM::atomically([&](Tx& tx) -> std::optional<bool> {
            reservation_.register_thread(tx);
            Node* victim = static_cast<Node*>(
                const_cast<void*>(boundary_.resume(tx)));
            victim_lost = victim == nullptr;
            if (victim == nullptr) {
              reservation_.release(tx);
              if constexpr (RR::kStrict) {
                // Only an actual Revoke(victim) can have cleared a strict
                // reservation: a concurrent Remove beat us to this node,
                // and our operation serializes right after it.
                return false;
              } else {
                return std::nullopt;  // possibly spurious: retry the find
              }
            }
            Node* prev = tx.read(victim->prev);
            unlink_revoke_free(tx, prev, victim);
            reservation_.release(tx);
            return true;
          });
      if constexpr (RR::kReal) {
        if (victim_lost) {
          // Our reserved victim was revoked out from under us; relaxed
          // algorithms must additionally rerun the whole find. Attribute
          // the loss to the competing remover via the RevocationBoard.
          WindowBoundary<RR>::note_position_lost(
              found.parked_ref, /*hoh_retry=*/!unlinked.has_value());
        }
      }
      if (unlinked.has_value()) return *unlinked;
    }
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  /// Validates both directions: sorted forward, and every prev pointer
  /// inverse to its next pointer.
  bool is_consistent() {
    return TM::atomically([&](Tx& tx) {
      Node* previous = head_;
      for (Node* n = tx.read(head_->next); n != nullptr;
           n = tx.read(n->next)) {
        if (tx.read(n->prev) != previous) return false;
        if (previous != head_ && tx.read(n->key) <= tx.read(previous->key))
          return false;
        previous = n;
      }
      return true;
    });
  }

  int window() const noexcept { return window_; }
  static const char* reservation_name() noexcept { return RR::name(); }

  /// Allow traversals to elide up to `budget` window boundaries per
  /// operation (see FusionState). Call before sharing across threads.
  void enable_fusion(int budget) { fusion_cap_ = budget; }

 private:
  struct Node {
    Key key;
    Node* prev;
    Node* next;
    Node(Key k, Node* p, Node* n) : key(k), prev(p), next(n) {}
  };

  /// Outcome of the find phase: a final value, or "go run phase two".
  /// `parked_ref` carries the reserved victim out of the find phase so a
  /// lost reservation in phase two can be attributed (RevocationBoard).
  struct FindOutcome {
    bool value = false;
    bool needs_second_phase = false;
    rr::Ref parked_ref = nullptr;
    static FindOutcome done(bool v) { return {v, false}; }
    static FindOutcome two_phase() { return {false, true}; }
    static FindOutcome found_no_change() { return {false, false}; }
  };

  void unlink_revoke_free(Tx& tx, Node* prev, Node* curr) {
    rr::SiteScope site(tm::RevokeSite::kListRemove);
    Node* next = tx.read(curr->next);
    tx.write(prev->next, next);
    if (next != nullptr) tx.write(next->prev, prev);
    reservation_.revoke(tx, curr);
    tx.dealloc(curr);
  }

  template <class FFound, class FNotFound>
  FindOutcome apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    FusionState fusion(fusion_cap_);
    bool handed_over = false;
    rr::Ref parked = nullptr;  // what the previous window reserved
    for (;;) {
      bool position_lost = false;
      rr::Ref lost = nullptr;
      const std::optional<FindOutcome> outcome =
          TM::atomically([&](Tx& tx) -> std::optional<FindOutcome> {
            fusion.on_attempt_start();
            reservation_.register_thread(tx);
            Node* prev = static_cast<Node*>(
                const_cast<void*>(boundary_.resume(tx)));
            position_lost = handed_over && prev == nullptr;
            if (position_lost) lost = parked;
            int used = 0;
            if (prev == nullptr) {
              prev = head_;
              used = initial_scatter();
            }
            Node* curr = tx.read(prev->next);
            while (curr != nullptr && tx.read(curr->key) < key) {
              if (used >= window_) {
                if (!fusion.try_fuse()) break;
                used = 0;  // boundary elided: a fresh window, same tx
              }
              prev = curr;
              curr = tx.read(curr->next);
              ++used;
            }
            if (curr != nullptr && tx.read(curr->key) == key) {
              const FindOutcome result = on_found(tx, prev, curr);
              if (!result.needs_second_phase) reservation_.release(tx);
              if (result.needs_second_phase) parked = curr;
              return result;
            }
            if (curr == nullptr || tx.read(curr->key) > key) {
              const FindOutcome result = on_not_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            boundary_.park(tx, curr);
            parked = curr;
            return std::nullopt;
          });
      fusion.on_commit();
      if (position_lost) WindowBoundary<RR>::note_position_lost(lost);
      if (outcome.has_value()) {
        FindOutcome result = *outcome;
        if (result.needs_second_phase) result.parked_ref = parked;
        return result;
      }
      handed_over = true;
    }
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 2);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* head_;
  RR reservation_;
  WindowBoundary<RR> boundary_{reservation_};
  int fusion_cap_ = 0;
};

}  // namespace hohtm::ds
