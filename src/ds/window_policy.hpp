#pragma once

#include <cstdint>

#include "core/rr_common.hpp"
#include "sched/schedpoint.hpp"
#include "tm/abort.hpp"
#include "tm/config.hpp"
#include "util/trace.hpp"

namespace hohtm::ds {

/// What one hand-over-hand operation is allowed to do: traverse up to
/// `window` nodes per transaction, and elide up to `fusion_budget`
/// window boundaries by fusing adjacent windows into one transaction
/// (see FusionState). Produced per operation by WindowTuner::plan_op()
/// or assembled from a structure's static configuration.
struct WindowPlan {
  int window = 16;
  int fusion_budget = 0;
};

/// The window-boundary protocol of paper Listing 5, extracted into one
/// policy object so every hand-over-hand traversal (src/ds/ lists, the
/// skip list, kv::Store chain walks) and the kv resize anchor handover
/// speak the identical reserve/park/resume discipline instead of
/// duplicating it.
///
///  - park: the transaction at a window boundary releases the previous
///    reservation and reserves the boundary node, so the next
///    transaction of the same operation can continue from it.
///  - resume: the next transaction asks the reservation where to
///    continue; nil means a concurrent remover revoked (and precisely
///    freed) the parked node and the traversal must restart.
///  - note_position_lost: operation-level contention telemetry for that
///    nil — a restart in which every transaction *committed*, invisible
///    to abort counters but load-bearing for contention_signal().
template <class RR>
class WindowBoundary {
 public:
  explicit WindowBoundary(RR& rr) noexcept : rr_(rr) {}

  /// Window-boundary handoff (Listing 5 lines 17-18): hand the
  /// reservation from the previous boundary to `ref` and let the
  /// caller's transaction commit.
  template <class Tx>
  void park(Tx& tx, rr::Ref ref) {
    rr_.release(tx);
    rr_.reserve(tx, ref);
  }

  /// Where the previous window parked; nil = revoked, restart.
  template <class Tx>
  rr::Ref resume(Tx& tx) {
    return rr_.get(tx);
  }

  /// Migration-anchor variant of park (docs/KV.md): same release +
  /// reserve, plus the sched point that lets the explorer interleave a
  /// deleter at the boundary, and the kDropMigrationReserve mutant that
  /// parks a raw cached pointer instead — exactly the stale-resume bug
  /// the reservation prevents (tests/sched/sched_kv_test.cpp).
  template <class Tx>
  void park_anchor(Tx& tx, rr::Ref anchor, rr::Ref& raw_cache) {
    sched::point(sched::Op::kKvMigrate, anchor);
    rr_.release(tx);
    if (sched::mutate(sched::Mutation::kDropMigrationReserve)) {
      raw_cache = anchor;  // injected bug: nothing protects the anchor now
      return;
    }
    raw_cache = nullptr;
    rr_.reserve(tx, anchor);
  }

  template <class Tx>
  rr::Ref resume_anchor(Tx& tx, rr::Ref raw_cache) {
    if (sched::mutate(sched::Mutation::kDropMigrationReserve) &&
        raw_cache != nullptr)
      return raw_cache;
    return rr_.get(tx);
  }

  /// Scan-cursor variant of park (docs/KV.md, "Range scans"): a range
  /// scan hands its position across window transactions through the same
  /// release + reserve pair, with its own sched point so the explorer
  /// can interleave deleters and migrators at the boundary, and its own
  /// mutant — kDropScanCursorHandover parks a raw cached pointer instead
  /// of reserving, exactly the stale-resume bug the reservation prevents
  /// (tests/sched/sched_scan_test.cpp).
  template <class Tx>
  void park_cursor(Tx& tx, rr::Ref cursor, rr::Ref& raw_cache) {
    sched::point(sched::Op::kKvScanPark, cursor);
    rr_.release(tx);
    if (sched::mutate(sched::Mutation::kDropScanCursorHandover)) {
      raw_cache = cursor;  // injected bug: nothing protects the cursor now
      return;
    }
    raw_cache = nullptr;
    rr_.reserve(tx, cursor);
  }

  template <class Tx>
  rr::Ref resume_cursor(Tx& tx, rr::Ref raw_cache) {
    if (sched::mutate(sched::Mutation::kDropScanCursorHandover) &&
        raw_cache != nullptr)
      return raw_cache;
    return rr_.get(tx);
  }

  /// A committed window found its parked position gone: a concurrent
  /// remover revoked (and freed) the node, and the traversal restarts
  /// from the head. Both counters feed contention_signal(). No-op for
  /// pseudo reservations (RrNull), where nil is the steady state.
  ///
  /// `lost` is the reference the operation had parked; the loss is
  /// *attributed* by looking it up on the rr::RevocationBoard, so the
  /// per-aborter/per-site buckets answer "who aborted whom". Losses with
  /// no matching record (table growth, overwritten records) land in the
  /// unknown bucket — every loss increments exactly one bucket, so the
  /// buckets always sum to reservation_losses. `hoh_retry` is false for
  /// losses that do not force a restart (the strict doubly-linked-list
  /// remove, where nil is a definitive answer).
  static void note_position_lost(rr::Ref lost,
                                 bool hoh_retry = true) noexcept {
    if constexpr (RR::kReal) {
      tm::StatCounters& counters = tm::Stats::mine();
      counters.reservation_losses += 1;
      if (hoh_retry) counters.record(tm::AbortCause::kHohRetry);
      const rr::Attribution who = rr::RevocationBoard::attribute(lost);
      counters.note_loss_attribution(who.known ? who.slot : -1, who.site);
      util::trace_event(
          util::Ev::kRrLossAttr,
          static_cast<std::uint64_t>(who.known ? who.slot : 0xFF) |
              (static_cast<std::uint64_t>(who.site) << 8) |
              (static_cast<std::uint64_t>(who.known ? 1 : 0) << 16));
    }
  }

 private:
  RR& rr_;
};

/// Window fusion: teleportation-style commit elision across HOH windows
/// (ROADMAP item 5; the STM analog of SNIPPETS.md Snippet 1's fused
/// hazard-guard handoffs).
///
/// When the contention gate grants a budget, a traversal that reaches a
/// window boundary may *keep going in the same transaction* instead of
/// parking and committing: try_fuse() consumes one budget unit and the
/// walk continues as if a fresh window had started. The elided boundary
/// skips the release/reserve writes AND the commit/begin pair — on a
/// quiet path that is the entire boundary cost.
///
/// Safety does not depend on the reservation: every node the fused
/// transaction traversed is in its read set, so a concurrent remove
/// (unlink + revoke + precise free) conflicts with it through the TM and
/// one of the two aborts; the quiescence fence keeps any freed node
/// unreclaimed until in-flight readers are done. Precise reclamation is
/// therefore preserved across a fused boundary — the remover still frees
/// in its own commit, and the fused reader either validated before the
/// free or aborted (docs/ALGORITHMS.md, "Window fusion").
///
/// The fallback: fusing enlarges the read set, so under contention a
/// fused attempt is *more* likely to abort. The attempt prologue
/// (on_attempt_start) detects "the previous attempt of this operation
/// speculated and then aborted", drops the remaining budget, and tags
/// the retreat with AbortCause::kFusionFallback — the op re-runs under
/// the plain small-window protocol. One operation therefore pays at
/// most one speculative abort before behaving exactly like an unfused
/// one. The kFusionNeverFallback mutant disables the retreat;
/// tests/sched/sched_fusion_test.cpp proves the explorer catches it via
/// the fused_aborts == fusion_fallbacks telemetry invariant.
class FusionState {
 public:
  explicit FusionState(int budget) noexcept : budget_(budget) {}

  /// Call first inside the transaction body (it re-runs on every retry
  /// of TM::atomically). Detects a fused attempt that aborted and falls
  /// back to the small-window protocol.
  void on_attempt_start() noexcept {
    if (speculating_) {
      tm::Stats::mine().fused_aborts += 1;
      if (!sched::mutate(sched::Mutation::kFusionNeverFallback)) {
        budget_ = 0;
        tm::StatCounters& counters = tm::Stats::mine();
        counters.record(tm::AbortCause::kFusionFallback);
        // Causal attribution: the abort that forced this retreat left
        // the conflicting owner's slot in the thread-local set by
        // abort_tx (-1 when that abort carried no attribution).
        if (tm::last_aborter_slot() >= 0)
          counters.fusion_fb_attributed += 1;
        else
          counters.fusion_fb_unknown += 1;
        util::trace_event(util::Ev::kFusionFallback);
      }
    }
    speculating_ = false;
    fused_this_attempt_ = 0;
  }

  /// At a window boundary: true = boundary elided, keep traversing in
  /// this transaction; false = park and commit as usual.
  bool try_fuse() noexcept {
    if (budget_ <= 0) return false;
    budget_ -= 1;
    speculating_ = true;
    fused_this_attempt_ += 1;
    return true;
  }

  /// Call right after TM::atomically returns (i.e. the last attempt
  /// committed): credits the elided boundaries to the telemetry. Only
  /// committed fusions count — an aborted speculative attempt's elisions
  /// are discarded with the attempt.
  void on_commit() noexcept {
    if (fused_this_attempt_ > 0) {
      tm::Stats::mine().fused_windows +=
          static_cast<std::uint64_t>(fused_this_attempt_);
      util::trace_event(util::Ev::kFusedWindow,
                        static_cast<std::uint64_t>(fused_this_attempt_));
    }
    speculating_ = false;
    fused_this_attempt_ = 0;
  }

  int budget() const noexcept { return budget_; }

 private:
  int budget_;
  int fused_this_attempt_ = 0;
  bool speculating_ = false;
};

}  // namespace hohtm::ds
