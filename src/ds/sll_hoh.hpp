#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "ds/window_policy.hpp"
#include "ds/window_tuner.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Sorted singly-linked set with hand-over-hand transactions and revocable
/// reservations — paper Listing 5 and Figure 1.
///
/// An operation traverses at most `window` nodes per transaction; at each
/// window boundary it reserves its current node, commits, and the next
/// transaction resumes from the reservation (or restarts from the head if
/// the reservation was revoked by a concurrent Remove that freed the
/// node). Removal unlinks, revokes, and frees the node in one transaction:
/// reclamation is immediate and precise.
///
/// Instantiating with RR = rr::RrNull and window = kUnbounded yields the
/// paper's single-big-transaction ("HTM") baseline through this same code.
template <class TM, class RR, class Key = long>
class SllHoh {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  /// `window` is the paper's W; `scatter` randomizes the length of the
  /// first window per operation so threads do not reserve the same nodes
  /// in lock step (important for RR-XO, Section 5.2).
  template <class... RrArgs>
  explicit SllHoh(int window = 16, bool scatter = true, RrArgs&&... rr_args)
      : window_(window),
        scatter_(scatter),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr);
    reclaim::Gauge::on_alloc();
  }

  SllHoh(const SllHoh&) = delete;
  SllHoh& operator=(const SllHoh&) = delete;

  ~SllHoh() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  /// True if `key` was inserted (false if already present).
  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, curr);
          tx.write(prev->next, fresh);
          return true;
        });
  }

  /// True if `key` was removed. The matching node is unlinked, revoked,
  /// and handed to the allocator in the same transaction.
  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node* prev, Node* curr) {
          rr::SiteScope site(tm::RevokeSite::kListRemove);
          tx.write(prev->next, tx.read(curr->next));
          reservation_.revoke(tx, curr);
          tx.dealloc(curr);
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  /// True if `key` is in the set.
  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  /// Number of elements; runs as one transaction (test/diagnostic use).
  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  /// Checks the strictly-sorted invariant; single transaction.
  bool is_sorted() {
    return TM::atomically([&](Tx& tx) {
      Node* n = tx.read(head_->next);
      while (n != nullptr) {
        Node* next = tx.read(n->next);
        if (next != nullptr && tx.read(next->key) <= tx.read(n->key))
          return false;
        n = next;
      }
      return true;
    });
  }

  int window() const noexcept { return window_; }
  static const char* reservation_name() noexcept { return RR::name(); }

  /// Switch the list to contention-driven per-thread window tuning
  /// (see WindowTuner). Call before sharing the list across threads.
  void enable_adaptive_window(int min_window, int max_window) {
    tuner_ = std::make_unique<WindowTuner>(min_window, max_window,
                                           fusion_cap_);
  }

  /// Allow traversals to elide up to `budget` window boundaries per
  /// operation (see FusionState). With adaptive tuning on, the budget
  /// sits behind the tuner's clean-streak contention gate; without a
  /// tuner it is granted unconditionally (tests, known-quiet loads).
  /// Call before sharing the list across threads.
  void enable_fusion(int budget) {
    fusion_cap_ = budget;
    if (tuner_) tuner_->set_fusion_cap(budget);
  }

  /// The calling thread's current adaptive window (diagnostics); the
  /// static window when tuning is off.
  int effective_window() noexcept {
    return tuner_ ? tuner_->current() : window_;
  }

  /// Test-only: invoked between the transactions of one hand-over-hand
  /// operation (right after a window boundary commits, before the next
  /// transaction begins). Lets a test inject contention events into
  /// tm::Stats at a point where the operation's tuner will observe them,
  /// without depending on scheduler timing. Not thread-safe against
  /// concurrent operations; install before sharing the list.
  void set_handover_hook_for_testing(std::function<void()> hook) {
    handover_hook_ = std::move(hook);
  }

 private:
  struct Node {
    Key key;
    Node* next;
    Node(Key k, Node* n) : key(k), next(n) {}
  };

  /// Listing 5's Apply: the shared traversal skeleton. `on_found` runs
  /// with (prev, curr) where curr->key == key; `on_not_found` runs where
  /// curr is the first node with a greater key (or null), so an insert
  /// can link between prev and curr.
  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    const WindowPlan plan =
        tuner_ ? tuner_->plan_op() : WindowPlan{window_, fusion_cap_};
    FusionState fusion(plan.fusion_budget);
    struct Feedback {
      WindowTuner* tuner;
      ~Feedback() {
        if (tuner != nullptr) tuner->observe();
      }
    } feedback{tuner_.get()};
    bool handed_over = false;
    rr::Ref parked = nullptr;  // what the previous window reserved
    for (;;) {
      bool position_lost = false;
      rr::Ref lost = nullptr;
      const std::optional<bool> outcome =
          TM::atomically([&](Tx& tx) -> std::optional<bool> {
            fusion.on_attempt_start();
            reservation_.register_thread(tx);
            // Initialize: resume from the reservation, or start at head.
            Node* prev = resume_point(tx);
            position_lost = handed_over && prev == nullptr;
            if (position_lost) lost = parked;
            int used = 0;
            if (prev == nullptr) {
              prev = head_;
              used = initial_scatter(plan.window);
            }
            Node* curr = tx.read(prev->next);
            // Traverse, fusing past window boundaries while budget lasts.
            while (curr != nullptr && tx.read(curr->key) < key) {
              if (used >= plan.window) {
                if (!fusion.try_fuse()) break;
                used = 0;  // boundary elided: a fresh window, same tx
              }
              prev = curr;
              curr = tx.read(curr->next);
              ++used;
            }
            // Match.
            if (curr != nullptr && tx.read(curr->key) == key) {
              const bool result = on_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            // No match.
            if (curr == nullptr || tx.read(curr->key) > key) {
              const bool result = on_not_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            // Window exhausted: hand over to the next transaction.
            boundary_.park(tx, curr);
            parked = curr;
            return std::nullopt;
          });
      fusion.on_commit();
      if (position_lost) WindowBoundary<RR>::note_position_lost(lost);
      if (outcome.has_value()) return *outcome;
      handed_over = true;
      if (handover_hook_) handover_hook_();
    }
  }

  Node* resume_point(Tx& tx) {
    return static_cast<Node*>(const_cast<void*>(boundary_.resume(tx)));
  }

  int initial_scatter(int window) {
    if (!scatter_ || window <= 1 || window == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 1);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window)));
  }

  int window_;
  bool scatter_;
  Node* head_;
  RR reservation_;
  WindowBoundary<RR> boundary_{reservation_};
  int fusion_cap_ = 0;
  std::unique_ptr<WindowTuner> tuner_;
  std::function<void()> handover_hook_;
};

}  // namespace hohtm::ds
