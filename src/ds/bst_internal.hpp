#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Unbalanced *internal* binary search tree with hand-over-hand
/// transactions and revocable reservations — paper Section 4.3.
///
/// Lookup and Insert are singly-linked-list-like: traverse up to `window`
/// nodes per transaction, reserving the frontier node at each boundary.
/// Remove is where the subtlety lives:
///
///  - zero/one child: unlink like a list; revoke only the freed node.
///  - two children: the removed node's key is *overwritten* with the key
///    of the leftmost descendant of its right child ("successor"), and the
///    successor's node is extracted. Any thread whose reservation lies on
///    the path from the removed node down to the successor could resume
///    below the successor's new (higher) position and wrongly miss it, so
///    every node on that path is revoked (the paper's sufficient
///    condition). This makes Remove the O(path * RevokeCost) operation
///    that separates the reservation algorithms in Figure 6.
template <class TM, class RR, class Key = long>
class BstInternal {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  template <class... RrArgs>
  explicit BstInternal(int window = 16, bool scatter = true,
                       RrArgs&&... rr_args)
      : window_(window),
        scatter_(scatter),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    // Sentinel root: key +inf, real tree hangs off its left child. Client
    // keys must be strictly below the sentinel key.
    root_ = alloc::create<Node>(std::numeric_limits<Key>::max(), nullptr,
                                nullptr);
    reclaim::Gauge::on_alloc();
  }

  BstInternal(const BstInternal&) = delete;
  BstInternal& operator=(const BstInternal&) = delete;

  ~BstInternal() {
    destroy_subtree(root_);
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node*) {
          Node* fresh = tx.template alloc<Node>(key, nullptr, nullptr);
          set_child(tx, prev, key, fresh);
          return true;
        });
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node* prev, Node* curr) {
          remove_node(tx, prev, curr);
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically(
        [&](Tx& tx) { return count_subtree(tx, tx.read(root_->left)); });
  }

  /// BST-order invariant over the whole tree; single transaction.
  bool is_valid_bst() {
    return TM::atomically([&](Tx& tx) {
      return check_subtree(tx, tx.read(root_->left),
                           std::numeric_limits<Key>::min(),
                           std::numeric_limits<Key>::max());
    });
  }

  int window() const noexcept { return window_; }
  static const char* reservation_name() noexcept { return RR::name(); }

 private:
  struct Node {
    Key key;
    Node* left;
    Node* right;
    Node(Key k, Node* l, Node* r) : key(k), left(l), right(r) {}
  };

  /// Traversal skeleton shared by all operations. Resumes from the
  /// reservation when one is held; the reserved node is known to be alive
  /// (freeing requires revocation) and its key current (key-changing
  /// removals revoke the whole affected path).
  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    for (;;) {
      const std::optional<bool> outcome =
          TM::atomically([&](Tx& tx) -> std::optional<bool> {
            reservation_.register_thread(tx);
            Node* prev = static_cast<Node*>(
                const_cast<void*>(reservation_.get(tx)));
            int used = 0;
            if (prev == nullptr) {
              prev = root_;
              used = initial_scatter();
            }
            Node* curr = child_toward(tx, prev, key);
            while (curr != nullptr && used < window_) {
              const Key ck = tx.read(curr->key);
              if (ck == key) break;
              prev = curr;
              curr = key < ck ? tx.read(curr->left) : tx.read(curr->right);
              ++used;
            }
            if (curr == nullptr) {
              const bool result = on_not_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            if (tx.read(curr->key) == key) {
              const bool result = on_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            reservation_.release(tx);
            reservation_.reserve(tx, curr);
            return std::nullopt;
          });
      if (outcome.has_value()) return *outcome;
    }
  }

  /// Direction from `parent` toward `key`. The sentinel root always
  /// routes left.
  Node* child_toward(Tx& tx, Node* parent, Key key) {
    if (parent == root_) return tx.read(root_->left);
    return key < tx.read(parent->key) ? tx.read(parent->left)
                                      : tx.read(parent->right);
  }

  void set_child(Tx& tx, Node* parent, Key key, Node* child) {
    if (parent == root_ || key < tx.read(parent->key))
      tx.write(parent->left, child);
    else
      tx.write(parent->right, child);
  }

  /// Replace parent's edge to `old_child` (found by identity) with
  /// `new_child`.
  void replace_child(Tx& tx, Node* parent, Node* old_child, Node* new_child) {
    if (tx.read(parent->left) == old_child)
      tx.write(parent->left, new_child);
    else
      tx.write(parent->right, new_child);
  }

  void remove_node(Tx& tx, Node* prev, Node* curr) {
    Node* left = tx.read(curr->left);
    Node* right = tx.read(curr->right);
    if (left == nullptr || right == nullptr) {
      // List-like case: splice the (single or absent) child up. Only the
      // freed node needs revoking: a reservation on the parent resumes
      // above the splice and re-reads the new child pointer; one on the
      // child cannot be searching for the removed key (paper Section 4.3).
      Node* child = left != nullptr ? left : right;
      replace_child(tx, prev, curr, child);
      reservation_.revoke(tx, curr);
      tx.dealloc(curr);
      return;
    }
    // Two children: swap in the successor's key, extract the successor,
    // and revoke the whole path from curr to the successor inclusive.
    reservation_.revoke(tx, curr);
    Node* succ_parent = curr;
    Node* succ = right;
    for (;;) {
      Node* next_left = tx.read(succ->left);
      if (next_left == nullptr) break;
      reservation_.revoke(tx, succ);  // interior node of the v..l path
      succ_parent = succ;
      succ = next_left;
    }
    reservation_.revoke(tx, succ);  // the node being extracted
    tx.write(curr->key, tx.read(succ->key));
    Node* promoted = tx.read(succ->right);
    if (succ_parent == curr)
      tx.write(curr->right, promoted);
    else
      tx.write(succ_parent->left, promoted);
    tx.dealloc(succ);
  }

  std::size_t count_subtree(Tx& tx, Node* node) {
    if (node == nullptr) return 0;
    return 1 + count_subtree(tx, tx.read(node->left)) +
           count_subtree(tx, tx.read(node->right));
  }

  bool check_subtree(Tx& tx, Node* node, Key lo, Key hi) {
    if (node == nullptr) return true;
    const Key k = tx.read(node->key);
    if (k < lo || k > hi) return false;
    return check_subtree(tx, tx.read(node->left), lo, k - 1) &&
           check_subtree(tx, tx.read(node->right), k, hi);
  }

  void destroy_subtree(Node* node) {
    if (node == nullptr) return;
    destroy_subtree(node->left);
    destroy_subtree(node->right);
    alloc::destroy(node);
    reclaim::Gauge::on_free();
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 3);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* root_;
  RR reservation_;
};

}  // namespace hohtm::ds
