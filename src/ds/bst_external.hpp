#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Unbalanced *external* (leaf-oriented) binary search tree with
/// hand-over-hand transactions and revocable reservations (paper §5.4,
/// Figure 7).
///
/// Internal nodes are routers with immutable keys; elements live in the
/// leaves; every internal node has exactly two children. Insert splits a
/// leaf; Remove deletes a leaf *and its parent router*, promoting the
/// sibling. Both freed nodes are revoked. Because router keys never
/// change, no key-path revocation is needed — external trees are the
/// easy case for reservations, which is why in Figure 7 even the strict
/// algorithms recover most of their list-benchmark losses.
///
/// Sentinel scheme (Natarajan–Mittal): root router with key inf2 whose
/// right child is a leaf(inf2); its left child is a router key inf1 with
/// leaf(inf1) and leaf(inf2) children. All client keys must be < inf1.
template <class TM, class RR, class Key = long>
class BstExternal {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();
  static constexpr Key kInf2 = std::numeric_limits<Key>::max();
  static constexpr Key kInf1 = kInf2 - 1;

  template <class... RrArgs>
  explicit BstExternal(int window = 16, bool scatter = true,
                       RrArgs&&... rr_args)
      : window_(window),
        scatter_(scatter),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    Node* leaf_inf1 = make_raw(kInf1, nullptr, nullptr);
    Node* leaf_inf2a = make_raw(kInf2, nullptr, nullptr);
    Node* leaf_inf2b = make_raw(kInf2, nullptr, nullptr);
    Node* s = make_raw(kInf1, leaf_inf1, leaf_inf2a);
    root_ = make_raw(kInf2, s, leaf_inf2b);
  }

  BstExternal(const BstExternal&) = delete;
  BstExternal& operator=(const BstExternal&) = delete;

  ~BstExternal() { destroy_subtree(root_); }

  bool insert(Key key) {
    return apply<false>(
        key, [](Tx&, Node*, Node*, Node*) { return false; },
        [&](Tx& tx, Node*, Node* parent, Node* leaf) {
          const Key leaf_key = tx.read(leaf->key);
          Node* fresh_leaf = tx.template alloc<Node>(key, nullptr, nullptr);
          // New router keyed by the larger of the two, smaller key left.
          Node* router =
              key < leaf_key
                  ? tx.template alloc<Node>(leaf_key, fresh_leaf, leaf)
                  : tx.template alloc<Node>(key, leaf, fresh_leaf);
          replace_child(tx, parent, leaf, router);
          return true;
        });
  }

  bool contains(Key key) {
    return apply<false>(
        key, [](Tx&, Node*, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*, Node*) { return false; });
  }

  bool remove(Key key) {
    return apply<true>(
        key,
        [&](Tx& tx, Node* gparent, Node* parent, Node* leaf) {
          // Promote the sibling over the parent router; free both the
          // leaf and the router, revoking each (either may be reserved by
          // a paused traversal).
          Node* sibling = tx.read(parent->left) == leaf
                              ? tx.read(parent->right)
                              : tx.read(parent->left);
          replace_child(tx, gparent, parent, sibling);
          reservation_.revoke(tx, parent);
          reservation_.revoke(tx, leaf);
          tx.dealloc(parent);
          tx.dealloc(leaf);
          return true;
        },
        [](Tx&, Node*, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      return count_real_leaves(tx, tx.read(root_->left));
    });
  }

  /// Structural invariants: full binary tree, leaves in order, routing
  /// keys consistent. Single transaction.
  bool is_valid() {
    return TM::atomically([&](Tx& tx) {
      Key last = std::numeric_limits<Key>::min();
      return check_subtree(tx, root_, &last);
    });
  }

  int window() const noexcept { return window_; }
  static const char* reservation_name() noexcept { return RR::name(); }

 private:
  struct Node {
    Key key;
    Node* left;   // nullptr iff leaf (internal nodes have both children)
    Node* right;
    Node(Key k, Node* l, Node* r) : key(k), left(l), right(r) {}
  };

  Node* make_raw(Key k, Node* l, Node* r) {
    reclaim::Gauge::on_alloc();
    return alloc::create<Node>(k, l, r);
  }

  /// Traversal: descend through routers, reserving the frontier router at
  /// window boundaries; the found/not-found split happens at the leaf.
  /// Callbacks receive (grandparent, parent, leaf).
  ///
  /// kNeedsGparent (Remove only): a resumed window that reaches the leaf
  /// in a single step has no grandparent in hand; the operation then
  /// completes with a full root descent inside the same transaction —
  /// rare (one window boundary position in `window_`) and still atomic.
  template <bool kNeedsGparent, class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    for (;;) {
      const std::optional<bool> outcome =
          TM::atomically([&](Tx& tx) -> std::optional<bool> {
            reservation_.register_thread(tx);
            Node* parent = static_cast<Node*>(
                const_cast<void*>(reservation_.get(tx)));
            int used = 0;
            Node* gparent = nullptr;
            const bool resumed = parent != nullptr;
            if (!resumed) {
              parent = root_;
              used = initial_scatter();
            }
            Node* curr = key < tx.read(parent->key) ? tx.read(parent->left)
                                                    : tx.read(parent->right);
            while (tx.read(curr->left) != nullptr && used < window_) {
              gparent = parent;
              parent = curr;
              curr = key < tx.read(curr->key) ? tx.read(curr->left)
                                              : tx.read(curr->right);
              ++used;
            }
            if (tx.read(curr->left) != nullptr) {
              // Window exhausted on a router: hand over.
              reservation_.release(tx);
              reservation_.reserve(tx, curr);
              return std::nullopt;
            }
            if (kNeedsGparent && gparent == nullptr && parent != root_) {
              reservation_.release(tx);
              return from_root(tx, key, on_found, on_not_found);
            }
            if (tx.read(curr->key) == key) {
              const bool result = on_found(tx, gparent, parent, curr);
              reservation_.release(tx);
              return result;
            }
            const bool result = on_not_found(tx, gparent, parent, curr);
            reservation_.release(tx);
            return result;
          });
      if (outcome.has_value()) return *outcome;
    }
  }

  /// Complete the operation in this transaction with a full descent from
  /// the root, tracking (gparent, parent, leaf). Used when a resumed
  /// window lands on a leaf without a grandparent in hand.
  template <class FFound, class FNotFound>
  std::optional<bool> from_root(Tx& tx, Key key, FFound&& on_found,
                                FNotFound&& on_not_found) {
    Node* gparent = nullptr;
    Node* parent = root_;
    Node* curr = tx.read(root_->left);
    while (tx.read(curr->left) != nullptr) {
      gparent = parent;
      parent = curr;
      curr = key < tx.read(curr->key) ? tx.read(curr->left)
                                      : tx.read(curr->right);
    }
    if (tx.read(curr->key) == key) return on_found(tx, gparent, parent, curr);
    return on_not_found(tx, gparent, parent, curr);
  }

  void replace_child(Tx& tx, Node* parent, Node* old_child, Node* new_child) {
    if (tx.read(parent->left) == old_child)
      tx.write(parent->left, new_child);
    else
      tx.write(parent->right, new_child);
  }

  std::size_t count_real_leaves(Tx& tx, Node* node) {
    Node* left = tx.read(node->left);
    if (left == nullptr)
      return tx.read(node->key) < kInf1 ? 1 : 0;
    return count_real_leaves(tx, left) +
           count_real_leaves(tx, tx.read(node->right));
  }

  bool check_subtree(Tx& tx, Node* node, Key* last) {
    Node* left = tx.read(node->left);
    Node* right = tx.read(node->right);
    if (left == nullptr) {
      if (right != nullptr) return false;  // half-internal node
      const Key k = tx.read(node->key);
      if (k < *last) return false;  // leaves out of order
      *last = k;
      return true;
    }
    if (right == nullptr) return false;
    return check_subtree(tx, left, last) && check_subtree(tx, right, last);
  }

  void destroy_subtree(Node* node) {
    if (node == nullptr) return;
    destroy_subtree(node->left);
    destroy_subtree(node->right);
    alloc::destroy(node);
    reclaim::Gauge::on_free();
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 4);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* root_;
  RR reservation_;
};

}  // namespace hohtm::ds
