#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Singly linked set with hand-over-hand transactions and *hazard-pointer*
/// reclamation (the paper's TMHP baseline, closest to Liu et al. 2015).
///
/// The traversal skeleton matches Listing 5, but instead of a revocable
/// reservation the thread publishes a hazard pointer on the node where a
/// window pauses (one hazard access per transaction, as the paper notes),
/// and each node carries an `unlinked` flag that Remove sets
/// transactionally. A resumed window first checks the flag: the hazard
/// guarantees the node is still mapped, the flag says whether resuming
/// from it is still meaningful.
///
/// Reclamation is deferred: Remove retires nodes to the hazard domain,
/// which frees them in batches (threshold 64, the paper's best setting).
/// Contrast with revocable reservations, where Remove's transaction frees
/// immediately.
template <class TM, class Key = long>
class SllTmhp {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  explicit SllTmhp(int window = 16, bool scatter = true,
                   std::size_t scan_threshold = 64)
      : window_(window),
        scatter_(scatter),
        hazards_(scan_threshold, &TM::quiesce_before_free) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr);
    reclaim::Gauge::on_alloc();
  }

  SllTmhp(const SllTmhp&) = delete;
  SllTmhp& operator=(const SllTmhp&) = delete;

  ~SllTmhp() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
    // Retired (unlinked) nodes are freed by the domain's destructor.
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, curr);
          tx.write(prev->next, fresh);
          return true;
        });
  }

  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node* prev, Node* curr) {
          tx.write(prev->next, tx.read(curr->next));
          tx.write(curr->unlinked, 1L);
          retired_in_tx_ = curr;  // retire after the commit succeeds
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  /// Logically-deleted-but-unreclaimed node count (the deferral backlog
  /// revocable reservations do not have).
  std::size_t reclaimer_backlog() const noexcept {
    return hazards_.total_backlog();
  }

  static constexpr const char* name() noexcept { return "TMHP"; }
  int window() const noexcept { return window_; }

 private:
  struct Node {
    Key key;
    Node* next;
    long unlinked = 0;
    Node(Key k, Node* n) : key(k), next(n) {}
  };

  static constexpr std::size_t kHoldSlot = 0;   // node a window resumes from
  static constexpr std::size_t kNextSlot = 1;   // node the next window needs

  static void delete_node(void* p) noexcept {
    alloc::destroy(static_cast<Node*>(p));
    reclaim::Gauge::on_free();
  }

  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    Node* resume = nullptr;  // protected by kHoldSlot while non-null
    for (;;) {
      retired_in_tx_ = nullptr;
      struct Step {
        std::optional<bool> result;
        Node* next_resume = nullptr;
      };
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        retired_in_tx_ = nullptr;  // transaction may be a retry
        Node* prev = resume;
        int used = 0;
        if (prev != nullptr && tx.read(prev->unlinked) != 0) {
          // The node we paused on left the list; restart from the head.
          prev = nullptr;
        }
        if (prev == nullptr) {
          prev = head_;
          used = initial_scatter();
        }
        Node* curr = tx.read(prev->next);
        while (curr != nullptr && tx.read(curr->key) < key &&
               used < window_) {
          prev = curr;
          curr = tx.read(curr->next);
          ++used;
        }
        if (curr != nullptr && tx.read(curr->key) == key)
          return Step{on_found(tx, prev, curr), nullptr};
        if (curr == nullptr || tx.read(curr->key) > key)
          return Step{on_not_found(tx, prev, curr), nullptr};
        // Window boundary: publish the hazard *inside* the transaction —
        // if the transaction commits, curr was reachable at commit time,
        // so any remover that unlinks it serializes later and its scan
        // will observe this hazard.
        hazards_.protect(kNextSlot, curr);
        return Step{std::nullopt, curr};
      });
      if (retired_in_tx_ != nullptr) {
        // Deferred reclamation: the unlink committed; queue the node.
        hazards_.retire(retired_in_tx_, &delete_node);
        retired_in_tx_ = nullptr;
      }
      if (step.result.has_value()) {
        hazards_.clear_all();
        return *step.result;
      }
      // Shift the protection: the new pause node becomes the held node.
      hazards_.protect(kHoldSlot, step.next_resume);
      hazards_.clear(kNextSlot);
      resume = step.next_resume;
    }
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 5);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* head_;
  reclaim::HazardDomain hazards_;
  // Per-thread scratch: node whose retirement is pending on tx commit.
  static inline thread_local Node* retired_in_tx_ = nullptr;
};

}  // namespace hohtm::ds
