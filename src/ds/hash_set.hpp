#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Chained hash set with hand-over-hand transactions and revocable
/// reservations — the structure the paper's conclusion singles out as a
/// natural next application ("hash tables, for which existing scalable
/// algorithms rely on deferred memory reclamation").
///
/// Each bucket is a sorted chain headed by a sentinel; operations hash to
/// a bucket and run the Listing-5 traversal within it, sharing a single
/// reservation object across all buckets (references are node addresses,
/// so cross-bucket interference through the reservation is limited to the
/// relaxed algorithms' usual hash-collision noise). Removal frees chain
/// nodes immediately, so the table's footprint is exactly its occupancy —
/// the property deferred schemes give up.
template <class TM, class RR, class Key = long>
class HashSet {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  /// `log2_buckets` fixes the bucket count; chains grow unboundedly (no
  /// resize), matching the paper's fixed-key-range microbenchmarks.
  template <class... RrArgs>
  explicit HashSet(std::size_t log2_buckets = 8, int window = 16,
                   RrArgs&&... rr_args)
      : log2_buckets_(log2_buckets),
        window_(window),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    buckets_.resize(std::size_t{1} << log2_buckets);
    for (Node*& head : buckets_) {
      head = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr);
      reclaim::Gauge::on_alloc();
    }
  }

  HashSet(const HashSet&) = delete;
  HashSet& operator=(const HashSet&) = delete;

  ~HashSet() {
    for (Node* head : buckets_) {
      Node* n = head;
      while (n != nullptr) {
        Node* next = n->next;
        alloc::destroy(n);
        reclaim::Gauge::on_free();
        n = next;
      }
    }
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, curr);
          tx.write(prev->next, fresh);
          return true;
        });
  }

  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node* prev, Node* curr) {
          tx.write(prev->next, tx.read(curr->next));
          reservation_.revoke(tx, curr);
          tx.dealloc(curr);
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  std::size_t size() {
    std::size_t total = 0;
    for (Node* head : buckets_) {
      total += TM::atomically([&](Tx& tx) {
        std::size_t count = 0;
        for (Node* n = tx.read(head->next); n != nullptr;
             n = tx.read(n->next))
          ++count;
        return count;
      });
    }
    return total;
  }

  /// Every chain sorted and correctly homed; one transaction per bucket.
  bool is_consistent() {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const bool ok = TM::atomically([&](Tx& tx) {
        Key last = std::numeric_limits<Key>::min();
        for (Node* n = tx.read(buckets_[b]->next); n != nullptr;
             n = tx.read(n->next)) {
          const Key k = tx.read(n->key);
          if (k <= last) return false;
          if (bucket_of(k) != b) return false;
          last = k;
        }
        return true;
      });
      if (!ok) return false;
    }
    return true;
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  static const char* reservation_name() noexcept { return RR::name(); }

 private:
  struct Node {
    Key key;
    Node* next;
    Node(Key k, Node* n) : key(k), next(n) {}
  };

  std::size_t bucket_of(Key key) const noexcept {
    auto h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> (64 - log2_buckets_));
  }

  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    Node* const head = buckets_[bucket_of(key)];
    for (;;) {
      const std::optional<bool> outcome =
          TM::atomically([&](Tx& tx) -> std::optional<bool> {
            reservation_.register_thread(tx);
            Node* prev = static_cast<Node*>(
                const_cast<void*>(reservation_.get(tx)));
            int used = 0;
            if (prev == nullptr) {
              prev = head;
              used = initial_scatter();
            }
            Node* curr = tx.read(prev->next);
            while (curr != nullptr && tx.read(curr->key) < key &&
                   used < window_) {
              prev = curr;
              curr = tx.read(curr->next);
              ++used;
            }
            if (curr != nullptr && tx.read(curr->key) == key) {
              const bool result = on_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            if (curr == nullptr || tx.read(curr->key) > key) {
              const bool result = on_not_found(tx, prev, curr);
              reservation_.release(tx);
              return result;
            }
            reservation_.release(tx);
            reservation_.reserve(tx, curr);
            return std::nullopt;
          });
      if (outcome.has_value()) return *outcome;
    }
  }

  int initial_scatter() {
    if (window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 9);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  std::size_t log2_buckets_;
  int window_;
  std::vector<Node*> buckets_;
  RR reservation_;
};

}  // namespace hohtm::ds
