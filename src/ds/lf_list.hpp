#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "reclaim/gauge.hpp"
#include "reclaim/hazard_pointers.hpp"

namespace hohtm::ds {

/// Reclamation policies for the lock-free list. The paper benchmarks two:
/// "one that never reclaims memory, and one that uses hazard pointers".

/// LeakyReclaimer — logically removed nodes are never freed during the
/// run (the paper's LFLeak: "approximates the best-case performance of an
/// epoch-based allocator ... but has no bounds on memory overheads").
/// Retired nodes are recorded and released only at destruction so test
/// binaries stay leak-clean while the Gauge still shows the run-time
/// backlog.
class LeakyReclaimer {
 public:
  ~LeakyReclaimer() {
    for (const auto& r : tombstones_) r.deleter(r.ptr);
  }
  void protect(std::size_t, const void*) noexcept {}
  void clear_all() noexcept {}
  bool validate() noexcept { return true; }
  void retire(void* ptr, void (*deleter)(void*) noexcept) {
    std::lock_guard<std::mutex> lock(mu_);
    tombstones_.push_back({ptr, deleter});
  }
  std::size_t backlog() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return tombstones_.size();
  }
  static constexpr const char* name() noexcept { return "LFLeak"; }

 private:
  struct Tombstone {
    void* ptr;
    void (*deleter)(void*) noexcept;
  };
  mutable std::mutex mu_;
  std::vector<Tombstone> tombstones_;
};

/// HazardReclaimer — Michael's hazard pointers with batched scans.
class HazardReclaimer {
 public:
  explicit HazardReclaimer(std::size_t scan_threshold = 64)
      : domain_(scan_threshold) {}
  void protect(std::size_t index, const void* ptr) noexcept {
    domain_.protect(index, ptr);
  }
  void clear_all() noexcept { domain_.clear_all(); }
  void retire(void* ptr, void (*deleter)(void*) noexcept) {
    domain_.retire(ptr, deleter);
  }
  std::size_t backlog() const noexcept { return domain_.total_backlog(); }
  static constexpr const char* name() noexcept { return "LFHP"; }

 private:
  reclaim::HazardDomain domain_;
};

/// Lock-free sorted linked-list set (Harris 2001 / Michael 2002): the
/// mark bit in the successor pointer logically deletes a node; traversals
/// physically unlink marked nodes as they pass. This is the hand-crafted
/// baseline the paper concedes its reservations do not beat when the
/// baseline is allowed to leak (Figure 2, LFLeak).
template <class Reclaimer, class Key = long>
class LfList {
 public:
  template <class... RecArgs>
  explicit LfList(RecArgs&&... rec_args)
      : reclaimer_(std::forward<RecArgs>(rec_args)...),
        head_(new Node(std::numeric_limits<Key>::min())) {
    reclaim::Gauge::on_alloc();
  }

  LfList(const LfList&) = delete;
  LfList& operator=(const LfList&) = delete;

  ~LfList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = strip(n->next.load(std::memory_order_relaxed));
      delete n;
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool insert(Key key) {
    Node* fresh = nullptr;
    for (;;) {
      Window w = find(key);
      if (w.curr != nullptr && w.curr->key == key) {
        if (fresh != nullptr) {
          delete fresh;
          reclaim::Gauge::on_free();
        }
        reclaimer_.clear_all();
        return false;
      }
      if (fresh == nullptr) {
        fresh = new Node(key);
        reclaim::Gauge::on_alloc();
      }
      fresh->next.store(pack(w.curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(w.curr, false);
      if (w.prev->compare_exchange_strong(expected, pack(fresh, false),
                                          std::memory_order_acq_rel)) {
        reclaimer_.clear_all();
        return true;
      }
    }
  }

  bool remove(Key key) {
    for (;;) {
      Window w = find(key);
      if (w.curr == nullptr || w.curr->key != key) {
        reclaimer_.clear_all();
        return false;
      }
      std::uintptr_t successor = w.curr->next.load(std::memory_order_acquire);
      if (marked(successor)) continue;  // someone else is removing it
      // Logical removal: set the mark bit.
      if (!w.curr->next.compare_exchange_strong(
              successor, successor | 1, std::memory_order_acq_rel))
        continue;
      // Physical removal: unlink; on failure a later find() will help.
      std::uintptr_t expected = pack(w.curr, false);
      if (w.prev->compare_exchange_strong(expected, successor & ~1ULL,
                                          std::memory_order_acq_rel)) {
        reclaimer_.retire(w.curr, &delete_node);
      } else {
        find(key);  // helping path unlinks and retires
      }
      reclaimer_.clear_all();
      return true;
    }
  }

  bool contains(Key key) {
    Window w = find(key);
    const bool present = w.curr != nullptr && w.curr->key == key;
    reclaimer_.clear_all();
    return present;
  }

  /// Elements currently in the set (nodes whose next pointer is not
  /// marked). Follows raw links: only meaningful quiescently (tests).
  std::size_t size() const {
    std::size_t count = 0;
    Node* n = strip(head_->next.load(std::memory_order_acquire));
    while (n != nullptr) {
      const std::uintptr_t next_word = n->next.load(std::memory_order_acquire);
      if (!marked(next_word)) ++count;
      n = strip(next_word);
    }
    return count;
  }

  /// Sorted-order invariant over live nodes; quiescent use only.
  bool is_sorted() const {
    Node* n = strip(head_->next.load(std::memory_order_acquire));
    Key last = std::numeric_limits<Key>::min();
    while (n != nullptr) {
      const std::uintptr_t next_word = n->next.load(std::memory_order_acquire);
      if (!marked(next_word)) {
        if (n->key <= last) return false;
        last = n->key;
      }
      n = strip(next_word);
    }
    return true;
  }

  std::size_t reclaimer_backlog() const noexcept { return reclaimer_.backlog(); }
  static const char* reclaimer_name() noexcept { return Reclaimer::name(); }

 private:
  struct Node {
    Key key;
    std::atomic<std::uintptr_t> next{0};
    explicit Node(Key k) : key(k) {}
  };

  struct Window {
    std::atomic<std::uintptr_t>* prev;
    Node* curr;  // first unmarked node with key >= target (or null)
  };

  static Node* strip(std::uintptr_t p) noexcept {
    return reinterpret_cast<Node*>(p & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t p) noexcept { return (p & 1) != 0; }
  static std::uintptr_t pack(Node* p, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) | (mark ? 1 : 0);
  }
  static void delete_node(void* p) noexcept {
    delete static_cast<Node*>(p);
    reclaim::Gauge::on_free();
  }

  /// Michael's find: returns a window (prev, curr) with hazard pointers
  /// published on both; unlinks (and retires) marked nodes encountered.
  /// Hazard slots: 0 = curr, 1 = prev node (head needs none).
  Window find(Key key) {
  retry:
    std::atomic<std::uintptr_t>* prev = &head_->next;
    reclaimer_.protect(1, head_);
    std::uintptr_t curr_word = prev->load(std::memory_order_acquire);
    for (;;) {
      Node* curr = strip(curr_word);
      if (curr == nullptr) return Window{prev, nullptr};
      reclaimer_.protect(0, curr);
      // Validate: prev must still point (unmarked) at curr, otherwise the
      // hazard may have been published after curr was freed.
      if (prev->load(std::memory_order_seq_cst) != pack(curr, false))
        goto retry;
      std::uintptr_t next_word = curr->next.load(std::memory_order_acquire);
      if (marked(next_word)) {
        // Help unlink the logically removed node.
        std::uintptr_t expected = pack(curr, false);
        if (!prev->compare_exchange_strong(expected, next_word & ~1ULL,
                                           std::memory_order_acq_rel))
          goto retry;
        reclaimer_.retire(curr, &delete_node);
        curr_word = next_word & ~1ULL;
        continue;
      }
      if (curr->key >= key) return Window{prev, curr};
      prev = &curr->next;
      reclaimer_.protect(1, curr);
      curr_word = next_word;
    }
  }

  Reclaimer reclaimer_;
  Node* head_;
};

}  // namespace hohtm::ds
