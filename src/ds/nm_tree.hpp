#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "reclaim/gauge.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Lock-free external binary search tree (Natarajan & Mittal, PPoPP 2014)
/// — the hand-crafted nonblocking baseline of Figure 7. As in the paper's
/// evaluation ("note that this algorithm leaks memory"), removed nodes are
/// not reclaimed during the run; every allocation is recorded in a
/// per-thread registry and released when the tree is destroyed, so test
/// binaries stay leak-clean while the Gauge shows the run-time backlog.
///
/// Edges (child words) carry two low bits: FLAG marks the edge to a leaf
/// whose deletion has been injected; TAG freezes an edge during cleanup.
/// A deletion injects a flag on the parent→leaf edge, then (with helpers)
/// swings the deepest untagged ancestor edge down to the leaf's sibling,
/// unlinking the tagged chain in one CAS.
template <class Key = long>
class NmTree {
 public:
  static constexpr Key kInf2 = std::numeric_limits<Key>::max();
  static constexpr Key kInf1 = kInf2 - 1;
  static constexpr Key kInf0 = kInf2 - 2;

  NmTree() {
    Node* leaf_inf0 = make(kInf0, nullptr, nullptr);
    Node* leaf_inf1 = make(kInf1, nullptr, nullptr);
    Node* leaf_inf2 = make(kInf2, nullptr, nullptr);
    Node* s = make(kInf1, leaf_inf0, leaf_inf1);
    root_ = make(kInf2, s, leaf_inf2);
  }

  NmTree(const NmTree&) = delete;
  NmTree& operator=(const NmTree&) = delete;

  ~NmTree() {
    for (auto& registry : registries_) {
      for (Node* n : registry->nodes) {
        delete n;
        reclaim::Gauge::on_free();
      }
      registry->nodes.clear();
    }
  }

  bool contains(Key key) const {
    const Node* n = strip(root_->left.load(std::memory_order_acquire));
    while (!is_leaf(n)) {
      n = strip(key < n->key ? n->left.load(std::memory_order_acquire)
                             : n->right.load(std::memory_order_acquire));
    }
    return n->key == key;
  }

  bool insert(Key key) {
    for (;;) {
      SeekRecord s = seek(key);
      if (s.leaf->key == key) return false;
      Node* parent = s.parent;
      std::atomic<std::uintptr_t>* child_addr = child_toward(parent, key);
      const std::uintptr_t expected = pack(s.leaf);
      // Build: new router whose children are the old leaf and a new leaf.
      Node* fresh_leaf = make(key, nullptr, nullptr);
      Node* router =
          key < s.leaf->key
              ? make(s.leaf->key, fresh_leaf, s.leaf)
              : make(key, s.leaf, fresh_leaf);
      std::uintptr_t seen = expected;
      if (child_addr->compare_exchange_strong(seen, pack(router),
                                              std::memory_order_acq_rel))
        return true;
      // CAS failed: unregister nothing (registry owns them; they will be
      // freed at destruction) but help an obstructing delete if present.
      if (strip_node(seen) == s.leaf && (flagged(seen) || tagged(seen)))
        cleanup(key, s);
    }
  }

  bool remove(Key key) {
    bool injected = false;
    Node* target = nullptr;
    for (;;) {
      SeekRecord s = seek(key);
      if (!injected) {
        target = s.leaf;
        if (target->key != key) return false;
        std::atomic<std::uintptr_t>* child_addr = child_toward(s.parent, key);
        std::uintptr_t expected = pack(target);
        if (child_addr->compare_exchange_strong(expected,
                                                pack(target) | kFlag,
                                                std::memory_order_acq_rel)) {
          injected = true;
          if (cleanup(key, s)) return true;
        } else if (strip_node(expected) == target &&
                   (flagged(expected) || tagged(expected))) {
          cleanup(key, s);
        }
      } else {
        if (s.leaf != target) return true;  // a helper finished the unlink
        if (cleanup(key, s)) return true;
      }
    }
  }

  std::size_t size() const {
    return count_leaves(strip(root_->left.load(std::memory_order_acquire)));
  }

  /// Leaf-order invariant; quiescent use only.
  bool is_valid() const {
    Key last = std::numeric_limits<Key>::min();
    return check(strip(root_->left.load(std::memory_order_acquire)), &last);
  }

  static constexpr const char* name() noexcept { return "NM-LFLeak"; }

 private:
  static constexpr std::uintptr_t kFlag = 1;
  static constexpr std::uintptr_t kTag = 2;
  static constexpr std::uintptr_t kBits = kFlag | kTag;

  struct Node {
    Key key;
    std::atomic<std::uintptr_t> left{0};
    std::atomic<std::uintptr_t> right{0};
    Node(Key k, Node* l, Node* r)
        : key(k),
          left(reinterpret_cast<std::uintptr_t>(l)),
          right(reinterpret_cast<std::uintptr_t>(r)) {}
  };

  struct SeekRecord {
    Node* ancestor;
    Node* successor;
    Node* parent;
    Node* leaf;
  };

  static Node* strip(std::uintptr_t word) noexcept {
    return reinterpret_cast<Node*>(word & ~kBits);
  }
  static Node* strip_node(std::uintptr_t word) noexcept { return strip(word); }
  static bool flagged(std::uintptr_t word) noexcept { return word & kFlag; }
  static bool tagged(std::uintptr_t word) noexcept { return word & kTag; }
  static std::uintptr_t pack(Node* n) noexcept {
    return reinterpret_cast<std::uintptr_t>(n);
  }
  static bool is_leaf(const Node* n) noexcept {
    return n->left.load(std::memory_order_acquire) == 0;
  }

  Node* make(Key k, Node* l, Node* r) {
    Node* n = new Node(k, l, r);
    reclaim::Gauge::on_alloc();
    registries_[util::ThreadRegistry::slot()]->nodes.push_back(n);
    return n;
  }

  std::atomic<std::uintptr_t>* child_toward(Node* n, Key key) const noexcept {
    return key < n->key ? &n->left : &n->right;
  }

  /// Algorithm 1 of the paper: descend to the leaf, tracking the deepest
  /// edge not tagged (ancestor→successor) for cleanup's promotion CAS.
  SeekRecord seek(Key key) const {
    SeekRecord s;
    s.ancestor = root_;
    s.successor = strip(root_->left.load(std::memory_order_acquire));
    s.parent = s.successor;  // node S
    std::uintptr_t parent_field =
        s.parent->left.load(std::memory_order_acquire);
    s.leaf = strip(parent_field);
    std::uintptr_t current_field =
        key < s.leaf->key ? s.leaf->left.load(std::memory_order_acquire)
                          : s.leaf->right.load(std::memory_order_acquire);
    Node* current = strip(current_field);
    while (current != nullptr) {
      if (!tagged(parent_field)) {
        s.ancestor = s.parent;
        s.successor = s.leaf;
      }
      s.parent = s.leaf;
      s.leaf = current;
      parent_field = current_field;
      current_field = key < current->key
                          ? current->left.load(std::memory_order_acquire)
                          : current->right.load(std::memory_order_acquire);
      current = strip(current_field);
    }
    return s;
  }

  /// Algorithm 4: freeze the sibling edge with a tag, then swing the
  /// ancestor's edge from the successor chain to the sibling.
  bool cleanup(Key key, const SeekRecord& s) {
    Node* ancestor = s.ancestor;
    Node* parent = s.parent;
    std::atomic<std::uintptr_t>* successor_addr =
        child_toward(ancestor, key);
    std::atomic<std::uintptr_t>* child_addr = child_toward(parent, key);
    std::atomic<std::uintptr_t>* sibling_addr =
        child_addr == &parent->left ? &parent->right : &parent->left;
    if (!flagged(child_addr->load(std::memory_order_acquire))) {
      // We are helping a delete that flagged the *other* child.
      sibling_addr = child_addr;
    }
    // Freeze the sibling edge (it survives the promotion).
    const std::uintptr_t sibling_word =
        sibling_addr->fetch_or(kTag, std::memory_order_acq_rel);
    // Promote: ancestor's edge drops the whole tagged chain, preserving
    // a pending flag on the sibling (its own delete will retry and land
    // at the new location).
    std::uintptr_t expected = pack(s.successor);
    return successor_addr->compare_exchange_strong(
        expected, (sibling_word | kTag) ^ kTag,  // clear TAG, keep FLAG
        std::memory_order_acq_rel);
  }

  std::size_t count_leaves(const Node* n) const {
    if (is_leaf(n)) return n->key < kInf0 ? 1 : 0;
    return count_leaves(strip(n->left.load(std::memory_order_acquire))) +
           count_leaves(strip(n->right.load(std::memory_order_acquire)));
  }

  bool check(const Node* n, Key* last) const {
    if (is_leaf(n)) {
      if (n->key < *last) return false;
      *last = n->key;
      return true;
    }
    return check(strip(n->left.load(std::memory_order_acquire)), last) &&
           check(strip(n->right.load(std::memory_order_acquire)), last);
  }

  struct Registry {
    std::vector<Node*> nodes;
  };

  Node* root_;
  util::CachePadded<Registry> registries_[util::kMaxThreads];
};

}  // namespace hohtm::ds
