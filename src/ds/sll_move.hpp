#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "core/multi_rr.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Sorted singly-linked set with **multi-reservation composition**: the
/// paper's extension experiment. On top of the usual insert / remove /
/// contains, it offers
///
///     move(victim, replacement)
///
/// which atomically removes `victim` and inserts `replacement` — even
/// though the two positions are found by *separate* hand-over-hand
/// traversals. Each traversal parks a reservation on the predecessor of
/// its position (two live reservations, hence MultiRrV); a final small
/// transaction re-validates both neighbourhoods by key and performs the
/// splice, the revoke, and the free together. The reservations do not
/// make the hints infallible — they make the hinted nodes *safe to touch*
/// (a node can only be freed after revoking, which nils the hint), and
/// the final transaction's reads detect staleness and retry.
template <class TM, class Key = long>
class SllMove {
 public:
  using Tx = typename TM::Tx;
  using RR = rr::MultiRrV<TM, 4>;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  explicit SllMove(int window = 16)
      : window_(window) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr);
    reclaim::Gauge::on_alloc();
  }

  SllMove(const SllMove&) = delete;
  SllMove& operator=(const SllMove&) = delete;

  ~SllMove() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool insert(Key key) {
    return TM::atomically([&](Tx& tx) {
      reservation_.register_thread(tx);
      Node* prev = find_prev(tx, key);
      Node* curr = tx.read(prev->next);
      if (curr != nullptr && tx.read(curr->key) == key) return false;
      Node* fresh = tx.template alloc<Node>(key, curr);
      tx.write(prev->next, fresh);
      return true;
    });
  }

  bool remove(Key key) {
    return TM::atomically([&](Tx& tx) {
      reservation_.register_thread(tx);
      Node* prev = find_prev(tx, key);
      Node* curr = tx.read(prev->next);
      if (curr == nullptr || tx.read(curr->key) != key) return false;
      unlink_free(tx, prev, curr);
      return true;
    });
  }

  bool contains(Key key) {
    return TM::atomically([&](Tx& tx) {
      reservation_.register_thread(tx);
      Node* prev = find_prev(tx, key);
      Node* curr = tx.read(prev->next);
      return curr != nullptr && tx.read(curr->key) == key;
    });
  }

  /// Atomically: remove `victim` and insert `replacement`. Returns true
  /// iff, at one instant, `victim` was present and `replacement` absent
  /// and the swap happened. Both positions are located by independent
  /// hand-over-hand traversals holding simultaneous reservations.
  bool move(Key victim, Key replacement) {
    if (victim == replacement) return false;
    for (;;) {
      // Phase 1: hand-over-hand hunt for victim's predecessor; park a
      // reservation on it.
      Node* victim_prev = hunt(victim, nullptr);
      // Phase 2: same for the replacement's insertion predecessor. The
      // victim_prev reservation stays live throughout (the hunt is told
      // not to release it even if its own windows pause there).
      Node* insert_prev = hunt(replacement, victim_prev);

      // Phase 3: one small transaction validates both hints and commits
      // the whole move. Any staleness (reservation revoked, key moved,
      // neighbourhood changed) restarts the operation.
      enum class Outcome { kDone, kFailed, kRetry };
      const Outcome outcome = TM::atomically([&](Tx& tx) {
        reservation_.register_thread(tx);
        Node* vp = checked(tx, victim_prev);
        Node* ip = checked(tx, insert_prev);
        if (vp == nullptr || ip == nullptr) return Outcome::kRetry;
        // A valid reservation proves the hint node is alive AND linked
        // (every unlink in this structure revokes). Its key is immutable
        // and < the hunted key, so the true position is at or after it:
        // re-walk transactionally. The walk is the atomic arbiter — if
        // it says the victim is absent, the move fails *atomically*.
        Node* vcurr = tx.read(vp->next);
        while (vcurr != nullptr && tx.read(vcurr->key) < victim) {
          vp = vcurr;
          vcurr = tx.read(vcurr->next);
        }
        if (vcurr == nullptr || tx.read(vcurr->key) != victim)
          return Outcome::kFailed;  // victim not in the set
        Node* icurr = tx.read(ip->next);
        while (icurr != nullptr && tx.read(icurr->key) < replacement) {
          ip = icurr;
          icurr = tx.read(icurr->next);
        }
        if (icurr != nullptr && tx.read(icurr->key) == replacement)
          return Outcome::kFailed;  // replacement already present
        // Splice. Three shapes, by how the two neighbourhoods overlap:
        Node* fresh = tx.template alloc<Node>(replacement, nullptr);
        if (ip == vp) {
          // Same gap (replacement < victim, icurr == vcurr == victim's
          // node): vp -> fresh -> victim.next.
          tx.write(fresh->next, tx.read(vcurr->next));
          tx.write(vp->next, fresh);
        } else if (ip == vcurr) {
          // Insertion gap directly after the victim (victim <
          // replacement < icurr): vp -> fresh -> icurr.
          tx.write(fresh->next, icurr);
          tx.write(vp->next, fresh);
        } else {
          // Disjoint (including icurr == vp): independent writes.
          tx.write(fresh->next, icurr);
          tx.write(ip->next, fresh);
          tx.write(vp->next, tx.read(vcurr->next));
        }
        reservation_.revoke(tx, vcurr);
        tx.dealloc(vcurr);
        reservation_.release_all(tx);
        return Outcome::kDone;
      });
      if (outcome == Outcome::kRetry) {
        TM::atomically([&](Tx& tx) {
          reservation_.register_thread(tx);
          reservation_.release_all(tx);
        });
        continue;
      }
      if (outcome == Outcome::kFailed) {
        TM::atomically([&](Tx& tx) {
          reservation_.register_thread(tx);
          reservation_.release_all(tx);
        });
        return false;
      }
      return true;
    }
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  bool is_sorted() {
    return TM::atomically([&](Tx& tx) {
      Node* n = tx.read(head_->next);
      while (n != nullptr) {
        Node* next = tx.read(n->next);
        if (next != nullptr && tx.read(next->key) <= tx.read(n->key))
          return false;
        n = next;
      }
      return true;
    });
  }

 private:
  struct Node {
    Key key;
    Node* next;
    Node(Key k, Node* n) : key(k), next(n) {}
  };

  /// Single-transaction predecessor search (used by the plain ops; the
  /// multi-reservation machinery is exercised by move()).
  Node* find_prev(Tx& tx, Key key) {
    Node* prev = head_;
    Node* curr = tx.read(prev->next);
    while (curr != nullptr && tx.read(curr->key) < key) {
      prev = curr;
      curr = tx.read(curr->next);
    }
    return prev;
  }

  /// Hand-over-hand hunt for the predecessor of `key`, leaving a live
  /// reservation on the returned node. The node cannot be freed until
  /// some remover revokes it, at which point phase 3's `checked` sees nil.
  /// `keep` (a node another phase still relies on) is never released even
  /// if this hunt's windows pause on it.
  Node* hunt(Key key, Node* keep) {
    for (;;) {
      struct Step {
        Node* node = nullptr;
        bool done = false;
      };
      Node* resume = resume_;
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        reservation_.register_thread(tx);
        Node* prev = resume;
        if (prev != nullptr && reservation_.get(tx, prev) == nullptr)
          prev = nullptr;  // revoked between windows
        if (prev == nullptr) prev = head_;
        Node* curr = tx.read(prev->next);
        int used = 0;
        while (curr != nullptr && tx.read(curr->key) < key &&
               used < window_) {
          prev = curr;
          curr = tx.read(curr->next);
          ++used;
        }
        if (resume != nullptr && prev != resume && resume != keep)
          reservation_.release(tx, resume);
        if (prev != head_) reservation_.reserve(tx, prev);
        const bool done = curr == nullptr || tx.read(curr->key) >= key;
        return Step{prev, done};
      });
      resume_ = step.node;
      if (step.done) {
        resume_ = nullptr;
        return step.node;
      }
    }
  }

  /// Returns the node if its reservation is still valid, nullptr
  /// otherwise. The head sentinel needs no reservation.
  Node* checked(Tx& tx, Node* node) {
    if (node == head_) return node;
    return static_cast<Node*>(
        const_cast<void*>(reservation_.get(tx, node)));
  }

  void unlink_free(Tx& tx, Node* prev, Node* curr) {
    tx.write(prev->next, tx.read(curr->next));
    reservation_.revoke(tx, curr);
    tx.dealloc(curr);
  }

  int window_;
  Node* head_;
  RR reservation_;
  static inline thread_local Node* resume_ = nullptr;
};

}  // namespace hohtm::ds
