#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "reclaim/gauge.hpp"
#include "tm/tm.hpp"
#include "util/cacheline.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Singly linked set with hand-over-hand transactions and *reference
/// counting* (the paper's REF baseline — included to show why it loses:
/// every window boundary writes two shared counters, turning read-mostly
/// traversals into write traffic).
///
/// Following the paper's own optimizations, the count lives on its own
/// cache line within the node and is touched "only for the first and last
/// node of each transaction": a window boundary increments the new pause
/// node's count and decrements the previous one's. Remove unlinks and
/// marks the node; whoever drops the count to zero on a marked node frees
/// it (transactionally, hence precisely — the backlog is the set of
/// unlinked nodes still pinned by traversals).
template <class TM, class Key = long>
class SllRef {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  explicit SllRef(int window = 16, bool scatter = true)
      : window_(window), scatter_(scatter) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr);
    reclaim::Gauge::on_alloc();
  }

  SllRef(const SllRef&) = delete;
  SllRef& operator=(const SllRef&) = delete;

  ~SllRef() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, curr);
          tx.write(prev->next, fresh);
          return true;
        });
  }

  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node* prev, Node* curr) {
          tx.write(prev->next, tx.read(curr->next));
          tx.write(curr->unlinked, 1L);
          // REF reclaims by refcount, not reservation: the list is
          // pinned hand-over-hand, so an unpinned+unlinked node is
          // unreachable by construction and needs no revoke.
          // hohtm-analyze: allow(unlink-without-revoke)
          if (tx.read(curr->refcount) == 0) tx.dealloc(curr);
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  static constexpr const char* name() noexcept { return "REF"; }
  int window() const noexcept { return window_; }

 private:
  struct Node {
    Key key;
    Node* next;
    long unlinked = 0;
    // Separate cache line for the count, per the paper's optimization.
    alignas(util::kCacheLineSize) long refcount = 0;
    Node(Key k, Node* n) : key(k), next(n) {}
  };

  /// Drop one pin from `node`; free it if it is unlinked and unpinned.
  void unpin(Tx& tx, Node* node) {
    const long count = tx.read(node->refcount) - 1;
    tx.write(node->refcount, count);
    // Last unpinner frees: REF's refcount discipline replaces the
    // reservation revoke (see remove above).
    // hohtm-analyze: allow(unlink-without-revoke)
    if (count == 0 && tx.read(node->unlinked) != 0) tx.dealloc(node);
  }

  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    Node* resume = nullptr;  // holds one reference while non-null
    for (;;) {
      struct Step {
        std::optional<bool> result;
        Node* next_resume = nullptr;
      };
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        Node* prev = resume;
        int used = 0;
        if (prev != nullptr && tx.read(prev->unlinked) != 0) {
          unpin(tx, prev);
          prev = nullptr;  // restart from the head
        }
        const bool pinned_start = prev != nullptr;
        if (prev == nullptr) {
          prev = head_;
          used = initial_scatter();
        }
        Node* curr = tx.read(prev->next);
        while (curr != nullptr && tx.read(curr->key) < key &&
               used < window_) {
          prev = curr;
          curr = tx.read(curr->next);
          ++used;
        }
        if (curr == nullptr || tx.read(curr->key) >= key) {
          const bool matched = curr != nullptr && tx.read(curr->key) == key;
          const bool result = matched ? on_found(tx, prev, curr)
                                      : on_not_found(tx, prev, curr);
          if (pinned_start) unpin(tx, resume);
          return Step{result, nullptr};
        }
        // Window boundary: pin the new pause node, unpin the old one.
        tx.write(curr->refcount, tx.read(curr->refcount) + 1);
        if (pinned_start) unpin(tx, resume);
        return Step{std::nullopt, curr};
      });
      if (step.result.has_value()) return *step.result;
      resume = step.next_resume;
    }
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 6);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* head_;
};

}  // namespace hohtm::ds
