#pragma once

#include <cstdint>

#include "tm/config.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Dynamic window-size tuning — the future work the paper could not
/// build: "Doing so will entail hand-crafting the transactions, instead
/// of using GCC TM support: GCC TM does not expose the fact of an abort,
/// or its cause, to the programmer" (Section 5.2). This library owns its
/// TM, so the per-cause telemetry in tm::Stats is one read away, and the
/// paper's suggested contention-driven policy becomes implementable.
///
/// The signal is StatCounters::contention_signal(), NOT raw `aborts`:
/// in hand-over-hand operations contention also surfaces as revoked
/// reservations and operation restarts in which every transaction
/// *commits* — an abort-only tuner is blind to exactly the window-shaped
/// contention it is supposed to damp. See docs/ALGORITHMS.md ("Abort
/// taxonomy and adaptive window").
///
/// Policy (multiplicative decrease / streak-based increase, per thread):
///  - an operation that suffered any contention event (TM abort, observed
///    revocation of its reservation, or a restart) halves the window
///    (floor min_window): contention favours smaller windows (Figure 4);
///  - `kGrowStreak` consecutive contention-free operations double it
///    (ceiling max_window): quiet periods favour fewer transaction
///    boundaries.
class WindowTuner {
 public:
  WindowTuner(int min_window, int max_window) noexcept
      : min_window_(min_window), max_window_(max_window) {}

  /// Call at operation start; returns the window to use and remembers
  /// the contention counters to diff against in `observe`.
  int begin_op() noexcept {
    State& s = mine();
    if (s.window == 0) s.window = initial_window();
    s.signal_at_start = tm::Stats::mine().contention_signal();
    return s.window;
  }

  /// Call when the operation completes; adapts the thread's window.
  void observe() noexcept {
    State& s = mine();
    const std::uint64_t signal = tm::Stats::mine().contention_signal();
    if (signal != s.signal_at_start) {
      s.window = s.window / 2 < min_window_ ? min_window_ : s.window / 2;
      s.clean_streak = 0;
      return;
    }
    if (++s.clean_streak >= kGrowStreak) {
      s.clean_streak = 0;
      s.window = s.window * 2 > max_window_ ? max_window_ : s.window * 2;
    }
  }

  /// Current per-thread window (diagnostics).
  int current() noexcept {
    State& s = mine();
    return s.window == 0 ? initial_window() : s.window;
  }

 private:
  static constexpr int kGrowStreak = 32;

  struct State {
    std::uint64_t generation = 0;  // owning thread's lifetime stamp
    int window = 0;                // 0 = uninitialized for this thread
    int clean_streak = 0;
    std::uint64_t signal_at_start = 0;
  };

  int initial_window() const noexcept {
    // Geometric midpoint of the range, rounded to a power of two.
    int w = min_window_;
    while (w < max_window_ && w * w < min_window_ * max_window_) w *= 2;
    return w;
  }

  /// Thread slots are recycled (util::ThreadRegistry), so a new thread
  /// may land on a departed thread's slot. Its State must not be
  /// inherited — a stale shrunken window or half-built clean streak would
  /// mistune the newcomer — so the state is scrubbed whenever the slot's
  /// recorded generation differs from the calling thread's.
  State& mine() noexcept {
    State& s = states_[util::ThreadRegistry::slot()].value;
    const std::uint64_t gen = util::ThreadRegistry::generation();
    if (s.generation != gen) {
      s = State{};
      s.generation = gen;
    }
    return s;
  }

  const int min_window_;
  const int max_window_;
  util::CachePadded<State> states_[util::kMaxThreads];
};

}  // namespace hohtm::ds
