#pragma once

#include <cstdint>

#include "tm/config.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Dynamic window-size tuning — the future work the paper could not
/// build: "Doing so will entail hand-crafting the transactions, instead
/// of using GCC TM support: GCC TM does not expose the fact of an abort,
/// or its cause, to the programmer" (Section 5.2). This library owns its
/// TM, so abort counts are one read away (tm::Stats), and the paper's
/// suggested contention-driven policy becomes implementable.
///
/// Policy (multiplicative decrease / streak-based increase, per thread):
///  - an operation that suffered any abort halves the window (floor
///    min_window): contention favours smaller windows (Figure 4);
///  - `kGrowStreak` consecutive abort-free operations double it (ceiling
///    max_window): quiet periods favour fewer transaction boundaries.
class WindowTuner {
 public:
  WindowTuner(int min_window, int max_window) noexcept
      : min_window_(min_window), max_window_(max_window) {}

  /// Call at operation start; returns the window to use and remembers
  /// the abort counter to diff against in `observe`.
  int begin_op() noexcept {
    State& s = mine();
    if (s.window == 0) s.window = initial_window();
    s.aborts_at_start = tm::Stats::mine().aborts;
    return s.window;
  }

  /// Call when the operation completes; adapts the thread's window.
  void observe() noexcept {
    State& s = mine();
    const std::uint64_t aborts = tm::Stats::mine().aborts;
    if (aborts != s.aborts_at_start) {
      s.window = s.window / 2 < min_window_ ? min_window_ : s.window / 2;
      s.clean_streak = 0;
      return;
    }
    if (++s.clean_streak >= kGrowStreak) {
      s.clean_streak = 0;
      s.window = s.window * 2 > max_window_ ? max_window_ : s.window * 2;
    }
  }

  /// Current per-thread window (diagnostics).
  int current() noexcept {
    State& s = mine();
    return s.window == 0 ? initial_window() : s.window;
  }

 private:
  static constexpr int kGrowStreak = 32;

  struct State {
    int window = 0;  // 0 = uninitialized for this thread
    int clean_streak = 0;
    std::uint64_t aborts_at_start = 0;
  };

  int initial_window() const noexcept {
    // Geometric midpoint of the range, rounded to a power of two.
    int w = min_window_;
    while (w < max_window_ && w * w < min_window_ * max_window_) w *= 2;
    return w;
  }

  State& mine() noexcept {
    return states_[util::ThreadRegistry::slot()].value;
  }

  const int min_window_;
  const int max_window_;
  util::CachePadded<State> states_[util::kMaxThreads];
};

}  // namespace hohtm::ds
