#pragma once

#include <cstdint>

#include "ds/window_policy.hpp"
#include "tm/config.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Dynamic window-size tuning — the future work the paper could not
/// build: "Doing so will entail hand-crafting the transactions, instead
/// of using GCC TM support: GCC TM does not expose the fact of an abort,
/// or its cause, to the programmer" (Section 5.2). This library owns its
/// TM, so the per-cause telemetry in tm::Stats is one read away, and the
/// paper's suggested contention-driven policy becomes implementable.
///
/// The signal is StatCounters::contention_signal(), NOT raw `aborts`:
/// in hand-over-hand operations contention also surfaces as revoked
/// reservations and operation restarts in which every transaction
/// *commits* — an abort-only tuner is blind to exactly the window-shaped
/// contention it is supposed to damp. See docs/ALGORITHMS.md ("Abort
/// taxonomy and adaptive window").
///
/// Policy (multiplicative decrease / streak-based increase, per thread):
///  - an operation that suffered any contention event (TM abort, observed
///    revocation of its reservation, or a restart) halves the window
///    (floor min_window): contention favours smaller windows (Figure 4);
///  - `kGrowStreak` consecutive contention-free operations double it
///    (ceiling max_window): quiet periods favour fewer transaction
///    boundaries.
///
/// With a nonzero `fusion_cap` the tuner additionally governs window
/// fusion (ds::FusionState): a thread whose clean streak has reached
/// `kFuseStreak` gets a per-operation budget of boundary elisions, and
/// any contention event revokes it along with halving the window. The
/// gate rides the same clean streak because fusion is a strictly more
/// aggressive bet than a bigger window — it enlarges a single
/// transaction's read set — so it should only be granted on evidence
/// quieter than "has not aborted just now".
class WindowTuner {
 public:
  explicit WindowTuner(int min_window, int max_window,
                       int fusion_cap = 0) noexcept
      : min_window_(min_window),
        max_window_(max_window),
        fusion_cap_(fusion_cap) {}

  /// Call at operation start; returns the window to use plus the fusion
  /// budget this thread has earned, and remembers the contention
  /// counters to diff against in `observe`.
  WindowPlan plan_op() noexcept {
    State& s = mine();
    if (s.window == 0) s.window = initial_window();
    s.signal_at_start = tm::Stats::mine().contention_signal();
    WindowPlan plan;
    plan.window = s.window;
    plan.fusion_budget =
        (fusion_cap_ > 0 && s.clean_streak >= kFuseStreak) ? fusion_cap_ : 0;
    return plan;
  }

  /// Window-only variant of plan_op (pre-fusion callers, diagnostics).
  int begin_op() noexcept { return plan_op().window; }

  /// Grant fusion budgets once a thread's clean streak reaches
  /// kFuseStreak (0 disables). Install before sharing across threads.
  void set_fusion_cap(int cap) noexcept { fusion_cap_ = cap; }

  /// Call when the operation completes; adapts the thread's window.
  void observe() noexcept {
    State& s = mine();
    const std::uint64_t signal = tm::Stats::mine().contention_signal();
    if (signal < s.signal_at_start) {
      // The counters moved *backwards*: they were reset mid-stream (the
      // harness calls tm::Stats::reset() between trials), not contended.
      // Re-arm the baseline; halving here would spuriously shrink every
      // thread's window on the first post-reset operation.
      s.signal_at_start = signal;
      return;
    }
    if (signal > s.signal_at_start) {
      s.window = s.window / 2 < min_window_ ? min_window_ : s.window / 2;
      s.clean_streak = 0;
      return;
    }
    if (++s.clean_streak >= kGrowStreak) {
      if (s.window * 2 <= max_window_) {
        s.window *= 2;
        s.clean_streak = 0;
      } else {
        // At the ceiling: saturate instead of wrapping, so the fusion
        // gate (clean_streak >= kFuseStreak) stays open at steady state.
        s.clean_streak = kGrowStreak;
      }
    }
  }

  /// Current per-thread window (diagnostics).
  int current() noexcept {
    State& s = mine();
    return s.window == 0 ? initial_window() : s.window;
  }

  static constexpr int kGrowStreak = 32;
  static constexpr int kFuseStreak = 8;

 private:

  struct State {
    std::uint64_t generation = 0;  // owning thread's lifetime stamp
    int window = 0;                // 0 = uninitialized for this thread
    int clean_streak = 0;
    std::uint64_t signal_at_start = 0;
  };

  int initial_window() const noexcept {
    // Geometric midpoint of the range, rounded to a power of two.
    int w = min_window_;
    while (w < max_window_ && w * w < min_window_ * max_window_) w *= 2;
    return w;
  }

  /// Thread slots are recycled (util::ThreadRegistry), so a new thread
  /// may land on a departed thread's slot. Its State must not be
  /// inherited — a stale shrunken window or half-built clean streak would
  /// mistune the newcomer — so the state is scrubbed whenever the slot's
  /// recorded generation differs from the calling thread's.
  State& mine() noexcept {
    State& s = states_[util::ThreadRegistry::slot()].value;
    const std::uint64_t gen = util::ThreadRegistry::generation();
    if (s.generation != gen) {
      s = State{};
      s.generation = gen;
    }
    return s;
  }

  const int min_window_;
  const int max_window_;
  int fusion_cap_;
  util::CachePadded<State> states_[util::kMaxThreads];
};

}  // namespace hohtm::ds
