#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "reclaim/gauge.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Doubly linked set with hand-over-hand transactions and hazard-pointer
/// reclamation: the TMHP series of Figures 3 and 5. Like the DllHoh
/// remove optimization, unlinking uses the victim's own prev/next
/// pointers; reclamation is deferred through the hazard domain.
template <class TM, class Key = long>
class DllTmhp {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  explicit DllTmhp(int window = 16, bool scatter = true,
                   std::size_t scan_threshold = 64)
      : window_(window),
        scatter_(scatter),
        hazards_(scan_threshold, &TM::quiesce_before_free) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), nullptr,
                                nullptr);
    reclaim::Gauge::on_alloc();
  }

  DllTmhp(const DllTmhp&) = delete;
  DllTmhp& operator=(const DllTmhp&) = delete;

  ~DllTmhp() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool insert(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return false; },
        [&](Tx& tx, Node* prev, Node* curr) {
          Node* fresh = tx.template alloc<Node>(key, prev, curr);
          tx.write(prev->next, fresh);
          if (curr != nullptr) tx.write(curr->prev, fresh);
          return true;
        });
  }

  bool remove(Key key) {
    return apply(
        key,
        [&](Tx& tx, Node*, Node* curr) {
          Node* before = tx.read(curr->prev);
          Node* after = tx.read(curr->next);
          tx.write(before->next, after);
          if (after != nullptr) tx.write(after->prev, before);
          tx.write(curr->unlinked, 1L);
          retired_in_tx_ = curr;
          return true;
        },
        [](Tx&, Node*, Node*) { return false; });
  }

  bool contains(Key key) {
    return apply(
        key, [](Tx&, Node*, Node*) { return true; },
        [](Tx&, Node*, Node*) { return false; });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next); n != nullptr; n = tx.read(n->next))
        ++count;
      return count;
    });
  }

  bool is_consistent() {
    return TM::atomically([&](Tx& tx) {
      Node* previous = head_;
      for (Node* n = tx.read(head_->next); n != nullptr;
           n = tx.read(n->next)) {
        if (tx.read(n->prev) != previous) return false;
        previous = n;
      }
      return true;
    });
  }

  std::size_t reclaimer_backlog() const noexcept {
    return hazards_.total_backlog();
  }

  static constexpr const char* name() noexcept { return "TMHP"; }
  int window() const noexcept { return window_; }

 private:
  struct Node {
    Key key;
    Node* prev;
    Node* next;
    long unlinked = 0;
    Node(Key k, Node* p, Node* n) : key(k), prev(p), next(n) {}
  };

  static constexpr std::size_t kHoldSlot = 0;
  static constexpr std::size_t kNextSlot = 1;

  static void delete_node(void* p) noexcept {
    alloc::destroy(static_cast<Node*>(p));
    reclaim::Gauge::on_free();
  }

  template <class FFound, class FNotFound>
  bool apply(Key key, FFound&& on_found, FNotFound&& on_not_found) {
    Node* resume = nullptr;
    for (;;) {
      retired_in_tx_ = nullptr;
      struct Step {
        std::optional<bool> result;
        Node* next_resume = nullptr;
      };
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        retired_in_tx_ = nullptr;
        Node* prev = resume;
        int used = 0;
        if (prev != nullptr && tx.read(prev->unlinked) != 0) prev = nullptr;
        if (prev == nullptr) {
          prev = head_;
          used = initial_scatter();
        }
        Node* curr = tx.read(prev->next);
        while (curr != nullptr && tx.read(curr->key) < key &&
               used < window_) {
          prev = curr;
          curr = tx.read(curr->next);
          ++used;
        }
        if (curr != nullptr && tx.read(curr->key) == key)
          return Step{on_found(tx, prev, curr), nullptr};
        if (curr == nullptr || tx.read(curr->key) > key)
          return Step{on_not_found(tx, prev, curr), nullptr};
        hazards_.protect(kNextSlot, curr);
        return Step{std::nullopt, curr};
      });
      if (retired_in_tx_ != nullptr) {
        hazards_.retire(retired_in_tx_, &delete_node);
        retired_in_tx_ = nullptr;
      }
      if (step.result.has_value()) {
        hazards_.clear_all();
        return *step.result;
      }
      hazards_.protect(kHoldSlot, step.next_resume);
      hazards_.clear(kNextSlot);
      resume = step.next_resume;
    }
  }

  int initial_scatter() {
    if (!scatter_ || window_ <= 1 || window_ == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 7);
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window_)));
  }

  int window_;
  bool scatter_;
  Node* head_;
  reclaim::HazardDomain hazards_;
  static inline thread_local Node* retired_in_tx_ = nullptr;
};

}  // namespace hohtm::ds
