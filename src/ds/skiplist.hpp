#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "ds/window_policy.hpp"
#include "tm/tm.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::ds {

/// Skip list with hand-over-hand *lookups* and revocable reservations —
/// a probabilistically balanced structure standing in for the "balanced
/// trees" the paper's conclusion names as future work.
///
/// Design choice (documented honestly): lookups use hand-over-hand
/// windows — each transaction performs up to `window` node-hops of the
/// standard descent and pauses by reserving its current node and
/// remembering the current level (per-thread; the level is valid on
/// resume because a node's height is immutable and a reserved node is
/// still linked — every removal revokes). Inserts and removes run as a
/// single transaction each: linking a tower needs predecessors at every
/// level, which cannot be carried across windows without staleness, and
/// update transactions are short anyway (the situation the paper's 8-bit
/// tree panels show costs nothing). Removal unlinks the whole tower,
/// revokes the node, and frees it in the same transaction: reclamation
/// stays precise.
template <class TM, class RR, class Key = long>
class SkipList {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();
  static constexpr int kMaxHeight = 16;

  template <class... RrArgs>
  explicit SkipList(int window = 16, RrArgs&&... rr_args)
      : window_(window), reservation_(std::forward<RrArgs>(rr_args)...) {
    head_ = alloc::create<Node>(std::numeric_limits<Key>::min(), kMaxHeight);
    reclaim::Gauge::on_alloc();
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  bool contains(Key key) {
    FusionState fusion(fusion_cap_);
    for (;;) {
      struct Step {
        std::optional<bool> result;
        Node* pause_node = nullptr;
        int pause_level = 0;
      };
      Node* resume_node = resume_node_;
      const int resume_level = resume_level_;
      const Step step = TM::atomically([&](Tx& tx) -> Step {
        fusion.on_attempt_start();
        reservation_.register_thread(tx);
        Node* node = nullptr;
        int level = kMaxHeight - 1;
        if (resume_node != nullptr &&
            boundary_.resume(tx) == resume_node) {
          node = resume_node;
          level = resume_level;
        } else {
          node = head_;
        }
        int hops = 0;
        for (;;) {
          Node* next = tx.read(node->next[level]);
          if (next != nullptr && tx.read(next->key) < key) {
            node = next;
            if (++hops >= window_) {
              if (fusion.try_fuse()) {
                hops = 0;  // boundary elided: a fresh window, same tx
                continue;
              }
              boundary_.park(tx, node);
              return Step{std::nullopt, node, level};
            }
            continue;
          }
          if (next != nullptr && tx.read(next->key) == key) {
            reservation_.release(tx);
            return Step{true, nullptr, 0};
          }
          if (level == 0) {
            reservation_.release(tx);
            return Step{false, nullptr, 0};
          }
          --level;
        }
      });
      fusion.on_commit();
      if (step.result.has_value()) {
        resume_node_ = nullptr;
        return *step.result;
      }
      resume_node_ = step.pause_node;
      resume_level_ = step.pause_level;
    }
  }

  bool insert(Key key) {
    const int height = random_height();
    return TM::atomically([&](Tx& tx) {
      reservation_.register_thread(tx);
      Node* preds[kMaxHeight];
      Node* succs[kMaxHeight];
      find_towers(tx, key, preds, succs);
      if (succs[0] != nullptr && tx.read(succs[0]->key) == key) return false;
      Node* fresh = tx.template alloc<Node>(key, height);
      for (int level = 0; level < height; ++level) {
        fresh->next[level] = succs[level];  // private until published
        tx.write(preds[level]->next[level], fresh);
      }
      return true;
    });
  }

  bool remove(Key key) {
    return TM::atomically([&](Tx& tx) {
      reservation_.register_thread(tx);
      Node* preds[kMaxHeight];
      Node* succs[kMaxHeight];
      find_towers(tx, key, preds, succs);
      Node* victim = succs[0];
      if (victim == nullptr || tx.read(victim->key) != key) return false;
      const int height = victim->height;  // immutable
      for (int level = 0; level < height; ++level) {
        // At levels where the victim is the successor, splice it out.
        if (tx.read(preds[level]->next[level]) == victim)
          tx.write(preds[level]->next[level], tx.read(victim->next[level]));
      }
      reservation_.revoke(tx, victim);
      tx.dealloc(victim);
      return true;
    });
  }

  std::size_t size() {
    return TM::atomically([&](Tx& tx) {
      std::size_t count = 0;
      for (Node* n = tx.read(head_->next[0]); n != nullptr;
           n = tx.read(n->next[0]))
        ++count;
      return count;
    });
  }

  /// Structural invariants: bottom level sorted; every level a
  /// subsequence of the level below. Single transaction.
  bool is_consistent() {
    return TM::atomically([&](Tx& tx) {
      // Bottom sorted.
      Key last = std::numeric_limits<Key>::min();
      for (Node* n = tx.read(head_->next[0]); n != nullptr;
           n = tx.read(n->next[0])) {
        const Key k = tx.read(n->key);
        if (k <= last) return false;
        last = k;
      }
      // Each upper level's nodes appear at the level below.
      for (int level = 1; level < kMaxHeight; ++level) {
        Node* upper = tx.read(head_->next[level]);
        Node* lower = tx.read(head_->next[level - 1]);
        while (upper != nullptr) {
          while (lower != nullptr && lower != upper)
            lower = tx.read(lower->next[level - 1]);
          if (lower == nullptr) return false;  // upper node missing below
          upper = tx.read(upper->next[level]);
        }
      }
      return true;
    });
  }

  int window() const noexcept { return window_; }
  static const char* reservation_name() noexcept { return RR::name(); }

  /// Allow lookups to elide up to `budget` window boundaries per
  /// operation (see FusionState). Call before sharing across threads.
  void enable_fusion(int budget) { fusion_cap_ = budget; }

 private:
  struct Node {
    Key key;
    int height;
    Node* next[kMaxHeight];
    Node(Key k, int h) : key(k), height(h) {
      for (auto& n : next) n = nullptr;
    }
  };

  /// Full descent within one transaction, recording the predecessor and
  /// successor at every level (update-phase helper).
  void find_towers(Tx& tx, Key key, Node** preds, Node** succs) {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* next = tx.read(node->next[level]);
      while (next != nullptr && tx.read(next->key) < key) {
        node = next;
        next = tx.read(node->next[level]);
      }
      preds[level] = node;
      succs[level] = next;
    }
  }

  int random_height() {
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 10);
    int height = 1;
    while (height < kMaxHeight && (rng.next() & 3) == 0) ++height;  // p=1/4
    return height;
  }

  int window_;
  Node* head_;
  RR reservation_;
  WindowBoundary<RR> boundary_{reservation_};
  int fusion_cap_ = 0;
  static inline thread_local Node* resume_node_ = nullptr;
  static inline thread_local int resume_level_ = 0;
};

}  // namespace hohtm::ds
