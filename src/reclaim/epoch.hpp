#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::reclaim {

/// Epoch-based reclamation (Fraser-style, three-generation).
///
/// The paper's "LFLeak approximates the best-case performance of an
/// epoch-based allocator"; this is the real thing, used by the
/// mem_pressure example and the reclamation-comparison tests to show the
/// unbounded backlog epochs can accumulate when a reader stalls — the
/// exact pathology revocable reservations eliminate.
///
/// Usage: wrap each read-side region in a Pin (RAII); retire removed
/// nodes; the domain frees a generation once every pinned thread has
/// observed a newer epoch.
class EpochDomain {
 public:
  explicit EpochDomain(std::size_t advance_threshold = 64)
      : advance_threshold_(advance_threshold) {
    for (auto& cell : cells_)
      cell->local_epoch.store(kIdle, std::memory_order_relaxed);
  }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  ~EpochDomain();

  class Pin {
   public:
    explicit Pin(EpochDomain& domain) noexcept : domain_(domain) {
      domain_.enter();
    }
    ~Pin() { domain_.exit(); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochDomain& domain_;
  };

  /// Queue a node; it is freed two epoch advances later.
  void retire(void* ptr, void (*deleter)(void*) noexcept);

  /// Attempt to advance the global epoch and free the retired generation;
  /// succeeds only if no pinned thread lags behind.
  bool try_advance();

  std::size_t total_backlog() const noexcept;
  std::uint64_t epoch() const noexcept {
    return global_epoch_->load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint64_t kIdle = ~0ULL;
  static constexpr std::size_t kGenerations = 3;

  struct Retired {
    void* ptr;
    void (*deleter)(void*) noexcept;
  };
  struct Cell {
    std::atomic<std::uint64_t> local_epoch;  // kIdle when not pinned
  };
  struct Bucket {
    std::vector<Retired> generation[kGenerations];
    std::size_t since_advance = 0;
  };

  void enter() noexcept {
    auto& cell = cells_[util::ThreadRegistry::slot()].value;
    cell.local_epoch.store(global_epoch_->load(std::memory_order_seq_cst),
                           std::memory_order_seq_cst);
  }

  void exit() noexcept {
    cells_[util::ThreadRegistry::slot()]->local_epoch.store(
        kIdle, std::memory_order_release);
  }

  const std::size_t advance_threshold_;
  util::CachePadded<std::atomic<std::uint64_t>> global_epoch_{0};
  util::CachePadded<Cell> cells_[util::kMaxThreads];
  util::CachePadded<Bucket> buckets_[util::kMaxThreads];
};

}  // namespace hohtm::reclaim
