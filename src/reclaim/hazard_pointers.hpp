#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::reclaim {

/// Hazard pointers (Michael, TPDS 2004) — the deferred-reclamation
/// baseline the paper benchmarks against (LFHP and TMHP curves).
///
/// Threads publish the nodes they may dereference; `retire` queues a node
/// and frees it only once a scan proves no thread has it published. The
/// paper found throughput best when threads "only reclaim after 64
/// deletions", so that is the default scan threshold. The retire backlog
/// is what the precision comparison (mem_pressure example, Gauge-based
/// tests) measures against revocable reservations' immediate frees.
class HazardDomain {
 public:
  static constexpr std::size_t kSlotsPerThread = 3;

  using PrescanHook = void (*)() noexcept;

  /// `prescan` runs once at the start of every scan, before any node is
  /// freed. TM-based clients pass their backend's quiesce_before_free so
  /// that doomed transactions whose read sets still reference retired
  /// nodes drain before the memory is returned (hazard pointers alone
  /// only cover explicitly protected nodes, not STM read sets).
  explicit HazardDomain(std::size_t scan_threshold = 64,
                        PrescanHook prescan = nullptr)
      : scan_threshold_(scan_threshold), prescan_(prescan) {}

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  /// Frees every outstanding retired node. Callers must ensure no thread
  /// is still using the domain.
  ~HazardDomain();

  /// Publish `ptr` in the calling thread's hazard slot `index`.
  /// seq_cst store: must be ordered before the re-validation load that
  /// follows in the Michael protect-validate pattern.
  void protect(std::size_t index, const void* ptr) noexcept {
    slot(index).store(ptr, std::memory_order_seq_cst);
  }

  void clear(std::size_t index) noexcept {
    slot(index).store(nullptr, std::memory_order_release);
  }

  void clear_all() noexcept {
    for (std::size_t i = 0; i < kSlotsPerThread; ++i) clear(i);
  }

  /// Queue `ptr` for deferred destruction via `deleter`; triggers a scan
  /// when the calling thread's backlog reaches the threshold.
  void retire(void* ptr, void (*deleter)(void*) noexcept);

  /// Free every retired node not currently protected. Exposed for tests
  /// and shutdown paths.
  void scan();

  /// Current retire backlog of the calling thread (diagnostics).
  std::size_t my_backlog() const noexcept {
    return lists_[util::ThreadRegistry::slot()]->items.size();
  }

  /// Total backlog across threads; approximate under concurrency.
  std::size_t total_backlog() const noexcept;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*) noexcept;
  };
  struct RetireList {
    std::vector<Retired> items;
  };

  std::atomic<const void*>& slot(std::size_t index) noexcept {
    return slots_[util::ThreadRegistry::slot() * kSlotsPerThread + index]
        .value;
  }

  const std::size_t scan_threshold_;
  const PrescanHook prescan_ = nullptr;
  util::CachePadded<std::atomic<const void*>>
      slots_[util::kMaxThreads * kSlotsPerThread];
  util::CachePadded<RetireList> lists_[util::kMaxThreads];
};

}  // namespace hohtm::reclaim
