#include "reclaim/gauge.hpp"

// Gauge is fully inline; this translation unit exists so the module has a
// stable home in the library and a place for future non-inline additions.
namespace hohtm::reclaim {}
