#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::reclaim {

/// Process-wide live-object gauge.
///
/// Every allocation/free routed through the TM (`tx.alloc` / `tx.dealloc`)
/// and through the reclamation baselines (hazard pointers, epochs) ticks
/// this gauge. It is how tests and the mem_pressure example *prove*
/// precision: with revocable reservations, `live()` equals the logical
/// structure size plus O(threads) at every quiescent point, while deferred
/// schemes show a backlog of logically-deleted-but-unreclaimed nodes.
///
/// Counters are per-thread and padded; `live()` sums them (allocs and frees
/// by different threads net out across slots).
class Gauge {
 public:
  // Each cell is written only by its owning thread, so a relaxed
  // load-modify-store (not an RMW) is sufficient and cheap.
  static void on_alloc() noexcept { bump(cell().allocs); }
  static void on_free() noexcept { bump(cell().frees); }

  static std::int64_t live() noexcept {
    std::int64_t allocs = 0;
    std::int64_t frees = 0;
    const std::size_t n = util::ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i) {
      allocs += slots_[i]->allocs.load(std::memory_order_acquire);
      frees += slots_[i]->frees.load(std::memory_order_acquire);
    }
    const std::int64_t result = allocs - frees;
    // Advance the high-water mark: live() is the only place a coherent
    // global sum exists (per-cell peaks would not sum to a global peak),
    // so the peak is over *snapshots* — every live() call, including the
    // footprint-timeline sampler's, feeds it. The hot alloc/free path
    // stays contention-free.
    std::int64_t seen = peak_.load(std::memory_order_relaxed);
    while (result > seen &&
           !peak_.compare_exchange_weak(seen, result,
                                        std::memory_order_relaxed)) {
    }
    return result;
  }

  /// Monotonic high-water mark over every live() snapshot taken so far —
  /// the single-scalar "max footprint" benches report. Process-wide and
  /// never reset; callers that want a per-phase peak snapshot live()
  /// around the phase and difference against their own baseline.
  static std::int64_t peak() noexcept {
    return peak_.load(std::memory_order_acquire);
  }

  /// Not resettable per-test via zeroing (racy); tests snapshot live()
  /// before and after instead.

 private:
  struct Cell {
    // No default member initializers: CachePadded<Cell> is instantiated
    // inside this class, before such initializers would be complete. The
    // C++20 std::atomic default constructor value-initializes to zero.
    std::atomic<std::int64_t> allocs;
    std::atomic<std::int64_t> frees;
  };
  static Cell& cell() noexcept {
    return slots_[util::ThreadRegistry::slot()].value;
  }
  static void bump(std::atomic<std::int64_t>& counter) noexcept {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }
  static inline util::CachePadded<Cell> slots_[util::kMaxThreads];
  static inline std::atomic<std::int64_t> peak_{0};
};

}  // namespace hohtm::reclaim
