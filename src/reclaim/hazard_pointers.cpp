#include "reclaim/hazard_pointers.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hohtm::reclaim {
namespace {

// Process-wide retire/free counters across every hazard domain; the
// metrics snapshot derives the unreclaimed backlog as retired - freed.
int retired_metric() {
  static const int id = util::MetricsRegistry::counter("hazard.retired");
  return id;
}
int freed_metric() {
  static const int id = util::MetricsRegistry::counter("hazard.freed");
  return id;
}

}  // namespace

HazardDomain::~HazardDomain() {
  for (auto& list : lists_) {
    for (const Retired& r : list->items) r.deleter(r.ptr);
    util::MetricsRegistry::add(freed_metric(), list->items.size());
    list->items.clear();
  }
}

void HazardDomain::retire(void* ptr, void (*deleter)(void*) noexcept) {
  util::trace_event(util::Ev::kRetire, reinterpret_cast<std::uintptr_t>(ptr));
  util::MetricsRegistry::add(retired_metric());
  RetireList& mine = lists_[util::ThreadRegistry::slot()].value;
  mine.items.push_back(Retired{ptr, deleter});
  if (mine.items.size() >= scan_threshold_) scan();
}

void HazardDomain::scan() {
  if (prescan_ != nullptr) prescan_();
  // Stage 1: snapshot every published hazard.
  std::vector<const void*> hazards;
  const std::size_t threads = util::ThreadRegistry::high_watermark();
  hazards.reserve(threads * kSlotsPerThread);
  for (std::size_t i = 0; i < threads * kSlotsPerThread; ++i) {
    const void* p = slots_[i]->load(std::memory_order_seq_cst);
    if (p != nullptr) hazards.push_back(p);
  }
  std::sort(hazards.begin(), hazards.end());

  // Stage 2: free what is not protected; keep the rest queued.
  RetireList& mine = lists_[util::ThreadRegistry::slot()].value;
  std::vector<Retired> still_hazardous;
  still_hazardous.reserve(mine.items.size());
  for (const Retired& r : mine.items) {
    if (std::binary_search(hazards.begin(), hazards.end(),
                           static_cast<const void*>(r.ptr))) {
      still_hazardous.push_back(r);
    } else {
      r.deleter(r.ptr);
    }
  }
  util::trace_event(util::Ev::kScan,
                    mine.items.size() - still_hazardous.size());
  util::MetricsRegistry::add(freed_metric(),
                             mine.items.size() - still_hazardous.size());
  mine.items = std::move(still_hazardous);
}

std::size_t HazardDomain::total_backlog() const noexcept {
  std::size_t total = 0;
  const std::size_t threads = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < threads; ++i) total += lists_[i]->items.size();
  return total;
}

}  // namespace hohtm::reclaim
