#include "reclaim/watchdog.hpp"

#include <chrono>
#include <mutex>

#include "util/metrics.hpp"

namespace hohtm::reclaim {
namespace {

// Baseline state for stall detection. Written only under the mutex in
// check(); the hot path never touches it.
struct Baseline {
  std::uint64_t progress = 0;
  std::uint64_t since_ns = 0;  // first check() that saw this progress value
  bool active = false;
  bool reported = false;  // already counted as a stall event
};

struct CheckState {
  std::mutex mu;
  Baseline baselines[util::kMaxThreads];
};

CheckState& state() {
  static CheckState s;
  return s;
}

int stall_metric() {
  static const int id = util::MetricsRegistry::counter("watchdog.stalls");
  return id;
}

}  // namespace

Watchdog::Report Watchdog::check(std::uint64_t now_ns) {
  CheckState& cs = state();
  std::lock_guard<std::mutex> lock(cs.mu);
  Report report;
  const std::uint64_t threshold = threshold_ns();
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[i].value;
    Baseline& base = cs.baselines[i];
    const bool active = slot.active.load(std::memory_order_relaxed) != 0;
    const std::uint64_t progress =
        slot.progress.load(std::memory_order_relaxed);
    if (!active || !base.active || progress != base.progress) {
      // Inactive, newly active, or made progress: (re)arm the baseline.
      base = Baseline{progress, now_ns, active, false};
      if (active) report.active_threads += 1;
      continue;
    }
    report.active_threads += 1;
    const std::uint64_t stalled_for = now_ns - base.since_ns;
    if (stalled_for > threshold) {
      report.stalled_threads += 1;
      if (stalled_for > report.max_stall_ns) report.max_stall_ns = stalled_for;
      if (!base.reported) {
        base.reported = true;
        stall_events_.fetch_add(1, std::memory_order_acq_rel);
        util::MetricsRegistry::add(stall_metric());
      }
    }
  }
  return report;
}

Watchdog::Report Watchdog::check_now() {
  return check(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()));
}

void Watchdog::reset_for_testing() noexcept {
  CheckState& cs = state();
  std::lock_guard<std::mutex> lock(cs.mu);
  for (Baseline& base : cs.baselines) base = Baseline{};
  stall_events_.store(0, std::memory_order_release);
}

}  // namespace hohtm::reclaim
