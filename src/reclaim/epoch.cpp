#include "reclaim/epoch.hpp"

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hohtm::reclaim {
namespace {

// Process-wide retire/free counters across every epoch domain; the
// metrics snapshot derives the unreclaimed backlog as retired - freed.
int retired_metric() {
  static const int id = util::MetricsRegistry::counter("epoch.retired");
  return id;
}
int freed_metric() {
  static const int id = util::MetricsRegistry::counter("epoch.freed");
  return id;
}

}  // namespace

EpochDomain::~EpochDomain() {
  for (auto& bucket : buckets_) {
    for (auto& generation : bucket->generation) {
      for (const Retired& r : generation) r.deleter(r.ptr);
      util::MetricsRegistry::add(freed_metric(), generation.size());
      generation.clear();
    }
  }
}

void EpochDomain::retire(void* ptr, void (*deleter)(void*) noexcept) {
  util::trace_event(util::Ev::kRetire, reinterpret_cast<std::uintptr_t>(ptr));
  util::MetricsRegistry::add(retired_metric());
  Bucket& mine = buckets_[util::ThreadRegistry::slot()].value;
  const std::uint64_t e = global_epoch_->load(std::memory_order_acquire);
  mine.generation[e % kGenerations].push_back(Retired{ptr, deleter});
  if (++mine.since_advance >= advance_threshold_) {
    mine.since_advance = 0;
    try_advance();
  }
}

bool EpochDomain::try_advance() {
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  const std::size_t threads = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < threads; ++i) {
    const std::uint64_t local =
        cells_[i]->local_epoch.load(std::memory_order_seq_cst);
    if (local != kIdle && local < e) return false;  // a reader lags behind
  }
  // All pinned threads have seen epoch e; retired nodes from generation
  // e-2 (i.e. slot (e+1) % 3) can no longer be reached by anyone.
  std::uint64_t expected = e;
  if (!global_epoch_->compare_exchange_strong(expected, e + 1,
                                              std::memory_order_seq_cst))
    return false;  // someone else advanced; their free pass covers us
  util::trace_event(util::Ev::kEpochAdvance, e + 1);
  Bucket& mine = buckets_[util::ThreadRegistry::slot()].value;
  auto& reclaimable = mine.generation[(e + 1) % kGenerations];
  for (const Retired& r : reclaimable) r.deleter(r.ptr);
  util::MetricsRegistry::add(freed_metric(), reclaimable.size());
  reclaimable.clear();
  return true;
}

std::size_t EpochDomain::total_backlog() const noexcept {
  std::size_t total = 0;
  const std::size_t threads = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < threads; ++i)
    for (const auto& generation : buckets_[i]->generation)
      total += generation.size();
  return total;
}

}  // namespace hohtm::reclaim
