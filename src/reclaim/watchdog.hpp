#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::reclaim {

/// Reclamation-stall watchdog (docs/OBSERVABILITY.md; ROADMAP item 4's
/// robustness-under-stall instrumentation).
///
/// The paper's precise schemes are immune to a stalled reader; epochs and
/// hazard-style schemes are not — one thread parked inside a window lets
/// the unreclaimed backlog grow without bound. This watchdog *detects*
/// the parked thread: every `Quiescence::publish` bumps the publishing
/// thread's progress counter and marks it active, every `deactivate`
/// clears the mark. A thread that stays active without its progress
/// moving for longer than the threshold is reported stalled.
///
/// The hot-path cost is two relaxed stores into the thread's own padded
/// slot — always-on, like tm::Stats. Detection (`check`) takes an
/// explicit `now_ns` timestamp so tests and the sched explorer can drive
/// it deterministically: `check(t0)` establishes baselines, and
/// `check(t0 + threshold + 1)` must report any thread that was active at
/// both samples without progressing. Baseline state is guarded by an
/// internal mutex — any thread may call check, one at a time.
class Watchdog {
 public:
  /// Hot-path hooks, called from Quiescence::publish / deactivate.
  static void on_publish() noexcept {
    Slot& slot = slots_[util::ThreadRegistry::slot()].value;
    slot.progress.store(slot.progress.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
    slot.active.store(1, std::memory_order_relaxed);
  }
  static void on_deactivate() noexcept {
    slots_[util::ThreadRegistry::slot()].value.active.store(
        0, std::memory_order_relaxed);
  }

  struct Report {
    int active_threads = 0;   // slots currently inside a window/epoch
    int stalled_threads = 0;  // of those, parked past the threshold
    std::uint64_t max_stall_ns = 0;
  };

  /// Sample every registry slot at time `now_ns` and report threads that
  /// have been continuously active without progress past the threshold.
  static Report check(std::uint64_t now_ns);

  static void set_threshold_ns(std::uint64_t ns) noexcept {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  static std::uint64_t threshold_ns() noexcept {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Cumulative count of stall *events* (a thread transitioning into the
  /// stalled state; a thread parked across many checks counts once until
  /// it progresses or deactivates).
  static std::uint64_t stall_events() noexcept {
    return stall_events_.load(std::memory_order_acquire);
  }

  /// Convenience for always-on monitors (kv::Service, metrics snapshot):
  /// check against the real steady clock.
  static Report check_now();

  /// Quiescent-only: clear baselines and the cumulative event counter.
  static void reset_for_testing() noexcept;

 private:
  struct Slot {
    // No default member initializers: CachePadded<Slot> is instantiated
    // inside this class, before such initializers would be complete (see
    // reclaim::Gauge::Cell). C++20 std::atomic zero-initializes.
    std::atomic<std::uint64_t> progress;
    std::atomic<std::uint64_t> active;
  };
  static inline util::CachePadded<Slot> slots_[util::kMaxThreads] = {};
  static inline std::atomic<std::uint64_t> threshold_ns_{
      100ULL * 1000 * 1000};  // 100 ms default
  static inline std::atomic<std::uint64_t> stall_events_{0};
};

}  // namespace hohtm::reclaim
