#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/driver.hpp"
#include "kv/store.hpp"
#include "util/zipfian.hpp"

namespace hohtm::kv {

/// The five YCSB mixes (Cooper et al., SoCC '10), over Zipfian key
/// popularity:
///   A: 50% read / 50% update     (session store)
///   B: 95% read /  5% update     (photo tagging)
///   C: 100% read                 (profile cache)
///   D: 95% read-latest / 5% insert (status updates)
///   E: 95% scan / 5% insert      (threaded conversations)
/// Updates go through put (replace-node), so A/B exercise the precise
/// node-swap reclamation; D grows the store, exercising migration; E's
/// range scans start at Zipfian-popular keys with uniform lengths up to
/// `max_scan_len`, exercising the cursor handover against the resizes
/// its inserts trigger.
enum class Mix : std::uint8_t { kA = 0, kB, kC, kD, kE };

inline const char* mix_name(Mix mix) noexcept {
  switch (mix) {
    case Mix::kA: return "ycsb-a";
    case Mix::kB: return "ycsb-b";
    case Mix::kC: return "ycsb-c";
    case Mix::kD: return "ycsb-d";
    case Mix::kE: return "ycsb-e";
  }
  return "?";
}

/// One KV bench cell. `records` is both the prefill count and the
/// Zipfian domain; keys and values get deterministic variable lengths so
/// the flex-allocation path sees realistic size spread without any RNG
/// on the verification side.
struct KvWorkloadConfig {
  Mix mix = Mix::kC;
  std::size_t records = 2048;
  int threads = 2;
  std::uint64_t ops_per_thread = 20000;
  double theta = 0.99;
  int trials = 1;
  std::uint64_t seed = 42;
  int footprint_ms = 0;  // live-object sampling cadence; 0 = off
  std::size_t max_scan_len = 64;  // Mix E: uniform scan length in [1, max]
};

/// Key for popularity rank r: "user" + variable-length hex of the
/// scrambled rank (16..24 digits — always the full 64-bit value, plus
/// 0..8 leading zeros chosen by the scramble itself), so hot keys
/// scatter over the hash space and key lengths vary deterministically.
/// Emitting all 16 hex digits is what makes the scramble's
/// invertibility carry over to the keys: truncating to a prefix would
/// let distinct ranks collide and silently shrink the prefilled key
/// population (tests/kv/kv_workload_test.cpp pins uniqueness).
inline std::string make_key(std::uint64_t rank) {
  const std::uint64_t scrambled = util::scramble_rank(rank);
  const int digits = 16 + static_cast<int>(scrambled % 9);
  char buf[4 + 24 + 1];
  const int n =
      std::snprintf(buf, sizeof buf, "user%0*llx", digits,
                    static_cast<unsigned long long>(scrambled));
  return std::string(buf, static_cast<std::size_t>(n));
}

/// Deterministic value for (rank, version): length 8..127 bytes of a
/// xoshiro stream seeded by both, so overwrites change the content and
/// a checker can recompute any expected value from the op history.
inline std::string make_value(std::uint64_t rank, std::uint64_t version) {
  util::Xoshiro256 rng(rank * 0x9E3779B97F4A7C15ULL + version);
  const std::size_t len = 8 + static_cast<std::size_t>(rng.next() % 120);
  std::string v(len, '\0');
  for (std::size_t i = 0; i < len; ++i)
    v[i] = static_cast<char>('a' + (rng.next() % 26));
  return v;
}

/// CellResult plus the KV-specific telemetry appended to the CSV row
/// (columns kv_hits..kv_resizes; see harness::emit_kv_header).
struct KvCellResult {
  harness::CellResult base;
  std::uint64_t hits = 0;          // reads that found their key
  std::uint64_t misses = 0;        // reads that did not
  std::uint64_t migrations = 0;    // old-table buckets migrated
  std::uint64_t resizes = 0;       // tables installed (grow events)
  std::uint64_t scans = 0;         // range-scan ops started (Mix E)
  std::uint64_t scan_windows = 0;  // committed scan window transactions
  std::uint64_t scan_resumes = 0;  // lost cursors reseeked mid-scan
};

/// KV mirror of harness::run_cell: per trial, build a fresh store via
/// `make_store()` (a callable returning something with put/get/del and
/// the migration accessors), prefill `records` keys, settle migration,
/// then run the mix from `threads` workers lined up on a spin barrier.
/// Telemetry scoping, the footprint sampler, and live-peak accounting
/// follow run_cell exactly, so the same CSV/plot tooling applies.
template <class StoreFactory>
KvCellResult run_kv_cell(const KvWorkloadConfig& config,
                         StoreFactory&& make_store) {
  KvCellResult cell;
  std::vector<double> mops_samples;
  for (int trial = 0; trial < config.trials; ++trial) {
    const long long live_baseline = reclaim::Gauge::live();
    auto store = make_store();
    for (std::size_t r = 0; r < config.records; ++r)
      store->put(make_key(r), make_value(r, 0));
    store->finish_migration();  // settle prefill grows before timing
    const std::uint64_t migrate_baseline = store->migrated_buckets();
    const std::uint64_t resize_baseline = store->tables_swapped();
    const std::uint64_t scan_baseline = store->scans();
    const std::uint64_t scan_window_baseline = store->scan_windows();
    const std::uint64_t scan_resume_baseline = store->scan_resumes();
    tm::Stats::reset();
    util::Metrics::reset();

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    util::SpinBarrier barrier(static_cast<std::size_t>(config.threads) + 1);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t) {
      threads.emplace_back([&, t, trial] {
        util::Zipfian zipf(config.records, config.theta,
                           config.seed + 1000u * (trial + 1) + t);
        util::Xoshiro256 rng(config.seed + 0x2000u * (trial + 1) + t);
        std::string value;
        std::uint64_t my_hits = 0;
        std::uint64_t my_misses = 0;
        std::uint64_t inserted = 0;  // Mix D: this thread's new records
        const std::uint64_t insert_base =
            config.records + (static_cast<std::uint64_t>(t + 1) << 32);
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
          const int dice = static_cast<int>(rng.next_below(100));
          bool do_read = true;
          switch (config.mix) {
            case Mix::kA: do_read = dice < 50; break;
            case Mix::kB: do_read = dice < 95; break;
            case Mix::kC: do_read = true; break;
            case Mix::kD: do_read = dice < 95; break;
            case Mix::kE: do_read = dice < 95; break;
          }
          if (config.mix == Mix::kE) {
            if (do_read) {
              // Scan: Zipfian-popular start key, uniform length. The
              // visitor is a no-op — the cell measures the traversal and
              // its cursor handover, not the consumer.
              const std::size_t len = 1 + static_cast<std::size_t>(
                  rng.next_below(config.max_scan_len));
              if (store->scan_from(make_key(zipf.next()), len,
                                   [](const std::string&,
                                      const std::string&) {}) > 0)
                ++my_hits;
              else
                ++my_misses;
            } else {
              store->put(make_key(insert_base + inserted),
                         make_value(insert_base + inserted, 0));
              ++inserted;
            }
          } else if (config.mix == Mix::kD) {
            if (do_read) {
              // Read-latest: prefer this thread's most recent inserts,
              // Zipfian-skewed; fall back to the prefill while young.
              std::uint64_t rank;
              if (inserted == 0) {
                rank = zipf.next();
              } else {
                const std::uint64_t back = zipf.next() % inserted;
                rank = insert_base + (inserted - 1 - back);
              }
              if (store->get(make_key(rank), value))
                ++my_hits;
              else
                ++my_misses;
            } else {
              store->put(make_key(insert_base + inserted),
                         make_value(insert_base + inserted, 0));
              ++inserted;
            }
          } else if (do_read) {
            if (store->get(make_key(zipf.next()), value))
              ++my_hits;
            else
              ++my_misses;
          } else {
            const std::uint64_t rank = zipf.next();
            store->put(make_key(rank), make_value(rank, i + 1));
          }
        }
        barrier.arrive_and_wait();
        hits.fetch_add(my_hits, std::memory_order_relaxed);
        misses.fetch_add(my_misses, std::memory_order_relaxed);
      });
    }

    std::mutex sampler_mu;
    std::condition_variable sampler_cv;
    bool stop_sampler = false;
    std::vector<harness::FootprintSample> samples;
    std::thread sampler;
    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    if (config.footprint_ms > 0) {
      sampler = std::thread([&] {
        const auto period = std::chrono::milliseconds(config.footprint_ms);
        auto deadline = start + period;
        std::unique_lock<std::mutex> lock(sampler_mu);
        for (;;) {
          const double t_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          samples.push_back(harness::FootprintSample{
              t_ms, reclaim::Gauge::live() - live_baseline});
          if (sampler_cv.wait_until(lock, deadline,
                                    [&] { return stop_sampler; }))
            return;
          deadline += period;
        }
      });
    }
    barrier.arrive_and_wait();
    const auto stop = std::chrono::steady_clock::now();
    for (auto& th : threads) th.join();
    if (sampler.joinable()) {
      {
        std::lock_guard<std::mutex> lock(sampler_mu);
        stop_sampler = true;
      }
      sampler_cv.notify_one();
      sampler.join();
    }

    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double total_ops =
        static_cast<double>(config.ops_per_thread) * config.threads;
    mops_samples.push_back(total_ops / seconds / 1e6);
    cell.base.counters.accumulate(tm::Stats::total());
    cell.base.latency.merge(util::Metrics::total());
    cell.hits += hits.load(std::memory_order_relaxed);
    cell.misses += misses.load(std::memory_order_relaxed);
    cell.migrations += store->migrated_buckets() - migrate_baseline;
    cell.resizes += store->tables_swapped() - resize_baseline;
    cell.scans += store->scans() - scan_baseline;
    cell.scan_windows += store->scan_windows() - scan_window_baseline;
    cell.scan_resumes += store->scan_resumes() - scan_resume_baseline;

    const long long end_live = reclaim::Gauge::live() - live_baseline;
    if (end_live > cell.base.live_peak) cell.base.live_peak = end_live;
    for (const harness::FootprintSample& s : samples)
      if (s.live > cell.base.live_peak) cell.base.live_peak = s.live;
    if (!samples.empty()) cell.base.footprint = std::move(samples);
  }
  cell.base.mops = util::summarize(mops_samples);
  return cell;
}

}  // namespace hohtm::kv
